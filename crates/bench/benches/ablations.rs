//! Design-choice ablations from DESIGN.md §5, measured end to end on the
//! real engine (small, criterion-sized workloads). Each group contrasts a
//! NEPTUNE design decision with its alternative:
//!
//! 1. **batched vs per-message scheduling** (§III-B2 / Table I),
//! 2. **buffer capacity sweep** (§III-B1 / Fig. 2, the byte-threshold
//!    choice),
//! 3. **selective vs always vs no compression** on low-entropy batches
//!    (§III-B5),
//! 4. **object reuse vs fresh allocation** on the decode path (§III-B3).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use neptune_compress::SelectiveCompressor;
use neptune_core::codec::PacketCodec;
use neptune_core::prelude::*;
use neptune_core::{FieldValue, StreamPacket};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const PACKETS_PER_RUN: u64 = 20_000;

struct Src(u64);
impl StreamSource for Src {
    fn next(&mut self, ctx: &mut OperatorContext) -> SourceStatus {
        if self.0 >= PACKETS_PER_RUN {
            return SourceStatus::Exhausted;
        }
        let mut p = StreamPacket::new();
        p.push_field("n", FieldValue::U64(self.0))
            .push_field("pad", FieldValue::Bytes(vec![0x11; 42]));
        match ctx.emit(&p) {
            Ok(()) => {
                self.0 += 1;
                SourceStatus::Emitted(1)
            }
            Err(_) => SourceStatus::Exhausted,
        }
    }
}
struct Sink(Arc<AtomicU64>);
impl StreamProcessor for Sink {
    fn process(&mut self, _p: &StreamPacket, _ctx: &mut OperatorContext) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }
}

/// Run one two-stage job to completion; returns only when every packet
/// arrived (the benchmark measures whole-job wall time).
fn run_job(config: RuntimeConfig) {
    let seen = Arc::new(AtomicU64::new(0));
    let s2 = seen.clone();
    let graph = GraphBuilder::new("ablation")
        .source("src", || Src(0))
        .processor("sink", move || Sink(s2.clone()))
        .link("src", "sink", PartitioningScheme::Shuffle)
        .build()
        .unwrap();
    let job = LocalRuntime::new(config).submit(graph).unwrap();
    assert!(job.await_sources(Duration::from_secs(60)));
    job.stop();
    assert_eq!(seen.load(Ordering::Relaxed), PACKETS_PER_RUN);
}

fn ablation_scheduling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_scheduling");
    group.sample_size(10);
    group.throughput(Throughput::Elements(PACKETS_PER_RUN));
    group.bench_function("batched (NEPTUNE)", |b| {
        b.iter(|| run_job(RuntimeConfig { buffer_bytes: 64 << 10, ..Default::default() }))
    });
    group.bench_function("per_message (ablated)", |b| {
        b.iter(|| run_job(RuntimeConfig { batched_scheduling: false, ..Default::default() }))
    });
    group.finish();
}

fn ablation_buffer_capacity(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_buffer_capacity");
    group.sample_size(10);
    group.throughput(Throughput::Elements(PACKETS_PER_RUN));
    for (label, bytes) in [("1KB", 1usize << 10), ("16KB", 16 << 10), ("1MB", 1 << 20)] {
        group.bench_function(label, |b| {
            b.iter(|| run_job(RuntimeConfig { buffer_bytes: bytes, ..Default::default() }))
        });
    }
    group.finish();
}

fn ablation_compression(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_compression");
    // A low-entropy batch like a buffered sensor stream.
    let batch: Vec<u8> = (0..32_768).map(|i| ((i / 100) % 11) as u8).collect();
    group.throughput(Throughput::Bytes(batch.len() as u64));
    for (label, policy) in [
        ("disabled", SelectiveCompressor::disabled()),
        ("always", SelectiveCompressor::always()),
        ("selective_5.0", SelectiveCompressor::new(5.0)),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let framed = policy.encode(black_box(&batch));
                let restored = SelectiveCompressor::decode(&framed.payload).unwrap();
                black_box(restored.len());
            })
        });
    }
    group.finish();
}

fn ablation_object_reuse(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_object_reuse");
    let mut codec = PacketCodec::new();
    let encoded: Vec<Vec<u8>> = (0..64)
        .map(|i| {
            let mut p = StreamPacket::new();
            p.push_field("n", FieldValue::U64(i))
                .push_field("site", FieldValue::Str(format!("s{}", i % 4)))
                .push_field("pad", FieldValue::Bytes(vec![3u8; 24]));
            codec.encode(&p).unwrap()
        })
        .collect();
    group.throughput(Throughput::Elements(encoded.len() as u64));
    group.bench_function("workhorse_reuse (NEPTUNE)", |b| {
        let mut codec = PacketCodec::new();
        let mut workhorse = StreamPacket::new();
        b.iter(|| {
            for bytes in &encoded {
                codec.decode_into(black_box(bytes), &mut workhorse).unwrap();
                black_box(workhorse.len());
            }
        })
    });
    group.bench_function("fresh_per_message (ablated)", |b| {
        b.iter(|| {
            for bytes in &encoded {
                let mut codec = PacketCodec::new();
                let p = codec.decode(black_box(bytes)).unwrap();
                black_box(p.len());
            }
        })
    });
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(1200))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = ablation_scheduling, ablation_buffer_capacity, ablation_compression,
              ablation_object_reuse
}
criterion_main!(benches);
