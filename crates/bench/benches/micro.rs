//! Criterion micro-benchmarks over NEPTUNE's hot paths.
//!
//! These are the per-operation costs behind the paper's throughput
//! numbers: packet ser/de (with the object-reuse fast path), LZ4 and
//! entropy estimation (the §III-B5 compression decision), output-buffer
//! filling (§III-B1), partitioner routing (§III-A6), watermark queue
//! operations (§III-B4), frame encode/decode, and the statistics kernels
//! used by the evaluation harness.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use neptune_compress::{compress, decompress, shannon_entropy, SelectiveCompressor};
use neptune_core::codec::PacketCodec;
use neptune_core::partition::{Partitioner, PartitioningScheme};
use neptune_core::pool::PacketPool;
use neptune_core::{FieldValue, StreamPacket};
use neptune_net::buffer::{OutputBuffer, PushOutcome};
use neptune_net::frame::{decode_frame, decode_frame_shared, encode_frame};
use neptune_net::watermark::{WatermarkConfig, WatermarkQueue};
use neptune_stats::{tukey_hsd, welch_t_test, Tail};
use std::hint::black_box;

fn sample_packet() -> StreamPacket {
    let mut p = StreamPacket::new();
    p.push_field("seq", FieldValue::U64(12345))
        .push_field("ts", FieldValue::Timestamp(1_700_000_000_000_000))
        .push_field("site", FieldValue::Str("plant-07".into()))
        .push_field("pad", FieldValue::Bytes(vec![0xAB; 32]));
    p
}

fn low_entropy_block(n: usize) -> Vec<u8> {
    (0..n).map(|i| ((i / 64) % 7) as u8).collect()
}

fn high_entropy_block(n: usize) -> Vec<u8> {
    let mut state = 0x2545F4914F6CDD1Du64;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state as u8
        })
        .collect()
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    let packet = sample_packet();
    let mut codec = PacketCodec::new();
    let encoded = codec.encode(&packet).unwrap();
    group.throughput(Throughput::Elements(1));

    group.bench_function("encode_into_reused_buffer", |b| {
        let mut out = Vec::with_capacity(256);
        b.iter(|| {
            out.clear();
            codec.encode_into(black_box(&packet), &mut out).unwrap();
            black_box(out.len());
        })
    });
    group.bench_function("decode_into_workhorse (object reuse)", |b| {
        let mut workhorse = StreamPacket::new();
        b.iter(|| {
            codec.decode_into(black_box(&encoded), &mut workhorse).unwrap();
            black_box(workhorse.len());
        })
    });
    group.bench_function("decode_fresh_packet (no reuse)", |b| {
        b.iter(|| {
            let p = codec.decode(black_box(&encoded)).unwrap();
            black_box(p.len());
        })
    });
    group.finish();
}

fn bench_compression(c: &mut Criterion) {
    let mut group = c.benchmark_group("compression");
    for (label, data) in [
        ("low_entropy_16k", low_entropy_block(16384)),
        ("high_entropy_16k", high_entropy_block(16384)),
    ] {
        group.throughput(Throughput::Bytes(data.len() as u64));
        group.bench_function(format!("lz4_compress/{label}"), |b| {
            b.iter(|| black_box(compress(black_box(&data))))
        });
        let compressed = compress(&data);
        group.bench_function(format!("lz4_decompress/{label}"), |b| {
            b.iter(|| black_box(decompress(black_box(&compressed), data.len()).unwrap()))
        });
        group.bench_function(format!("shannon_entropy/{label}"), |b| {
            b.iter(|| black_box(shannon_entropy(black_box(&data))))
        });
        group.bench_function(format!("selective_encode/{label}"), |b| {
            let policy = SelectiveCompressor::new(5.0);
            b.iter(|| black_box(policy.encode(black_box(&data)).payload.len()))
        });
    }
    group.finish();
}

fn bench_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool");
    group.throughput(Throughput::Elements(1));
    group.bench_function("checkout_checkin (pooled)", |b| {
        let mut pool = PacketPool::new(16);
        b.iter(|| {
            let mut p = pool.checkout();
            p.push_field("x", FieldValue::U64(1));
            pool.checkin(p);
        })
    });
    group.bench_function("fresh_allocation (no pool)", |b| {
        b.iter(|| {
            let mut p = StreamPacket::new();
            p.push_field("x", FieldValue::U64(1));
            black_box(p);
        })
    });
    group.finish();
}

fn bench_output_buffer(c: &mut Criterion) {
    let mut group = c.benchmark_group("output_buffer");
    let msg = vec![0u8; 50];
    for (label, capacity) in [("16KB", 16 << 10), ("1MB", 1usize << 20)] {
        group.throughput(Throughput::Elements(1));
        group.bench_function(format!("push_until_flush/{label}"), |b| {
            let mut buffer = OutputBuffer::new(capacity, None);
            b.iter(|| {
                if let PushOutcome::Flush(batch) = buffer.push(black_box(&msg)) {
                    let encoded = black_box(batch.encoded);
                    buffer.recycle(encoded);
                }
            })
        });
    }
    group.finish();
}

fn bench_partitioners(c: &mut Criterion) {
    let mut group = c.benchmark_group("partitioner");
    let packet = sample_packet();
    group.throughput(Throughput::Elements(1));
    group.bench_function("shuffle", |b| {
        let mut p = Partitioner::new(&PartitioningScheme::Shuffle);
        b.iter(|| black_box(p.route(black_box(&packet), 8)))
    });
    group.bench_function("fields_hash", |b| {
        let mut p = Partitioner::new(&PartitioningScheme::by_field("site"));
        b.iter(|| black_box(p.route(black_box(&packet), 8)))
    });
    group.finish();
}

fn bench_watermark_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("watermark_queue");
    group.throughput(Throughput::Elements(1));
    group.bench_function("push_pop_uncontended", |b| {
        let q: WatermarkQueue<Vec<u8>> =
            WatermarkQueue::new(WatermarkConfig::new(1 << 24, 1 << 20));
        b.iter(|| {
            q.push_blocking(vec![0u8; 64]).unwrap();
            black_box(q.pop());
        })
    });
    group.bench_function("pop_batch_64", |b| {
        let q: WatermarkQueue<Vec<u8>> =
            WatermarkQueue::new(WatermarkConfig::new(1 << 24, 1 << 20));
        let mut out = Vec::with_capacity(64);
        b.iter_batched(
            || {
                for _ in 0..64 {
                    q.push_blocking(vec![0u8; 64]).unwrap();
                }
            },
            |_| {
                out.clear();
                black_box(q.pop_batch(64, &mut out));
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_framing(c: &mut Criterion) {
    let mut group = c.benchmark_group("framing");
    let mut codec = PacketCodec::new();
    let messages: Vec<Vec<u8>> =
        (0..100).map(|_| codec.encode(&sample_packet()).unwrap()).collect();
    let raw = SelectiveCompressor::disabled();
    group.throughput(Throughput::Elements(100));
    group.bench_function("encode_frame_100_msgs", |b| {
        b.iter(|| black_box(encode_frame(1, 0, black_box(&messages), &raw)))
    });
    let wire = encode_frame(1, 0, &messages, &raw);
    group.bench_function("decode_frame_100_msgs", |b| {
        b.iter(|| black_box(decode_frame(black_box(&wire)).unwrap()))
    });
    group.finish();
}

fn bench_frame_decode(c: &mut Criterion) {
    // The tentpole comparison: the legacy receive path materialized every
    // message as its own Vec (copy per message); the zero-copy path hands
    // out subslices of one refcounted batch buffer. Identical wire input.
    let mut group = c.benchmark_group("frame_decode");
    let raw = SelectiveCompressor::disabled();
    const COUNT: usize = 100;
    for (label, size) in [("50B", 50usize), ("200B", 200), ("1KB", 1024)] {
        let messages: Vec<Vec<u8>> = (0..COUNT).map(|i| vec![(i % 251) as u8; size]).collect();
        let wire = encode_frame(1, 0, &messages, &raw);
        let shared = bytes::Bytes::from(wire.clone());
        group.throughput(Throughput::Elements(COUNT as u64));
        group.bench_function(format!("copy_per_message/{label}"), |b| {
            b.iter(|| {
                let (frame, _) = decode_frame(black_box(&wire)).unwrap();
                let owned: Vec<Vec<u8>> = frame.messages.iter().map(|m| m.to_vec()).collect();
                black_box(owned.len());
            })
        });
        group.bench_function(format!("zero_copy/{label}"), |b| {
            b.iter(|| {
                let (frame, _) = decode_frame_shared(black_box(&shared), None).unwrap();
                let mut total = 0usize;
                for m in &frame.messages {
                    total += black_box(m).len();
                }
                black_box(total);
            })
        });
    }
    group.finish();
}

fn bench_stats(c: &mut Criterion) {
    let mut group = c.benchmark_group("stats");
    let a: Vec<f64> = (0..50).map(|i| 10.0 + (i as f64 * 0.37).sin()).collect();
    let b_: Vec<f64> = (0..50).map(|i| 10.5 + (i as f64 * 0.41).cos()).collect();
    let c_: Vec<f64> = (0..50).map(|i| 11.0 + (i as f64 * 0.29).sin()).collect();
    group.bench_function("welch_t_test_n50", |bch| {
        bch.iter(|| black_box(welch_t_test(black_box(&a), black_box(&b_), Tail::TwoSided)))
    });
    group.bench_function("tukey_hsd_3x50", |bch| {
        bch.iter(|| black_box(tukey_hsd(&[black_box(&a), black_box(&b_), black_box(&c_)])))
    });
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_millis(900))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_codec, bench_compression, bench_pool, bench_output_buffer,
              bench_partitioners, bench_watermark_queue, bench_framing,
              bench_frame_decode, bench_stats
}
criterion_main!(benches);
