//! Telemetry overhead guard: the instrumentation added for the
//! latency-breakdown histograms (sender-side stamps in the channel
//! endpoint, per-frame clock reads in the processor drain loop) must cost
//! nothing measurable when `RuntimeConfig::telemetry` is disabled — the
//! disabled path takes zero extra clock reads — and stay cheap when
//! enabled.
//!
//! Both sides run the identical three-stage relay with timestamp-stamped
//! packets, so the only difference is the telemetry toggle. The headline
//! acceptance bound is ≤2% on the disabled configuration relative to the
//! pre-telemetry engine; compare the `disabled` group against the
//! `ablations` baseline across revisions to track it.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use neptune_core::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const PACKETS_PER_RUN: u64 = 20_000;

struct Src(u64);
impl StreamSource for Src {
    fn next(&mut self, ctx: &mut OperatorContext) -> SourceStatus {
        if self.0 >= PACKETS_PER_RUN {
            return SourceStatus::Exhausted;
        }
        let mut p = StreamPacket::new();
        p.push_field("ts", FieldValue::Timestamp(neptune_core::now_micros()))
            .push_field("n", FieldValue::U64(self.0));
        match ctx.emit(&p) {
            Ok(()) => {
                self.0 += 1;
                SourceStatus::Emitted(1)
            }
            Err(_) => SourceStatus::Exhausted,
        }
    }
}
struct Relay;
impl StreamProcessor for Relay {
    fn process(&mut self, p: &StreamPacket, ctx: &mut OperatorContext) {
        let _ = ctx.emit(p);
    }
}
struct Sink(Arc<AtomicU64>);
impl StreamProcessor for Sink {
    fn process(&mut self, _p: &StreamPacket, _ctx: &mut OperatorContext) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }
}

/// One whole relay job, start to drained stop. `trace_every` arms causal
/// tracing at 1-in-N packets (0 = off); the ISSUE 7 acceptance bound is
/// ≤2% at 1-in-128 relative to plain enabled telemetry, since only the
/// sampled packets pay for span records and clock reads.
fn run_relay(telemetry: bool, trace_every: u32) {
    let seen = Arc::new(AtomicU64::new(0));
    let s2 = seen.clone();
    let graph = GraphBuilder::new("telemetry-overhead")
        .source("src", || Src(0))
        .processor("relay", || Relay)
        .processor("sink", move || Sink(s2.clone()))
        .link("src", "relay", PartitioningScheme::Shuffle)
        .link("relay", "sink", PartitioningScheme::Shuffle)
        .build()
        .unwrap();
    let config = RuntimeConfig {
        telemetry: match (telemetry, trace_every) {
            (false, _) => TelemetryConfig::default(),
            (true, 0) => TelemetryConfig::enabled(),
            (true, n) => TelemetryConfig::with_tracing(n),
        },
        ..Default::default()
    };
    let job = LocalRuntime::new(config).submit(graph).unwrap();
    assert!(job.await_sources(Duration::from_secs(60)));
    job.stop();
    assert_eq!(seen.load(Ordering::Relaxed), PACKETS_PER_RUN);
}

fn telemetry_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry_overhead");
    g.throughput(Throughput::Elements(PACKETS_PER_RUN));
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(8));
    g.bench_function("disabled", |b| b.iter(|| run_relay(false, 0)));
    g.bench_function("enabled", |b| b.iter(|| run_relay(true, 0)));
    g.bench_function("traced_1_in_128", |b| b.iter(|| run_relay(true, 128)));
    g.finish();
}

criterion_group!(benches, telemetry_overhead);
criterion_main!(benches);
