//! Two-tier thread model bench (§IV-C acceptance): idle-job CPU and
//! thread count must not scale with source parallelism, and IO-tier
//! scheduling delay must stay bounded as sources multiply.
//!
//! For each source count in {1, 64, 512} the harness submits a job whose
//! sources are permanently idle, lets the pumps settle into their parked
//! state, then measures over a fixed window:
//!
//! * **threads** — `/proc/self/task` entries, total and job-prefixed:
//!   before the two-tier refactor each source was a dedicated thread, so
//!   512 sources meant 512 pump threads; now the job runs on
//!   `io_threads + worker_threads` regardless of parallelism;
//! * **idle CPU** — utime+stime jiffies from `/proc/self/stat` consumed
//!   while nothing flows: parked pumps cost timer fires, not sleep
//!   loops, so this must not scale with the source count either;
//! * **scheduling delay** — a probe IO task repeatedly parks until an
//!   exact deadline on its own one-thread pool; observed fire error is
//!   the wheel + ready-queue + thread handoff latency under whatever
//!   load the idle job generates.
//!
//! Results land in `BENCH_thread_model.json` for CI artifacts; the
//! criterion section times full submit→stop cycles at each scale.

use criterion::Criterion;
use neptune_core::json::{object, JsonValue};
use neptune_core::prelude::*;
use neptune_granules::{IoContext, IoPool, IoStatus, IoTask};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Never exhausts, never emits — holds its pump in the idle-park path
/// until the flag flips.
struct Quiet {
    stopped: Arc<AtomicBool>,
}
impl StreamSource for Quiet {
    fn next(&mut self, _ctx: &mut OperatorContext) -> SourceStatus {
        if self.stopped.load(Ordering::Acquire) {
            SourceStatus::Exhausted
        } else {
            SourceStatus::Idle
        }
    }
}

struct Sink(Arc<AtomicU64>);
impl StreamProcessor for Sink {
    fn process(&mut self, _p: &StreamPacket, _ctx: &mut OperatorContext) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }
}

fn idle_job(name: &str, sources: usize, stopped: &Arc<AtomicBool>) -> JobHandle {
    let s = stopped.clone();
    let graph = GraphBuilder::new(name)
        .source_n("src", sources, move || Quiet { stopped: s.clone() })
        .processor("sink", || Sink(Arc::new(AtomicU64::new(0))))
        .link("src", "sink", PartitioningScheme::Shuffle)
        .build()
        .unwrap();
    let config = RuntimeConfig { worker_threads: Some(2), ..Default::default() };
    LocalRuntime::new(config).submit(graph).unwrap()
}

/// utime+stime of this process in clock ticks (`/proc/self/stat` fields
/// 14+15; the comm field may contain spaces, so parse after the last
/// `)`).
fn cpu_jiffies() -> u64 {
    let stat = std::fs::read_to_string("/proc/self/stat").unwrap_or_default();
    let rest = stat.rsplit(')').next().unwrap_or("");
    let fields: Vec<&str> = rest.split_whitespace().collect();
    // `rest` starts at field 3 (state): utime is field 14 → index 11.
    let utime: u64 = fields.get(11).and_then(|v| v.parse().ok()).unwrap_or(0);
    let stime: u64 = fields.get(12).and_then(|v| v.parse().ok()).unwrap_or(0);
    utime + stime
}

fn thread_counts(prefix: &str) -> (usize, usize) {
    let mut total = 0;
    let mut prefixed = 0;
    if let Ok(entries) = std::fs::read_dir("/proc/self/task") {
        for e in entries.flatten() {
            total += 1;
            if let Ok(c) = std::fs::read_to_string(e.path().join("comm")) {
                if c.trim().starts_with(prefix) {
                    prefixed += 1;
                }
            }
        }
    }
    (total, prefixed)
}

/// Parks until an exact deadline `rounds` times, recording how late each
/// wake lands — the end-to-end wheel → queue → thread scheduling delay.
struct DeadlineProbe {
    next_deadline: Option<Instant>,
    rounds: usize,
    samples: Arc<Mutex<Vec<u64>>>,
}
impl IoTask for DeadlineProbe {
    fn run(&mut self, io: &IoContext) -> IoStatus {
        if let Some(d) = self.next_deadline.take() {
            let late = Instant::now().saturating_duration_since(d);
            self.samples.lock().unwrap().push(late.as_micros() as u64);
        }
        if self.rounds == 0 || io.shutting_down() {
            return IoStatus::Complete;
        }
        self.rounds -= 1;
        let d = Instant::now() + Duration::from_millis(5);
        self.next_deadline = Some(d);
        IoStatus::ParkUntil(d)
    }
}

fn scheduling_delay_us(rounds: usize) -> (f64, u64) {
    let samples = Arc::new(Mutex::new(Vec::new()));
    let mut pool = IoPool::new("tm-probe", 1);
    let handle =
        pool.spawn(DeadlineProbe { next_deadline: None, rounds, samples: samples.clone() });
    let deadline = Instant::now() + Duration::from_secs(30);
    while !handle.is_complete() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    pool.shutdown();
    let s = samples.lock().unwrap();
    let mean = if s.is_empty() { 0.0 } else { s.iter().sum::<u64>() as f64 / s.len() as f64 };
    (mean, s.iter().copied().max().unwrap_or(0))
}

fn probe_scale(sources: usize, window: Duration, rounds: usize) -> JsonValue {
    let name = format!("tmb{sources}");
    let stopped = Arc::new(AtomicBool::new(false));
    let job = idle_job(&name, sources, &stopped);
    // Let every pump decay to its max idle backoff before measuring.
    std::thread::sleep(Duration::from_millis(100));
    let prefix = format!("{name}-");
    let (threads_total, threads_job) = thread_counts(&prefix);
    let tm = job.thread_model();

    let c0 = cpu_jiffies();
    let t0 = Instant::now();
    std::thread::sleep(window);
    let idle_jiffies = cpu_jiffies() - c0;
    let elapsed = t0.elapsed().as_secs_f64();
    // Linux clock tick is 100 Hz: one jiffy ≈ 10ms of CPU.
    let idle_cpu_pct = (idle_jiffies as f64 * 0.010) / elapsed * 100.0;

    let (sched_mean_us, sched_max_us) = scheduling_delay_us(rounds);
    stopped.store(true, Ordering::Release);
    job.stop();

    println!(
        "sources={sources:4}  job_threads={threads_job:2}  io_threads={}  \
         idle_cpu={idle_cpu_pct:5.1}%  sched_delay mean={sched_mean_us:6.0}µs \
         max={sched_max_us}µs",
        tm.io_threads
    );
    object([
        ("sources", JsonValue::Number(sources as f64)),
        ("job_threads", JsonValue::Number(threads_job as f64)),
        ("process_threads", JsonValue::Number(threads_total as f64)),
        ("io_threads", JsonValue::Number(tm.io_threads as f64)),
        ("worker_threads", JsonValue::Number(tm.worker_threads as f64)),
        ("live_io_tasks", JsonValue::Number(tm.live_io_tasks as f64)),
        ("idle_cpu_jiffies", JsonValue::Number(idle_jiffies as f64)),
        ("idle_cpu_pct", JsonValue::Number(idle_cpu_pct)),
        ("sched_delay_mean_us", JsonValue::Number(sched_mean_us)),
        ("sched_delay_max_us", JsonValue::Number(sched_max_us as f64)),
    ])
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let window = if quick { Duration::from_millis(200) } else { Duration::from_millis(500) };
    let rounds = if quick { 10 } else { 20 };

    println!("# thread_model — idle cost and scheduling delay vs source parallelism\n");
    let mut scales = Vec::new();
    for sources in [1usize, 64, 512] {
        scales.push(probe_scale(sources, window, rounds));
    }
    let doc = object([
        ("bench", JsonValue::String("thread_model".into())),
        ("quick", JsonValue::Bool(quick)),
        ("scales", JsonValue::Array(scales)),
    ]);
    // `cargo bench` runs with cwd = crates/bench; anchor the artifact to
    // the workspace root where CI collects BENCH_*.json.
    let out =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_thread_model.json");
    std::fs::write(&out, doc.to_json()).expect("write BENCH_thread_model.json");
    println!("\nwrote {}", out.display());

    let mut c = Criterion::default().configure_from_args();
    for sources in [1usize, 64, 512] {
        c.bench_function(&format!("thread_model/submit_stop/{sources}"), |b| {
            b.iter(|| {
                let stopped = Arc::new(AtomicBool::new(false));
                let job = idle_job("tmc", sources, &stopped);
                stopped.store(true, Ordering::Release);
                job.stop()
            })
        });
    }
    c.final_summary();
}
