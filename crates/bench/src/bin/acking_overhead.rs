//! **§IV-A ablation** — why the paper disabled Storm's acking.
//!
//! *"We have used version 0.9.5 of Storm with reliable message processing
//! feature disabled to ensure that the throughput of Storm is not
//! adversely affected by the additional overhead introduced by
//! acknowledgments."*
//!
//! This harness quantifies that overhead on the Storm-like baseline: the
//! same relay topology with the XOR acker off vs on. With acking, every
//! tuple adds tracker traffic (track/anchor/ack messages through the acker
//! executor), and completed trees are verified to equal the spout count —
//! at-least-once actually delivered, at a measurable throughput price.

use neptune_bench::{eng, Table};
use neptune_core::{FieldValue, StreamPacket};
use neptune_storm::{
    Bolt, BoltCollector, SpoutCollector, SpoutStatus, StormConfig, StormRuntime, StormSpout,
    TopologyBuilder,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const N: u64 = 200_000;

struct Spout {
    next: u64,
}
impl StormSpout for Spout {
    fn next_tuple(&mut self, c: &mut SpoutCollector) -> SpoutStatus {
        if self.next >= N {
            return SpoutStatus::Exhausted;
        }
        let mut p = StreamPacket::new();
        p.push_field("n", FieldValue::U64(self.next));
        c.emit(p);
        self.next += 1;
        SpoutStatus::Emitted(1)
    }
}
struct Forward;
impl Bolt for Forward {
    fn execute(&mut self, t: &StreamPacket, c: &mut BoltCollector) {
        c.emit(t.clone());
    }
}
struct Sink(Arc<AtomicU64>);
impl Bolt for Sink {
    fn execute(&mut self, _t: &StreamPacket, _c: &mut BoltCollector) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }
}

fn run(acking: bool) -> (f64, u64, u64) {
    let seen = Arc::new(AtomicU64::new(0));
    let s2 = seen.clone();
    let topo = TopologyBuilder::new("ack-ablation")
        .set_spout("spout", 1, || Spout { next: 0 })
        .set_bolt("relay", 1, || Forward)
        .shuffle_grouping("spout")
        .set_bolt("sink", 1, move || Sink(s2.clone()))
        .shuffle_grouping("relay")
        .build()
        .expect("valid topology");
    let job = StormRuntime::new(StormConfig { acking, ..Default::default() }).submit(topo);
    let t0 = Instant::now();
    assert!(job.await_quiescent(Duration::from_secs(300)));
    // Let the acker catch up with its queued messages.
    if acking {
        let deadline = Instant::now() + Duration::from_secs(30);
        while job.acked_trees() < N && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    let dt = t0.elapsed().as_secs_f64();
    let acked = job.acked_trees();
    job.stop();
    assert_eq!(seen.load(Ordering::Relaxed), N);
    (N as f64 / dt, acked, seen.load(Ordering::Relaxed))
}

fn main() {
    println!("# §IV-A — Storm acking overhead ablation ({N} tuples, 3-stage relay)\n");
    let (tp_off, acked_off, _) = run(false);
    let (tp_on, acked_on, _) = run(true);

    let mut table = Table::new(&["mode", "throughput (tuple/s)", "trees acked"]);
    table.row(vec!["acking disabled (paper's setting)".into(), eng(tp_off), acked_off.to_string()]);
    table.row(vec!["acking enabled (at-least-once)".into(), eng(tp_on), acked_on.to_string()]);
    table.print();

    println!(
        "\nacking throughput cost: {:.1}% ({} -> {})",
        (1.0 - tp_on / tp_off) * 100.0,
        eng(tp_off),
        eng(tp_on)
    );
    assert_eq!(acked_on, N, "at-least-once must track every tree to completion");
    assert_eq!(acked_off, 0);
    assert!(tp_on < tp_off, "acking must cost throughput (the paper's rationale)");
    println!("acking_overhead OK — reliability costs throughput, as the paper assumed");
}
