//! **§III-B5** — the entropy-based selective compression study.
//!
//! Paper: two datasets — the DEBS manufacturing sensor stream (low
//! entropy) and a random binary stream of matching packet size (high
//! entropy) — run with compression disabled, always-on, and selective.
//! *"The results were statistically validated using a Tukey's HSD
//! multiple comparison procedure. There is a clear improvement in
//! performance when the compression is completely disabled for random
//! data (p-values for individual comparisons < 0.0001) whereas there is no
//! strong evidence to support any negative or positive impact of the
//! compression for the sensor readings dataset (p-values ... > 0.1561)."*
//!
//! This harness reruns exactly that: real jobs over loopback TCP, several
//! repetitions per condition, throughput compared with Tukey's HSD, plus
//! the wire-byte reductions compression buys on each dataset.

use neptune_bench::{eng, Table};
use neptune_core::config::{CompressionMode, LinkOptions, TransportMode};
use neptune_core::prelude::*;
use neptune_data::manufacturing::ManufacturingSource;
use neptune_data::RandomSource;
use neptune_stats::tukey_hsd;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Counter(Arc<AtomicU64>);
impl StreamProcessor for Counter {
    fn process(&mut self, _p: &StreamPacket, _ctx: &mut OperatorContext) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }
}

#[derive(Clone, Copy)]
enum Dataset {
    Sensor,
    Random,
}

const N: u64 = 40_000;
const REPS: usize = 5;

/// One run: returns (throughput pkt/s, wire bytes).
fn run_once(dataset: Dataset, mode: CompressionMode, seed: u64) -> (f64, u64) {
    let seen = Arc::new(AtomicU64::new(0));
    let s2 = seen.clone();
    let builder = GraphBuilder::new("compression-study");
    let builder = match dataset {
        Dataset::Sensor => builder.source("src", move || ManufacturingSource::new(seed, N)),
        // 256 B payloads approximate the serialized size of a sensor
        // reading's monitored projection; the paper matched sizes too.
        Dataset::Random => builder.source("src", move || RandomSource::new(256, N, seed)),
    };
    let graph = builder
        .processor("sink", move || Counter(s2.clone()))
        .link_with(
            "src",
            "sink",
            PartitioningScheme::Shuffle,
            LinkOptions::default().compression(mode),
        )
        .build()
        .expect("valid graph");
    let config = RuntimeConfig {
        resources: 2,
        transport: TransportMode::Tcp,
        buffer_bytes: 64 * 1024,
        ..Default::default()
    };
    let job = LocalRuntime::new(config).submit(graph).expect("deploys");
    let t0 = Instant::now();
    assert!(job.await_sources(Duration::from_secs(300)), "source timed out");
    let metrics = job.stop();
    let dt = t0.elapsed().as_secs_f64();
    assert_eq!(seen.load(Ordering::Relaxed), N, "delivery must be exact");
    assert_eq!(metrics.total_seq_violations(), 0);
    (N as f64 / dt, metrics.operator("src").bytes_out)
}

fn study(dataset: Dataset, label: &str) {
    let modes: [(&str, CompressionMode); 3] = [
        ("disabled", CompressionMode::Disabled),
        ("always", CompressionMode::Always),
        ("selective(5.0)", CompressionMode::Threshold(5.0)),
    ];
    let mut throughputs: Vec<Vec<f64>> = vec![Vec::new(); 3];
    let mut wire: Vec<u64> = vec![0; 3];
    for rep in 0..REPS {
        for (mi, (_, mode)) in modes.iter().enumerate() {
            let (tp, bytes) = run_once(dataset, *mode, 100 + rep as u64);
            throughputs[mi].push(tp);
            wire[mi] = bytes;
        }
    }

    println!("## dataset: {label}\n");
    let mut table = Table::new(&["mode", "throughput mean (pkt/s)", "std dev", "wire bytes / run"]);
    for (mi, (name, _)) in modes.iter().enumerate() {
        let s = neptune_stats::Summary::from_slice(&throughputs[mi]);
        table.row(vec![name.to_string(), eng(s.mean), eng(s.std_dev()), eng(wire[mi] as f64)]);
    }
    table.print();

    let groups: Vec<&[f64]> = throughputs.iter().map(|v| v.as_slice()).collect();
    let hsd = tukey_hsd(&groups);
    println!(
        "\nTukey HSD (throughput): F = {:.2}, p(ANOVA) = {:.4}",
        hsd.anova.f, hsd.anova.p_value
    );
    for c in &hsd.comparisons {
        println!(
            "  {} vs {}: diff = {:.0} pkt/s, p = {:.4}{}",
            modes[c.group_a].0,
            modes[c.group_b].0,
            c.mean_difference,
            c.p_value,
            if c.significant_at(0.05) { "  *significant*" } else { "" }
        );
    }
    println!("wire-byte ratio (always/disabled): {:.2}\n", wire[1] as f64 / wire[0] as f64);
}

fn main() {
    println!("# §III-B5 — entropy-based selective compression study\n");
    study(Dataset::Sensor, "manufacturing sensor readings (low entropy)");
    study(Dataset::Random, "random binary stream (high entropy)");
    println!("paper: random data — disabling compression wins (p < 0.0001);");
    println!("       sensor data — no significant impact (p > 0.1561).");
}
