//! **Fig. 10** — average cluster-wide resource consumption by Storm and
//! NEPTUNE: per-node CPU and memory, with the paper's significance tests.
//!
//! Paper: *"NEPTUNE's CPU consumption is consistently lower compared to
//! the CPU consumption of Storm across all 50 nodes (p-value for the one
//! tailed t-test < 0.0001) ... With respect to memory consumption, there
//! is no noticeable difference between the systems (p-value for the
//! two-tailed t-test = 0.0863)."*
//!
//! Both engines run the 50-job manufacturing workload on the simulated
//! cluster. Because Storm delivers far fewer messages per second at
//! saturation, the CPU comparison is normalized the way the paper's is:
//! both systems running the *same offered jobs*, Storm simply burns more
//! CPU per delivered message — visible both in raw utilization at equal
//! load and in CPU-per-message.

use neptune_bench::Table;
use neptune_sim::{neptune_profile, simulate_cluster, storm_profile, ClusterParams};
use neptune_stats::{welch_t_test, Summary, Tail};

fn main() {
    const NODES: usize = 50;
    const JOBS: usize = 50;
    println!(
        "# Fig. 10 — cluster-wide CPU and memory, NEPTUNE vs Storm ({JOBS} jobs, {NODES} nodes)\n"
    );

    let np = simulate_cluster(&ClusterParams::manufacturing_job(neptune_profile(), NODES, JOBS));
    let st = simulate_cluster(&ClusterParams::manufacturing_job(storm_profile(), NODES, JOBS));

    // The paper plots CPU as cumulative % over 8 virtual cores (0..800).
    let np_cpu: Vec<f64> = np.per_node_cpu.iter().map(|u| u * 800.0).collect();
    let st_cpu: Vec<f64> = st.per_node_cpu.iter().map(|u| u * 800.0).collect();
    let np_mem: Vec<f64> = np.per_node_mem.iter().map(|u| u * 100.0).collect();
    let st_mem: Vec<f64> = st.per_node_mem.iter().map(|u| u * 100.0).collect();

    let scpu_n = Summary::from_slice(&np_cpu);
    let scpu_s = Summary::from_slice(&st_cpu);
    let smem_n = Summary::from_slice(&np_mem);
    let smem_s = Summary::from_slice(&st_mem);

    let mut table = Table::new(&["metric", "NEPTUNE (mean ± σ)", "Storm (mean ± σ)"]);
    table.row(vec![
        "CPU (% of 800)".into(),
        format!("{:.1} ± {:.1}", scpu_n.mean, scpu_n.std_dev()),
        format!("{:.1} ± {:.1}", scpu_s.mean, scpu_s.std_dev()),
    ]);
    table.row(vec![
        "Memory (%)".into(),
        format!("{:.1} ± {:.1}", smem_n.mean, smem_n.std_dev()),
        format!("{:.1} ± {:.1}", smem_s.mean, smem_s.std_dev()),
    ]);
    table.row(vec![
        "Throughput (msg/s)".into(),
        format!("{:.3e}", np.cumulative_throughput),
        format!("{:.3e}", st.cumulative_throughput),
    ]);
    table.print();

    // CPU per delivered message — the efficiency the paper's "do more
    // with less" claim is about.
    let np_cpu_per_msg = np_cpu.iter().sum::<f64>() / np.cumulative_throughput;
    let st_cpu_per_msg = st_cpu.iter().sum::<f64>() / st.cumulative_throughput;
    println!(
        "\nCPU per delivered message: NEPTUNE {:.2e}, Storm {:.2e} ({:.1}x)",
        np_cpu_per_msg,
        st_cpu_per_msg,
        st_cpu_per_msg / np_cpu_per_msg
    );

    // The paper's tests. One-tailed CPU (H1: neptune < storm) on the
    // per-message efficiency at matched load; the raw utilizations differ
    // because the engines saturate differently, so test the normalized
    // per-node CPU share per unit of throughput.
    let np_cpu_norm: Vec<f64> = np_cpu.iter().map(|c| c / np.cumulative_throughput * 1e6).collect();
    let st_cpu_norm: Vec<f64> = st_cpu.iter().map(|c| c / st.cumulative_throughput * 1e6).collect();
    let cpu_test = welch_t_test(&np_cpu_norm, &st_cpu_norm, Tail::Less);
    println!(
        "one-tailed t-test, CPU/message (NEPTUNE < Storm): t = {:.2}, p = {:.6}",
        cpu_test.t, cpu_test.p_value
    );
    let mem_test = welch_t_test(&np_mem, &st_mem, Tail::TwoSided);
    println!("two-tailed t-test, memory: t = {:.2}, p = {:.4}", mem_test.t, mem_test.p_value);

    assert!(cpu_test.p_value < 0.0001, "CPU advantage must be significant (paper: p < 0.0001)");
    assert!(mem_test.p_value > 0.05, "memory must not differ significantly (paper: p = 0.0863)");
    println!("\nfig10 OK — significantly lower CPU per message, no significant memory difference");
}
