//! **Fig. 2** — Throughput, end-to-end latency, and bandwidth usage vs.
//! application-level buffer size, for message sizes from 50 B to 10 KB.
//!
//! The paper: *"Buffer size was varied from 1 KB to 1 MB at different step
//! sizes. Message sizes were chosen to cover a wide spectrum from 50 Bytes
//! to 10 KB. ... the system throughput increases until it reaches a steady
//! state with the buffer size. The bandwidth usage reaches 0.937 Gbps ...
//! The latency, on the other hand, increases slightly with the buffer size
//! due to increased queuing delay at the application layer. ... With a
//! lower, middle-range buffer sizes like 16 KB, the observed latency is
//! less than 10 ms for all message sizes."*
//!
//! The sweep runs on the calibrated relay simulator (the paper's testbed
//! is two machines on a 1 Gbps LAN, which the simulator models); a live
//! spot check on the real engine over loopback TCP anchors one cell.

use neptune_bench::{eng, Table};
use neptune_sim::profile::neptune_unbatched_profile;
use neptune_sim::{neptune_profile, simulate_relay, RelayParams};

fn main() {
    let buffer_sizes: &[usize] = &[1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20];
    let msg_sizes: &[usize] = &[50, 200, 400, 1024, 10 * 1024];

    println!("# Fig. 2 — throughput / latency / bandwidth vs buffer size\n");
    for &msg in msg_sizes {
        println!("## message size = {msg} B\n");
        let mut table = Table::new(&[
            "buffer",
            "throughput (msg/s)",
            "mean latency (ms)",
            "p99 latency (ms)",
            "bandwidth (Gbps)",
            "pkts/batch",
        ]);
        // The paper's leftmost regime: buffering disabled entirely. The
        // per-message fixed costs dominate and throughput collapses (the
        // paper additionally observed a latency spike from context-switch
        // storms on its saturated nodes; the live Table-I harness shows
        // that cost on real hardware).
        {
            let r = simulate_relay(RelayParams::new(neptune_unbatched_profile(), msg));
            table.row(vec![
                "none".into(),
                eng(r.throughput_msgs_per_s),
                format!("{:.3}", r.mean_latency_ms),
                format!("{:.3}", r.p99_latency_ms),
                format!("{:.3}", r.bandwidth_gbps),
                "1".into(),
            ]);
        }
        for &buffer in buffer_sizes {
            let mut params = RelayParams::new(neptune_profile(), msg);
            params.buffer_bytes = buffer;
            let r = simulate_relay(params);
            table.row(vec![
                if buffer >= 1 << 20 {
                    format!("{} MB", buffer >> 20)
                } else {
                    format!("{} KB", buffer >> 10)
                },
                eng(r.throughput_msgs_per_s),
                format!("{:.3}", r.mean_latency_ms),
                format!("{:.3}", r.p99_latency_ms),
                format!("{:.3}", r.bandwidth_gbps),
                format!("{:.0}", r.packets_per_unit),
            ]);
        }
        table.print();
        println!();
    }

    // The paper's two calibration claims, checked mechanically.
    let big = {
        let mut p = RelayParams::new(neptune_profile(), 200 * 1024);
        p.buffer_bytes = 1 << 20;
        simulate_relay(p)
    };
    println!(
        "check: bandwidth at >=200 KB messages = {:.3} Gbps (paper: 0.937)",
        big.bandwidth_gbps
    );
    let mut worst_mid = 0.0f64;
    for &msg in msg_sizes {
        let mut p = RelayParams::new(neptune_profile(), msg);
        p.buffer_bytes = 16 << 10;
        let r = simulate_relay(p);
        worst_mid = worst_mid.max(r.mean_latency_ms);
    }
    println!("check: worst mean latency at 16 KB buffers = {worst_mid:.2} ms (paper: < 10 ms)");
    assert!(worst_mid < 10.0, "16 KB latency bound violated");
}
