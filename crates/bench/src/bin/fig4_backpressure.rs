//! **Fig. 4** — demonstrating backpressure: the throughput at stage A is
//! adjusted based on the data processing rate at stage C.
//!
//! Paper setup (Fig. 3): a three-stage job where stage C sleeps after each
//! message; *"The sleep interval varies between 0 ms and 3 ms in a cycle
//! that proceeds in steps of 1 ms ... The throughput at the stream source
//! is inversely proportional to the sleep interval at stage C."*
//!
//! This harness runs the real engine and prints the time series of source
//! and sink rates across two full 0→1→2→3 ms cycles — the data behind
//! Fig. 4's staircase. The run executes with telemetry enabled, so the
//! backpressure oscillation is also captured by the background sampler
//! (queue gauges + gate events over time) and dumped, together with the
//! staircase and per-operator latency histograms, to `BENCH_fig4.json`.

use neptune_bench::Table;
use neptune_core::json::{object, JsonValue};
use neptune_core::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct Firehose {
    emitted: Arc<AtomicU64>,
    payload: Vec<u8>,
}
impl StreamSource for Firehose {
    fn next(&mut self, ctx: &mut OperatorContext) -> SourceStatus {
        let mut p = StreamPacket::new();
        p.push_field("ts", FieldValue::Timestamp(neptune_core::now_micros()))
            .push_field("n", FieldValue::U64(self.emitted.load(Ordering::Relaxed)))
            .push_field("pad", FieldValue::Bytes(self.payload.clone()));
        match ctx.emit(&p) {
            Ok(()) => {
                self.emitted.fetch_add(1, Ordering::Relaxed);
                SourceStatus::Emitted(1)
            }
            Err(_) => SourceStatus::Exhausted,
        }
    }
}

struct Relay;
impl StreamProcessor for Relay {
    fn process(&mut self, p: &StreamPacket, ctx: &mut OperatorContext) {
        let _ = ctx.emit(p);
    }
}

struct VariableSink {
    sleep_us: Arc<AtomicU64>,
    processed: Arc<AtomicU64>,
}
impl StreamProcessor for VariableSink {
    fn process(&mut self, _p: &StreamPacket, _ctx: &mut OperatorContext) {
        let us = self.sleep_us.load(Ordering::Relaxed);
        if us > 0 {
            std::thread::sleep(Duration::from_micros(us));
        }
        self.processed.fetch_add(1, Ordering::Relaxed);
    }
}

fn main() {
    let emitted = Arc::new(AtomicU64::new(0));
    let processed = Arc::new(AtomicU64::new(0));
    let sleep_us = Arc::new(AtomicU64::new(0));
    let (e2, p2, s2) = (emitted.clone(), processed.clone(), sleep_us.clone());

    let graph = GraphBuilder::new("fig4")
        .source("A", move || Firehose { emitted: e2.clone(), payload: vec![0u8; 1024] })
        .processor("B", || Relay)
        .processor("C", move || VariableSink { sleep_us: s2.clone(), processed: p2.clone() })
        .link("A", "B", PartitioningScheme::Shuffle)
        .link("B", "C", PartitioningScheme::Shuffle)
        .build()
        .expect("valid graph");
    let config = RuntimeConfig {
        buffer_bytes: 4 * 1024,
        flush_interval: Duration::from_millis(2),
        watermark_high: 64 * 1024,
        watermark_low: 16 * 1024,
        telemetry: TelemetryConfig {
            sample_interval: Duration::from_millis(100),
            ..TelemetryConfig::enabled()
        },
        ..Default::default()
    };
    let job = LocalRuntime::new(config).submit(graph).expect("deploys");

    println!("# Fig. 4 — source throughput under a variable-rate stage C\n");
    let mut table = Table::new(&["t (s)", "C sleep (ms)", "A rate (pkt/s)", "C rate (pkt/s)"]);
    let mut t = 0.0f64;
    let mut staircase: Vec<(u64, f64)> = Vec::new();
    for cycle in 0..2 {
        for sleep_ms in [0u64, 1, 2, 3] {
            sleep_us.store(sleep_ms * 1000, Ordering::Relaxed);
            // Two samples per phase, 0.5 s each.
            for _ in 0..2 {
                let e0 = emitted.load(Ordering::Relaxed);
                let p0 = processed.load(Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(500));
                let e1 = emitted.load(Ordering::Relaxed);
                let p1 = processed.load(Ordering::Relaxed);
                t += 0.5;
                let a_rate = (e1 - e0) as f64 / 0.5;
                let c_rate = (p1 - p0) as f64 / 0.5;
                table.row(vec![
                    format!("{t:.1}"),
                    sleep_ms.to_string(),
                    format!("{a_rate:.0}"),
                    format!("{c_rate:.0}"),
                ]);
                if cycle == 1 {
                    staircase.push((sleep_ms, a_rate));
                }
            }
        }
    }
    let snap = job.telemetry().expect("telemetry enabled for this run");
    job.stop();
    table.print();

    // The sampler watched the whole oscillation: its series carries the
    // queue fill levels and gate events behind the staircase above.
    assert!(!snap.series.is_empty(), "sampler produced no samples");
    let gate_events: u64 = snap.queues.iter().map(|q| q.gate_events).sum();
    assert!(gate_events > 0, "backpressure never engaged — Fig. 4 setup broken");
    println!(
        "\ntelemetry: {} sampler ticks, {} backpressure gate events",
        snap.series.len(),
        gate_events
    );
    print!("{}", snap.render_pretty());

    // Verdict: in the second (settled) cycle, the source rate must be
    // monotonically decreasing in the sleep interval, and the 0 ms phase
    // must dominate the 3 ms phase by a wide margin.
    let rate_at = |ms: u64| {
        let xs: Vec<f64> = staircase.iter().filter(|(s, _)| *s == ms).map(|(_, r)| *r).collect();
        xs.iter().sum::<f64>() / xs.len() as f64
    };
    let (r0, r1, r2, r3) = (rate_at(0), rate_at(1), rate_at(2), rate_at(3));
    println!("\nsettled-cycle mean source rates: 0ms={r0:.0} 1ms={r1:.0} 2ms={r2:.0} 3ms={r3:.0}");
    assert!(r0 > 10.0 * r1, "0ms phase should dwarf 1ms phase");
    assert!(r1 > r2 && r2 > r3, "source rate must fall as C slows");

    let doc = object([
        ("bench", JsonValue::String("fig4".into())),
        (
            "staircase",
            JsonValue::Array(
                staircase
                    .iter()
                    .map(|(sleep_ms, rate)| {
                        object([
                            ("sleep_ms", JsonValue::Number(*sleep_ms as f64)),
                            ("source_rate", JsonValue::Number(*rate)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "settled_rates",
            object([
                ("r0", JsonValue::Number(r0)),
                ("r1", JsonValue::Number(r1)),
                ("r2", JsonValue::Number(r2)),
                ("r3", JsonValue::Number(r3)),
            ]),
        ),
        ("gate_events", JsonValue::Number(gate_events as f64)),
        ("telemetry", snap.to_json_value()),
    ]);
    std::fs::write("BENCH_fig4.json", doc.to_json()).expect("write BENCH_fig4.json");
    println!("wrote BENCH_fig4.json");
    println!("fig4 OK — source throughput inversely tracks stage C's rate");
}
