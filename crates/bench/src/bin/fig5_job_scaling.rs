//! **Fig. 5** — cumulative throughput and cumulative bandwidth usage vs.
//! the number of concurrent jobs on the 50-node cluster.
//!
//! Paper: *"Both cumulative metrics increase until the number of jobs is
//! equal to 50. ... Beyond this point, when the number of jobs increased
//! further, the cluster reaches an overprovisioned stage and there is a
//! drop in both cumulative throughput and cumulative bandwidth usage."*
//!
//! Runs on the cluster simulator (the 50-machine testbed substitute; see
//! DESIGN.md).

use neptune_bench::{eng, Table};
use neptune_sim::{neptune_profile, simulate_cluster, ClusterParams};

fn main() {
    const NODES: usize = 50;
    println!("# Fig. 5 — cumulative throughput & bandwidth vs concurrent jobs ({NODES} nodes)\n");
    let mut table = Table::new(&[
        "jobs",
        "cumulative throughput (msg/s)",
        "cumulative bandwidth (Gbps)",
        "per-job mean (msg/s)",
    ]);
    let sweep = [1usize, 5, 10, 20, 30, 40, 50, 60, 75, 100];
    let mut results = Vec::new();
    for &jobs in &sweep {
        let r = simulate_cluster(&ClusterParams::scaling_job(neptune_profile(), NODES, jobs));
        table.row(vec![
            jobs.to_string(),
            eng(r.cumulative_throughput),
            format!("{:.2}", r.cumulative_bandwidth_gbps),
            eng(r.cumulative_throughput / jobs as f64),
        ]);
        results.push((jobs, r.cumulative_throughput, r.cumulative_bandwidth_gbps));
    }
    table.print();

    // Shape checks matching the paper's narrative.
    let tp = |j: usize| results.iter().find(|(jobs, ..)| *jobs == j).expect("swept").1;
    let peak = tp(50);
    println!("\npeak cumulative throughput at 50 jobs: {} msg/s (paper: ~100M)", eng(peak));
    assert!(tp(10) < tp(30) && tp(30) < tp(50), "throughput must rise toward 50 jobs");
    assert!(tp(75) < peak && tp(100) < peak, "over-provisioning must reduce throughput");
    println!("fig5 OK — rise to a peak at jobs = nodes, then an over-provisioned decline");
}
