//! **Fig. 6** — cumulative throughput and bandwidth vs. cluster size with
//! the number of jobs fixed at 50.
//!
//! Paper: *"Both these metrics linearly scale with the cluster size and it
//! is expected to reach a maximum and stabilize when the cluster size is
//! further increased."*

use neptune_bench::{eng, Table};
use neptune_sim::{neptune_profile, simulate_cluster, ClusterParams};

fn main() {
    const JOBS: usize = 50;
    println!("# Fig. 6 — cumulative throughput & bandwidth vs cluster size ({JOBS} jobs)\n");
    let mut table = Table::new(&[
        "nodes",
        "cumulative throughput (msg/s)",
        "cumulative bandwidth (Gbps)",
        "throughput per node",
    ]);
    let sweep = [5usize, 10, 15, 20, 25, 30, 35, 40, 45, 50];
    let mut results = Vec::new();
    for &nodes in &sweep {
        let r = simulate_cluster(&ClusterParams::scaling_job(neptune_profile(), nodes, JOBS));
        table.row(vec![
            nodes.to_string(),
            eng(r.cumulative_throughput),
            format!("{:.2}", r.cumulative_bandwidth_gbps),
            eng(r.cumulative_throughput / nodes as f64),
        ]);
        results.push((nodes, r.cumulative_throughput));
    }
    table.print();

    // Linearity check: regress throughput on nodes and verify a strong
    // positive slope with near-linear ratios between doubled sizes.
    let tp = |n: usize| results.iter().find(|(nodes, _)| *nodes == n).expect("swept").1;
    let r_10_20 = tp(20) / tp(10);
    let r_20_40 = tp(40) / tp(20);
    println!("\nscaling ratios: 10->20 nodes = {r_10_20:.2}x, 20->40 nodes = {r_20_40:.2}x (linear = 2.0x)");
    assert!((1.5..=2.6).contains(&r_10_20), "10->20 ratio {r_10_20} not near-linear");
    assert!((1.5..=2.6).contains(&r_20_40), "20->40 ratio {r_20_40} not near-linear");
    println!("fig6 OK — cumulative metrics scale ~linearly with cluster size");
}
