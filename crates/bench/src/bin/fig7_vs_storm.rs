//! **Fig. 7** — throughput, end-to-end latency, and bandwidth usage vs.
//! message size: NEPTUNE contrasted with Storm on the Fig. 1 relay.
//!
//! Paper: *"NEPTUNE outperforms Storm in all three metrics. The latency
//! observed with Storm was drastically increasing with the message size.
//! This was mainly due to the absence of backpressure in Storm. ... The
//! relay processor ... is relatively slower than the sender ... which
//! creates a bottleneck in the entire Storm topology."*
//!
//! Two parts:
//! 1. the calibrated simulator sweep over the paper's message range
//!    (both engines on the modeled two-machine, 1 Gbps setup);
//! 2. a live spot check on this host: the same relay through the real
//!    NEPTUNE runtime and the real Storm-like baseline engine.

use neptune_bench::{eng, Table};
use neptune_core::prelude::*;
use neptune_sim::{neptune_profile, simulate_relay, storm_profile, RelayParams};
use neptune_storm::{
    Bolt, BoltCollector, SpoutCollector, SpoutStatus, StormConfig, StormRuntime, StormSpout,
    TopologyBuilder,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn simulated_sweep() {
    println!("## simulated 2-node relay, 1 Gbps LAN\n");
    let mut table = Table::new(&[
        "msg size",
        "engine",
        "throughput (msg/s)",
        "mean latency (ms)",
        "bandwidth (Gbps)",
        "relay backlog",
    ]);
    for &msg in &[50usize, 200, 400, 1024, 10 * 1024] {
        for (profile, name) in [(neptune_profile(), "NEPTUNE"), (storm_profile(), "Storm")] {
            let r = simulate_relay(RelayParams::new(profile, msg));
            table.row(vec![
                format!("{msg} B"),
                name.into(),
                eng(r.throughput_msgs_per_s),
                format!("{:.2}", r.mean_latency_ms),
                format!("{:.3}", r.bandwidth_gbps),
                r.final_relay_backlog.to_string(),
            ]);
        }
    }
    table.print();
    println!();
}

// ---- live spot check ----

const LIVE_N: u64 = 150_000;

struct NSource {
    next: u64,
    payload: Vec<u8>,
}
impl StreamSource for NSource {
    fn next(&mut self, ctx: &mut OperatorContext) -> SourceStatus {
        if self.next >= LIVE_N {
            return SourceStatus::Exhausted;
        }
        let mut p = StreamPacket::new();
        p.push_field("n", FieldValue::U64(self.next))
            .push_field("pad", FieldValue::Bytes(self.payload.clone()));
        match ctx.emit(&p) {
            Ok(()) => {
                self.next += 1;
                SourceStatus::Emitted(1)
            }
            Err(_) => SourceStatus::Exhausted,
        }
    }
}
struct NForward;
impl StreamProcessor for NForward {
    fn process(&mut self, p: &StreamPacket, ctx: &mut OperatorContext) {
        let _ = ctx.emit(p);
    }
}
struct NCount(Arc<AtomicU64>);
impl StreamProcessor for NCount {
    fn process(&mut self, _p: &StreamPacket, _ctx: &mut OperatorContext) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }
}

fn live_neptune(msg_size: usize) -> (f64, u64) {
    let seen = Arc::new(AtomicU64::new(0));
    let s2 = seen.clone();
    let graph = GraphBuilder::new("live-neptune")
        .source("src", move || NSource { next: 0, payload: vec![7u8; msg_size] })
        .processor("relay", || NForward)
        .processor("sink", move || NCount(s2.clone()))
        .link("src", "relay", PartitioningScheme::Shuffle)
        .link("relay", "sink", PartitioningScheme::Shuffle)
        .build()
        .expect("valid graph");
    let job = LocalRuntime::new(RuntimeConfig::default()).submit(graph).expect("deploys");
    let t0 = Instant::now();
    assert!(job.await_sources(Duration::from_secs(300)));
    let metrics = job.stop();
    let dt = t0.elapsed().as_secs_f64();
    assert_eq!(seen.load(Ordering::Relaxed), LIVE_N);
    (LIVE_N as f64 / dt, metrics.operator("src").bytes_out)
}

struct SSpout {
    next: u64,
    payload: Vec<u8>,
}
impl StormSpout for SSpout {
    fn next_tuple(&mut self, c: &mut SpoutCollector) -> SpoutStatus {
        if self.next >= LIVE_N {
            return SpoutStatus::Exhausted;
        }
        let mut p = StreamPacket::new();
        p.push_field("n", FieldValue::U64(self.next))
            .push_field("pad", FieldValue::Bytes(self.payload.clone()));
        c.emit(p);
        self.next += 1;
        SpoutStatus::Emitted(1)
    }
}
struct SForward;
impl Bolt for SForward {
    fn execute(&mut self, t: &StreamPacket, c: &mut BoltCollector) {
        c.emit(t.clone());
    }
}
struct SCount(Arc<AtomicU64>);
impl Bolt for SCount {
    fn execute(&mut self, _t: &StreamPacket, _c: &mut BoltCollector) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }
}

fn live_storm(msg_size: usize) -> (f64, u64) {
    let seen = Arc::new(AtomicU64::new(0));
    let s2 = seen.clone();
    let topo = TopologyBuilder::new("live-storm")
        .set_spout("src", 1, move || SSpout { next: 0, payload: vec![7u8; msg_size] })
        .set_bolt("relay", 1, || SForward)
        .shuffle_grouping("src")
        .set_bolt("sink", 1, move || SCount(s2.clone()))
        .shuffle_grouping("relay")
        .build()
        .expect("valid topology");
    let job = StormRuntime::new(StormConfig::default()).submit(topo);
    let t0 = Instant::now();
    assert!(job.await_quiescent(Duration::from_secs(300)));
    let metrics = job.stop();
    let dt = t0.elapsed().as_secs_f64();
    assert_eq!(seen.load(Ordering::Relaxed), LIVE_N);
    (LIVE_N as f64 / dt, metrics.operator("src").bytes_out)
}

fn live_spot_check() {
    println!("## live spot check on this host ({LIVE_N} packets, in-process)\n");
    let mut table =
        Table::new(&["msg size", "engine", "throughput (msg/s)", "wire-equivalent bytes"]);
    for &msg in &[50usize, 400] {
        let (np_tp, np_bytes) = live_neptune(msg);
        let (st_tp, st_bytes) = live_storm(msg);
        table.row(vec![format!("{msg} B"), "NEPTUNE".into(), eng(np_tp), eng(np_bytes as f64)]);
        table.row(vec![format!("{msg} B"), "Storm".into(), eng(st_tp), eng(st_bytes as f64)]);
        println!(
            "  {msg} B: NEPTUNE/Storm throughput ratio = {:.1}x, byte ratio = {:.2}x",
            np_tp / st_tp,
            st_bytes as f64 / np_bytes as f64
        );
        assert!(np_tp > st_tp, "NEPTUNE must outperform the Storm baseline");
    }
    table.print();
}

fn main() {
    println!("# Fig. 7 — NEPTUNE vs Storm on the three-stage relay\n");
    simulated_sweep();
    live_spot_check();
    println!("\nfig7 OK — NEPTUNE leads on throughput, latency, and bandwidth");
}
