//! **Fig. 9** — cumulative throughput vs. the number of concurrent jobs
//! for the manufacturing-equipment monitoring use case (Fig. 8), NEPTUNE
//! vs Storm on the 50-node cluster.
//!
//! Paper: *"both systems scale linearly with the number of concurrent
//! jobs. But the throughput is higher in NEPTUNE. With 32 jobs, NEPTUNE's
//! throughput is 8 times higher than Storm."* The conclusion adds the
//! absolute anchor: *"a cumulative throughput of 15 million messages per
//! second"* for this application.

use neptune_bench::{eng, Table};
use neptune_sim::{neptune_profile, simulate_cluster, storm_profile, ClusterParams};

fn main() {
    const NODES: usize = 50;
    println!(
        "# Fig. 9 — manufacturing monitoring: cumulative throughput vs jobs ({NODES} nodes)\n"
    );
    let mut table = Table::new(&["jobs", "NEPTUNE (msg/s)", "Storm (msg/s)", "NEPTUNE / Storm"]);
    let sweep = [1usize, 2, 4, 8, 16, 24, 32, 40, 50];
    let mut ratios = Vec::new();
    let mut np_points = Vec::new();
    for &jobs in &sweep {
        let np =
            simulate_cluster(&ClusterParams::manufacturing_job(neptune_profile(), NODES, jobs));
        let st = simulate_cluster(&ClusterParams::manufacturing_job(storm_profile(), NODES, jobs));
        let ratio = np.cumulative_throughput / st.cumulative_throughput;
        table.row(vec![
            jobs.to_string(),
            eng(np.cumulative_throughput),
            eng(st.cumulative_throughput),
            format!("{ratio:.1}x"),
        ]);
        if jobs == 32 {
            ratios.push(ratio);
        }
        np_points.push((jobs, np.cumulative_throughput));
    }
    table.print();

    let ratio_32 = ratios[0];
    let np_50 = np_points.iter().find(|(j, _)| *j == 50).expect("swept").1;
    println!("\nNEPTUNE/Storm at 32 jobs: {ratio_32:.1}x (paper: 8x)");
    println!("NEPTUNE cumulative at 50 jobs: {} msg/s (paper: ~15M)", eng(np_50));

    // Linearity: 8 -> 16 -> 32 jobs should roughly double each time.
    let tp = |j: usize| np_points.iter().find(|(jobs, _)| *jobs == j).expect("swept").1;
    let r1 = tp(16) / tp(8);
    let r2 = tp(32) / tp(16);
    println!("NEPTUNE linearity: 8->16 = {r1:.2}x, 16->32 = {r2:.2}x");
    assert!((1.6..=2.4).contains(&r1) && (1.6..=2.4).contains(&r2), "not linear");
    assert!(ratio_32 > 4.0, "engine gap at 32 jobs collapsed: {ratio_32:.1}x");
    assert!((8e6..3e7).contains(&np_50), "50-job cumulative {np_50:.2e} off the 15M anchor");
    println!("fig9 OK — linear scaling with a wide NEPTUNE lead");
}
