//! **§VI headline numbers** — the paper's conclusions, re-derived in one
//! pass:
//!
//! 1. *"In a three-stage message relay benchmark, NEPTUNE was able to
//!    achieve a throughput of 2 million messages per second with a 93.7%
//!    bandwidth consumption."*
//! 2. *"The same experiment in a 50 node cluster setup recorded a
//!    cumulative throughput closer to 100 million packets per-second with
//!    a near optimal bandwidth consumption."*
//! 3. *"The processing latencies (for 10 KB packets) for the 99% of the
//!    packets was less than 87.8 ms even with a configuration optimized
//!    for high throughput."*
//! 4. *"For a four-stage stream processing application that modeled real
//!    time monitoring of manufacturing equipment, NEPTUNE was able to
//!    achieve a cumulative throughput of 15 million messages per
//!    second."*
//!
//! Plus a live single-node anchor on this host's real engine, a
//! telemetry-enabled relay dump (per-operator e2e quantiles and the
//! four-stage latency breakdown), and a machine-readable
//! `BENCH_headline.json` for CI artifacts.
//!
//! Pass `--quick` to shrink the live runs for CI.

use neptune_bench::{eng, Table};
use neptune_core::json::{object, JsonValue};
use neptune_core::prelude::*;
use neptune_sim::{neptune_profile, simulate_cluster, simulate_relay, ClusterParams, RelayParams};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn check(
    name: &str,
    measured: f64,
    paper: f64,
    lo: f64,
    hi: f64,
    table: &mut Table,
    rows: &mut Vec<JsonValue>,
) -> bool {
    let ok = measured >= lo && measured <= hi;
    table.row(vec![
        name.into(),
        eng(measured),
        eng(paper),
        format!("{:.2}x", measured / paper),
        if ok { "ok" } else { "OFF" }.into(),
    ]);
    rows.push(object([
        ("claim", JsonValue::String(name.to_string())),
        ("measured", JsonValue::Number(measured)),
        ("paper", JsonValue::Number(paper)),
        ("ok", JsonValue::Bool(ok)),
    ]));
    ok
}

struct Src {
    next: u64,
    limit: u64,
    /// Stamp packets with a source timestamp so e2e telemetry has a base.
    stamp: bool,
}
impl StreamSource for Src {
    fn next(&mut self, ctx: &mut OperatorContext) -> SourceStatus {
        if self.next >= self.limit {
            return SourceStatus::Exhausted;
        }
        let mut p = StreamPacket::new();
        if self.stamp {
            p.push_field("ts", FieldValue::Timestamp(neptune_core::now_micros()));
        }
        p.push_field("n", FieldValue::U64(self.next));
        match ctx.emit(&p) {
            Ok(()) => {
                self.next += 1;
                SourceStatus::Emitted(1)
            }
            Err(_) => SourceStatus::Exhausted,
        }
    }
}
struct Relay;
impl StreamProcessor for Relay {
    fn process(&mut self, p: &StreamPacket, ctx: &mut OperatorContext) {
        let _ = ctx.emit(p);
    }
}
struct Sink(Arc<AtomicU64>);
impl StreamProcessor for Sink {
    fn process(&mut self, _p: &StreamPacket, _ctx: &mut OperatorContext) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }
}

/// Run the three-stage relay on the real engine. With `telemetry` the
/// packets carry source timestamps and the job records the full latency
/// breakdown; the snapshot is taken after the queues settle.
fn live_relay(n: u64, telemetry: bool) -> (f64, Option<TelemetrySnapshot>) {
    let seen = Arc::new(AtomicU64::new(0));
    let s2 = seen.clone();
    let graph = GraphBuilder::new("headline-live")
        .source("src", move || Src { next: 0, limit: n, stamp: telemetry })
        .processor("relay", || Relay)
        .processor("sink", move || Sink(s2.clone()))
        .link("src", "relay", PartitioningScheme::Shuffle)
        .link("relay", "sink", PartitioningScheme::Shuffle)
        .build()
        .expect("valid graph");
    let config = RuntimeConfig {
        telemetry: if telemetry { TelemetryConfig::enabled() } else { TelemetryConfig::default() },
        ..Default::default()
    };
    let job = LocalRuntime::new(config).submit(graph).expect("deploys");
    let t0 = Instant::now();
    assert!(job.await_sources(Duration::from_secs(300)));
    let snap = if telemetry {
        job.settle(Duration::from_secs(30));
        job.telemetry()
    } else {
        None
    };
    job.stop();
    let dt = t0.elapsed().as_secs_f64();
    assert_eq!(seen.load(Ordering::Relaxed), n);
    (n as f64 / dt, snap)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let live_n: u64 = if quick { 200_000 } else { 2_000_000 };
    println!("# §VI — the paper's headline numbers, reproduced\n");
    let mut table = Table::new(&["claim", "measured", "paper", "ratio", "verdict"]);
    let mut rows: Vec<JsonValue> = Vec::new();
    let mut all_ok = true;

    // 1. Single-node relay ~2M msg/s (simulated 2-machine setup, 50 B).
    let relay = simulate_relay(RelayParams::new(neptune_profile(), 50));
    all_ok &= check(
        "relay throughput (sim, 50 B)",
        relay.throughput_msgs_per_s,
        2e6,
        1.4e6,
        3.0e6,
        &mut table,
        &mut rows,
    );

    // 1b. Bandwidth consumption 93.7% at large messages.
    let big = simulate_relay(RelayParams::new(neptune_profile(), 200 * 1024));
    all_ok &= check(
        "relay bandwidth (fraction of 1 Gbps)",
        big.bandwidth_gbps,
        0.937,
        0.90,
        0.97,
        &mut table,
        &mut rows,
    );

    // 2. 50-node cumulative ~100M msg/s.
    let cluster = simulate_cluster(&ClusterParams::scaling_job(neptune_profile(), 50, 50));
    all_ok &= check(
        "50-node cumulative throughput",
        cluster.cumulative_throughput,
        1e8,
        6e7,
        1.8e8,
        &mut table,
        &mut rows,
    );

    // 3. p99 latency for 10 KB packets < 87.8 ms at the high-throughput
    //    configuration.
    let lat = simulate_relay(RelayParams::new(neptune_profile(), 10 * 1024));
    all_ok &= check(
        "p99 latency, 10 KB pkts (ms)",
        lat.p99_latency_ms,
        87.8,
        0.0,
        87.8,
        &mut table,
        &mut rows,
    );

    // 4. Manufacturing application ~15M msg/s cumulative.
    let mfg = simulate_cluster(&ClusterParams::manufacturing_job(neptune_profile(), 50, 50));
    all_ok &= check(
        "manufacturing cumulative throughput",
        mfg.cumulative_throughput,
        1.5e7,
        8e6,
        3e7,
        &mut table,
        &mut rows,
    );

    // Live anchor: the real engine on this host, telemetry off (the
    // headline configuration).
    let (live, _) = live_relay(live_n, false);
    all_ok &=
        check("LIVE single-host relay (tiny pkts)", live, 2e6, 5e5, 2e7, &mut table, &mut rows);

    table.print();

    // Telemetry-enabled relay: the per-operator latency story behind the
    // headline number — e2e quantiles plus the four-stage breakdown.
    let (_, snap) = live_relay(live_n.min(200_000), true);
    let snap = snap.expect("telemetry was enabled");
    println!("\n# live relay latency breakdown (telemetry on)\n");
    print!("{}", snap.render_pretty());

    let doc = object([
        ("bench", JsonValue::String("headline".into())),
        ("quick", JsonValue::Bool(quick)),
        ("claims", JsonValue::Array(rows)),
        (
            "live",
            object([
                ("packets", JsonValue::Number(live_n as f64)),
                ("throughput_msgs_per_s", JsonValue::Number(live)),
            ]),
        ),
        ("telemetry", snap.to_json_value()),
    ]);
    std::fs::write("BENCH_headline.json", doc.to_json()).expect("write BENCH_headline.json");
    println!("\nwrote BENCH_headline.json");

    assert!(all_ok, "one or more headline anchors missed their band");
    println!("headline OK — all anchors within their calibration bands");
}
