//! **Ingestion gateway** — connection scaling on the readiness-driven
//! IO tier (§IV-C acceptance for the epoll reactor).
//!
//! Simulated devices open real TCP connections to one gateway receiver
//! and stream stamped frames into its inbound queue; a sink thread
//! drains the queue and measures ingest latency (sender stamp → sink
//! pop). The interesting curve is *connections vs gateway threads vs
//! sink p99*:
//!
//! * **reactor path** — every connection is an IO task multiplexed onto
//!   `io_threads` event-driven threads plus one reactor thread, so the
//!   gateway's thread count is O(io_threads) no matter how many devices
//!   connect;
//! * **blocking baseline** — one reader thread per accepted connection,
//!   so the thread count is O(connections): the pre-reactor cost this
//!   harness exists to show.
//!
//! Scales are clamped to the process fd budget (`/proc/self/limits`):
//! each device costs two descriptors (client + accepted end) in this
//! single-process harness. Results land in `BENCH_ingestion.json` for
//! CI artifacts; `--quick` caps the sweep at 512 connections for the
//! smoke job.

use neptune_bench::Table;
use neptune_compress::SelectiveCompressor;
use neptune_core::json::{object, JsonValue};
use neptune_core::now_micros;
use neptune_granules::{IoPool, Reactor};
use neptune_net::frame::encode_frame_raw_ext;
use neptune_net::tcp::TcpReceiver;
use neptune_net::watermark::WatermarkConfig;
use neptune_net::NetDriver;
use neptune_stats::descriptive::percentile_of_sorted;
use std::io::Write as _;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// IO threads serving the reactor-path gateway — the whole point is
/// that this number, not the connection count, bounds the thread bill.
const IO_THREADS: usize = 2;
/// Client threads simulating the device fleet (each owns a slice of the
/// connections and round-robins frames across them).
const DEVICE_THREADS: usize = 8;
/// Reading payload per frame, roughly one sensor sample batch.
const PAYLOAD_BYTES: usize = 64;

/// Soft `RLIMIT_NOFILE` from `/proc/self/limits` (fallback 1024).
fn fd_soft_limit() -> u64 {
    std::fs::read_to_string("/proc/self/limits")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Max open files"))
                .and_then(|l| l.split_whitespace().nth(3).and_then(|v| v.parse().ok()))
        })
        .unwrap_or(1024)
}

/// Threads of this process, total and gateway-owned. Gateway threads
/// are the `gw-` pool/reactor threads plus any `neptune-io-` blocking
/// transport threads (per-connection readers on the baseline path).
fn thread_counts() -> (usize, usize) {
    let mut total = 0;
    let mut gateway = 0;
    if let Ok(entries) = std::fs::read_dir("/proc/self/task") {
        for e in entries.flatten() {
            total += 1;
            if let Ok(c) = std::fs::read_to_string(e.path().join("comm")) {
                let c = c.trim();
                if c.starts_with("gw-") || c.starts_with("neptune-io-") {
                    gateway += 1;
                }
            }
        }
    }
    (total, gateway)
}

struct ScaleOutcome {
    json: JsonValue,
    gateway_threads: usize,
    p99_us: f64,
}

/// Run one scale point: `conns` devices each sending `frames_per_conn`
/// stamped frames at the gateway, which drains them on a sink thread.
fn run_scale(reactor_mode: bool, conns: usize, frames_per_conn: usize) -> ScaleOutcome {
    let watermark = WatermarkConfig::new(64 << 20, 1 << 20);
    // The rig outlives the endpoints; the pool must drop before the
    // reactor so retiring tasks can still deregister their sockets.
    let reactor = reactor_mode.then(|| Reactor::new("gw").expect("reactor thread"));
    let io_pool = reactor_mode.then(|| IoPool::new("gw", IO_THREADS));
    let rx = match (&reactor, &io_pool) {
        (Some(r), Some(pool)) => {
            let driver = NetDriver::new(pool.spawner(), r.handle());
            TcpReceiver::bind_reactor("127.0.0.1:0", watermark, &driver).expect("bind reactor")
        }
        _ => TcpReceiver::bind("127.0.0.1:0", watermark).expect("bind blocking"),
    };
    let addr = rx.local_addr();

    // Sink: drain the inbound queue, measuring sender-stamp → pop.
    let expected = (conns * frames_per_conn) as u64;
    let received = Arc::new(AtomicU64::new(0));
    let latencies: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));
    let queue = rx.queue().clone();
    let sink = {
        let received = received.clone();
        let latencies = latencies.clone();
        std::thread::spawn(move || {
            while received.load(Ordering::Relaxed) < expected {
                let Some(frame) = queue.pop_timeout(Duration::from_millis(50)) else {
                    if queue.is_closed() {
                        break;
                    }
                    continue;
                };
                if frame.sent_at_micros > 0 {
                    let lat = now_micros().saturating_sub(frame.sent_at_micros);
                    latencies.lock().unwrap().push(lat as f64);
                }
                received.fetch_add(1, Ordering::Relaxed);
            }
        })
    };

    // Device fleet: connect everything first (so the thread audit sees
    // the full fleet open), then stream on a shared go signal.
    let connected = Arc::new(AtomicU64::new(0));
    let go = Arc::new(AtomicBool::new(false));
    let compressor = SelectiveCompressor::disabled();
    let mut devices = Vec::with_capacity(DEVICE_THREADS);
    let mut first_id = 0usize;
    for t in 0..DEVICE_THREADS {
        let connected = connected.clone();
        let go = go.clone();
        // Spread any remainder across the first threads.
        let share = conns / DEVICE_THREADS + usize::from(t < conns % DEVICE_THREADS);
        let base_id = first_id;
        first_id += share;
        devices.push(std::thread::spawn(move || {
            let mut socks = Vec::with_capacity(share);
            for _ in 0..share {
                let s = TcpStream::connect(addr).expect("device connect");
                s.set_nodelay(true).expect("nodelay");
                socks.push(s);
                connected.fetch_add(1, Ordering::Relaxed);
            }
            while !go.load(Ordering::Acquire) {
                std::thread::sleep(Duration::from_millis(1));
            }
            let mut body = Vec::with_capacity(4 + PAYLOAD_BYTES);
            for round in 0..frames_per_conn {
                for (i, s) in socks.iter_mut().enumerate() {
                    body.clear();
                    body.extend_from_slice(&(PAYLOAD_BYTES as u32).to_le_bytes());
                    body.resize(4 + PAYLOAD_BYTES, 0xA5);
                    let wire = encode_frame_raw_ext(
                        (base_id + i) as u64,
                        round as u64,
                        1,
                        &body,
                        &compressor,
                        now_micros(),
                        None,
                    );
                    s.write_all(&wire).expect("device write");
                }
            }
            // Keep sockets open until the harness finishes measuring.
            socks
        }));
    }

    // Audit threads with the whole fleet connected but idle.
    let connect_deadline = Instant::now() + Duration::from_secs(60);
    while connected.load(Ordering::Relaxed) < conns as u64 {
        assert!(Instant::now() < connect_deadline, "fleet connect timed out");
        std::thread::sleep(Duration::from_millis(5));
    }
    // Accepted ends register asynchronously; wait until the gateway
    // sees them all so per-connection reader threads (blocking path)
    // exist before the audit.
    let accept_deadline = Instant::now() + Duration::from_secs(60);
    while rx.open_connections() < conns {
        assert!(Instant::now() < accept_deadline, "gateway accept timed out");
        std::thread::sleep(Duration::from_millis(5));
    }
    let (process_threads, gateway_threads) = thread_counts();

    let t0 = Instant::now();
    go.store(true, Ordering::Release);
    let drain_deadline = Instant::now() + Duration::from_secs(300);
    while received.load(Ordering::Relaxed) < expected {
        assert!(
            Instant::now() < drain_deadline,
            "sink drained only {}/{expected} frames",
            received.load(Ordering::Relaxed)
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let elapsed = t0.elapsed().as_secs_f64();

    let backlog_peak = rx.accept_backlog_peak();
    let decode_errors = rx.decode_errors();
    let reactor_stats = reactor.as_ref().map(|r| r.stats());
    let mode = if reactor_mode { "reactor" } else { "blocking" };

    // Teardown: fleet first, then receiver, pool, reactor.
    let sockets: Vec<_> = devices.into_iter().map(|d| d.join().expect("device thread")).collect();
    drop(sockets);
    rx.shutdown();
    sink.join().expect("sink thread");
    drop(io_pool);
    drop(reactor);

    let mut lat = latencies.lock().unwrap().clone();
    lat.sort_by(|a, b| a.total_cmp(b));
    let p50 = percentile_of_sorted(&lat, 50.0);
    let p99 = percentile_of_sorted(&lat, 99.0);
    let throughput = expected as f64 / elapsed;
    assert_eq!(decode_errors, 0, "gateway must decode every device frame");

    println!(
        "{mode:8}  conns={conns:5}  gateway_threads={gateway_threads:4}  \
         p50={p50:8.0}µs  p99={p99:8.0}µs  {throughput:9.0} frames/s"
    );
    let json = object([
        ("mode", JsonValue::String(mode.into())),
        ("connections", JsonValue::Number(conns as f64)),
        ("frames", JsonValue::Number(expected as f64)),
        ("gateway_threads", JsonValue::Number(gateway_threads as f64)),
        ("process_threads", JsonValue::Number(process_threads as f64)),
        ("io_threads", JsonValue::Number(if reactor_mode { IO_THREADS as f64 } else { 0.0 })),
        ("p50_us", JsonValue::Number(p50)),
        ("p99_us", JsonValue::Number(p99)),
        ("throughput_fps", JsonValue::Number(throughput)),
        ("accept_backlog_peak", JsonValue::Number(backlog_peak as f64)),
        (
            "reactor_interests",
            JsonValue::Number(reactor_stats.map(|s| s.registered as f64).unwrap_or(0.0)),
        ),
        (
            "reactor_events",
            JsonValue::Number(reactor_stats.map(|s| s.events_dispatched as f64).unwrap_or(0.0)),
        ),
        (
            "reactor_rearms",
            JsonValue::Number(reactor_stats.map(|s| s.rearms as f64).unwrap_or(0.0)),
        ),
    ]);
    ScaleOutcome { json, gateway_threads, p99_us: p99 }
}

fn main() {
    // A device/sink-thread assertion must fail the whole run, not leave
    // main spinning toward a 300 s drain deadline with exit 0.
    neptune_bench::failfast();
    let quick = std::env::args().any(|a| a == "--quick");
    let frames_per_conn = if quick { 20 } else { 25 };
    let sweep: &[usize] = if quick { &[64, 256, 512] } else { &[64, 256, 1024, 4096] };

    // Every device costs two fds here (client end + accepted end); keep
    // a third of the budget free for pool/reactor/listener plumbing.
    let fd_limit = fd_soft_limit();
    let max_conns = ((fd_limit.saturating_sub(128)) / 3).max(16) as usize;
    // `clamped` must catch the partial case too: a limit that merely
    // shrinks the top scale (without collapsing two scales into one)
    // still bends the curve and must be flagged in the artifact.
    let clamped = sweep.iter().any(|&c| c > max_conns);
    let mut scales: Vec<usize> = sweep.iter().map(|&c| c.min(max_conns)).collect();
    scales.dedup();
    if clamped {
        eprintln!(
            "ingestion_gateway: WARNING: fd soft limit {fd_limit} clamps the sweep \
             to {max_conns} connections (raise with `ulimit -n` for the full curve)"
        );
    }

    println!("# ingestion_gateway — connections vs gateway threads vs sink p99\n");
    let baseline = run_scale(false, scales[0], frames_per_conn);
    let reactor: Vec<ScaleOutcome> =
        scales.iter().map(|&c| run_scale(true, c, frames_per_conn)).collect();

    let mut table = Table::new(&["mode", "connections", "gateway threads", "p99 (µs)"]);
    table.row(vec![
        "blocking".into(),
        format!("{}", scales[0]),
        format!("{}", baseline.gateway_threads),
        format!("{:.0}", baseline.p99_us),
    ]);
    for (outcome, conns) in reactor.iter().zip(scales.iter()) {
        table.row(vec![
            "reactor".into(),
            format!("{conns}"),
            format!("{}", outcome.gateway_threads),
            format!("{:.0}", outcome.p99_us),
        ]);
    }
    table.print();

    // Acceptance: the reactor gateway's thread count must not grow with
    // the device count — O(io_threads), flat across the whole sweep.
    let first = reactor.first().expect("at least one scale").gateway_threads;
    for (outcome, conns) in reactor.iter().zip(scales.iter()) {
        assert_eq!(
            outcome.gateway_threads, first,
            "reactor gateway threads must stay flat ({first} at {} conns, {} at {conns})",
            scales[0], outcome.gateway_threads
        );
    }
    // The blocking baseline pays roughly one thread per connection.
    assert!(
        baseline.gateway_threads >= scales[0],
        "blocking baseline should hold one reader thread per connection"
    );
    println!(
        "\nreactor gateway holds {first} threads from {} to {} connections; \
         blocking pays {} threads for {} connections",
        scales[0],
        scales[scales.len() - 1],
        baseline.gateway_threads,
        scales[0]
    );

    let doc = object([
        ("bench", JsonValue::String("ingestion_gateway".into())),
        ("quick", JsonValue::Bool(quick)),
        ("fd_soft_limit", JsonValue::Number(fd_limit as f64)),
        ("clamped", JsonValue::Bool(clamped)),
        ("max_connections", JsonValue::Number(max_conns as f64)),
        ("io_threads", JsonValue::Number(IO_THREADS as f64)),
        ("frames_per_connection", JsonValue::Number(frames_per_conn as f64)),
        ("blocking_baseline", baseline.json),
        ("reactor_scales", JsonValue::Array(reactor.into_iter().map(|o| o.json).collect())),
    ]);
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_ingestion.json");
    std::fs::write(&out, doc.to_json()).expect("write BENCH_ingestion.json");
    println!("wrote {}", out.display());
}
