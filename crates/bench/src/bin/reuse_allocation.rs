//! **§III-B3 (object reuse)** — the paper's GC experiment, translated to
//! Rust's allocator.
//!
//! Paper: *"Object reuse helped reduce the percentage of time spent by the
//! JVM on garbage collection over the time spent on actual processing from
//! 8.63% to 0.79%."*
//!
//! Rust has no GC, but the mechanism the paper measures is allocation
//! pressure. This binary installs a counting global allocator and pushes
//! the same packet stream through the hot deserialize-process-serialize
//! path twice:
//!
//! * **reuse on** — one workhorse packet + reusable codec + recycled
//!   buffers (what `neptune-core` does in production), and
//! * **reuse off** — a fresh packet, fresh codec state, and fresh buffers
//!   per message (the naive path).
//!
//! Reported: allocations and bytes per packet, wall time, and the share of
//! wall time attributable to allocator work (estimated by timing the same
//! loop against a pre-allocated arena baseline).

#[global_allocator]
static ALLOC: neptune_bench::CountingAllocator = neptune_bench::CountingAllocator;

use neptune_bench::{alloc_snapshot, eng, Table};
use neptune_core::{FieldValue, PacketCodec, StreamPacket};
use std::time::Instant;

const PACKETS: u64 = 2_000_000;

fn make_stream() -> Vec<Vec<u8>> {
    // A fixed batch of encoded 50-byte-class sensor packets, reused as the
    // input for both modes (generation cost excluded from measurement).
    let mut codec = PacketCodec::new();
    (0..256u64)
        .map(|i| {
            let mut p = StreamPacket::new();
            p.push_field("seq", FieldValue::U64(i))
                .push_field("ts", FieldValue::Timestamp(1_700_000_000_000_000 + i))
                .push_field("site", FieldValue::Str(format!("sensor-{:03}", i % 8)))
                .push_field("pad", FieldValue::Bytes(vec![(i % 251) as u8; 24]));
            codec.encode(&p).expect("encode")
        })
        .collect()
}

/// The hot path with object reuse: workhorse packet, persistent codec,
/// recycled output buffer.
fn run_with_reuse(stream: &[Vec<u8>]) -> (u64, u64, f64, u64) {
    let mut codec = PacketCodec::new();
    let mut workhorse = StreamPacket::new();
    let mut out = Vec::with_capacity(256);
    let mut checksum = 0u64;
    let (a0, b0) = alloc_snapshot();
    let t0 = Instant::now();
    for i in 0..PACKETS {
        let bytes = &stream[(i % stream.len() as u64) as usize];
        codec.decode_into(bytes, &mut workhorse).expect("decode");
        checksum = checksum
            .wrapping_add(workhorse.get("seq").and_then(|v| v.as_u64()).unwrap_or(0));
        out.clear();
        codec.encode_into(&workhorse, &mut out).expect("encode");
        checksum = checksum.wrapping_add(out.len() as u64);
    }
    let dt = t0.elapsed().as_secs_f64();
    let (a1, b1) = alloc_snapshot();
    (a1 - a0, b1 - b0, dt, checksum)
}

/// The naive path: everything allocated per message.
fn run_without_reuse(stream: &[Vec<u8>]) -> (u64, u64, f64, u64) {
    let mut checksum = 0u64;
    let (a0, b0) = alloc_snapshot();
    let t0 = Instant::now();
    for i in 0..PACKETS {
        let bytes = &stream[(i % stream.len() as u64) as usize];
        let mut codec = PacketCodec::new();
        let packet = codec.decode(bytes).expect("decode");
        checksum =
            checksum.wrapping_add(packet.get("seq").and_then(|v| v.as_u64()).unwrap_or(0));
        let out = codec.encode(&packet).expect("encode");
        checksum = checksum.wrapping_add(out.len() as u64);
    }
    let dt = t0.elapsed().as_secs_f64();
    let (a1, b1) = alloc_snapshot();
    (a1 - a0, b1 - b0, dt, checksum)
}

fn main() {
    println!("# §III-B3 — object reuse vs per-message allocation\n");
    let stream = make_stream();

    // Interleave a warmup of each to stabilize caches.
    let _ = run_with_reuse(&stream[..64.min(stream.len())].to_vec().as_slice());
    let _ = run_without_reuse(&stream[..64.min(stream.len())].to_vec().as_slice());

    let (alloc_reuse, bytes_reuse, t_reuse, c1) = run_with_reuse(&stream);
    let (alloc_naive, bytes_naive, t_naive, c2) = run_without_reuse(&stream);
    assert_eq!(c1, c2, "both paths must compute identical results");

    let mut table = Table::new(&[
        "mode",
        "allocations/packet",
        "bytes/packet",
        "wall time (s)",
        "throughput (pkt/s)",
    ]);
    table.row(vec![
        "object reuse (NEPTUNE)".into(),
        format!("{:.4}", alloc_reuse as f64 / PACKETS as f64),
        format!("{:.2}", bytes_reuse as f64 / PACKETS as f64),
        format!("{t_reuse:.3}"),
        eng(PACKETS as f64 / t_reuse),
    ]);
    table.row(vec![
        "fresh objects per message".into(),
        format!("{:.4}", alloc_naive as f64 / PACKETS as f64),
        format!("{:.2}", bytes_naive as f64 / PACKETS as f64),
        format!("{t_naive:.3}"),
        eng(PACKETS as f64 / t_naive),
    ]);
    table.print();

    // The paper's metric: share of processing time spent on memory
    // management. The reuse path's allocator work is ~0; the naive path's
    // allocator share is estimated as the slowdown vs the reuse path.
    let mm_share_naive = ((t_naive - t_reuse) / t_naive * 100.0).max(0.0);
    let mm_share_reuse = 0.0_f64.max(
        (alloc_reuse as f64 / alloc_naive.max(1) as f64) * mm_share_naive,
    );
    println!();
    println!(
        "memory-management share of processing time: {:.2}% (no reuse) -> {:.2}% (reuse)",
        mm_share_naive, mm_share_reuse
    );
    println!("(paper: 8.63% -> 0.79% of JVM time in GC)");
    println!(
        "allocation reduction: {:.0}x fewer allocations, {:.0}x fewer bytes",
        alloc_naive as f64 / alloc_reuse.max(1) as f64,
        bytes_naive as f64 / bytes_reuse.max(1) as f64
    );
}
