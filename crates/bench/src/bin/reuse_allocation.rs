//! **§III-B3 (object reuse)** — the paper's GC experiment, translated to
//! Rust's allocator.
//!
//! Paper: *"Object reuse helped reduce the percentage of time spent by the
//! JVM on garbage collection over the time spent on actual processing from
//! 8.63% to 0.79%."*
//!
//! Rust has no GC, but the mechanism the paper measures is allocation
//! pressure. This binary installs a counting global allocator and pushes
//! the same packet stream through the hot deserialize-process-serialize
//! path twice:
//!
//! * **reuse on** — one workhorse packet + reusable codec + recycled
//!   buffers (what `neptune-core` does in production), and
//! * **reuse off** — a fresh packet, fresh codec state, and fresh buffers
//!   per message (the naive path).
//!
//! Reported: allocations and bytes per packet, wall time, and the share of
//! wall time attributable to allocator work (estimated by timing the same
//! loop against a pre-allocated arena baseline).

#[global_allocator]
static ALLOC: neptune_bench::CountingAllocator = neptune_bench::CountingAllocator;

use neptune_bench::{alloc_snapshot, eng, Table};
use neptune_compress::SelectiveCompressor;
use neptune_core::{FieldValue, PacketCodec, StreamPacket};
use neptune_net::frame::{decode_frame, encode_frame, read_frame_pooled};
use neptune_net::pool::BytesPool;
use std::time::Instant;

const PACKETS: u64 = 2_000_000;

fn make_stream() -> Vec<Vec<u8>> {
    // A fixed batch of encoded 50-byte-class sensor packets, reused as the
    // input for both modes (generation cost excluded from measurement).
    let mut codec = PacketCodec::new();
    (0..256u64)
        .map(|i| {
            let mut p = StreamPacket::new();
            p.push_field("seq", FieldValue::U64(i))
                .push_field("ts", FieldValue::Timestamp(1_700_000_000_000_000 + i))
                .push_field("site", FieldValue::Str(format!("sensor-{:03}", i % 8)))
                .push_field("pad", FieldValue::Bytes(vec![(i % 251) as u8; 24]));
            codec.encode(&p).expect("encode")
        })
        .collect()
}

/// The hot path with object reuse: workhorse packet, persistent codec,
/// recycled output buffer.
fn run_with_reuse(stream: &[Vec<u8>]) -> (u64, u64, f64, u64) {
    let mut codec = PacketCodec::new();
    let mut workhorse = StreamPacket::new();
    let mut out = Vec::with_capacity(256);
    let mut checksum = 0u64;
    let (a0, b0) = alloc_snapshot();
    let t0 = Instant::now();
    for i in 0..PACKETS {
        let bytes = &stream[(i % stream.len() as u64) as usize];
        codec.decode_into(bytes, &mut workhorse).expect("decode");
        checksum =
            checksum.wrapping_add(workhorse.get("seq").and_then(|v| v.as_u64()).unwrap_or(0));
        out.clear();
        codec.encode_into(&workhorse, &mut out).expect("encode");
        checksum = checksum.wrapping_add(out.len() as u64);
    }
    let dt = t0.elapsed().as_secs_f64();
    let (a1, b1) = alloc_snapshot();
    (a1 - a0, b1 - b0, dt, checksum)
}

/// The naive path: everything allocated per message.
fn run_without_reuse(stream: &[Vec<u8>]) -> (u64, u64, f64, u64) {
    let mut checksum = 0u64;
    let (a0, b0) = alloc_snapshot();
    let t0 = Instant::now();
    for i in 0..PACKETS {
        let bytes = &stream[(i % stream.len() as u64) as usize];
        let mut codec = PacketCodec::new();
        let packet = codec.decode(bytes).expect("decode");
        checksum = checksum.wrapping_add(packet.get("seq").and_then(|v| v.as_u64()).unwrap_or(0));
        let out = codec.encode(&packet).expect("encode");
        checksum = checksum.wrapping_add(out.len() as u64);
    }
    let dt = t0.elapsed().as_secs_f64();
    let (a1, b1) = alloc_snapshot();
    (a1 - a0, b1 - b0, dt, checksum)
}

const RX_FRAMES: usize = 64;
const RX_ROUNDS: usize = 64;

/// One wire stream of `RX_FRAMES` frames, each carrying the whole encoded
/// packet batch.
fn make_wire(stream: &[Vec<u8>]) -> (Vec<u8>, u64) {
    let raw = SelectiveCompressor::disabled();
    let mut wire = Vec::new();
    let mut base = 0u64;
    for _ in 0..RX_FRAMES {
        wire.extend_from_slice(&encode_frame(1, base, stream, &raw));
        base += stream.len() as u64;
    }
    (wire, RX_FRAMES as u64 * stream.len() as u64 * RX_ROUNDS as u64)
}

/// The zero-copy receive path: pooled body buffers, messages as subslices
/// of one refcounted batch, storage recycled after processing.
fn run_receive_pooled(wire: &[u8]) -> (u64, u64, f64, u64) {
    let pool = BytesPool::new(8);
    let mut codec = PacketCodec::new();
    let mut workhorse = StreamPacket::new();
    let mut checksum = 0u64;
    // One warmup pass populates the pool; the measured loop is steady state.
    let mut cur = std::io::Cursor::new(wire);
    for _ in 0..RX_FRAMES {
        let f = read_frame_pooled(&mut cur, &pool).expect("frame");
        pool.recycle(f.messages.into_batch());
    }
    let (a0, b0) = alloc_snapshot();
    let t0 = Instant::now();
    for _ in 0..RX_ROUNDS {
        let mut cur = std::io::Cursor::new(wire);
        for _ in 0..RX_FRAMES {
            let frame = read_frame_pooled(&mut cur, &pool).expect("frame");
            for m in &frame.messages {
                codec.decode_into(m, &mut workhorse).expect("decode");
                checksum = checksum
                    .wrapping_add(workhorse.get("seq").and_then(|v| v.as_u64()).unwrap_or(0));
            }
            pool.recycle(frame.messages.into_batch());
        }
    }
    let dt = t0.elapsed().as_secs_f64();
    let (a1, b1) = alloc_snapshot();
    (a1 - a0, b1 - b0, dt, checksum)
}

/// The legacy receive path: the body is copied out of the read buffer and
/// every message is materialized as its own `Vec`.
fn run_receive_copying(wire: &[u8]) -> (u64, u64, f64, u64) {
    let mut codec = PacketCodec::new();
    let mut workhorse = StreamPacket::new();
    let mut checksum = 0u64;
    let (a0, b0) = alloc_snapshot();
    let t0 = Instant::now();
    for _ in 0..RX_ROUNDS {
        let mut off = 0usize;
        for _ in 0..RX_FRAMES {
            let (frame, consumed) = decode_frame(&wire[off..]).expect("frame");
            off += consumed;
            let owned: Vec<Vec<u8>> = frame.messages.iter().map(|m| m.to_vec()).collect();
            for m in &owned {
                codec.decode_into(m, &mut workhorse).expect("decode");
                checksum = checksum
                    .wrapping_add(workhorse.get("seq").and_then(|v| v.as_u64()).unwrap_or(0));
            }
        }
    }
    let dt = t0.elapsed().as_secs_f64();
    let (a1, b1) = alloc_snapshot();
    (a1 - a0, b1 - b0, dt, checksum)
}

fn main() {
    println!("# §III-B3 — object reuse vs per-message allocation\n");
    let stream = make_stream();

    // Interleave a warmup of each to stabilize caches.
    let _ = run_with_reuse(&stream[..64.min(stream.len())]);
    let _ = run_without_reuse(&stream[..64.min(stream.len())]);

    let (alloc_reuse, bytes_reuse, t_reuse, c1) = run_with_reuse(&stream);
    let (alloc_naive, bytes_naive, t_naive, c2) = run_without_reuse(&stream);
    assert_eq!(c1, c2, "both paths must compute identical results");

    let mut table = Table::new(&[
        "mode",
        "allocations/packet",
        "bytes/packet",
        "wall time (s)",
        "throughput (pkt/s)",
    ]);
    table.row(vec![
        "object reuse (NEPTUNE)".into(),
        format!("{:.4}", alloc_reuse as f64 / PACKETS as f64),
        format!("{:.2}", bytes_reuse as f64 / PACKETS as f64),
        format!("{t_reuse:.3}"),
        eng(PACKETS as f64 / t_reuse),
    ]);
    table.row(vec![
        "fresh objects per message".into(),
        format!("{:.4}", alloc_naive as f64 / PACKETS as f64),
        format!("{:.2}", bytes_naive as f64 / PACKETS as f64),
        format!("{t_naive:.3}"),
        eng(PACKETS as f64 / t_naive),
    ]);
    table.print();

    // The paper's metric: share of processing time spent on memory
    // management. The reuse path's allocator work is ~0; the naive path's
    // allocator share is estimated as the slowdown vs the reuse path.
    let mm_share_naive = ((t_naive - t_reuse) / t_naive * 100.0).max(0.0);
    let mm_share_reuse =
        0.0_f64.max((alloc_reuse as f64 / alloc_naive.max(1) as f64) * mm_share_naive);
    println!();
    println!(
        "memory-management share of processing time: {:.2}% (no reuse) -> {:.2}% (reuse)",
        mm_share_naive, mm_share_reuse
    );
    println!("(paper: 8.63% -> 0.79% of JVM time in GC)");
    println!(
        "allocation reduction: {:.0}x fewer allocations, {:.0}x fewer bytes",
        alloc_naive as f64 / alloc_reuse.max(1) as f64,
        bytes_naive as f64 / bytes_reuse.max(1) as f64
    );

    // ---- Receive path: pooled zero-copy frames vs copy-per-message. ----
    println!("\n# receive path — pooled zero-copy frames vs per-message copies\n");
    let (wire, rx_messages) = make_wire(&stream);
    let (alloc_zc, bytes_zc, t_zc, c3) = run_receive_pooled(&wire);
    let (alloc_cp, bytes_cp, t_cp, c4) = run_receive_copying(&wire);
    assert_eq!(c3, c4, "both receive paths must compute identical results");

    let mut rx = Table::new(&[
        "mode",
        "allocations/message",
        "bytes/message",
        "wall time (s)",
        "throughput (msg/s)",
    ]);
    rx.row(vec![
        "pooled zero-copy (NEPTUNE)".into(),
        format!("{:.4}", alloc_zc as f64 / rx_messages as f64),
        format!("{:.2}", bytes_zc as f64 / rx_messages as f64),
        format!("{t_zc:.3}"),
        eng(rx_messages as f64 / t_zc),
    ]);
    rx.row(vec![
        "copy per message".into(),
        format!("{:.4}", alloc_cp as f64 / rx_messages as f64),
        format!("{:.2}", bytes_cp as f64 / rx_messages as f64),
        format!("{t_cp:.3}"),
        eng(rx_messages as f64 / t_cp),
    ]);
    rx.print();
    println!(
        "\nsteady-state receive allocations/message: {:.4} (target ~0)",
        alloc_zc as f64 / rx_messages as f64
    );
}
