//! **Table I** — Non-voluntary context switches per 5-second window,
//! batched processing vs. individual message processing.
//!
//! Paper numbers: batched 4,085.2 ± 91.8; per-message 89,952.4 ± 1,086.5 —
//! a 22× gap. This harness runs the *real* engine (not the simulator) in
//! both modes on the Fig. 1 relay with 50 B messages, sampling the
//! process-wide `nonvoluntary_ctxt_switches` counter from
//! `/proc/self/status`, the same OS facility the paper used. Absolute
//! numbers depend on the host; the *ratio* is the reproduced result.

use neptune_bench::{read_ctx_switches, Table};
use neptune_core::prelude::*;
use neptune_stats::Summary;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct Pump {
    stop: Arc<AtomicBool>,
    payload: Vec<u8>,
    seq: u64,
}
impl StreamSource for Pump {
    fn next(&mut self, ctx: &mut OperatorContext) -> SourceStatus {
        if self.stop.load(Ordering::Relaxed) {
            return SourceStatus::Exhausted;
        }
        let mut p = StreamPacket::new();
        p.push_field("seq", FieldValue::U64(self.seq))
            .push_field("pad", FieldValue::Bytes(self.payload.clone()));
        self.seq += 1;
        match ctx.emit(&p) {
            Ok(()) => SourceStatus::Emitted(1),
            Err(_) => SourceStatus::Exhausted,
        }
    }
}

struct Relay;
impl StreamProcessor for Relay {
    fn process(&mut self, p: &StreamPacket, ctx: &mut OperatorContext) {
        let _ = ctx.emit(p);
    }
}
struct Sink;
impl StreamProcessor for Sink {
    fn process(&mut self, _p: &StreamPacket, _ctx: &mut OperatorContext) {}
}

/// Run the relay in the given mode for `windows` sampling windows of
/// `window_s` seconds; return per-window non-voluntary switch counts and
/// the packet throughput.
fn measure(batched: bool, windows: usize, window_s: f64) -> (Vec<f64>, f64, f64) {
    let stop = Arc::new(AtomicBool::new(false));
    let s2 = stop.clone();
    let graph = GraphBuilder::new(if batched { "batched" } else { "per-message" })
        .source("src", move || Pump { stop: s2.clone(), payload: vec![0u8; 50], seq: 0 })
        .processor("relay", || Relay)
        .processor("sink", || Sink)
        .link("src", "relay", PartitioningScheme::Shuffle)
        .link("relay", "sink", PartitioningScheme::Shuffle)
        .build()
        .expect("valid graph");
    let config = RuntimeConfig {
        batched_scheduling: batched,
        buffer_bytes: 1 << 20, // the paper's Table-I setup: 1 MB buffers
        ..Default::default()
    };
    let job = LocalRuntime::new(config).submit(graph).expect("deploys");

    // Warm up, then sample.
    std::thread::sleep(Duration::from_millis(300));
    let mut samples = Vec::with_capacity(windows);
    let t0 = std::time::Instant::now();
    let packets0 = job.metrics().operator("sink").packets_in;
    for _ in 0..windows {
        let before = read_ctx_switches().expect("linux /proc");
        std::thread::sleep(Duration::from_secs_f64(window_s));
        let after = read_ctx_switches().expect("linux /proc");
        // The paper's cluster CPUs were saturated, so its counter of
        // choice was *non-voluntary* switches (preemptions). On an idle
        // host threads hand off *voluntarily* (blocking on queue waits)
        // instead of being preempted, so we report the total of both —
        // either way, every per-message handoff is a context switch the
        // batched mode avoids.
        samples.push(
            ((after.nonvoluntary - before.nonvoluntary) + (after.voluntary - before.voluntary))
                as f64,
        );
    }
    let end = job.metrics();
    let packets = end.operator("sink").packets_in - packets0;
    let elapsed = t0.elapsed().as_secs_f64();
    // Scheduler crossings: scheduled executions across all processors.
    let executions: u64 = ["relay", "sink"].iter().map(|op| end.operator(op).executions).sum();
    stop.store(true, Ordering::Relaxed);
    job.stop();
    (samples, packets as f64 / elapsed, executions as f64 / elapsed)
}

fn main() {
    // Shorter windows than the paper's 5 s keep the run quick; counts are
    // scaled to a 5 s equivalent for the table.
    const WINDOWS: usize = 6;
    const WINDOW_S: f64 = 1.0;
    const SCALE: f64 = 5.0 / WINDOW_S;

    println!("# Table I — context switches: batched vs per-message scheduling\n");
    let (batched, batched_rate, batched_exec) = measure(true, WINDOWS, WINDOW_S);
    let (individual, individual_rate, individual_exec) = measure(false, WINDOWS, WINDOW_S);

    let sb = Summary::from_slice(&batched);
    let si = Summary::from_slice(&individual);

    let mut table = Table::new(&[
        "mode",
        "OS ctx switches / 5 s",
        "std dev",
        "scheduler crossings / 5 s",
        "throughput (pkt/s)",
    ]);
    table.row(vec![
        "Batched Processing".into(),
        format!("{:.1}", sb.mean * SCALE),
        format!("{:.1}", sb.std_dev() * SCALE),
        format!("{:.0}", batched_exec * 5.0),
        format!("{:.0}", batched_rate),
    ]);
    table.row(vec![
        "Individual Message Processing".into(),
        format!("{:.1}", si.mean * SCALE),
        format!("{:.1}", si.std_dev() * SCALE),
        format!("{:.0}", individual_exec * 5.0),
        format!("{:.0}", individual_rate),
    ]);
    table.print();

    // On the paper's saturated cluster nodes every scheduler crossing
    // became an observable *non-voluntary* OS context switch (22x gap).
    // On an idle many-core host the worker threads are never preempted,
    // so the OS counters stay flat; the crossing count is the same
    // quantity measured one layer up, and the throughput cost shows the
    // same effect end to end.
    let os_ratio = si.mean / sb.mean.max(1.0);
    let crossing_ratio = individual_exec / batched_exec.max(1.0);
    println!("\nOS-level switch ratio (per-message / batched): {os_ratio:.1}x");
    println!("scheduler-crossing ratio (per-message / batched): {crossing_ratio:.0}x (paper's OS-level gap: 22x)");
    println!(
        "throughput cost of per-message scheduling: {:.1}x slower",
        batched_rate / individual_rate.max(1.0)
    );
    println!("(paper Table I: 4085.2 +- 91.8 vs 89952.4 +- 1086.5 per 5 s)");
    assert!(crossing_ratio > 22.0, "per-message mode must multiply scheduler crossings");
    assert!(batched_rate > 2.0 * individual_rate, "batching must pay off in throughput");
}
