//! **ISSUE 7 smoke** — causal tracing + live scrape endpoint, end to end.
//!
//! Runs a three-stage relay with tracing armed at 1-in-8 packets and the
//! scrape listener on an OS-assigned port, then scrapes its *own*
//! `/metrics`, `/traces`, and `/events` routes over plain HTTP while the
//! job is live — exactly what an operator's Prometheus scraper and trace
//! browser would do. The `/traces` body (Chrome trace-event JSON,
//! Perfetto-loadable) is written to `TRACE_sample.json` so CI can upload
//! it as an artifact.
//!
//! Exits nonzero if any route fails, any payload is malformed, or the
//! trace contains no spans.

use neptune_core::json;
use neptune_core::prelude::*;
use neptune_core::{now_micros, FieldValue, StreamPacket};
use std::io::{Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const PACKETS: u64 = 50_000;

struct Src(u64);
impl StreamSource for Src {
    fn next(&mut self, ctx: &mut OperatorContext) -> SourceStatus {
        if self.0 >= PACKETS {
            return SourceStatus::Exhausted;
        }
        let mut p = StreamPacket::new();
        p.push_field("ts", FieldValue::Timestamp(now_micros()))
            .push_field("n", FieldValue::U64(self.0));
        match ctx.emit(&p) {
            Ok(()) => {
                self.0 += 1;
                SourceStatus::Emitted(1)
            }
            Err(_) => SourceStatus::Exhausted,
        }
    }
}
struct Relay;
impl StreamProcessor for Relay {
    fn process(&mut self, p: &StreamPacket, ctx: &mut OperatorContext) {
        let _ = ctx.emit(p);
    }
}
struct Sink(Arc<AtomicU64>);
impl StreamProcessor for Sink {
    fn process(&mut self, _p: &StreamPacket, _ctx: &mut OperatorContext) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }
}

fn get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut s = std::net::TcpStream::connect(addr).expect("connect to scrape listener");
    write!(s, "GET {path} HTTP/1.1\r\nHost: neptune\r\n\r\n").expect("send request");
    let mut out = String::new();
    s.read_to_string(&mut out).expect("read response");
    let (head, body) = out.split_once("\r\n\r\n").expect("header/body split");
    (head.to_string(), body.to_string())
}

fn main() {
    // Any assertion failure — even off the main thread — must exit 1.
    neptune_bench::failfast();
    let seen = Arc::new(AtomicU64::new(0));
    let s2 = seen.clone();
    let graph = GraphBuilder::new("trace-demo")
        .source("src", || Src(0))
        .processor("relay", || Relay)
        .processor("sink", move || Sink(s2.clone()))
        .link("src", "relay", PartitioningScheme::Shuffle)
        .link("relay", "sink", PartitioningScheme::Shuffle)
        .build()
        .unwrap();
    let config = RuntimeConfig {
        telemetry: TelemetryConfig {
            scrape_addr: Some(
                std::env::var("NEPTUNE_SCRAPE_ADDR").unwrap_or_else(|_| "127.0.0.1:0".into()),
            ),
            ..TelemetryConfig::with_tracing(8)
        },
        ..Default::default()
    };
    let job = LocalRuntime::new(config).submit(graph).unwrap();
    let addr = job.scrape_addr().expect("scrape listener bound");
    println!("scrape endpoint live at http://{addr}/");

    assert!(job.await_sources(Duration::from_secs(120)), "sources never finished");
    assert!(job.settle(Duration::from_secs(60)), "job never settled");
    assert_eq!(seen.load(Ordering::Relaxed), PACKETS, "packet loss in the relay");

    let (head, metrics) = get(addr, "/metrics");
    assert!(head.starts_with("HTTP/1.1 200"), "/metrics: {head}");
    assert!(
        metrics.contains("# TYPE neptune_trace_spans_total counter"),
        "/metrics misses trace counters"
    );
    println!("/metrics: {} bytes, {} families", metrics.len(), metrics.matches("# TYPE").count());

    let (head, trace) = get(addr, "/traces");
    assert!(head.starts_with("HTTP/1.1 200"), "/traces: {head}");
    let doc = json::parse(&trace).expect("/traces is not valid JSON");
    let events =
        doc.get("traceEvents").and_then(|e| e.as_array()).expect("/traces misses traceEvents");
    let spans = events.iter().filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X")).count();
    assert!(spans > 0, "trace contains no spans");
    println!("/traces: {} bytes, {spans} spans across {} events", trace.len(), events.len());

    let (head, recorder) = get(addr, "/events");
    assert!(head.starts_with("HTTP/1.1 200"), "/events: {head}");
    json::parse(&recorder).expect("/events is not valid JSON");
    println!("/events: {} bytes", recorder.len());

    std::fs::write("TRACE_sample.json", &trace).expect("write TRACE_sample.json");
    println!("wrote TRACE_sample.json — load it in Perfetto or chrome://tracing");
    job.stop();
}
