//! # neptune-bench
//!
//! Experiment harness reproducing every table and figure of the NEPTUNE
//! paper's evaluation (§III-B and §IV). One binary per artifact:
//!
//! | binary | paper artifact |
//! |---|---|
//! | `fig2_buffering` | Fig. 2 — throughput / latency / bandwidth vs buffer size × message size |
//! | `table1_context_switches` | Table I — non-voluntary context switches, batched vs per-message (measured live via `/proc`) |
//! | `reuse_allocation` | §III-B3 — allocation/reclamation share with and without object reuse (counting allocator) |
//! | `fig4_backpressure` | Fig. 4 — source throughput tracking a variable-rate stage C |
//! | `compression_study` | §III-B5 — compression on/off/selective × sensor/random datasets, Tukey HSD |
//! | `fig5_job_scaling` | Fig. 5 — cumulative throughput & bandwidth vs concurrent jobs (50 nodes) |
//! | `fig6_cluster_scaling` | Fig. 6 — cumulative throughput & bandwidth vs cluster size (50 jobs) |
//! | `fig7_vs_storm` | Fig. 7 — NEPTUNE vs Storm relay across message sizes |
//! | `fig9_manufacturing` | Fig. 9 — manufacturing job cumulative throughput vs jobs, both engines |
//! | `fig10_resources` | Fig. 10 — per-node CPU/memory with t-tests |
//! | `headline` | §VI — the paper's headline numbers in one pass |
//!
//! Run any of them with
//! `cargo run -p neptune-bench --release --bin <name>`.
//!
//! This library hosts the shared pieces: a table printer, the `/proc`
//! context-switch sampler, and a counting global allocator used by the
//! object-reuse experiment.

use std::sync::atomic::{AtomicU64, Ordering};

/// Render a fixed-width text table (markdown-ish) to stdout.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Append one row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Print the table.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            let mut line = String::from("|");
            for (i, c) in cells.iter().enumerate() {
                line.push_str(&format!(" {:>w$} |", c, w = widths[i]));
            }
            line
        };
        println!("{}", fmt_row(&self.headers));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        println!("{sep}");
        for row in &self.rows {
            println!("{}", fmt_row(row));
        }
    }
}

/// Turn any panic — on *any* thread — into an immediate nonzero exit.
///
/// The implementation lives in `neptune_core` so harness binaries that
/// cannot depend on this crate (`cluster_bench` — `neptune-bench` sits
/// above `neptune-cluster` via the simulator) install the same hook;
/// re-exported here so every existing bench driver keeps its
/// `neptune_bench::failfast()` call site.
pub use neptune_core::failfast;

/// Human-friendly engineering formatting (1.95M, 23.4k, 0.937).
pub fn eng(v: f64) -> String {
    let a = v.abs();
    if a >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if a >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if a >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.2}")
    }
}

/// Context-switch counters from `/proc/self/status` (Linux). The paper's
/// Table I uses exactly this OS facility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtxSwitches {
    /// Voluntary context switches (blocking waits).
    pub voluntary: u64,
    /// Non-voluntary context switches (preemptions) — Table I's metric.
    pub nonvoluntary: u64,
}

/// Read the process-wide context switch counters, summed across every
/// thread (`/proc/self/status` alone only covers the main thread —
/// NEPTUNE's switches happen on worker and IO threads). Returns `None`
/// off Linux or if the proc format changes.
///
/// Threads that exited between samples take their counts with them, which
/// slightly undercounts; the engines keep their pools alive for a job's
/// lifetime, so the steady-state windows this harness samples are stable.
pub fn read_ctx_switches() -> Option<CtxSwitches> {
    let mut total = CtxSwitches { voluntary: 0, nonvoluntary: 0 };
    let tasks = std::fs::read_dir("/proc/self/task").ok()?;
    let mut any = false;
    for task in tasks.flatten() {
        let status = match std::fs::read_to_string(task.path().join("status")) {
            Ok(s) => s,
            Err(_) => continue, // thread exited mid-scan
        };
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("voluntary_ctxt_switches:") {
                total.voluntary += rest.trim().parse::<u64>().ok()?;
                any = true;
            } else if let Some(rest) = line.strip_prefix("nonvoluntary_ctxt_switches:") {
                total.nonvoluntary += rest.trim().parse::<u64>().ok()?;
            }
        }
    }
    any.then_some(total)
}

/// Global allocation counters fed by [`CountingAllocator`].
pub static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
/// Bytes requested across all allocations.
pub static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

/// A counting wrapper around the system allocator. Install in a binary
/// with:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: neptune_bench::CountingAllocator = neptune_bench::CountingAllocator;
/// ```
pub struct CountingAllocator;

// SAFETY: delegates directly to the system allocator; the counters are
// relaxed atomics with no effect on allocation behaviour.
unsafe impl std::alloc::GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { std::alloc::System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
        unsafe { std::alloc::System.dealloc(ptr, layout) }
    }
}

/// Snapshot of the counting allocator's totals.
pub fn alloc_snapshot() -> (u64, u64) {
    (ALLOCATIONS.load(Ordering::Relaxed), ALLOCATED_BYTES.load(Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "12345".into()]);
        t.print(); // smoke: no panic
        assert_eq!(t.rows.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn eng_formatting() {
        assert_eq!(eng(1_950_000.0), "1.95M");
        assert_eq!(eng(23_400.0), "23.4k");
        assert_eq!(eng(0.937), "0.94");
        assert_eq!(eng(2.1e9), "2.10G");
    }

    #[test]
    fn ctx_switches_readable_on_linux() {
        // We run the suite on Linux; the counters must parse and be
        // monotonic.
        let a = read_ctx_switches().expect("linux proc");
        for _ in 0..50 {
            std::thread::yield_now();
        }
        let b = read_ctx_switches().expect("linux proc");
        assert!(b.voluntary >= a.voluntary);
        assert!(b.nonvoluntary >= a.nonvoluntary);
    }
}
