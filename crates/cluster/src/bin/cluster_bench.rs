//! Node-scaling sweep: run the demo pipeline across 1..=N real `neptuned`
//! processes and write `BENCH_cluster.json`.
//!
//! For each node count the bench spawns that many `neptuned` sibling
//! binaries, drives the coordinator in-process, and records wall-clock,
//! sink accounting, and the cross-process frame/trace counters. One
//! node = everything co-located (no cut edges, the in-process baseline);
//! three nodes = one stage per node, both pipeline hops on real TCP.
//!
//! ```text
//! cluster_bench [--max-nodes 3] [--count 50000] [--out BENCH_cluster.json]
//! ```

use neptune_cluster::coordinator::{demo_descriptor, run_cluster, CoordinatorOptions};
use std::io::Write as _;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn free_port() -> u16 {
    // Bind-drop: racy in principle, fine for a bench on loopback.
    std::net::TcpListener::bind("127.0.0.1:0").unwrap().local_addr().unwrap().port()
}

fn neptuned_path() -> std::path::PathBuf {
    let mut p = std::env::current_exe().expect("current_exe");
    p.pop();
    p.push("neptuned");
    p
}

struct Run {
    nodes: usize,
    elapsed_ms: u128,
    uids_per_sec: f64,
    sink_unique: u64,
    sink_duplicates: u64,
    frames_in: u64,
    traced_in: u64,
    dup_frames: u64,
}

fn run_once(nodes: usize, count: u64) -> Result<Run, String> {
    let port = free_port();
    let listen = format!("127.0.0.1:{port}");
    let daemon = neptuned_path();
    let mut children: Vec<Child> = Vec::new();
    for i in 0..nodes {
        let child = Command::new(&daemon)
            .args(["--coordinator", &listen, "--name", &format!("bench-n{i}")])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .map_err(|e| format!("spawn {}: {e}", daemon.display()))?;
        children.push(child);
    }
    let job = format!("bench-{nodes}");
    let descriptor = demo_descriptor(&job, count, 16);
    let mut opts = CoordinatorOptions::new(listen, nodes);
    opts.deadline = Duration::from_secs(120);
    let result = run_cluster(&opts, &descriptor, count);
    for mut child in children {
        let _ = child.kill();
        let _ = child.wait();
    }
    let summary = result.map_err(|e| format!("{nodes} nodes: {e}"))?;
    if summary.sink_unique < count {
        return Err(format!(
            "{nodes} nodes: LOSS — sink saw {}/{count} unique uids",
            summary.sink_unique
        ));
    }
    let elapsed_ms = summary.elapsed.as_millis();
    Ok(Run {
        nodes,
        elapsed_ms,
        uids_per_sec: count as f64 / summary.elapsed.as_secs_f64().max(1e-9),
        sink_unique: summary.sink_unique,
        sink_duplicates: summary.sink_duplicates,
        frames_in: summary.frames_in,
        traced_in: summary.traced_in,
        dup_frames: summary.dup_frames,
    })
}

fn main() {
    // A panic on any worker/sink thread must fail the whole bench run —
    // otherwise CI records a green bench with garbage numbers. Same hook
    // as `neptune_bench::failfast()` (re-exported from core; this binary
    // cannot depend on neptune-bench without a cycle through the
    // simulator).
    neptune_core::failfast();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut max_nodes = 3usize;
    let mut count = 50_000u64;
    let mut out = "BENCH_cluster.json".to_string();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match (flag.as_str(), it.next()) {
            ("--max-nodes", Some(v)) => max_nodes = v.parse().expect("--max-nodes"),
            ("--count", Some(v)) => count = v.parse().expect("--count"),
            ("--out", Some(v)) => out = v.clone(),
            (other, _) => {
                eprintln!("cluster_bench: unknown or valueless flag {other}");
                std::process::exit(2);
            }
        }
    }
    let mut runs = Vec::new();
    for nodes in 1..=max_nodes {
        eprintln!("cluster_bench: {nodes} node(s), {count} uids …");
        match run_once(nodes, count) {
            Ok(run) => {
                eprintln!(
                    "cluster_bench: {nodes} node(s): {} ms, {:.0} uids/s, {} dup deliveries",
                    run.elapsed_ms, run.uids_per_sec, run.sink_duplicates
                );
                runs.push(run);
            }
            Err(e) => {
                eprintln!("cluster_bench: FAILED: {e}");
                std::process::exit(1);
            }
        }
    }
    let entries: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                "    {{\"nodes\": {}, \"elapsed_ms\": {}, \"uids_per_sec\": {:.1}, \
                 \"sink_unique\": {}, \"sink_duplicates\": {}, \"frames_in\": {}, \
                 \"traced_in\": {}, \"dup_frames\": {}}}",
                r.nodes,
                r.elapsed_ms,
                r.uids_per_sec,
                r.sink_unique,
                r.sink_duplicates,
                r.frames_in,
                r.traced_in,
                r.dup_frames
            )
        })
        .collect();
    let body = format!(
        "{{\n  \"bench\": \"cluster_node_scaling\",\n  \"pipeline\": \
         \"uid_source -> window_mean -> uid_sink\",\n  \"uids\": {count},\n  \"runs\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    let mut f = std::fs::File::create(&out).expect("create output");
    f.write_all(body.as_bytes()).expect("write output");
    eprintln!("cluster_bench: wrote {out}");
}
