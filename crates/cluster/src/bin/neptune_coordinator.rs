//! `neptune-coordinator` — drive one job across a fleet of `neptuned`
//! daemons and print the cluster summary as JSON on stdout.
//!
//! ```text
//! neptune-coordinator --listen 127.0.0.1:7700 --nodes 3 \
//!     [--http 127.0.0.1:7780] [--job graph.json --expected 50000] \
//!     [--count 50000] [--deadline-secs 120] [--heartbeat-timeout-ms 2000]
//! ```
//!
//! Without `--job`, the built-in demo pipeline (`uid_source →
//! window_mean → uid_sink`) runs with `--count` uids. Exits nonzero if
//! the sink misses a single uid.

use neptune_cluster::coordinator::{demo_descriptor, run_cluster, CoordinatorOptions};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: neptune-coordinator --listen <addr> --nodes <n> [--http <addr>] \
         [--job <descriptor.json> --expected <uids>] [--count <uids>] \
         [--deadline-secs <s>] [--heartbeat-timeout-ms <ms>]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut listen = None;
    let mut nodes = None;
    let mut http = None;
    let mut job_path: Option<String> = None;
    let mut expected: Option<u64> = None;
    let mut count = 50_000u64;
    let mut deadline = Duration::from_secs(120);
    let mut heartbeat_timeout = Duration::from_millis(2000);
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| match it.next() {
            Some(v) => v.clone(),
            None => {
                eprintln!("neptune-coordinator: {flag} needs a value");
                usage();
            }
        };
        match flag.as_str() {
            "--listen" => listen = Some(value("--listen")),
            "--nodes" => nodes = value("--nodes").parse().ok(),
            "--http" => http = Some(value("--http")),
            "--job" => job_path = Some(value("--job")),
            "--expected" => expected = value("--expected").parse().ok(),
            "--count" => count = value("--count").parse().unwrap_or_else(|_| usage()),
            "--deadline-secs" => {
                deadline = Duration::from_secs(
                    value("--deadline-secs").parse().unwrap_or_else(|_| usage()),
                );
            }
            "--heartbeat-timeout-ms" => {
                heartbeat_timeout = Duration::from_millis(
                    value("--heartbeat-timeout-ms").parse().unwrap_or_else(|_| usage()),
                );
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("neptune-coordinator: unknown flag {other}");
                usage();
            }
        }
    }
    let (Some(listen), Some(nodes)) = (listen, nodes) else { usage() };
    let (descriptor, expected) = match job_path {
        Some(path) => {
            let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                eprintln!("neptune-coordinator: read {path}: {e}");
                std::process::exit(2);
            });
            let Some(expected) = expected else {
                eprintln!("neptune-coordinator: --job needs --expected");
                usage();
            };
            (text, expected)
        }
        None => (demo_descriptor("cluster-demo", count, 16), count),
    };
    let mut opts = CoordinatorOptions::new(listen, nodes);
    opts.http = http;
    opts.deadline = deadline;
    opts.heartbeat_timeout = heartbeat_timeout;
    match run_cluster(&opts, &descriptor, expected) {
        Ok(summary) => {
            println!(
                "{{\"job\": \"{}\", \"nodes\": {}, \"deaths\": {}, \"reassignments\": {}, \
                 \"generation\": {}, \"sink_unique\": {}, \"sink_duplicates\": {}, \
                 \"expected\": {}, \"frames_in\": {}, \"traced_in\": {}, \"dup_frames\": {}, \
                 \"elapsed_ms\": {}}}",
                summary.job,
                summary.nodes,
                summary.deaths,
                summary.reassignments,
                summary.generation,
                summary.sink_unique,
                summary.sink_duplicates,
                expected,
                summary.frames_in,
                summary.traced_in,
                summary.dup_frames,
                summary.elapsed.as_millis()
            );
            if summary.sink_unique < expected {
                eprintln!(
                    "neptune-coordinator: LOSS: sink saw {}/{} unique uids",
                    summary.sink_unique, expected
                );
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("neptune-coordinator: fatal: {e}");
            std::process::exit(1);
        }
    }
}
