//! `neptuned` — the NEPTUNE node daemon.
//!
//! Registers with a coordinator, hosts the operator sub-graph it is
//! assigned, ships cut edges over framed TCP (seq/replay/trace intact),
//! and reports telemetry until told to shut down.
//!
//! ```text
//! neptuned --coordinator 127.0.0.1:7700 --name n0 [--capacity 16]
//!          [--data-addr 127.0.0.1:0] [--report-interval-ms 250]
//! ```

use neptune_cluster::node::{run_node, NodeOptions};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: neptuned --coordinator <addr> --name <name> \
         [--capacity <slots>] [--data-addr <addr>] [--report-interval-ms <ms>]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut coordinator = None;
    let mut name = None;
    let mut capacity = 16usize;
    let mut data_addr = "127.0.0.1:0".to_string();
    let mut report_interval = Duration::from_millis(250);
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| match it.next() {
            Some(v) => v.clone(),
            None => {
                eprintln!("neptuned: {flag} needs a value");
                usage();
            }
        };
        match flag.as_str() {
            "--coordinator" => coordinator = Some(value("--coordinator")),
            "--name" => name = Some(value("--name")),
            "--capacity" => {
                capacity = value("--capacity").parse().unwrap_or_else(|_| usage());
            }
            "--data-addr" => data_addr = value("--data-addr"),
            "--report-interval-ms" => {
                report_interval = Duration::from_millis(
                    value("--report-interval-ms").parse().unwrap_or_else(|_| usage()),
                );
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("neptuned: unknown flag {other}");
                usage();
            }
        }
    }
    let (Some(coordinator), Some(name)) = (coordinator, name) else { usage() };
    let mut opts = NodeOptions::new(coordinator, name);
    opts.capacity = capacity;
    opts.data_addr = data_addr;
    opts.report_interval = report_interval;
    match run_node(opts) {
        Ok(jobs) => {
            eprintln!("neptuned: clean shutdown ({jobs} job(s) hosted)");
        }
        Err(e) => {
            eprintln!("neptuned: fatal: {e}");
            std::process::exit(1);
        }
    }
}
