//! The cluster coordinator: registration barrier, graph partitioning and
//! cutting, control fan-out, failure-driven reassignment, and the
//! cluster-wide telemetry export.
//!
//! One coordinator drives one job to completion:
//!
//! 1. **Barrier** — accept control connections until `nodes` daemons have
//!    registered (each connection opens with the versioned hello, so a
//!    mismatched `neptuned` build is rejected before it can register).
//! 2. **Cut** — [`crate::placement::partition_graph`] assigns every
//!    operator to a node; links whose endpoints land on different nodes
//!    become *cut edges*, realised as an `__egress` processor upstream
//!    and an `__ingress` source downstream (the downstream side keeps the
//!    link's original partitioning — co-location makes it local).
//! 3. **Run** — `Assign` ships each node its sub-descriptor, `Start`
//!    launches them; nodes report sink ledgers, data-plane counters, and
//!    sparse latency histograms, which double as heartbeats.
//! 4. **Reassign** — a node that stops reporting (or drops its control
//!    connection) is declared dead: [`crate::placement::reassign_dead`]
//!    moves only its operators, affected survivors get a superseding
//!    `Assign` (with bumped egress epochs — a restarted producer is a new
//!    link identity), and untouched upstream neighbours get `Rewire`.
//! 5. **Finish** — when the aggregated sink ledger reaches the expected
//!    unique count, `Drain`/`Stop`/`Shutdown` walk the cluster down and
//!    [`run_cluster`] returns a [`ClusterSummary`].
//!
//! While running, an embedded HTTP endpoint serves the *merged* view:
//! `/metrics` (Prometheus text; per-node counters plus per-operator
//! latency quantiles computed from histograms merged across nodes with
//! [`HistogramSnapshot::merge`]), `/nodes` (per-node JSON, including
//! pids — the chaos test reads its kill target here), and `/cluster`
//! (job-level JSON summary).

use std::collections::{BTreeMap, HashMap};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use neptune_core::json::{self, JsonValue};
use neptune_telemetry::HistogramSnapshot;
use parking_lot::Mutex;

use crate::placement::{partition_graph, reassign_dead, NodeSlot, OpDemand, Placement};
use crate::proto::{ControlConn, ControlMsg, ControlSender, ProtoError};

/// Coordinator configuration (CLI flags of the `neptune-coordinator`
/// binary).
#[derive(Debug, Clone)]
pub struct CoordinatorOptions {
    /// Control listen address, e.g. `127.0.0.1:7700`.
    pub listen: String,
    /// HTTP export address (`None` disables the endpoint).
    pub http: Option<String>,
    /// Registration barrier: how many `neptuned` daemons to wait for.
    pub nodes: usize,
    /// A node whose reports stop for this long is declared dead.
    pub heartbeat_timeout: Duration,
    /// Overall job deadline — the coordinator fails instead of hanging.
    pub deadline: Duration,
}

impl CoordinatorOptions {
    /// Defaults for everything but the listen address and node count.
    pub fn new(listen: impl Into<String>, nodes: usize) -> Self {
        CoordinatorOptions {
            listen: listen.into(),
            http: None,
            nodes,
            heartbeat_timeout: Duration::from_secs(2),
            deadline: Duration::from_secs(120),
        }
    }
}

/// What the cluster did, returned when the job completes.
#[derive(Debug, Clone)]
pub struct ClusterSummary {
    /// Job name from the descriptor.
    pub job: String,
    /// Daemons that registered.
    pub nodes: usize,
    /// Nodes declared dead during the run.
    pub deaths: usize,
    /// Reassignment rounds performed.
    pub reassignments: u64,
    /// Final placement generation.
    pub generation: u64,
    /// Distinct uids the sink saw.
    pub sink_unique: u64,
    /// Redundant deliveries the sink collapsed (replay artifacts).
    pub sink_duplicates: u64,
    /// Data frames received across all nodes.
    pub frames_in: u64,
    /// Inbound frames carrying a `FLAG_TRACE` id, summed across nodes.
    pub traced_in: u64,
    /// Duplicate frames dropped by ingress dedup, summed across nodes.
    pub dup_frames: u64,
    /// Wall-clock from `Start` fan-out to sink completion.
    pub elapsed: Duration,
}

/// The canonical distribution demo job: `uid_source → window_mean →
/// uid_sink`, three stages so a three-node cluster hosts one each. Used by
/// the `neptune-coordinator` binary (when no descriptor file is given),
/// the multi-process integration test, and the node-scaling bench.
pub fn demo_descriptor(name: &str, count: u64, window: u64) -> String {
    json::object([
        ("name", JsonValue::String(name.to_string())),
        (
            "operators",
            JsonValue::Array(vec![
                json::object([
                    ("name", JsonValue::String("src".into())),
                    ("kind", JsonValue::String("source".into())),
                    ("factory", JsonValue::String("uid_source".into())),
                    (
                        "params",
                        json::object([
                            ("count", JsonValue::Number(count as f64)),
                            ("batch", JsonValue::Number(32.0)),
                        ]),
                    ),
                ]),
                json::object([
                    ("name", JsonValue::String("win".into())),
                    ("kind", JsonValue::String("processor".into())),
                    ("factory", JsonValue::String("window_mean".into())),
                    ("params", json::object([("window", JsonValue::Number(window as f64))])),
                ]),
                json::object([
                    ("name", JsonValue::String("sink".into())),
                    ("kind", JsonValue::String("processor".into())),
                    ("factory", JsonValue::String("uid_sink".into())),
                    ("params", json::object([("job", JsonValue::String(name.to_string()))])),
                ]),
            ]),
        ),
        (
            "links",
            JsonValue::Array(vec![
                json::object([
                    ("from", JsonValue::String("src".into())),
                    ("to", JsonValue::String("win".into())),
                ]),
                json::object([
                    ("from", JsonValue::String("win".into())),
                    ("to", JsonValue::String("sink".into())),
                ]),
            ]),
        ),
    ])
    .to_json()
}

/// The parsed job: operator entries and links in declared order.
struct JobSpec {
    name: String,
    /// `(name, full JSON entry, parallelism)` in declared order.
    operators: Vec<(String, JsonValue, usize)>,
    /// `(from, to, partitioning)` in declared order; index = edge id.
    links: Vec<(String, String, Option<JsonValue>)>,
    config: Option<JsonValue>,
}

impl JobSpec {
    fn parse(descriptor: &str) -> Result<JobSpec, ProtoError> {
        let doc = json::parse(descriptor)
            .map_err(|e| ProtoError::Malformed(format!("job descriptor: {e}")))?;
        let name = doc
            .get("name")
            .and_then(|v| v.as_str())
            .ok_or_else(|| ProtoError::Malformed("job descriptor: missing name".into()))?
            .to_string();
        let mut operators = Vec::new();
        for op in doc
            .get("operators")
            .and_then(|v| v.as_array())
            .ok_or_else(|| ProtoError::Malformed("job descriptor: missing operators".into()))?
        {
            let op_name = op
                .get("name")
                .and_then(|v| v.as_str())
                .ok_or_else(|| ProtoError::Malformed("operator without a name".into()))?
                .to_string();
            let parallelism =
                op.get("parallelism").and_then(|v| v.as_u64()).unwrap_or(1).max(1) as usize;
            operators.push((op_name, op.clone(), parallelism));
        }
        let mut links = Vec::new();
        for link in doc
            .get("links")
            .and_then(|v| v.as_array())
            .ok_or_else(|| ProtoError::Malformed("job descriptor: missing links".into()))?
        {
            let from = link
                .get("from")
                .and_then(|v| v.as_str())
                .ok_or_else(|| ProtoError::Malformed("link without from".into()))?
                .to_string();
            let to = link
                .get("to")
                .and_then(|v| v.as_str())
                .ok_or_else(|| ProtoError::Malformed("link without to".into()))?
                .to_string();
            links.push((from, to, link.get("partitioning").cloned()));
        }
        Ok(JobSpec { name, operators, links, config: doc.get("config").cloned() })
    }

    fn demands(&self) -> Vec<OpDemand> {
        self.operators.iter().map(|(n, _, p)| OpDemand::new(n.clone(), *p)).collect()
    }
}

/// Per-node view shared with the HTTP endpoint.
struct NodeView {
    name: String,
    data_addr: String,
    pid: u32,
    capacity: usize,
    alive: bool,
    last_seen: Instant,
    last_report: Option<JsonValue>,
}

/// State the event loop mutates and the HTTP endpoint renders.
struct Shared {
    job: String,
    expected: u64,
    nodes: Vec<NodeView>,
    generation: u64,
    reassignments: u64,
    placement: Option<Placement>,
}

impl Shared {
    /// Latest sink ledger across nodes (the sink lives on one node, but
    /// after a reassignment the new host's ledger is a fresh process-local
    /// set — take the max, which is the authoritative surviving ledger).
    fn sink(&self) -> (u64, u64, f64) {
        let mut best = (0u64, 0u64, 0f64);
        for n in &self.nodes {
            let Some(sink) = n.last_report.as_ref().and_then(|r| r.get("sink")) else { continue };
            let unique = sink.get("unique").and_then(|v| v.as_u64()).unwrap_or(0);
            if unique >= best.0 {
                best = (
                    unique,
                    sink.get("duplicates").and_then(|v| v.as_u64()).unwrap_or(0),
                    sink.get("mean_sum").and_then(|v| v.as_f64()).unwrap_or(0.0),
                );
            }
        }
        best
    }

    fn dataplane_total(&self, key: &str) -> u64 {
        self.nodes
            .iter()
            .filter_map(|n| n.last_report.as_ref())
            .filter_map(|r| r.get("dataplane"))
            .filter_map(|d| d.get(key))
            .filter_map(|v| v.as_u64())
            .sum()
    }

    /// Merge every node's sparse per-operator histograms into one
    /// cluster-wide map: `operator → stage → merged snapshot`.
    fn merged_telemetry(&self) -> BTreeMap<String, BTreeMap<String, HistogramSnapshot>> {
        let mut merged: BTreeMap<String, BTreeMap<String, HistogramSnapshot>> = BTreeMap::new();
        for node in &self.nodes {
            let Some(ops) = node
                .last_report
                .as_ref()
                .and_then(|r| r.get("telemetry"))
                .and_then(|t| t.as_object())
            else {
                continue;
            };
            for (op, stages) in ops {
                let Some(stages) = stages.as_object() else { continue };
                for (stage, h) in stages {
                    let snap = decode_sparse(h);
                    merged
                        .entry(op.clone())
                        .or_default()
                        .entry(stage.clone())
                        .and_modify(|m| m.merge(&snap))
                        .or_insert(snap);
                }
            }
        }
        merged
    }
}

/// Rebuild a [`HistogramSnapshot`] from the sparse JSON a node reports.
fn decode_sparse(j: &JsonValue) -> HistogramSnapshot {
    let buckets: Vec<(u32, u64)> = j
        .get("buckets")
        .and_then(|b| b.as_array())
        .map(|pairs| {
            pairs
                .iter()
                .filter_map(|p| p.as_array())
                .filter(|p| p.len() == 2)
                .filter_map(|p| Some((p[0].as_u64()? as u32, p[1].as_u64()?)))
                .collect()
        })
        .unwrap_or_default();
    HistogramSnapshot::from_sparse(
        &buckets,
        j.get("count").and_then(|v| v.as_u64()).unwrap_or(0),
        j.get("sum").and_then(|v| v.as_u64()).unwrap_or(0),
        j.get("max").and_then(|v| v.as_u64()).unwrap_or(0),
    )
}

/// Render the Prometheus text exposition of the merged cluster state.
fn render_prometheus(s: &Shared) -> String {
    let mut out = String::with_capacity(4096);
    let alive = s.nodes.iter().filter(|n| n.alive).count();
    out.push_str("# TYPE neptune_cluster_nodes gauge\n");
    out.push_str(&format!("neptune_cluster_nodes{{state=\"alive\"}} {alive}\n"));
    out.push_str(&format!("neptune_cluster_nodes{{state=\"dead\"}} {}\n", s.nodes.len() - alive));
    out.push_str("# TYPE neptune_cluster_generation counter\n");
    out.push_str(&format!("neptune_cluster_generation {}\n", s.generation));
    out.push_str("# TYPE neptune_cluster_reassignments_total counter\n");
    out.push_str(&format!("neptune_cluster_reassignments_total {}\n", s.reassignments));
    let (unique, duplicates, _) = s.sink();
    out.push_str("# TYPE neptune_cluster_sink_unique_total counter\n");
    out.push_str(&format!("neptune_cluster_sink_unique_total{{job=\"{}\"}} {unique}\n", s.job));
    out.push_str("# TYPE neptune_cluster_sink_duplicates_total counter\n");
    out.push_str(&format!(
        "neptune_cluster_sink_duplicates_total{{job=\"{}\"}} {duplicates}\n",
        s.job
    ));
    out.push_str("# TYPE neptune_cluster_expected_unique gauge\n");
    out.push_str(&format!("neptune_cluster_expected_unique{{job=\"{}\"}} {}\n", s.job, s.expected));
    for key in ["frames_in", "dup_frames", "packets_in", "traced_in", "frames_out", "traced_out"] {
        out.push_str(&format!("# TYPE neptune_cluster_{key}_total counter\n"));
        for n in &s.nodes {
            let v = n
                .last_report
                .as_ref()
                .and_then(|r| r.get("dataplane"))
                .and_then(|d| d.get(key))
                .and_then(|v| v.as_u64())
                .unwrap_or(0);
            out.push_str(&format!("neptune_cluster_{key}_total{{node=\"{}\"}} {v}\n", n.name));
        }
    }
    // Merged latency histograms: one summary-style block per operator and
    // stage, computed after cross-node merge (mergeable snapshots).
    out.push_str("# TYPE neptune_cluster_latency_micros summary\n");
    for (op, stages) in s.merged_telemetry() {
        for (stage, h) in stages {
            if h.count() == 0 {
                continue;
            }
            for (q, v) in [("0.5", h.p50()), ("0.95", h.p95()), ("0.99", h.p99())] {
                out.push_str(&format!(
                    "neptune_cluster_latency_micros{{op=\"{op}\",stage=\"{stage}\",quantile=\"{q}\"}} {v}\n"
                ));
            }
            out.push_str(&format!(
                "neptune_cluster_latency_micros_sum{{op=\"{op}\",stage=\"{stage}\"}} {}\n",
                h.sum()
            ));
            out.push_str(&format!(
                "neptune_cluster_latency_micros_count{{op=\"{op}\",stage=\"{stage}\"}} {}\n",
                h.count()
            ));
        }
    }
    out
}

/// `/nodes`: per-node JSON, pids included (the chaos test's kill target).
fn render_nodes(s: &Shared) -> String {
    let nodes: Vec<JsonValue> = s
        .nodes
        .iter()
        .enumerate()
        .map(|(i, n)| {
            let ops = s
                .placement
                .as_ref()
                .map(|p| {
                    p.ops_on(i).into_iter().map(|o| JsonValue::String(o.to_string())).collect()
                })
                .unwrap_or_default();
            json::object([
                ("index", JsonValue::Number(i as f64)),
                ("name", JsonValue::String(n.name.clone())),
                ("data_addr", JsonValue::String(n.data_addr.clone())),
                ("pid", JsonValue::Number(n.pid as f64)),
                ("capacity", JsonValue::Number(n.capacity as f64)),
                ("alive", JsonValue::Bool(n.alive)),
                ("operators", JsonValue::Array(ops)),
            ])
        })
        .collect();
    json::object([("nodes", JsonValue::Array(nodes))]).to_json()
}

/// `/cluster`: job-level JSON summary.
fn render_cluster(s: &Shared) -> String {
    let (unique, duplicates, mean_sum) = s.sink();
    json::object([
        ("job", JsonValue::String(s.job.clone())),
        ("expected_unique", JsonValue::Number(s.expected as f64)),
        ("sink_unique", JsonValue::Number(unique as f64)),
        ("sink_duplicates", JsonValue::Number(duplicates as f64)),
        ("sink_mean_sum", JsonValue::Number(mean_sum)),
        ("generation", JsonValue::Number(s.generation as f64)),
        ("reassignments", JsonValue::Number(s.reassignments as f64)),
        ("nodes_alive", JsonValue::Number(s.nodes.iter().filter(|n| n.alive).count() as f64)),
        ("frames_in", JsonValue::Number(s.dataplane_total("frames_in") as f64)),
        ("dup_frames", JsonValue::Number(s.dataplane_total("dup_frames") as f64)),
        ("traced_in", JsonValue::Number(s.dataplane_total("traced_in") as f64)),
    ])
    .to_json()
}

/// Serve `/metrics`, `/nodes`, `/cluster` until `stop` flips. Modeled on
/// the in-job scrape endpoint: HTTP/1.1, one request per connection.
fn http_loop(listener: TcpListener, shared: Arc<Mutex<Shared>>, stop: Arc<AtomicBool>) {
    use std::io::{Read, Write};
    listener.set_nonblocking(true).ok();
    while !stop.load(Ordering::Acquire) {
        let (mut stream, _) = match listener.accept() {
            Ok(conn) => conn,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
            Err(_) => return,
        };
        let _ = stream.set_nonblocking(false);
        let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
        let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
        let mut buf = [0u8; 1024];
        let mut len = 0;
        while len < buf.len() {
            match stream.read(&mut buf[len..]) {
                Ok(0) => break,
                Ok(n) => {
                    len += n;
                    if buf[..len].contains(&b'\n') {
                        break;
                    }
                }
                Err(_) => break,
            }
        }
        let line = std::str::from_utf8(&buf[..len]).unwrap_or("").lines().next().unwrap_or("");
        let path = line.split_whitespace().nth(1).unwrap_or("");
        let (status, content_type, body) = {
            let s = shared.lock();
            match path {
                "/metrics" => ("200 OK", "text/plain; version=0.0.4", render_prometheus(&s)),
                "/nodes" => ("200 OK", "application/json", render_nodes(&s)),
                "/cluster" => ("200 OK", "application/json", render_cluster(&s)),
                _ => ("404 Not Found", "text/plain; charset=utf-8", "not found\n".to_string()),
            }
        };
        let header = format!(
            "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        );
        let _ = stream.write_all(header.as_bytes());
        let _ = stream.write_all(body.as_bytes());
        let _ = stream.flush();
    }
}

/// Build node `n`'s sub-descriptor under `placement`, or `None` when the
/// node hosts nothing. Cut edges get `__egress_<e>` appended upstream and
/// `__ingress_<e>` prepended downstream; the downstream link keeps the
/// original partitioning (all the consumer's instances are local).
fn build_sub_descriptor(
    spec: &JobSpec,
    placement: &Placement,
    n: usize,
    node_addrs: &[String],
    epochs: &HashMap<usize, u32>,
) -> Option<String> {
    let mut operators: Vec<JsonValue> = Vec::new();
    for (name, entry, _) in &spec.operators {
        if placement.node_of(name) == Some(n) {
            operators.push(entry.clone());
        }
    }
    let mut links: Vec<JsonValue> = Vec::new();
    let mut boundary: Vec<JsonValue> = Vec::new();
    for (edge, (from, to, partitioning)) in spec.links.iter().enumerate() {
        let u = placement.node_of(from)?;
        let v = placement.node_of(to)?;
        if u != n && v != n {
            continue;
        }
        let epoch = epochs.get(&edge).copied().unwrap_or(0);
        if u == n && v == n {
            let mut link = vec![
                ("from", JsonValue::String(from.clone())),
                ("to", JsonValue::String(to.clone())),
            ];
            if let Some(p) = partitioning {
                link.push(("partitioning", p.clone()));
            }
            links.push(json::object(link));
        } else if u == n {
            // Upstream side of a cut edge: append the egress shipper.
            let egress = format!("__egress_{edge}");
            boundary.push(json::object([
                ("name", JsonValue::String(egress.clone())),
                ("kind", JsonValue::String("processor".into())),
                ("factory", JsonValue::String("__egress".into())),
                (
                    "params",
                    json::object([
                        ("edge", JsonValue::Number(edge as f64)),
                        ("epoch", JsonValue::Number(epoch as f64)),
                        ("addr", JsonValue::String(node_addrs[v].clone())),
                    ]),
                ),
            ]));
            links.push(json::object([
                ("from", JsonValue::String(from.clone())),
                ("to", JsonValue::String(egress)),
            ]));
        } else {
            // Downstream side: prepend the ingress source, original
            // partitioning intact.
            let ingress = format!("__ingress_{edge}");
            boundary.push(json::object([
                ("name", JsonValue::String(ingress.clone())),
                ("kind", JsonValue::String("source".into())),
                ("factory", JsonValue::String("__ingress".into())),
                ("params", json::object([("edge", JsonValue::Number(edge as f64))])),
            ]));
            let mut link =
                vec![("from", JsonValue::String(ingress)), ("to", JsonValue::String(to.clone()))];
            if let Some(p) = partitioning {
                link.push(("partitioning", p.clone()));
            }
            links.push(json::object(link));
        }
    }
    operators.extend(boundary);
    if operators.is_empty() {
        return None;
    }
    let mut doc = vec![
        ("name", JsonValue::String(spec.name.clone())),
        ("operators", JsonValue::Array(operators)),
        ("links", JsonValue::Array(links)),
    ];
    if let Some(config) = &spec.config {
        doc.push(("config", config.clone()));
    }
    Some(json::object(doc).to_json())
}

/// Drive one job across `opts.nodes` daemons to completion.
/// `expected_unique` is the job's ground truth: the distinct uid count the
/// sink must reach (the uid source's `count` parameter).
pub fn run_cluster(
    opts: &CoordinatorOptions,
    descriptor: &str,
    expected_unique: u64,
) -> Result<ClusterSummary, ProtoError> {
    let spec = JobSpec::parse(descriptor)?;
    let demands = spec.demands();
    let listener = TcpListener::bind(&opts.listen)?;
    listener.set_nonblocking(true)?;
    let deadline = Instant::now() + opts.deadline;

    // ---- Registration barrier ------------------------------------------
    let (tx, rx) = mpsc::channel::<(usize, Result<ControlMsg, ProtoError>)>();
    let mut senders: Vec<ControlSender> = Vec::new();
    let mut views: Vec<NodeView> = Vec::new();
    let mut readers = Vec::new();
    while views.len() < opts.nodes {
        if Instant::now() >= deadline {
            return Err(ProtoError::Malformed(format!(
                "barrier: {}/{} nodes registered before the deadline",
                views.len(),
                opts.nodes
            )));
        }
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
            Err(e) => return Err(ProtoError::Io(e)),
        };
        let mut conn = match ControlConn::establish(stream) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("coordinator: rejected connection: {e}");
                continue;
            }
        };
        match conn.recv()? {
            ControlMsg::Register { node, capacity, data_addr, pid } => {
                let index = views.len();
                conn.send(&ControlMsg::Welcome { node_index: index })?;
                eprintln!("coordinator: node {index} '{node}' at {data_addr} (pid {pid})");
                senders.push(conn.sender());
                views.push(NodeView {
                    name: node,
                    data_addr,
                    pid,
                    capacity,
                    alive: true,
                    last_seen: Instant::now(),
                    last_report: None,
                });
                let reader_tx = tx.clone();
                readers.push(std::thread::spawn(move || loop {
                    match conn.recv() {
                        Ok(msg) => {
                            if reader_tx.send((index, Ok(msg))).is_err() {
                                return;
                            }
                        }
                        Err(e) => {
                            let _ = reader_tx.send((index, Err(e)));
                            return;
                        }
                    }
                }));
            }
            other => {
                eprintln!("coordinator: expected Register, got {other:?}");
            }
        }
    }

    // ---- Placement and fan-out -----------------------------------------
    let mut slots: Vec<NodeSlot> =
        views.iter().map(|v| NodeSlot::new(v.name.clone(), v.capacity)).collect();
    let node_addrs: Vec<String> = views.iter().map(|v| v.data_addr.clone()).collect();
    let placement = partition_graph(0, &demands, &slots)
        .map_err(|e| ProtoError::Malformed(format!("placement: {e}")))?;
    let mut epochs: HashMap<usize, u32> = HashMap::new();

    let shared = Arc::new(Mutex::new(Shared {
        job: spec.name.clone(),
        expected: expected_unique,
        nodes: views,
        generation: 0,
        reassignments: 0,
        placement: Some(placement.clone()),
    }));
    let http_stop = Arc::new(AtomicBool::new(false));
    let http_thread = match &opts.http {
        Some(addr) => {
            let l = TcpListener::bind(addr)?;
            eprintln!("coordinator: http export on {}", l.local_addr()?);
            let s = shared.clone();
            let stop = http_stop.clone();
            Some(std::thread::spawn(move || http_loop(l, s, stop)))
        }
        None => None,
    };

    let assign_and_start = |placement: &Placement,
                            generation: u64,
                            targets: &[usize],
                            epochs: &HashMap<usize, u32>,
                            senders: &[ControlSender]|
     -> Vec<usize> {
        let mut failed = Vec::new();
        for &n in targets {
            let Some(sub) = build_sub_descriptor(&spec, placement, n, &node_addrs, epochs) else {
                continue;
            };
            let assign = ControlMsg::Assign { job: spec.name.clone(), generation, descriptor: sub };
            if senders[n].send(&assign).is_err()
                || senders[n].send(&ControlMsg::Start { job: spec.name.clone() }).is_err()
            {
                failed.push(n);
            }
        }
        failed
    };

    let all: Vec<usize> = (0..opts.nodes).collect();
    assign_and_start(&placement, 0, &all, &epochs, &senders);
    let started_at = Instant::now();
    eprintln!(
        "coordinator: job '{}' started over {} node(s): {:?}",
        spec.name,
        opts.nodes,
        placement.iter().collect::<Vec<_>>()
    );

    // ---- Event loop -----------------------------------------------------
    let mut current = placement;
    let mut draining = false;
    let mut drain_sent_at: Option<Instant> = None;
    let result = loop {
        if Instant::now() >= deadline {
            break Err(ProtoError::Malformed(format!(
                "deadline: sink at {}/{} unique after {:?}",
                shared.lock().sink().0,
                expected_unique,
                opts.deadline
            )));
        }
        match rx.recv_timeout(Duration::from_millis(50)) {
            Ok((index, Ok(ControlMsg::Report { seq: _, node: _, body }))) => {
                let mut s = shared.lock();
                s.nodes[index].last_seen = Instant::now();
                s.nodes[index].last_report = Some(body);
            }
            Ok((index, Ok(ControlMsg::Error { message }))) => {
                eprintln!("coordinator: node {index} error: {message}");
            }
            Ok((index, Ok(other))) => {
                eprintln!("coordinator: node {index} sent unexpected {other:?}");
            }
            Ok((index, Err(e))) => {
                let mut s = shared.lock();
                if s.nodes[index].alive {
                    eprintln!("coordinator: node {index} connection lost: {e}");
                    s.nodes[index].last_seen = Instant::now() - opts.heartbeat_timeout * 2;
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                break Err(ProtoError::Malformed("all node connections lost".into()));
            }
        }

        // Death detection + reassignment.
        let dead_now: Vec<usize> = {
            let s = shared.lock();
            s.nodes
                .iter()
                .enumerate()
                .filter(|(_, n)| n.alive && n.last_seen.elapsed() > opts.heartbeat_timeout)
                .map(|(i, _)| i)
                .collect()
        };
        for dead in dead_now {
            let mut s = shared.lock();
            s.nodes[dead].alive = false;
            slots[dead].capacity = 0; // never place on it again
            eprintln!("coordinator: node {dead} '{}' declared dead", s.nodes[dead].name);
            let next = match reassign_dead(0, &demands, &slots, &current, dead) {
                Ok(p) => p,
                Err(e) => {
                    // Unplaceable: surface via the deadline path.
                    eprintln!("coordinator: reassignment impossible: {e}");
                    continue;
                }
            };
            // Nodes whose operator set changed get a superseding Assign
            // (their runtimes restart), so every cut edge they feed gets a
            // fresh epoch — a restarted producer is a new link identity.
            let changed: Vec<usize> = (0..s.nodes.len())
                .filter(|&n| n != dead && current.ops_on(n) != next.ops_on(n))
                .collect();
            for (edge, (from, _, _)) in spec.links.iter().enumerate() {
                if let Some(u) = next.node_of(from) {
                    if changed.contains(&u) {
                        *epochs.entry(edge).or_insert(0) += 1;
                    }
                }
            }
            s.generation += 1;
            s.reassignments += 1;
            let generation = s.generation;
            s.placement = Some(next.clone());
            drop(s);
            assign_and_start(&next, generation, &changed, &epochs, &senders);
            // Surviving upstream neighbours of moved consumers just get
            // their edges repointed — same link identity, replay covers
            // the handover.
            for (edge, (from, to, _)) in spec.links.iter().enumerate() {
                let (Some(u), Some(v)) = (next.node_of(from), next.node_of(to)) else { continue };
                if u == v || changed.contains(&u) {
                    continue;
                }
                let moved_consumer = current.node_of(to) != Some(v);
                if moved_consumer {
                    let _ = senders[u].send(&ControlMsg::Rewire {
                        edge,
                        addr: node_addrs[v].clone(),
                        epoch: epochs.get(&edge).copied().unwrap_or(0),
                    });
                }
            }
            eprintln!(
                "coordinator: generation {} placement: {:?}",
                generation,
                next.iter().collect::<Vec<_>>()
            );
            current = next;
        }

        // Completion: the sink ledger reached the expected unique count.
        let (unique, _, _) = shared.lock().sink();
        if unique >= expected_unique && !draining {
            draining = true;
            drain_sent_at = Some(Instant::now());
            eprintln!("coordinator: sink complete ({unique} unique) — draining");
            let s = shared.lock();
            for (i, sender) in senders.iter().enumerate() {
                if s.nodes[i].alive {
                    let _ = sender.send(&ControlMsg::Drain { job: spec.name.clone() });
                }
            }
        }
        // Give the drain a moment to produce final reports, then stop.
        if let Some(t) = drain_sent_at {
            if t.elapsed() >= Duration::from_millis(400) {
                break Ok(());
            }
        }
    };

    // ---- Teardown -------------------------------------------------------
    {
        let s = shared.lock();
        for (i, sender) in senders.iter().enumerate() {
            if s.nodes[i].alive {
                let _ = sender.send(&ControlMsg::Stop { job: spec.name.clone() });
            }
        }
    }
    // Collect the post-Stop final reports (they carry the authoritative
    // sink ledger) before shutting the daemons down.
    let settle_until = Instant::now() + Duration::from_millis(600);
    while Instant::now() < settle_until {
        match rx.recv_timeout(Duration::from_millis(50)) {
            Ok((index, Ok(ControlMsg::Report { body, .. }))) => {
                let mut s = shared.lock();
                s.nodes[index].last_seen = Instant::now();
                s.nodes[index].last_report = Some(body);
            }
            Ok(_) => {}
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
    {
        let s = shared.lock();
        for (i, sender) in senders.iter().enumerate() {
            if s.nodes[i].alive {
                let _ = sender.send(&ControlMsg::Shutdown);
            }
        }
    }
    for r in readers {
        let _ = r.join();
    }
    http_stop.store(true, Ordering::Release);
    if let Some(t) = http_thread {
        let _ = t.join();
    }

    result?;
    let s = shared.lock();
    let (unique, duplicates, _) = s.sink();
    Ok(ClusterSummary {
        job: s.job.clone(),
        nodes: s.nodes.len(),
        deaths: s.nodes.iter().filter(|n| !n.alive).count(),
        reassignments: s.reassignments,
        generation: s.generation,
        sink_unique: unique,
        sink_duplicates: duplicates,
        frames_in: s.dataplane_total("frames_in"),
        traced_in: s.dataplane_total("traced_in"),
        dup_frames: s.dataplane_total("dup_frames"),
        elapsed: started_at.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const DESCRIPTOR: &str = r#"{
        "name": "t",
        "operators": [
            {"name": "src", "kind": "source", "factory": "uid_source", "params": {"count": 10}},
            {"name": "win", "kind": "processor", "factory": "window_mean"},
            {"name": "sink", "kind": "processor", "factory": "uid_sink", "params": {"job": "t"}}
        ],
        "links": [
            {"from": "src", "to": "win", "partitioning": {"scheme": "shuffle"}},
            {"from": "win", "to": "sink"}
        ]
    }"#;

    #[test]
    fn spec_parses_operators_and_links_in_order() {
        let spec = JobSpec::parse(DESCRIPTOR).unwrap();
        assert_eq!(spec.name, "t");
        let names: Vec<&str> = spec.operators.iter().map(|(n, _, _)| n.as_str()).collect();
        assert_eq!(names, ["src", "win", "sink"]);
        assert_eq!(spec.links.len(), 2);
        assert!(spec.links[0].2.is_some(), "partitioning carried");
        assert!(spec.links[1].2.is_none());
    }

    #[test]
    fn sub_descriptors_cut_edges_with_boundary_operators() {
        let spec = JobSpec::parse(DESCRIPTOR).unwrap();
        let placement = partition_graph(
            0,
            &spec.demands(),
            &[NodeSlot::new("a", 8), NodeSlot::new("b", 8), NodeSlot::new("c", 8)],
        )
        .unwrap();
        let addrs = vec!["1.1.1.1:1".to_string(), "2.2.2.2:2".to_string(), "3.3.3.3:3".to_string()];
        let epochs = HashMap::new();
        // Node 0 hosts src: gets the egress for edge 0 toward node 1.
        let sub0 = build_sub_descriptor(&spec, &placement, 0, &addrs, &epochs).unwrap();
        assert!(sub0.contains("__egress_0"));
        assert!(sub0.contains("2.2.2.2:2"));
        assert!(!sub0.contains("__ingress"));
        // Node 1 hosts win: ingress for edge 0, egress for edge 1.
        let sub1 = build_sub_descriptor(&spec, &placement, 1, &addrs, &epochs).unwrap();
        assert!(sub1.contains("__ingress_0"));
        assert!(sub1.contains("__egress_1"));
        assert!(sub1.contains("3.3.3.3:3"));
        assert!(sub1.contains("shuffle"), "original partitioning rides the ingress link");
        // Node 2 hosts sink: ingress only.
        let sub2 = build_sub_descriptor(&spec, &placement, 2, &addrs, &epochs).unwrap();
        assert!(sub2.contains("__ingress_1"));
        assert!(!sub2.contains("__egress"));
        // The sub-descriptors parse with the distribution registry (no
        // data plane: factories aren't invoked by parsing… they are — so
        // just validate JSON shape here).
        assert!(json::parse(&sub0).is_ok());
        assert!(json::parse(&sub2).is_ok());
    }

    #[test]
    fn colocated_job_needs_no_boundary_operators() {
        let spec = JobSpec::parse(DESCRIPTOR).unwrap();
        let placement = partition_graph(0, &spec.demands(), &[NodeSlot::new("solo", 16)]).unwrap();
        let sub =
            build_sub_descriptor(&spec, &placement, 0, &["9.9.9.9:9".to_string()], &HashMap::new())
                .unwrap();
        assert!(!sub.contains("__egress"));
        assert!(!sub.contains("__ingress"));
        assert!(sub.contains("uid_source"));
    }

    #[test]
    fn prometheus_rendering_merges_sparse_histograms_across_nodes() {
        let report = |count: u64| {
            json::parse(&format!(
                r#"{{"dataplane": {{"frames_in": 5, "traced_in": 2}},
                    "sink": {{"unique": 7, "duplicates": 1, "mean_sum": 3.5}},
                    "telemetry": {{"win": {{"e2e": {{"buckets": [[3, {count}]],
                        "count": {count}, "sum": 100, "max": 40}}}}}}}}"#
            ))
            .unwrap()
        };
        let mk = |name: &str, r: JsonValue| NodeView {
            name: name.into(),
            data_addr: "x".into(),
            pid: 1,
            capacity: 8,
            alive: true,
            last_seen: Instant::now(),
            last_report: Some(r),
        };
        let s = Shared {
            job: "t".into(),
            expected: 10,
            nodes: vec![mk("a", report(4)), mk("b", report(6))],
            generation: 1,
            reassignments: 1,
            placement: None,
        };
        let merged = s.merged_telemetry();
        assert_eq!(merged["win"]["e2e"].count(), 10, "4 + 6 across nodes");
        let text = render_prometheus(&s);
        assert!(text.contains("neptune_cluster_nodes{state=\"alive\"} 2"));
        assert!(text.contains("neptune_cluster_latency_micros_count{op=\"win\",stage=\"e2e\"} 10"));
        assert!(text.contains("neptune_cluster_frames_in_total{node=\"a\"} 5"));
        assert!(text.contains("neptune_cluster_sink_unique_total{job=\"t\"} 7"));
        let nodes_json = render_nodes(&s);
        assert!(nodes_json.contains("\"pid\""));
        let cluster_json = render_cluster(&s);
        assert!(cluster_json.contains("\"traced_in\""));
    }
}
