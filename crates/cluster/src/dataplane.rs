//! The inter-node data plane: coordinator-injected boundary operators
//! that carry a job's cut edges over the real framed TCP stack.
//!
//! When the coordinator partitions a graph, every edge whose endpoints
//! land on different nodes is *cut*: the upstream node gets a
//! coordinator-injected `__egress` processor appended after the producing
//! operator, and the downstream node gets a `__ingress` source feeding
//! the consuming operator through the edge's **original** partitioning
//! scheme (operator co-location keeps all instances of the consumer on
//! one node, so fields partitioning stays a local decision).
//!
//! The wire underneath is the shared link stack, end to end:
//!
//! * egress batches packets with [`PacketCodec`] and sends them through a
//!   [`LinkBuilder`]-assembled reliable link — an every-N
//!   [`TraceTagger`], a [`SupervisedLink`] reliability layer over a
//!   reactor-path [`TcpSender`] connector, and a [`FlushPolicy`] that
//!   owns the batch knobs (message count for the cluster, plus a byte
//!   backstop) so they stay runtime-retunable; frames carry `FLAG_SEQ`,
//!   unacked frames sit in the replay buffer, and the connection opens
//!   with a protocol hello;
//! * ingress is one [`TcpReceiver::bind_manual_ack`] per node with a
//!   [`HandshakeGate`]: a demux pump routes inbound frames to per-edge
//!   queues by the low 32 bits of the link id, classifying and staging
//!   acks through the shared [`ReliableIngress`] (the one dedup +
//!   cumulative-ack implementation), and counts `FLAG_TRACE` ids
//!   crossing the process boundary;
//! * acks are **withheld** until the node is quiescent (local queues
//!   drained, own egress replay buffers empty) in
//!   [`AckMode::Quiescent`] — the upstream replay buffer then covers
//!   everything this node has not finished forwarding, which is what
//!   makes killing a whole node survivable without sink loss.
//!
//! Link ids encode `(epoch << 32) | edge`: the coordinator bumps the
//! epoch when it *re-creates* a producer on a new node after a failure,
//! so the downstream dedup filter sees a fresh identity (a restarted
//! producer restarts its frame sequence at 0; under the old id that
//! would read as a stale duplicate). A plain [`ControlMsg::Rewire`]
//! (consumer moved; producer and its replay buffer survive) keeps the
//! link id and merely repoints the address.
//!
//! [`SupervisedLink`]: neptune_link::SupervisedLink

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use neptune_compress::SelectiveCompressor;
use neptune_core::codec::PacketCodec;
use neptune_core::descriptor::OperatorRegistry;
use neptune_core::json::JsonValue;
use neptune_core::operator::{OperatorContext, SourceStatus, StreamProcessor, StreamSource};
use neptune_core::packet::StreamPacket;
use neptune_granules::{IoPool, Reactor};
pub use neptune_link::AckMode;
use neptune_link::{
    FrameLink, IngressVerdict, Link, LinkBuilder, LinkStatsSnapshot, ReconnectPolicy,
    RecoveryStats, ReliableIngress, ReplayBuffer, TcpFrameLink, TraceTagger,
};
use neptune_net::flush::FlushPolicy;
use neptune_net::frame::{encode_hello_frame, CAPS_ALL, PROTOCOL_VERSION};
use neptune_net::tcp::{HandshakeGate, TcpReceiver, TcpSender};
use neptune_net::transport::TransportError;
use neptune_net::watermark::{WatermarkConfig, WatermarkQueue};
use neptune_net::NetDriver;
use parking_lot::Mutex;

/// Compose a link id from an edge index and its epoch.
pub fn link_id(edge: u32, epoch: u32) -> u64 {
    ((epoch as u64) << 32) | edge as u64
}

/// The edge index a link id routes to (low 32 bits).
pub fn edge_of(link_id: u64) -> u32 {
    link_id as u32
}

/// Counters the node daemon folds into its reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DataPlaneStats {
    /// Data frames admitted fresh.
    pub frames_in: u64,
    /// Frames dropped as duplicates (replay artifacts).
    pub dup_frames: u64,
    /// Packets routed to ingress queues.
    pub packets_in: u64,
    /// Inbound frames that carried a `FLAG_TRACE` id — causal traces
    /// observed crossing the process boundary.
    pub traced_in: u64,
    /// Frames sent by egress links.
    pub frames_out: u64,
    /// Packets batched out.
    pub packets_out: u64,
    /// Outbound frames stamped with a fresh trace id.
    pub traced_out: u64,
    /// Connections refused by the handshake gate.
    pub handshake_rejects: u64,
}

const INGRESS_QUEUE: WatermarkConfig = WatermarkConfig { high: 8 << 20, low: 1 << 20 };
const SENDER_QUEUE_DEPTH: usize = 1024;
/// Byte backstop on egress batches: the cluster batches by message count
/// (the policy's `batch_messages` knob), but a run of jumbo packets
/// flushes early rather than building a multi-megabyte frame.
const EGRESS_BATCH_BYTES: usize = 1 << 20;

// Route queues carry the *encoded* packet bytes: `Vec<u8>` is `Weighted`,
// so the node's ingress backpressure is byte-accurate, and each ingress
// source decodes with its own codec (the codec is stateless per message).
fn ingress_queue() -> Arc<WatermarkQueue<Vec<u8>>> {
    Arc::new(WatermarkQueue::new(INGRESS_QUEUE))
}

/// One egress edge: a builder-assembled reliable link plus its batch
/// state. Batch thresholds live in the link's [`FlushPolicy`]; trace
/// stamping in its every-N [`TraceTagger`]; sequencing, replay, and
/// reconnects in its reliability layer.
pub struct EgressCore {
    link: Arc<Link>,
    state: Mutex<EgressBuf>,
}

struct EgressBuf {
    codec: PacketCodec,
    buf: Vec<u8>,
    count: u32,
    next_msg_seq: u64,
}

fn now_micros() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

impl EgressCore {
    /// Append one packet; flushes when the batch fills (message-count
    /// threshold, with the byte backstop), per the link's flush policy.
    fn push(&self, packet: &StreamPacket) -> Result<(), TransportError> {
        let mut st = self.state.lock();
        let len_at = st.buf.len();
        st.buf.extend_from_slice(&[0u8; 4]);
        let mut body = std::mem::take(&mut st.buf);
        let encode = st.codec.encode_into(packet, &mut body);
        st.buf = body;
        encode.map_err(|e| TransportError::Malformed(e.to_string()))?;
        let msg_len = (st.buf.len() - len_at - 4) as u32;
        st.buf[len_at..len_at + 4].copy_from_slice(&msg_len.to_le_bytes());
        st.count += 1;
        self.link.stats().record_packets(1);
        let policy = self.link.policy();
        let max_msgs = policy.batch_messages();
        if (max_msgs > 0 && st.count as usize >= max_msgs) || st.buf.len() >= policy.batch_bytes() {
            self.flush_locked(&mut st)?;
        }
        Ok(())
    }

    /// Flush any buffered batch (flusher-thread entry).
    pub fn flush(&self) -> Result<(), TransportError> {
        let mut st = self.state.lock();
        self.flush_locked(&mut st)
    }

    fn flush_locked(&self, st: &mut EgressBuf) -> Result<(), TransportError> {
        if st.count == 0 {
            return Ok(());
        }
        let encoded = Bytes::from(std::mem::take(&mut st.buf));
        let count = std::mem::take(&mut st.count);
        let base = st.next_msg_seq;
        st.next_msg_seq += count as u64;
        // The link stack stamps every-N trace ids (ingress on the peer
        // counts these — how FLAG_TRACE propagation across process
        // boundaries is observed in cluster telemetry) and sequences the
        // frame through the replay buffer.
        self.link.send_batch(base, encoded, count, now_micros(), 0).map(|_| ())
    }

    /// The built link stack (reliability, stats, flush knobs).
    pub fn link(&self) -> &Arc<Link> {
        &self.link
    }

    /// True when every sent frame has been acked by the peer.
    pub fn replay_empty(&self) -> bool {
        self.link.reliability().map(|s| s.replay().is_empty()).unwrap_or(true)
            && self.state.lock().count == 0
    }
}

struct IngressRoute {
    queue: Arc<WatermarkQueue<Vec<u8>>>,
}

/// Per-node data-plane endpoint shared by the boundary operators, the
/// demux pump, and the node daemon.
pub struct DataPlane {
    // `io_pool` must drop before `reactor` so retiring sender tasks can
    // still deregister their sockets; fields drop in declaration order.
    io_pool: IoPool,
    reactor: Reactor,
    receiver: TcpReceiver,
    /// Shared sink-side reliability: dedup + cumulative-ack staging.
    ingress: ReliableIngress,
    routes: Mutex<HashMap<u32, IngressRoute>>,
    /// Current downstream address per egress edge (Rewire target).
    edge_addrs: Mutex<HashMap<u32, String>>,
    egress: Mutex<HashMap<u32, Arc<EgressCore>>>,
    ingress_draining: AtomicBool,
    shutdown: AtomicBool,
    stats: Arc<RecoveryStats>,
    packets_in: AtomicU64,
    traced_in: AtomicU64,
    /// Frames whose delivery to a route queue failed (queue closed or
    /// gate held shut) — their acks are withheld so upstream replays.
    undelivered: AtomicU64,
}

impl DataPlane {
    /// Bind the node's data receiver on `addr` (use port 0 to let the OS
    /// pick) and start the demux pump and egress flusher threads.
    pub fn bind(addr: &str, ack_mode: AckMode) -> std::io::Result<Arc<Self>> {
        let receiver = TcpReceiver::bind_manual_ack(
            addr,
            WatermarkConfig::new(32 << 20, 4 << 20),
            Some(HandshakeGate::current()),
        )?;
        let reactor = Reactor::new("neptuned-dp")
            .map_err(|e| std::io::Error::other(format!("reactor: {e}")))?;
        let plane = Arc::new(DataPlane {
            io_pool: IoPool::new("neptuned-dp", 2),
            reactor,
            receiver,
            ingress: ReliableIngress::new(ack_mode),
            routes: Mutex::new(HashMap::new()),
            edge_addrs: Mutex::new(HashMap::new()),
            egress: Mutex::new(HashMap::new()),
            ingress_draining: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            stats: Arc::new(RecoveryStats::new()),
            packets_in: AtomicU64::new(0),
            traced_in: AtomicU64::new(0),
            undelivered: AtomicU64::new(0),
        });
        let pump = plane.clone();
        std::thread::Builder::new()
            .name("neptuned-demux".into())
            .spawn(move || pump.demux_loop())
            .expect("spawn demux pump");
        let flusher = plane.clone();
        std::thread::Builder::new()
            .name("neptuned-flush".into())
            .spawn(move || flusher.flush_loop())
            .expect("spawn egress flusher");
        Ok(plane)
    }

    /// The bound data-plane address (what `Register` advertises).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.receiver.local_addr()
    }

    /// Recovery counters shared with supervised links.
    pub fn recovery_stats(&self) -> &Arc<RecoveryStats> {
        &self.stats
    }

    fn driver(&self) -> NetDriver {
        NetDriver::new(self.io_pool.spawner(), self.reactor.handle())
    }

    /// Inbound frame demux: route data frames to per-edge ingress queues,
    /// classify against the shared dedup, count boundary-crossing traces,
    /// stage acks.
    fn demux_loop(self: &Arc<Self>) {
        let queue = self.receiver.queue();
        while !self.shutdown.load(Ordering::Acquire) {
            let Some(frame) = queue.pop_timeout(Duration::from_millis(5)) else {
                continue;
            };
            if frame.control.is_some() {
                continue;
            }
            let count = frame.messages.len() as u32;
            let skip = match self.ingress.admit(frame.link_id, frame.base_seq, count) {
                IngressVerdict::Deliver { skip } => skip,
                IngressVerdict::Duplicate => {
                    // Re-ack: the sender may have missed the ack.
                    self.stage_ack(frame.link_id);
                    continue;
                }
            };
            if frame.trace.is_some() {
                self.traced_in.fetch_add(1, Ordering::Relaxed);
            }
            let edge = edge_of(frame.link_id);
            let queue = {
                let mut routes = self.routes.lock();
                let route =
                    routes.entry(edge).or_insert_with(|| IngressRoute { queue: ingress_queue() });
                route.queue.clone()
            };
            match self.deliver(&queue, &frame.messages, skip) {
                Ok(()) => self.stage_ack(frame.link_id),
                // Withhold the ack: the upstream replay buffer still holds
                // the frame, so a reopened route (or a restarted node)
                // sees it again instead of losing it.
                Err(TransportError::Closed) => {
                    self.undelivered.fetch_add(1, Ordering::Relaxed);
                    if !self.shutdown.load(Ordering::Acquire) {
                        eprintln!("neptuned: ingress route for edge {edge} closed; frame unacked");
                    }
                }
                Err(e) => {
                    self.undelivered.fetch_add(1, Ordering::Relaxed);
                    eprintln!("neptuned: ingress delivery on edge {edge} failed: {e}");
                }
            }
        }
    }

    /// Push a frame's fresh suffix onto a route queue, mapping the
    /// watermark gate's verdicts onto the shared [`TransportError`] space
    /// — `Closed` (route gone for good) stays distinct from
    /// `Backpressure` (gate shut; the blocking push parks instead).
    fn deliver(
        &self,
        queue: &WatermarkQueue<Vec<u8>>,
        messages: &neptune_net::frame::FrameMessages,
        skip: u32,
    ) -> Result<(), TransportError> {
        for msg in messages.iter().skip(skip as usize) {
            queue.push_blocking(msg.to_vec()).map_err(TransportError::from_push)?;
            self.packets_in.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    fn stage_ack(&self, link: u64) {
        if let Some((link, watermark)) = self.ingress.stage_ack(link) {
            self.receiver.send_ack(link, watermark);
        }
    }

    /// Release withheld acks — call only when the local pipeline is
    /// quiescent (ingress queues empty, job settled, egress replays
    /// empty). Returns the number of links acked.
    pub fn release_acks(&self) -> usize {
        let mut sent = 0;
        for (link, watermark) in self.ingress.release_acks() {
            if self.receiver.send_ack(link, watermark) {
                sent += 1;
            }
        }
        sent
    }

    /// True when every ingress queue is empty and every egress replay
    /// buffer is clear — the data-plane half of the quiescence test.
    pub fn quiescent(&self) -> bool {
        self.routes.lock().values().all(|r| r.queue.is_empty())
            && self.egress.lock().values().all(|e| e.replay_empty())
    }

    /// Periodic egress flush + idle heartbeats, so partial batches drain
    /// and dead peers are detected without data traffic.
    fn flush_loop(self: &Arc<Self>) {
        let mut beat = 0u32;
        while !self.shutdown.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_millis(2));
            beat = beat.wrapping_add(1);
            let cores: Vec<Arc<EgressCore>> = self.egress.lock().values().cloned().collect();
            for core in cores {
                let _ = core.flush();
                // ~every 200 ms: probe idle links so the receiver's
                // manual-ack watermark flows back.
                if beat.is_multiple_of(100) {
                    let _ = core.link().heartbeat();
                }
            }
        }
    }

    /// Point an egress edge at a (new) downstream address.
    pub fn set_edge_addr(&self, edge: u32, addr: String) {
        self.edge_addrs.lock().insert(edge, addr);
    }

    /// Handle [`ControlMsg::Rewire`]: repoint the edge and force the
    /// supervised link to reconnect by failing its current connection on
    /// the next send/heartbeat (the connector re-reads the address).
    pub fn rewire(&self, edge: u32, addr: String) {
        self.set_edge_addr(edge, addr);
        // The reliability layer notices the stale connection on its next
        // send or heartbeat failure and reconnects through the connector,
        // which reads the address table again. Nothing to tear down here:
        // the old socket either errors (peer died) or is simply unused.
    }

    /// Mark ingress sources as draining: they exhaust once their queues
    /// empty instead of idling forever (job teardown path).
    pub fn drain_ingress(&self) {
        self.ingress_draining.store(true, Ordering::Release);
    }

    /// Stop pump/flusher threads and close the inbound queue.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.receiver.queue().close();
    }

    /// Snapshot of the counters for reports.
    pub fn stats(&self) -> DataPlaneStats {
        let (mut frames_out, mut packets_out, mut traced_out) = (0, 0, 0);
        for core in self.egress.lock().values() {
            let s = core.link().stats();
            frames_out += s.flushes();
            packets_out += s.packets();
            traced_out += s.traced();
        }
        DataPlaneStats {
            frames_in: self.ingress.frames_admitted(),
            dup_frames: self.ingress.duplicates_dropped(),
            packets_in: self.packets_in.load(Ordering::Relaxed),
            traced_in: self.traced_in.load(Ordering::Relaxed),
            frames_out,
            packets_out,
            traced_out,
            handshake_rejects: self.receiver.handshake_rejects(),
        }
    }

    /// Per-egress-link stats bundles (counters + live flush knobs), with
    /// each link's ingress-side duplicate drops folded in from the peer
    /// classification this plane performed for that link id.
    pub fn link_stats(&self) -> Vec<LinkStatsSnapshot> {
        self.egress
            .lock()
            .values()
            .map(|core| {
                let mut snap = core.link().stats_snapshot();
                snap.dedup_drops = self.ingress.dedup_drops(snap.link_id);
                snap
            })
            .collect()
    }

    /// Frames whose route delivery failed and whose acks were withheld.
    pub fn undelivered_frames(&self) -> u64 {
        self.undelivered.load(Ordering::Relaxed)
    }

    /// Build (or rebuild) the egress core for `edge` with a fresh epoch —
    /// called from the `__egress` factory on every (re)assignment.
    fn egress_core(
        self: &Arc<Self>,
        edge: u32,
        epoch: u32,
        addr: String,
        batch_max: u32,
        trace_every: u64,
    ) -> Arc<EgressCore> {
        self.set_edge_addr(edge, addr);
        let id = link_id(edge, epoch);
        let plane = self.clone();
        // The ack callback needs the replay buffer, which only exists
        // once the link is built — close over a slot filled right after.
        let replay_slot: Arc<std::sync::OnceLock<Arc<ReplayBuffer>>> =
            Arc::new(std::sync::OnceLock::new());
        let ack_slot = replay_slot.clone();
        let connector = move || {
            let addr = plane
                .edge_addrs
                .lock()
                .get(&edge)
                .cloned()
                .ok_or_else(|| TransportError::Io(format!("no address for edge {edge}")))?;
            let slot = ack_slot.clone();
            let sender = TcpSender::connect_reactor_with_acks(
                addr.as_str(),
                SENDER_QUEUE_DEPTH,
                &plane.driver(),
                move |_link, next_expected| {
                    if let Some(replay) = slot.get() {
                        replay.ack(next_expected);
                    }
                },
            )
            .map_err(|e| TransportError::Io(format!("connect {addr}: {e}")))?;
            // First frame on every data connection: the protocol hello,
            // so the peer's handshake gate admits us.
            sender
                .send(encode_hello_frame(id, PROTOCOL_VERSION, CAPS_ALL))
                .map_err(|e| TransportError::Io(format!("hello to {addr}: {e:?}")))?;
            Ok(Arc::new(TcpFrameLink::new(sender, SelectiveCompressor::disabled()))
                as Arc<dyn FrameLink>)
        };
        let mut policy = ReconnectPolicy::new(id);
        policy.max_attempts = 40; // ride out coordinator reassignment windows
        policy.cap = Duration::from_millis(250);
        let flush = FlushPolicy::new(EGRESS_BATCH_BYTES, None)
            .with_batch_messages(batch_max.max(1) as usize);
        let link = LinkBuilder::new(id)
            .flush_policy(flush)
            .reliable_with(Box::new(connector), policy, 64 << 20, self.stats.clone())
            .tracing(TraceTagger::every_n(trace_every))
            .build();
        let _ = replay_slot
            .set(link.reliability().expect("cluster egress links are reliable").replay().clone());
        let core = Arc::new(EgressCore {
            link,
            state: Mutex::new(EgressBuf {
                codec: PacketCodec::new(),
                buf: Vec::with_capacity(8 << 10),
                count: 0,
                next_msg_seq: 0,
            }),
        });
        self.egress.lock().insert(edge, core.clone());
        core
    }

    fn ingress_route(&self, edge: u32) -> Arc<WatermarkQueue<Vec<u8>>> {
        let mut routes = self.routes.lock();
        routes.entry(edge).or_insert_with(|| IngressRoute { queue: ingress_queue() }).queue.clone()
    }

    /// Register the `__ingress` / `__egress` boundary factories on a
    /// registry (composed with the builtin vocabulary by the node daemon).
    ///
    /// Params: `__ingress` takes `{edge}`; `__egress` takes
    /// `{edge, epoch, addr, batch?, trace_every?}`.
    pub fn register_boundary_ops(self: &Arc<Self>, registry: &mut OperatorRegistry) {
        let plane = self.clone();
        registry.register_source("__ingress", move |params: &JsonValue| {
            let edge = params.get("edge").and_then(|v| v.as_u64()).unwrap_or(0) as u32;
            IngressSource {
                queue: plane.ingress_route(edge),
                codec: PacketCodec::new(),
                edge,
                draining: plane_flag(&plane.ingress_draining),
                shutdown: plane_flag(&plane.shutdown),
            }
        });
        let plane = self.clone();
        registry.register_processor("__egress", move |params: &JsonValue| {
            let edge = params.get("edge").and_then(|v| v.as_u64()).unwrap_or(0) as u32;
            let epoch = params.get("epoch").and_then(|v| v.as_u64()).unwrap_or(0) as u32;
            let addr = params.get("addr").and_then(|v| v.as_str()).unwrap_or_default().to_string();
            let batch = params.get("batch").and_then(|v| v.as_u64()).unwrap_or(64) as u32;
            let trace_every = params.get("trace_every").and_then(|v| v.as_u64()).unwrap_or(64);
            EgressOp { core: plane.egress_core(edge, epoch, addr, batch, trace_every) }
        });
    }
}

// The flags live inside the Arc<DataPlane>; operators hold clones of the
// Arc-backed atomics via small handles to avoid borrowing the plane.
fn plane_flag(flag: &AtomicBool) -> FlagProbe {
    // SAFETY-free sharing: the factories capture Arc<DataPlane>, which
    // outlives every operator instance (the registry holds the Arc). We
    // still copy the current pointer into a probe closure per instance.
    let ptr: *const AtomicBool = flag;
    FlagProbe { ptr }
}

/// Raw-pointer probe into a flag owned by the `Arc<DataPlane>` captured
/// in the operator factory — the factory closure (and thus the plane)
/// outlives every instance it constructs.
struct FlagProbe {
    ptr: *const AtomicBool,
}

// The pointee is an AtomicBool inside an Arc the factory keeps alive.
unsafe impl Send for FlagProbe {}

impl FlagProbe {
    fn get(&self) -> bool {
        unsafe { (*self.ptr).load(Ordering::Acquire) }
    }
}

/// Boundary source: feeds packets demuxed off the wire into the local
/// sub-graph.
struct IngressSource {
    queue: Arc<WatermarkQueue<Vec<u8>>>,
    codec: PacketCodec,
    edge: u32,
    draining: FlagProbe,
    shutdown: FlagProbe,
}

impl IngressSource {
    fn emit_bytes(&mut self, bytes: &[u8], ctx: &mut OperatorContext) -> Result<(), ()> {
        match self.codec.decode(bytes) {
            Ok(packet) => ctx.emit(&packet).map_err(|_| ()),
            Err(e) => {
                eprintln!("neptuned: undecodable packet on edge {}: {e}", self.edge);
                Ok(())
            }
        }
    }
}

impl StreamSource for IngressSource {
    fn next(&mut self, ctx: &mut OperatorContext) -> SourceStatus {
        let mut emitted = 0usize;
        while emitted < 64 {
            match self.queue.pop() {
                Some(bytes) => {
                    if self.emit_bytes(&bytes, ctx).is_err() {
                        return SourceStatus::Exhausted;
                    }
                    emitted += 1;
                }
                None => break,
            }
        }
        if emitted > 0 {
            return SourceStatus::Emitted(emitted);
        }
        if self.shutdown.get() || (self.draining.get() && self.queue.is_empty()) {
            return SourceStatus::Exhausted;
        }
        // Block briefly for the next packet instead of spinning.
        match self.queue.pop_timeout(Duration::from_millis(2)) {
            Some(bytes) => match self.emit_bytes(&bytes, ctx) {
                Ok(()) => SourceStatus::Emitted(1),
                Err(()) => SourceStatus::Exhausted,
            },
            None => SourceStatus::Idle,
        }
    }
}

/// Boundary processor: ships packets to the downstream node.
struct EgressOp {
    core: Arc<EgressCore>,
}

impl StreamProcessor for EgressOp {
    fn process(&mut self, packet: &StreamPacket, _ctx: &mut OperatorContext) {
        if let Err(e) = self.core.push(packet) {
            eprintln!("neptuned: egress send failed terminally: {e:?}");
        }
    }

    fn close(&mut self, _ctx: &mut OperatorContext) {
        let _ = self.core.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neptune_core::packet::FieldValue;

    fn packet(uid: u64) -> StreamPacket {
        let mut p = StreamPacket::new();
        p.push_field("uid", FieldValue::U64(uid));
        p
    }

    #[test]
    fn link_id_packs_edge_and_epoch() {
        assert_eq!(link_id(7, 0), 7);
        assert_eq!(link_id(7, 3), (3u64 << 32) | 7);
        assert_eq!(edge_of(link_id(9, 1234)), 9);
    }

    #[test]
    fn planes_ship_packets_end_to_end_with_quiescent_acks() {
        let up = DataPlane::bind("127.0.0.1:0", AckMode::Quiescent).unwrap();
        let down = DataPlane::bind("127.0.0.1:0", AckMode::Quiescent).unwrap();
        let core = up.egress_core(3, 0, down.local_addr().to_string(), 4, 2);
        for uid in 0..10u64 {
            core.push(&packet(uid)).unwrap();
        }
        core.flush().unwrap();
        let route = down.ingress_route(3);
        let mut codec = PacketCodec::new();
        let mut got = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while got.len() < 10 && std::time::Instant::now() < deadline {
            if let Some(bytes) = route.pop_timeout(Duration::from_millis(10)) {
                let p = codec.decode(&bytes).unwrap();
                got.push(p.get("uid").unwrap().as_u64().unwrap());
            }
        }
        assert_eq!(got, (0..10).collect::<Vec<_>>(), "in order, zero loss");
        // Quiescent mode: acks withheld, replay retains the frames.
        assert!(!core.replay_empty(), "no acks released yet");
        assert!(down.release_acks() > 0);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !core.replay_empty() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(core.replay_empty(), "ack released the replay buffer");
        // Trace sampling crossed the boundary.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while down.stats().traced_in == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let dstats = down.stats();
        let ustats = up.stats();
        assert!(ustats.traced_out >= 1, "egress samples trace ids");
        assert_eq!(dstats.traced_in, ustats.traced_out, "FLAG_TRACE survives the hop");
        assert_eq!(dstats.packets_in, 10);
        assert_eq!(dstats.handshake_rejects, 0, "hello admitted by the gate");
        // The link-stats bundle reflects the flush knobs and traffic.
        let links = up.link_stats();
        assert_eq!(links.len(), 1);
        assert_eq!(links[0].link_id, link_id(3, 0));
        assert_eq!(links[0].packets, 10);
        assert_eq!(links[0].flushes, 3, "4 + 4 + 2 across three frames");
        assert_eq!(links[0].flush.batch_messages, 4);
        up.shutdown();
        down.shutdown();
    }

    #[test]
    fn duplicate_frames_are_dropped_by_the_demux() {
        let down = DataPlane::bind("127.0.0.1:0", AckMode::Immediate).unwrap();
        let up = DataPlane::bind("127.0.0.1:0", AckMode::Immediate).unwrap();
        let core = up.egress_core(1, 0, down.local_addr().to_string(), 64, 0);
        core.push(&packet(1)).unwrap();
        core.flush().unwrap();
        // Replay the identical frame by hand through a second supervised
        // send with the same base_seq: craft via a fresh core on the SAME
        // link identity (epoch unchanged) — its frame seq restarts at 0,
        // and base_seq restarts at 0, so the demux sees a duplicate.
        let core2 = up.egress_core(1, 0, down.local_addr().to_string(), 64, 0);
        core2.push(&packet(1)).unwrap();
        core2.flush().unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while down.stats().dup_frames == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let stats = down.stats();
        assert_eq!(stats.packets_in, 1, "duplicate packet not delivered");
        assert_eq!(stats.dup_frames, 1);
        // A fresh epoch is a fresh identity: same payload now admitted.
        let core3 = up.egress_core(1, 1, down.local_addr().to_string(), 64, 0);
        core3.push(&packet(1)).unwrap();
        core3.flush().unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while down.stats().packets_in < 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(down.stats().packets_in, 2, "epoch bump re-admits the restarted producer");
        up.shutdown();
        down.shutdown();
    }

    #[test]
    fn closed_route_withholds_acks_instead_of_losing_frames() {
        let up = DataPlane::bind("127.0.0.1:0", AckMode::Immediate).unwrap();
        let down = DataPlane::bind("127.0.0.1:0", AckMode::Immediate).unwrap();
        // Close the route's queue before any traffic: deliveries must
        // surface `Closed` (not a swallowed generic error) and the frame
        // stays unacked in the upstream replay buffer.
        down.ingress_route(9).close();
        let core = up.egress_core(9, 0, down.local_addr().to_string(), 1, 0);
        core.push(&packet(7)).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while down.undelivered_frames() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(down.undelivered_frames(), 1, "closed route detected");
        assert_eq!(down.stats().packets_in, 0, "nothing delivered");
        std::thread::sleep(Duration::from_millis(50));
        assert!(!core.replay_empty(), "unacked frame retained for replay");
        up.shutdown();
        down.shutdown();
    }
}
