//! # neptune-cluster — real multi-process job distribution
//!
//! Everything below this crate runs a NEPTUNE job inside one process.
//! This crate is the distribution layer on top: a `neptuned` node daemon
//! that registers with a coordinator and hosts a slice of a job's
//! operator graph, a coordinator that partitions the graph with the same
//! ring placement the cluster *simulator* uses, and a data plane that
//! carries cut edges over the existing framed TCP stack — `FLAG_SEQ`
//! ack/replay and `FLAG_TRACE` causal tracing intact across process
//! boundaries.
//!
//! Module map:
//!
//! * [`placement`] — ring placement + capacity-aware graph partitioning,
//!   shared with `neptune-sim` (the Fig. 6 curves and the real daemon use
//!   one function).
//! * [`proto`] — the versioned control protocol: a capability hello on
//!   every connection, then JSON control messages on NEPT control frames.
//! * [`ops`] — the builtin operator vocabulary distributed jobs are
//!   described in (`uid_source`, `forward`, `window_mean`, `uid_sink`).
//! * [`dataplane`] — per-node data endpoint: `__ingress`/`__egress`
//!   boundary operators over supervised, replayed, deduplicated links
//!   with quiescent acks.
//! * [`node`] — the `neptuned` daemon loop.
//! * [`coordinator`] — registration barrier, graph cutting, failure
//!   detection and reassignment, cluster-wide telemetry aggregation.

pub mod coordinator;
pub mod dataplane;
pub mod node;
pub mod ops;
pub mod placement;
pub mod proto;
