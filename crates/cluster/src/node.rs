//! The `neptuned` node daemon: registers with the coordinator, hosts the
//! sub-graph it is assigned, and reports telemetry until told to stop.
//!
//! Lifecycle (the state machine documented in DESIGN.md §5i):
//!
//! ```text
//! Connecting → Registered → Assigned → Running → Draining → Stopped
//!                  ▲                      │
//!                  └──── Assign(gen+1) ◄──┘   (reassignment restart)
//! ```
//!
//! The daemon is deliberately single-threaded around one [`ControlConn`]:
//! control messages are handled in arrival order, and the read timeout
//! doubles as the tick for periodic work (telemetry reports, quiescent
//! ack release). Reports are the daemon's heartbeats — the coordinator's
//! failure detector feeds on their arrival times, so a wedged daemon and
//! a dead one look the same upstream, which is exactly right.
//!
//! **Quiescent acks:** the data plane withholds transport acks until the
//! local pipeline is provably done with the data — ingress queues empty,
//! the runtime settled, egress replay buffers drained. Until then every
//! inbound frame is still covered by some upstream replay buffer, so a
//! `kill -9` of this whole process loses nothing end-to-end.

use std::time::Duration;

use neptune_core::descriptor::{parse_descriptor, OperatorRegistry};
use neptune_core::json::{self, JsonValue};
use neptune_core::runtime::{JobHandle, LocalRuntime};
use neptune_telemetry::HistogramSnapshot;

use crate::dataplane::{AckMode, DataPlane};
use crate::ops;
use crate::proto::{is_timeout, ControlConn, ControlMsg, ProtoError};

/// Daemon configuration (CLI flags of the `neptuned` binary).
#[derive(Debug, Clone)]
pub struct NodeOptions {
    /// Coordinator control address, e.g. `127.0.0.1:7700`.
    pub coordinator: String,
    /// This node's registered identity.
    pub name: String,
    /// Capacity in operator-instance slots.
    pub capacity: usize,
    /// Data-plane bind address (port 0 lets the OS pick).
    pub data_addr: String,
    /// Unsolicited report (= heartbeat) cadence.
    pub report_interval: Duration,
}

impl NodeOptions {
    /// Defaults for everything but the coordinator address and name.
    pub fn new(coordinator: impl Into<String>, name: impl Into<String>) -> Self {
        NodeOptions {
            coordinator: coordinator.into(),
            name: name.into(),
            capacity: 16,
            data_addr: "127.0.0.1:0".to_string(),
            report_interval: Duration::from_millis(250),
        }
    }
}

impl NodeOptions {
    fn coordinator_addr(&self) -> &str {
        &self.coordinator
    }
}

struct PendingJob {
    job: String,
    generation: u64,
    descriptor: String,
}

struct RunningJob {
    job: String,
    generation: u64,
    handle: JobHandle,
}

/// One `neptuned` process: runs until the coordinator says `Shutdown` or
/// the control connection drops. Returns the number of jobs it hosted.
pub fn run_node(opts: NodeOptions) -> Result<u64, ProtoError> {
    let plane = DataPlane::bind(&opts.data_addr, AckMode::Quiescent).map_err(ProtoError::Io)?;
    let mut registry = ops::builtin_registry();
    plane.register_boundary_ops(&mut registry);

    let conn = ControlConn::connect(opts.coordinator_addr(), Duration::from_secs(10))?;
    conn.send(&ControlMsg::Register {
        node: opts.name.clone(),
        capacity: opts.capacity,
        data_addr: plane.local_addr().to_string(),
        pid: std::process::id(),
    })?;
    let mut conn = conn;
    let node_index = match conn.recv()? {
        ControlMsg::Welcome { node_index } => node_index,
        ControlMsg::Error { message } => {
            return Err(ProtoError::Malformed(format!("registration rejected: {message}")))
        }
        other => {
            return Err(ProtoError::Malformed(format!("expected Welcome, got {other:?}")));
        }
    };
    eprintln!(
        "neptuned[{}]: registered as node {} (data plane {})",
        opts.name,
        node_index,
        plane.local_addr()
    );

    conn.set_read_timeout(Some(Duration::from_millis(50)))?;
    let mut pending: Option<PendingJob> = None;
    let mut running: Option<RunningJob> = None;
    // The most recent job this node hosted: its process-global sink
    // ledger outlives the runtime, so post-Stop reports still carry the
    // authoritative delivery accounting.
    let mut last_job: Option<String> = None;
    let mut seq = 0u64;
    let mut jobs_hosted = 0u64;
    let mut last_report = std::time::Instant::now();

    loop {
        match conn.recv() {
            Ok(msg) => match msg {
                ControlMsg::Assign { job, generation, descriptor } => {
                    // A re-Assign supersedes whatever this node runs: stop
                    // the local runtime (windowed operator state restarts;
                    // the process-global sink ledger and the transport
                    // replay buffers both survive — at-least-once underneath,
                    // exactly-once at the sink's uid set).
                    if let Some(run) = running.take() {
                        eprintln!(
                            "neptuned[{}]: assign gen {} supersedes gen {}",
                            opts.name, generation, run.generation
                        );
                        run.handle.stop();
                    }
                    last_job = Some(job.clone());
                    pending = Some(PendingJob { job, generation, descriptor });
                    conn.send(&report(
                        &opts.name, &mut seq, &plane, &pending, &running, &last_job,
                    ))?;
                }
                ControlMsg::Start { job } => {
                    let Some(p) = pending.take() else {
                        conn.send(&ControlMsg::Error {
                            message: format!("start {job}: nothing assigned"),
                        })?;
                        continue;
                    };
                    match parse_and_submit(&p, &registry) {
                        Ok(handle) => {
                            jobs_hosted += 1;
                            running =
                                Some(RunningJob { job: p.job, generation: p.generation, handle });
                        }
                        Err(message) => {
                            conn.send(&ControlMsg::Error { message })?;
                        }
                    }
                }
                ControlMsg::Ping { seq: ping_seq } => {
                    seq = seq.max(ping_seq);
                    conn.send(&report(
                        &opts.name, &mut seq, &plane, &pending, &running, &last_job,
                    ))?;
                }
                ControlMsg::Rewire { edge, addr, epoch: _ } => {
                    plane.rewire(edge as u32, addr);
                }
                ControlMsg::Drain { job: _ } => {
                    plane.drain_ingress();
                    if let Some(run) = &running {
                        run.handle.await_sources(Duration::from_secs(5));
                        run.handle.settle(Duration::from_secs(5));
                    }
                    plane.release_acks();
                    conn.send(&report(
                        &opts.name, &mut seq, &plane, &pending, &running, &last_job,
                    ))?;
                }
                ControlMsg::Stop { job: _ } => {
                    if let Some(run) = running.take() {
                        plane.drain_ingress();
                        run.handle.await_sources(Duration::from_secs(10));
                        run.handle.settle(Duration::from_secs(10));
                        plane.release_acks();
                        run.handle.stop();
                    }
                    conn.send(&report(
                        &opts.name, &mut seq, &plane, &pending, &running, &last_job,
                    ))?;
                }
                ControlMsg::Shutdown => {
                    if let Some(run) = running.take() {
                        run.handle.stop();
                    }
                    plane.shutdown();
                    eprintln!("neptuned[{}]: shutdown after {jobs_hosted} job(s)", opts.name);
                    return Ok(jobs_hosted);
                }
                other => {
                    conn.send(&ControlMsg::Error {
                        message: format!("unexpected control message: {other:?}"),
                    })?;
                }
            },
            Err(e) if is_timeout(&e) => {
                // Tick: release acks once the pipeline is quiescent, and
                // heartbeat the coordinator with a fresh report.
                if let Some(run) = &running {
                    if plane.quiescent() && run.handle.settle(Duration::from_millis(2)) {
                        plane.release_acks();
                    }
                }
                if last_report.elapsed() >= opts.report_interval {
                    last_report = std::time::Instant::now();
                    conn.send(&report(
                        &opts.name, &mut seq, &plane, &pending, &running, &last_job,
                    ))?;
                }
            }
            Err(e) => {
                if let Some(run) = running.take() {
                    run.handle.stop();
                }
                plane.shutdown();
                return Err(e);
            }
        }
    }
}

fn parse_and_submit(p: &PendingJob, registry: &OperatorRegistry) -> Result<JobHandle, String> {
    let (graph, config) = parse_descriptor(&p.descriptor, registry)
        .map_err(|e| format!("assign {}: bad descriptor: {e}", p.job))?;
    LocalRuntime::new(config)
        .submit(graph)
        .map_err(|e| format!("start {}: submit failed: {e}", p.job))
}

fn sparse_histogram(h: &HistogramSnapshot) -> JsonValue {
    let buckets = h
        .sparse_counts()
        .into_iter()
        .map(|(i, c)| {
            JsonValue::Array(vec![JsonValue::Number(i as f64), JsonValue::Number(c as f64)])
        })
        .collect();
    json::object([
        ("buckets", JsonValue::Array(buckets)),
        ("count", JsonValue::Number(h.count() as f64)),
        ("sum", JsonValue::Number(h.sum() as f64)),
        ("max", JsonValue::Number(h.max() as f64)),
    ])
}

/// Build the node's report: job status, sink ledger, data-plane counters,
/// and per-operator sparse latency histograms the coordinator merges into
/// the cluster-wide export.
fn report(
    name: &str,
    seq: &mut u64,
    plane: &DataPlane,
    pending: &Option<PendingJob>,
    running: &Option<RunningJob>,
    last_job: &Option<String>,
) -> ControlMsg {
    *seq += 1;
    let mut body = std::collections::BTreeMap::new();
    body.insert("data_addr".to_string(), JsonValue::String(plane.local_addr().to_string()));
    if let Some(p) = pending {
        body.insert("pending".to_string(), JsonValue::String(p.job.clone()));
        body.insert("pending_generation".to_string(), JsonValue::Number(p.generation as f64));
    }
    let stats = plane.stats();
    body.insert(
        "dataplane".to_string(),
        json::object([
            ("frames_in", JsonValue::Number(stats.frames_in as f64)),
            ("dup_frames", JsonValue::Number(stats.dup_frames as f64)),
            ("packets_in", JsonValue::Number(stats.packets_in as f64)),
            ("traced_in", JsonValue::Number(stats.traced_in as f64)),
            ("frames_out", JsonValue::Number(stats.frames_out as f64)),
            ("packets_out", JsonValue::Number(stats.packets_out as f64)),
            ("traced_out", JsonValue::Number(stats.traced_out as f64)),
            ("handshake_rejects", JsonValue::Number(stats.handshake_rejects as f64)),
        ]),
    );
    if let Some(run) = running {
        body.insert("job".to_string(), JsonValue::String(run.job.clone()));
        body.insert("generation".to_string(), JsonValue::Number(run.generation as f64));
        body.insert("running".to_string(), JsonValue::Bool(true));
        body.insert("sources_done".to_string(), JsonValue::Bool(run.handle.active_sources() == 0));
        body.insert("quiescent".to_string(), JsonValue::Bool(plane.quiescent()));
        let metrics = run.handle.metrics();
        let packets_in: u64 = metrics.operators.values().map(|m| m.packets_in).sum();
        let packets_out: u64 = metrics.operators.values().map(|m| m.packets_out).sum();
        let panics: u64 = metrics.operators.values().map(|m| m.panics).sum();
        body.insert(
            "metrics".to_string(),
            json::object([
                ("packets_in", JsonValue::Number(packets_in as f64)),
                ("packets_out", JsonValue::Number(packets_out as f64)),
                ("panics", JsonValue::Number(panics as f64)),
            ]),
        );
        if let Some(telemetry) = run.handle.telemetry() {
            let mut operators = std::collections::BTreeMap::new();
            for (op, snap) in &telemetry.operators {
                let mut stages = std::collections::BTreeMap::new();
                stages.insert("e2e".to_string(), sparse_histogram(&snap.e2e));
                for (stage, histogram) in snap.stages() {
                    stages.insert(stage.to_string(), sparse_histogram(histogram));
                }
                operators.insert(op.clone(), JsonValue::Object(stages));
            }
            body.insert("telemetry".to_string(), JsonValue::Object(operators));
        }
    } else {
        body.insert("running".to_string(), JsonValue::Bool(false));
    }
    // The sink ledger is process-global and outlives the runtime: report
    // it for the running job, or for the last job after Stop, so final
    // reports still carry the authoritative delivery accounting.
    let sink_job = running.as_ref().map(|r| r.job.as_str()).or(last_job.as_deref());
    if let Some(sink) = sink_job.and_then(ops::sink_snapshot) {
        body.insert(
            "sink".to_string(),
            json::object([
                ("unique", JsonValue::Number(sink.unique as f64)),
                ("duplicates", JsonValue::Number(sink.duplicates as f64)),
                ("mean_sum", JsonValue::Number(sink.mean_sum)),
            ]),
        );
    }
    ControlMsg::Report { node: name.to_string(), seq: *seq, body: JsonValue::Object(body) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_default_to_loopback_and_modest_capacity() {
        let o = NodeOptions::new("127.0.0.1:7700", "n0");
        assert_eq!(o.capacity, 16);
        assert_eq!(o.data_addr, "127.0.0.1:0");
        assert_eq!(o.coordinator_addr(), "127.0.0.1:7700");
    }

    #[test]
    fn sparse_histograms_survive_the_json_hop() {
        use neptune_telemetry::LatencyHistogram;
        let h = LatencyHistogram::new();
        for v in [10u64, 100, 1000, 1000] {
            h.record(v);
        }
        let snap = h.snapshot();
        let j = sparse_histogram(&snap);
        // Decode the way the coordinator does.
        let buckets: Vec<(u32, u64)> = j
            .get("buckets")
            .and_then(|b| b.as_array())
            .unwrap()
            .iter()
            .map(|pair| {
                let p = pair.as_array().unwrap();
                (p[0].as_u64().unwrap() as u32, p[1].as_u64().unwrap())
            })
            .collect();
        let rebuilt = HistogramSnapshot::from_sparse(
            &buckets,
            j.get("count").and_then(|v| v.as_u64()).unwrap(),
            j.get("sum").and_then(|v| v.as_u64()).unwrap(),
            j.get("max").and_then(|v| v.as_u64()).unwrap(),
        );
        assert_eq!(rebuilt.count(), 4);
        assert_eq!(rebuilt.sum(), snap.sum());
        assert_eq!(rebuilt.max(), 1000);
        assert_eq!(rebuilt.sparse_counts(), snap.sparse_counts());
    }
}
