//! Builtin operators for distributed jobs.
//!
//! Cluster jobs are shipped as JSON descriptors, so every operator a
//! `neptuned` node can host must be constructible by factory name. This
//! module provides the distribution test/bench vocabulary:
//!
//! * `uid_source` — emits packets tagged with unique, dense `uid`s, the
//!   ground truth for loss accounting.
//! * `forward` — a stateless relay stage.
//! * `window_mean` — a sliding-window mean over the packet value,
//!   attached to each packet (windowed state that must survive on a
//!   node, without collapsing the `uid`s the sink deduplicates on).
//! * `uid_sink` — records distinct `uid`s in a process-global registry
//!   the node daemon reads when building telemetry reports. Exactly-once
//!   delivery at the sink is *observed* here: the transport below is
//!   at-least-once (replay on reconnect, source restart on node death),
//!   and the sink's uid set collapses duplicates while exposing their
//!   count.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::{Arc, OnceLock};

use neptune_core::descriptor::OperatorRegistry;
use neptune_core::json::JsonValue;
use neptune_core::operator::{OperatorContext, SourceStatus, StreamProcessor, StreamSource};
use neptune_core::packet::{FieldValue, StreamPacket};
use parking_lot::Mutex;

fn param_u64(params: &JsonValue, key: &str, default: u64) -> u64 {
    params.get(key).and_then(|v| v.as_u64()).unwrap_or(default)
}

fn param_str(params: &JsonValue, key: &str) -> String {
    params.get(key).and_then(|v| v.as_str()).unwrap_or_default().to_string()
}

/// Emits `count` packets carrying dense uids `start..start+count`, in
/// batches. Each packet: `uid: U64`, `v: F64` (a deterministic signal the
/// window stage averages).
struct UidSource {
    next: u64,
    end: u64,
    batch: usize,
}

impl StreamSource for UidSource {
    fn next(&mut self, ctx: &mut OperatorContext) -> SourceStatus {
        if self.next >= self.end {
            return SourceStatus::Exhausted;
        }
        let mut emitted = 0usize;
        while emitted < self.batch && self.next < self.end {
            let mut p = ctx.checkout_packet();
            p.push_field("uid", FieldValue::U64(self.next));
            p.push_field("v", FieldValue::F64((self.next % 97) as f64));
            let ok = ctx.emit(&p).is_ok();
            ctx.checkin_packet(p);
            if !ok {
                // Job is shutting down; stop producing.
                return SourceStatus::Exhausted;
            }
            self.next += 1;
            emitted += 1;
        }
        SourceStatus::Emitted(emitted)
    }
}

/// Stateless relay.
struct Forward;

impl StreamProcessor for Forward {
    fn process(&mut self, packet: &StreamPacket, ctx: &mut OperatorContext) {
        let _ = ctx.emit(packet);
    }
}

/// Sliding mean of the last `window` values of `v`, attached to each
/// packet as `mean` — windowed state without collapsing uids.
struct WindowMean {
    window: usize,
    values: VecDeque<f64>,
    sum: f64,
}

impl StreamProcessor for WindowMean {
    fn process(&mut self, packet: &StreamPacket, ctx: &mut OperatorContext) {
        let v = packet.get("v").and_then(|f| f.as_f64()).unwrap_or(0.0);
        self.values.push_back(v);
        self.sum += v;
        if self.values.len() > self.window {
            if let Some(old) = self.values.pop_front() {
                self.sum -= old;
            }
        }
        let mean = self.sum / self.values.len() as f64;
        let mut out = ctx.checkout_packet();
        for (name, value) in packet.iter() {
            out.push_field(name, value.clone());
        }
        out.push_field("mean", FieldValue::F64(mean));
        let _ = ctx.emit(&out);
        ctx.checkin_packet(out);
    }
}

/// Delivery ledger for one job's sink.
#[derive(Default)]
struct SinkState {
    seen: HashSet<u64>,
    duplicates: u64,
    mean_sum: f64,
}

/// Snapshot of a job's sink ledger.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SinkSnapshot {
    /// Distinct uids delivered.
    pub unique: u64,
    /// Redundant deliveries collapsed by the uid set (at-least-once
    /// transport artifacts: replays, restarted sources).
    pub duplicates: u64,
    /// Sum of the window means seen (a checksum the tests can eyeball).
    pub mean_sum: f64,
}

fn sink_registry() -> &'static Mutex<HashMap<String, Arc<Mutex<SinkState>>>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, Arc<Mutex<SinkState>>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

fn sink_state(job: &str) -> Arc<Mutex<SinkState>> {
    sink_registry().lock().entry(job.to_string()).or_default().clone()
}

/// Read a job's sink ledger (None until its sink processes a packet or
/// the sink operator is constructed in this process).
pub fn sink_snapshot(job: &str) -> Option<SinkSnapshot> {
    let state = sink_registry().lock().get(job)?.clone();
    let s = state.lock();
    Some(SinkSnapshot {
        unique: s.seen.len() as u64,
        duplicates: s.duplicates,
        mean_sum: s.mean_sum,
    })
}

/// Drop a job's sink ledger (test isolation).
pub fn reset_sink(job: &str) {
    sink_registry().lock().remove(job);
}

/// Terminal stage: dedups on `uid` into the process-global ledger.
struct UidSink {
    state: Arc<Mutex<SinkState>>,
}

impl StreamProcessor for UidSink {
    fn process(&mut self, packet: &StreamPacket, _ctx: &mut OperatorContext) {
        let Some(uid) = packet.get("uid").and_then(|f| f.as_u64()) else {
            return;
        };
        let mean = packet.get("mean").and_then(|f| f.as_f64()).unwrap_or(0.0);
        let mut s = self.state.lock();
        if s.seen.insert(uid) {
            s.mean_sum += mean;
        } else {
            s.duplicates += 1;
        }
    }
}

/// Register the distributed-job vocabulary on `registry`.
///
/// Factory params:
/// * `uid_source`: `start` (default 0), `count` (default 1000), `batch`
///   (default 64).
/// * `window_mean`: `window` (default 16).
/// * `uid_sink`: `job` — the ledger key [`sink_snapshot`] reads.
pub fn register_builtins(registry: &mut OperatorRegistry) {
    registry.register_source("uid_source", |params: &JsonValue| {
        let start = param_u64(params, "start", 0);
        let count = param_u64(params, "count", 1000);
        UidSource {
            next: start,
            end: start.saturating_add(count),
            batch: param_u64(params, "batch", 64).max(1) as usize,
        }
    });
    registry.register_processor("forward", |_params: &JsonValue| Forward);
    registry.register_processor("window_mean", |params: &JsonValue| WindowMean {
        window: param_u64(params, "window", 16).max(1) as usize,
        values: VecDeque::new(),
        sum: 0.0,
    });
    registry.register_processor("uid_sink", |params: &JsonValue| UidSink {
        state: sink_state(&param_str(params, "job")),
    });
}

/// A fresh registry with the builtins registered.
pub fn builtin_registry() -> OperatorRegistry {
    let mut registry = OperatorRegistry::new();
    register_builtins(&mut registry);
    registry
}

#[cfg(test)]
mod tests {
    use super::*;
    use neptune_core::descriptor::parse_descriptor;
    use neptune_core::runtime::LocalRuntime;

    #[test]
    fn uid_pipeline_runs_locally_with_exact_delivery() {
        reset_sink("local-uid");
        let descriptor = r#"{
            "name": "local-uid",
            "operators": [
                {"name": "src", "kind": "source", "factory": "uid_source",
                 "params": {"start": 0, "count": 500, "batch": 32}},
                {"name": "win", "kind": "processor", "factory": "window_mean",
                 "params": {"window": 8}},
                {"name": "sink", "kind": "processor", "factory": "uid_sink",
                 "params": {"job": "local-uid"}}
            ],
            "links": [
                {"from": "src", "to": "win"},
                {"from": "win", "to": "sink"}
            ]
        }"#;
        let registry = builtin_registry();
        let (graph, config) = parse_descriptor(descriptor, &registry).unwrap();
        let job = LocalRuntime::new(config).submit(graph).unwrap();
        assert!(job.await_sources(std::time::Duration::from_secs(10)));
        assert!(job.settle(std::time::Duration::from_secs(10)));
        job.stop();
        let snap = sink_snapshot("local-uid").unwrap();
        assert_eq!(snap.unique, 500, "every uid delivered exactly once");
        assert_eq!(snap.duplicates, 0, "in-process path never duplicates");
        assert!(snap.mean_sum > 0.0);
        reset_sink("local-uid");
    }

    #[test]
    fn window_mean_attaches_sliding_average() {
        let mut op = WindowMean { window: 2, values: VecDeque::new(), sum: 0.0 };
        let mut ctx = OperatorContext::collector("win");
        for v in [2.0f64, 4.0, 6.0] {
            let mut p = StreamPacket::new();
            p.push_field("uid", FieldValue::U64(v as u64));
            p.push_field("v", FieldValue::F64(v));
            op.process(&p, &mut ctx);
        }
        let out = ctx.take_collected();
        assert_eq!(out.len(), 3);
        let means: Vec<f64> =
            out.iter().map(|(_, p)| p.get("mean").unwrap().as_f64().unwrap()).collect();
        assert_eq!(means, vec![2.0, 3.0, 5.0], "window of 2 slides");
        assert_eq!(out[2].1.get("uid").unwrap().as_u64(), Some(6), "uid passes through");
    }

    #[test]
    fn sink_collapses_duplicates_and_counts_them() {
        reset_sink("dup-job");
        let mut sink = UidSink { state: sink_state("dup-job") };
        let mut ctx = OperatorContext::collector("sink");
        for uid in [1u64, 2, 2, 3, 1] {
            let mut p = StreamPacket::new();
            p.push_field("uid", FieldValue::U64(uid));
            p.push_field("mean", FieldValue::F64(1.0));
            sink.process(&p, &mut ctx);
        }
        let snap = sink_snapshot("dup-job").unwrap();
        assert_eq!(snap.unique, 3);
        assert_eq!(snap.duplicates, 2);
        assert_eq!(snap.mean_sum, 3.0, "duplicates do not double-count the checksum");
        reset_sink("dup-job");
        assert!(sink_snapshot("dup-job").is_none());
    }
}
