//! Operator placement, shared between the cluster *simulator* and the
//! real multi-process runtime.
//!
//! The paper's scaling setup (§IV-A) places stage `s` of job `j` on node
//! `(j + s) mod nodes`: consecutive stages land on consecutive nodes, so
//! every full-duplex link direction is engaged once jobs ≈ nodes. That
//! ring rule used to live as a closure inside `neptune-sim::cluster`;
//! [`ring_place`] is its extraction, and `neptune-sim` now calls it here —
//! the simulated Fig. 6 curve and the real `neptuned` deployment share one
//! placement function.
//!
//! [`partition_graph`] is the scheduling entry the coordinator uses: it
//! walks a job's operators in declared (topological) order, treats the
//! operator index as the ring stage, and assigns **all instances of an
//! operator to one node** — co-location keeps fields-partitioned
//! redistribution local to the receiving node, so a key always hashes to
//! the same instance no matter which node computed the hash. Node
//! capacities (in instance slots) are respected by probing forward around
//! the ring from the preferred slot; the result is deterministic for a
//! fixed node list (same ranking as `simulate_cluster`'s round-robin,
//! property-tested in `tests/prop_placement.rs`).

use std::collections::BTreeMap;

/// The ring rule extracted from `neptune-sim::cluster`: stage `s` of job
/// `j` runs on `alive[(j + s) % alive.len()]`. `alive` is the orderd list
/// of surviving node indices; under faults, dead nodes simply leave the
/// ring and displaced stages restart on consecutive survivors.
///
/// # Panics
/// When `alive` is empty (a cluster with no survivors has no placement).
pub fn ring_place(job: usize, stage: usize, alive: &[usize]) -> usize {
    alive[(job + stage) % alive.len()]
}

/// A node the coordinator can place operators on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSlot {
    /// Node name (the daemon's registered identity).
    pub name: String,
    /// Capacity in operator-*instance* slots.
    pub capacity: usize,
}

impl NodeSlot {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, capacity: usize) -> Self {
        NodeSlot { name: name.into(), capacity }
    }
}

/// One operator to place: name plus its instance count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpDemand {
    /// Operator name.
    pub name: String,
    /// Instances (all co-located on the chosen node).
    pub parallelism: usize,
}

impl OpDemand {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, parallelism: usize) -> Self {
        OpDemand { name: name.into(), parallelism }
    }
}

/// Placement failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementError {
    /// No nodes to place on.
    NoNodes,
    /// No node has enough free slots for this operator's instances.
    InsufficientCapacity {
        /// The operator that could not be placed.
        operator: String,
        /// Slots it needs on a single node.
        needed: usize,
    },
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::NoNodes => write!(f, "placement: no nodes registered"),
            PlacementError::InsufficientCapacity { operator, needed } => write!(
                f,
                "placement: no node has {needed} free instance slots for operator '{operator}'"
            ),
        }
    }
}

impl std::error::Error for PlacementError {}

/// A computed operator→node assignment.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Placement {
    /// Operator name → index into the node list it was computed against.
    map: BTreeMap<String, usize>,
}

impl Placement {
    /// Node index hosting `op`, if placed.
    pub fn node_of(&self, op: &str) -> Option<usize> {
        self.map.get(op).copied()
    }

    /// Operator names hosted on node `node`, in deterministic name order.
    pub fn ops_on(&self, node: usize) -> Vec<&str> {
        self.map.iter().filter(|(_, &n)| n == node).map(|(o, _)| o.as_str()).collect()
    }

    /// All `(operator, node_index)` pairs, in deterministic name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, usize)> {
        self.map.iter().map(|(o, &n)| (o.as_str(), n))
    }

    /// Number of placed operators.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is placed.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Overwrite (or insert) one operator's node — the reassignment hook.
    pub fn set(&mut self, op: impl Into<String>, node: usize) {
        self.map.insert(op.into(), node);
    }
}

/// Free slots left on each node after accounting for `placed`.
fn free_slots(ops: &[OpDemand], nodes: &[NodeSlot], placed: &Placement) -> Vec<usize> {
    let mut free: Vec<usize> = nodes.iter().map(|n| n.capacity).collect();
    for op in ops {
        if let Some(n) = placed.node_of(&op.name) {
            free[n] = free[n].saturating_sub(op.parallelism.max(1));
        }
    }
    free
}

/// Place one operator on the ring of `eligible` node indices, preferring
/// `ring_place(job, stage, eligible)` and probing forward until a node
/// with enough free slots is found.
fn place_one(
    op: &OpDemand,
    job: usize,
    stage: usize,
    eligible: &[usize],
    free: &mut [usize],
) -> Result<usize, PlacementError> {
    if eligible.is_empty() {
        return Err(PlacementError::NoNodes);
    }
    let need = op.parallelism.max(1);
    let start = (job + stage) % eligible.len();
    for probe in 0..eligible.len() {
        let node = eligible[(start + probe) % eligible.len()];
        if free[node] >= need {
            free[node] -= need;
            return Ok(node);
        }
    }
    Err(PlacementError::InsufficientCapacity { operator: op.name.clone(), needed: need })
}

/// Partition a job's operators over `nodes`. `job` is the job's index in
/// the cluster (offsets the ring exactly like the simulator, so
/// concurrent jobs interleave instead of piling onto node 0). Operators
/// must be given in declared/topological order — their position is the
/// ring stage.
pub fn partition_graph(
    job: usize,
    ops: &[OpDemand],
    nodes: &[NodeSlot],
) -> Result<Placement, PlacementError> {
    if nodes.is_empty() {
        return Err(PlacementError::NoNodes);
    }
    let eligible: Vec<usize> = (0..nodes.len()).collect();
    let mut free: Vec<usize> = nodes.iter().map(|n| n.capacity).collect();
    let mut placement = Placement::default();
    for (stage, op) in ops.iter().enumerate() {
        let node = place_one(op, job, stage, &eligible, &mut free)?;
        placement.set(op.name.clone(), node);
    }
    Ok(placement)
}

/// Re-place the operators stranded on `dead` over the surviving nodes,
/// keeping every other operator where it is. Displaced operators keep
/// their original stage order and probe the *survivor* ring from their
/// stage slot — the same restart-round-robin the simulator applies in
/// `simulate_cluster_with_faults`. Survivor capacities account for the
/// operators they already host.
pub fn reassign_dead(
    job: usize,
    ops: &[OpDemand],
    nodes: &[NodeSlot],
    current: &Placement,
    dead: usize,
) -> Result<Placement, PlacementError> {
    let survivors: Vec<usize> = (0..nodes.len()).filter(|&n| n != dead).collect();
    if survivors.is_empty() {
        return Err(PlacementError::NoNodes);
    }
    let mut next = current.clone();
    // Free slots on survivors, after the operators staying put.
    let mut free = free_slots(ops, nodes, current);
    free[dead] = 0;
    for (stage, op) in ops.iter().enumerate() {
        if current.node_of(&op.name) != Some(dead) {
            continue;
        }
        let node = place_one(op, job, stage, &survivors, &mut free)?;
        next.set(op.name.clone(), node);
    }
    Ok(next)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(caps: &[usize]) -> Vec<NodeSlot> {
        caps.iter().enumerate().map(|(i, &c)| NodeSlot::new(format!("n{i}"), c)).collect()
    }

    #[test]
    fn ring_place_matches_simulator_rule() {
        let alive = vec![0usize, 2, 3];
        for job in 0..5 {
            for stage in 0..5 {
                assert_eq!(ring_place(job, stage, &alive), alive[(job + stage) % 3]);
            }
        }
    }

    #[test]
    fn three_ops_on_three_nodes_spread_one_each() {
        let ops =
            vec![OpDemand::new("src", 1), OpDemand::new("relay", 1), OpDemand::new("sink", 1)];
        let p = partition_graph(0, &ops, &nodes(&[8, 8, 8])).unwrap();
        assert_eq!(p.node_of("src"), Some(0));
        assert_eq!(p.node_of("relay"), Some(1));
        assert_eq!(p.node_of("sink"), Some(2));
    }

    #[test]
    fn capacity_probes_forward() {
        // Node 1 is full: stage 1 skips to node 2, stage 2 wraps to 0.
        let ops = vec![OpDemand::new("a", 1), OpDemand::new("b", 2), OpDemand::new("c", 1)];
        let p = partition_graph(0, &ops, &nodes(&[4, 1, 4])).unwrap();
        assert_eq!(p.node_of("a"), Some(0));
        assert_eq!(p.node_of("b"), Some(2), "b needs 2 slots, node 1 has 1");
        assert_eq!(p.node_of("c"), Some(2));
    }

    #[test]
    fn over_capacity_is_an_error() {
        let ops = vec![OpDemand::new("wide", 9)];
        let err = partition_graph(0, &ops, &nodes(&[8, 8])).unwrap_err();
        assert!(matches!(err, PlacementError::InsufficientCapacity { needed: 9, .. }));
        assert!(partition_graph(0, &ops, &[]).is_err());
    }

    #[test]
    fn reassign_moves_only_the_dead_nodes_ops() {
        let ops =
            vec![OpDemand::new("src", 1), OpDemand::new("relay", 1), OpDemand::new("sink", 1)];
        let ns = nodes(&[8, 8, 8]);
        let p = partition_graph(0, &ops, &ns).unwrap();
        let r = reassign_dead(0, &ops, &ns, &p, 1).unwrap();
        assert_eq!(r.node_of("src"), Some(0), "survivor stays");
        assert_eq!(r.node_of("sink"), Some(2), "survivor stays");
        let moved = r.node_of("relay").unwrap();
        assert_ne!(moved, 1, "displaced operator leaves the dead node");
        // Deterministic: stage 1 on the survivor ring [0, 2] prefers
        // index (0 + 1) % 2 = 1 → node 2.
        assert_eq!(moved, 2);
        // Idempotent determinism.
        assert_eq!(r, reassign_dead(0, &ops, &ns, &p, 1).unwrap());
    }
}
