//! The cluster control protocol: versioned, capability-checked framed
//! JSON between the coordinator and `neptuned` node daemons.
//!
//! Control connections ride the same NEPT frame codec as the data plane —
//! each message is one JSON document sent as a single-message data frame
//! on the reserved control link. The **first** frame in each direction is
//! a `FLAG_CONTROL` hello ([`ControlKind::Hello`]) carrying the sender's
//! protocol version and capability byte; both sides exchange hellos
//! synchronously at connect time and refuse the peer with a clear error
//! when the version differs or a required capability is missing. That is
//! the fail-fast point for mismatched `neptuned` builds: the operator
//! sees `protocol mismatch: we speak v1 (caps 0x03), peer speaks v2` at
//! startup instead of a CRC error mid-job.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

use neptune_compress::SelectiveCompressor;
use neptune_core::json::{self, JsonValue};
use neptune_net::frame::{
    encode_frame, encode_hello_frame, hello_parts, read_frame, ControlKind, CAP_SEQ_REPLAY,
    CAP_TRACE, PROTOCOL_VERSION,
};
use parking_lot::Mutex;

/// Link id reserved for control-plane message frames.
pub const CONTROL_LINK: u64 = 0;

/// Capabilities a cluster peer must advertise: the data plane relies on
/// `FLAG_SEQ` replay for zero-loss handover and on `FLAG_TRACE`
/// propagation for cross-process causal tracing.
pub const REQUIRED_CAPS: u8 = CAP_SEQ_REPLAY | CAP_TRACE;

/// Control protocol failures.
#[derive(Debug)]
pub enum ProtoError {
    /// Socket-level failure.
    Io(io::Error),
    /// The peer speaks a different protocol version or lacks a required
    /// capability. Formatted for the startup log.
    Mismatch {
        /// Our (version, caps).
        ours: (u8, u8),
        /// The peer's (version, caps).
        theirs: (u8, u8),
    },
    /// The peer's first frame was not a hello.
    NoHello,
    /// A message frame did not contain valid protocol JSON.
    Malformed(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "control i/o error: {e}"),
            ProtoError::Mismatch { ours, theirs } => write!(
                f,
                "protocol mismatch: we speak v{} (caps {:#04x}), peer speaks v{} (caps {:#04x}) — \
                 upgrade the older neptuned build",
                ours.0, ours.1, theirs.0, theirs.1
            ),
            ProtoError::NoHello => {
                write!(f, "peer did not open with a protocol hello (not a neptuned build?)")
            }
            ProtoError::Malformed(m) => write!(f, "malformed control message: {m}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        ProtoError::Io(e)
    }
}

/// One message of the control protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlMsg {
    /// Node → coordinator, once per connection: identity and resources.
    Register {
        /// Node name (unique per cluster).
        node: String,
        /// Capacity in operator-instance slots.
        capacity: usize,
        /// Address the node's data-plane receiver listens on.
        data_addr: String,
        /// OS process id, so tooling (and the chaos test) can target it.
        pid: u32,
    },
    /// Coordinator → node: registration accepted.
    Welcome {
        /// The node's index in the coordinator's ring.
        node_index: usize,
    },
    /// Coordinator → node: host this slice of a job. The descriptor is a
    /// complete NEPTUNE JSON job descriptor containing the node's
    /// operators plus coordinator-injected `__ingress`/`__egress`
    /// boundary operators; `generation` bumps on every reassignment.
    Assign {
        /// Job name.
        job: String,
        /// Assignment generation (monotonic per job).
        generation: u64,
        /// Sub-descriptor JSON text for this node.
        descriptor: String,
    },
    /// Coordinator → node: start the assigned job slice.
    Start {
        /// Job name.
        job: String,
    },
    /// Coordinator → node: liveness probe; the node answers with an
    /// immediate [`ControlMsg::Report`].
    Ping {
        /// Probe nonce, echoed in the report.
        seq: u64,
    },
    /// Node → coordinator: periodic telemetry push. `body` carries
    /// operator metrics, sparse histogram dumps, sink uid counts, and
    /// data-plane watermarks (see `report` helpers in the node module).
    Report {
        /// Reporting node.
        node: String,
        /// Probe nonce being answered, or 0 for unsolicited pushes.
        seq: u64,
        /// Structured telemetry payload.
        body: JsonValue,
    },
    /// Coordinator → node: an egress edge's downstream peer moved.
    Rewire {
        /// Cut-edge index.
        edge: usize,
        /// New downstream data-plane address.
        addr: String,
        /// New link epoch for the edge.
        epoch: u32,
    },
    /// Coordinator → node: stop sources, let queued work flush.
    Drain {
        /// Job name.
        job: String,
    },
    /// Coordinator → node: tear the job down and report final metrics.
    Stop {
        /// Job name.
        job: String,
    },
    /// Coordinator → node: exit the daemon process.
    Shutdown,
    /// Either direction: a fatal, human-readable failure.
    Error {
        /// What went wrong.
        message: String,
    },
}

fn field<'a>(obj: &'a JsonValue, key: &str) -> Result<&'a JsonValue, ProtoError> {
    obj.get(key).ok_or_else(|| ProtoError::Malformed(format!("missing field '{key}'")))
}

fn str_field(obj: &JsonValue, key: &str) -> Result<String, ProtoError> {
    field(obj, key)?
        .as_str()
        .map(str::to_owned)
        .ok_or_else(|| ProtoError::Malformed(format!("field '{key}' must be a string")))
}

fn u64_field(obj: &JsonValue, key: &str) -> Result<u64, ProtoError> {
    field(obj, key)?.as_u64().ok_or_else(|| {
        ProtoError::Malformed(format!("field '{key}' must be a non-negative integer"))
    })
}

impl ControlMsg {
    /// Serialize to the wire JSON document.
    pub fn to_json(&self) -> JsonValue {
        let num = |n: u64| JsonValue::Number(n as f64);
        let s = |s: &str| JsonValue::String(s.to_owned());
        match self {
            ControlMsg::Register { node, capacity, data_addr, pid } => json::object([
                ("type", s("register")),
                ("node", s(node)),
                ("capacity", num(*capacity as u64)),
                ("data_addr", s(data_addr)),
                ("pid", num(*pid as u64)),
            ]),
            ControlMsg::Welcome { node_index } => {
                json::object([("type", s("welcome")), ("node_index", num(*node_index as u64))])
            }
            ControlMsg::Assign { job, generation, descriptor } => json::object([
                ("type", s("assign")),
                ("job", s(job)),
                ("generation", num(*generation)),
                ("descriptor", s(descriptor)),
            ]),
            ControlMsg::Start { job } => json::object([("type", s("start")), ("job", s(job))]),
            ControlMsg::Ping { seq } => json::object([("type", s("ping")), ("seq", num(*seq))]),
            ControlMsg::Report { node, seq, body } => json::object([
                ("type", s("report")),
                ("node", s(node)),
                ("seq", num(*seq)),
                ("body", body.clone()),
            ]),
            ControlMsg::Rewire { edge, addr, epoch } => json::object([
                ("type", s("rewire")),
                ("edge", num(*edge as u64)),
                ("addr", s(addr)),
                ("epoch", num(*epoch as u64)),
            ]),
            ControlMsg::Drain { job } => json::object([("type", s("drain")), ("job", s(job))]),
            ControlMsg::Stop { job } => json::object([("type", s("stop")), ("job", s(job))]),
            ControlMsg::Shutdown => json::object([("type", s("shutdown"))]),
            ControlMsg::Error { message } => {
                json::object([("type", s("error")), ("message", s(message))])
            }
        }
    }

    /// Parse from a wire JSON document.
    pub fn from_json(v: &JsonValue) -> Result<Self, ProtoError> {
        let kind = str_field(v, "type")?;
        Ok(match kind.as_str() {
            "register" => ControlMsg::Register {
                node: str_field(v, "node")?,
                capacity: u64_field(v, "capacity")? as usize,
                data_addr: str_field(v, "data_addr")?,
                pid: u64_field(v, "pid")? as u32,
            },
            "welcome" => ControlMsg::Welcome { node_index: u64_field(v, "node_index")? as usize },
            "assign" => ControlMsg::Assign {
                job: str_field(v, "job")?,
                generation: u64_field(v, "generation")?,
                descriptor: str_field(v, "descriptor")?,
            },
            "start" => ControlMsg::Start { job: str_field(v, "job")? },
            "ping" => ControlMsg::Ping { seq: u64_field(v, "seq")? },
            "report" => ControlMsg::Report {
                node: str_field(v, "node")?,
                seq: u64_field(v, "seq")?,
                body: field(v, "body")?.clone(),
            },
            "rewire" => ControlMsg::Rewire {
                edge: u64_field(v, "edge")? as usize,
                addr: str_field(v, "addr")?,
                epoch: u64_field(v, "epoch")? as u32,
            },
            "drain" => ControlMsg::Drain { job: str_field(v, "job")? },
            "stop" => ControlMsg::Stop { job: str_field(v, "job")? },
            "shutdown" => ControlMsg::Shutdown,
            "error" => ControlMsg::Error { message: str_field(v, "message")? },
            other => return Err(ProtoError::Malformed(format!("unknown message type '{other}'"))),
        })
    }
}

/// Write our hello, then read and validate the peer's. Both sides write
/// first — the frames are tiny and fit the socket buffer, so the
/// symmetric exchange cannot deadlock.
fn hello_exchange(stream: &mut TcpStream) -> Result<(u8, u8), ProtoError> {
    stream.write_all(&encode_hello_frame(CONTROL_LINK, PROTOCOL_VERSION, REQUIRED_CAPS))?;
    stream.flush()?;
    let frame = read_frame(stream).map_err(|e| {
        ProtoError::Io(io::Error::new(io::ErrorKind::InvalidData, format!("reading hello: {e}")))
    })?;
    if frame.control != Some(ControlKind::Hello) {
        return Err(ProtoError::NoHello);
    }
    let (version, caps) = hello_parts(frame.base_seq).ok_or(ProtoError::NoHello)?;
    if version != PROTOCOL_VERSION || caps & REQUIRED_CAPS != REQUIRED_CAPS {
        return Err(ProtoError::Mismatch {
            ours: (PROTOCOL_VERSION, REQUIRED_CAPS),
            theirs: (version, caps),
        });
    }
    Ok((version, caps))
}

/// A write handle to a control connection, cloneable across threads.
#[derive(Clone)]
pub struct ControlSender {
    writer: Arc<Mutex<TcpStream>>,
    compressor: Arc<SelectiveCompressor>,
}

impl ControlSender {
    /// Send one message. Errors indicate the connection is gone.
    pub fn send(&self, msg: &ControlMsg) -> Result<(), ProtoError> {
        let body = msg.to_json().to_json();
        let wire = encode_frame(CONTROL_LINK, 0, &[body.as_bytes()], &self.compressor);
        let mut w = self.writer.lock();
        w.write_all(&wire)?;
        w.flush()?;
        Ok(())
    }
}

/// A bidirectional control connection with the hello exchange already
/// performed.
pub struct ControlConn {
    reader: TcpStream,
    sender: ControlSender,
    peer: SocketAddr,
}

impl std::fmt::Debug for ControlConn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ControlConn").field("peer", &self.peer).finish_non_exhaustive()
    }
}

impl ControlConn {
    /// Dial `addr`, retrying for up to `patience` while the peer is still
    /// binding, then run the hello exchange.
    pub fn connect(
        addr: impl ToSocketAddrs + Copy,
        patience: Duration,
    ) -> Result<Self, ProtoError> {
        let deadline = std::time::Instant::now() + patience;
        let stream = loop {
            match TcpStream::connect(addr) {
                Ok(s) => break s,
                Err(e) if std::time::Instant::now() < deadline => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(e) => return Err(ProtoError::Io(e)),
            }
        };
        Self::establish(stream)
    }

    /// Adopt an accepted stream and run the hello exchange.
    pub fn establish(mut stream: TcpStream) -> Result<Self, ProtoError> {
        stream.set_nodelay(true).ok();
        hello_exchange(&mut stream)?;
        let peer = stream.peer_addr()?;
        let writer = stream.try_clone()?;
        Ok(ControlConn {
            reader: stream,
            sender: ControlSender {
                writer: Arc::new(Mutex::new(writer)),
                compressor: Arc::new(SelectiveCompressor::disabled()),
            },
            peer,
        })
    }

    /// The peer's socket address.
    pub fn peer(&self) -> SocketAddr {
        self.peer
    }

    /// A cloneable write handle, usable from other threads.
    pub fn sender(&self) -> ControlSender {
        self.sender.clone()
    }

    /// Send one message from the owning thread.
    pub fn send(&self, msg: &ControlMsg) -> Result<(), ProtoError> {
        self.sender.send(msg)
    }

    /// Apply a read timeout to subsequent [`ControlConn::recv`] calls
    /// (`None` blocks forever). Timeouts surface as `Io` errors with kind
    /// `WouldBlock`/`TimedOut`.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.set_read_timeout(timeout)
    }

    /// Block for the next protocol message, skipping any control frames
    /// (heartbeats, stray hellos) that share the connection.
    pub fn recv(&mut self) -> Result<ControlMsg, ProtoError> {
        loop {
            // `FrameError::Io` stringifies the error; tap the reader so the
            // `io::ErrorKind` (and thus timeout detection) survives.
            let mut tap = KindTap { inner: &mut self.reader, last_kind: None };
            let frame = match read_frame(&mut tap) {
                Ok(frame) => frame,
                Err(neptune_net::frame::FrameError::Io(msg)) => {
                    let kind = tap.last_kind.unwrap_or(io::ErrorKind::UnexpectedEof);
                    return Err(ProtoError::Io(io::Error::new(kind, msg)));
                }
                Err(other) => return Err(ProtoError::Malformed(other.to_string())),
            };
            if frame.control.is_some() {
                continue;
            }
            let Some(first) = frame.messages.iter().next().map(|m| m.to_vec()) else {
                continue;
            };
            let text = String::from_utf8(first)
                .map_err(|_| ProtoError::Malformed("message is not utf-8".into()))?;
            let doc = json::parse(&text).map_err(|e| ProtoError::Malformed(e.to_string()))?;
            return ControlMsg::from_json(&doc);
        }
    }
}

/// Forwards reads while remembering the kind of the last failure, which
/// `FrameError::Io` otherwise flattens into a string.
struct KindTap<'a> {
    inner: &'a mut TcpStream,
    last_kind: Option<io::ErrorKind>,
}

impl Read for KindTap<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.inner.read(buf).inspect_err(|e| self.last_kind = Some(e.kind()))
    }
}

/// True when an I/O error is only a read-timeout expiry.
pub fn is_timeout(err: &ProtoError) -> bool {
    matches!(
        err,
        ProtoError::Io(e) if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn control_messages_roundtrip_through_json() {
        let msgs = vec![
            ControlMsg::Register {
                node: "n0".into(),
                capacity: 8,
                data_addr: "127.0.0.1:9000".into(),
                pid: 1234,
            },
            ControlMsg::Welcome { node_index: 2 },
            ControlMsg::Assign {
                job: "uidgrid".into(),
                generation: 3,
                descriptor: "{\"name\":\"slice\"}".into(),
            },
            ControlMsg::Start { job: "uidgrid".into() },
            ControlMsg::Ping { seq: 7 },
            ControlMsg::Report {
                node: "n1".into(),
                seq: 7,
                body: json::object([("sink_uids", JsonValue::Number(42.0))]),
            },
            ControlMsg::Rewire { edge: 1, addr: "127.0.0.1:9001".into(), epoch: 2 },
            ControlMsg::Drain { job: "uidgrid".into() },
            ControlMsg::Stop { job: "uidgrid".into() },
            ControlMsg::Shutdown,
            ControlMsg::Error { message: "placement: no nodes registered".into() },
        ];
        for msg in msgs {
            let text = msg.to_json().to_json();
            let parsed = ControlMsg::from_json(&json::parse(&text).unwrap()).unwrap();
            assert_eq!(parsed, msg, "roundtrip of {text}");
        }
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            r#"{"no_type": 1}"#,
            r#"{"type": "launch"}"#,
            r#"{"type": "welcome"}"#,
            r#"{"type": "register", "node": 9, "capacity": 1, "data_addr": "x", "pid": 1}"#,
        ] {
            let doc = json::parse(bad).unwrap();
            assert!(ControlMsg::from_json(&doc).is_err(), "should reject {bad}");
        }
    }

    #[test]
    fn conn_pair_exchanges_hello_and_messages() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut conn = ControlConn::establish(stream).unwrap();
            let msg = conn.recv().unwrap();
            conn.send(&ControlMsg::Welcome { node_index: 0 }).unwrap();
            msg
        });
        let mut client = ControlConn::connect(addr, Duration::from_secs(2)).unwrap();
        client
            .send(&ControlMsg::Register {
                node: "n0".into(),
                capacity: 4,
                data_addr: "127.0.0.1:7000".into(),
                pid: std::process::id(),
            })
            .unwrap();
        let reply = client.recv().unwrap();
        assert_eq!(reply, ControlMsg::Welcome { node_index: 0 });
        match server.join().unwrap() {
            ControlMsg::Register { node, capacity, .. } => {
                assert_eq!(node, "n0");
                assert_eq!(capacity, 4);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn version_skew_fails_fast_with_a_clear_error() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // A "future" build announcing v2: handcraft the hello.
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            stream
                .write_all(&encode_hello_frame(CONTROL_LINK, PROTOCOL_VERSION + 1, REQUIRED_CAPS))
                .unwrap();
            // Drain the client's hello so its write never blocks.
            let _ = read_frame(&mut stream);
        });
        let err = ControlConn::connect(addr, Duration::from_secs(2)).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("protocol mismatch"), "got: {text}");
        assert!(text.contains("peer speaks v2"), "got: {text}");
        server.join().unwrap();
    }

    #[test]
    fn missing_capability_is_a_mismatch() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            // Right version, but no replay capability.
            stream.write_all(&encode_hello_frame(CONTROL_LINK, PROTOCOL_VERSION, 0)).unwrap();
            let _ = read_frame(&mut stream);
        });
        let err = ControlConn::connect(addr, Duration::from_secs(2)).unwrap_err();
        assert!(matches!(err, ProtoError::Mismatch { .. }), "got: {err}");
        server.join().unwrap();
    }

    #[test]
    fn non_hello_peer_is_reported_as_such() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            // A legacy peer that starts with a data frame.
            let wire = encode_frame(9, 0, &[b"legacy"], &SelectiveCompressor::disabled());
            stream.write_all(&wire).unwrap();
            let _ = read_frame(&mut stream);
        });
        let err = ControlConn::connect(addr, Duration::from_secs(2)).unwrap_err();
        assert!(matches!(err, ProtoError::NoHello), "got: {err}");
        server.join().unwrap();
    }
}
