//! End-to-end multi-process distribution tests (PR 8 tentpole
//! acceptance): a windowed job runs across three real `neptuned`
//! processes with exactly-once delivery observed at the sink, the
//! coordinator serves the merged cluster export over HTTP, and a seeded
//! chaos run kills a node mid-job and still loses nothing.
//!
//! The daemons are the actual release binaries (`CARGO_BIN_EXE_neptuned`),
//! not in-process fakes — every hop crosses real process boundaries over
//! real sockets, with the versioned hello, FLAG_SEQ replay, and
//! FLAG_TRACE propagation all live.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use neptune_cluster::coordinator::{demo_descriptor, run_cluster, CoordinatorOptions};

fn free_port() -> u16 {
    TcpListener::bind("127.0.0.1:0").unwrap().local_addr().unwrap().port()
}

fn spawn_daemons(coordinator: &str, n: usize, tag: &str) -> Vec<Child> {
    (0..n)
        .map(|i| {
            Command::new(env!("CARGO_BIN_EXE_neptuned"))
                .args(["--coordinator", coordinator, "--name", &format!("{tag}-n{i}")])
                .stdout(Stdio::null())
                .stderr(Stdio::null())
                .spawn()
                .expect("spawn neptuned")
        })
        .collect()
}

fn reap(children: Vec<Child>) {
    for mut c in children {
        let _ = c.kill();
        let _ = c.wait();
    }
}

fn http_get(addr: &str, path: &str) -> Option<String> {
    let mut s = TcpStream::connect(addr).ok()?;
    s.set_read_timeout(Some(Duration::from_millis(500))).ok()?;
    write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").ok()?;
    let mut out = String::new();
    let _ = s.read_to_string(&mut out);
    let body = out.split("\r\n\r\n").nth(1)?;
    Some(body.to_string())
}

#[test]
fn three_node_cluster_delivers_every_uid_and_serves_the_merged_export() {
    const COUNT: u64 = 20_000;
    let listen = format!("127.0.0.1:{}", free_port());
    let http = format!("127.0.0.1:{}", free_port());
    let children = spawn_daemons(&listen, 3, "e2e");
    let descriptor = demo_descriptor("e2e-job", COUNT, 16);
    let mut opts = CoordinatorOptions::new(listen, 3);
    opts.http = Some(http.clone());
    opts.deadline = Duration::from_secs(90);

    // Drive the coordinator on a thread so this one can scrape mid-run.
    let driver = std::thread::spawn(move || run_cluster(&opts, &descriptor, COUNT));

    // Scrape the live endpoints while the job runs: /nodes must list all
    // three daemons with pids, /metrics must carry the merged counters.
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut nodes_json = String::new();
    let mut metrics = String::new();
    while Instant::now() < deadline {
        if let Some(n) = http_get(&http, "/nodes") {
            if n.matches("\"pid\"").count() == 3 {
                nodes_json = n;
                metrics = http_get(&http, "/metrics").unwrap_or_default();
                if metrics.contains("neptune_cluster_sink_unique_total") {
                    break;
                }
            }
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    let summary = driver.join().expect("driver thread").expect("cluster run");
    reap(children);

    assert_eq!(summary.sink_unique, COUNT, "every uid delivered");
    assert_eq!(summary.deaths, 0);
    assert!(summary.frames_in > 0, "cut edges actually crossed process boundaries");
    assert!(summary.traced_in > 0, "FLAG_TRACE ids observed crossing process boundaries");
    assert!(nodes_json.matches("\"pid\"").count() == 3, "/nodes lists 3 daemons: {nodes_json}");
    assert!(nodes_json.contains("\"alive\":true"));
    assert!(
        metrics.contains("neptune_cluster_nodes{state=\"alive\"} 3"),
        "merged gauge present: {metrics}"
    );
    assert!(metrics.contains("neptune_cluster_expected_unique{job=\"e2e-job\"} 20000"));
}

#[test]
fn chaos_kill_mid_run_reassigns_and_loses_no_uids() {
    const COUNT: u64 = 40_000;
    let listen = format!("127.0.0.1:{}", free_port());
    let http = format!("127.0.0.1:{}", free_port());
    let children = spawn_daemons(&listen, 3, "chaos");
    let descriptor = demo_descriptor("chaos-job", COUNT, 16);
    let mut opts = CoordinatorOptions::new(listen, 3);
    opts.http = Some(http.clone());
    opts.heartbeat_timeout = Duration::from_millis(800);
    opts.deadline = Duration::from_secs(90);

    let driver = std::thread::spawn(move || run_cluster(&opts, &descriptor, COUNT));

    // Find the daemon hosting the windowed stage via the live /nodes
    // export, give the pipeline a moment to be genuinely mid-run, then
    // kill that process hard. Seeded: the ring places win on node 1
    // deterministically, but reading the export keeps the test honest.
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut victim: Option<u32> = None;
    while victim.is_none() && Instant::now() < deadline {
        if let Some(nodes) = http_get(&http, "/nodes") {
            // Parse the pid out of the row whose operators include "win".
            for row in nodes.split('{') {
                if row.contains("\"win\"") {
                    if let Some(pid) = row
                        .split("\"pid\":")
                        .nth(1)
                        .and_then(|s| s.split(|c: char| !c.is_ascii_digit()).next())
                        .and_then(|s| s.parse::<u32>().ok())
                    {
                        victim = Some(pid);
                    }
                }
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    let victim = victim.expect("/nodes never exposed the win host's pid");
    std::thread::sleep(Duration::from_millis(700)); // genuinely mid-run
    let killed = Command::new("kill")
        .args(["-9", &victim.to_string()])
        .status()
        .expect("spawn kill")
        .success();
    assert!(killed, "kill -9 {victim} failed");

    let summary = driver.join().expect("driver thread").expect("cluster run survives the kill");
    reap(children);

    assert_eq!(summary.deaths, 1, "the kill was detected");
    assert!(summary.reassignments >= 1, "the dead node's operators moved");
    assert_eq!(
        summary.sink_unique, COUNT,
        "zero loss across the kill: replay + source restart + sink dedup"
    );
    assert!(summary.generation >= 1, "reassignment bumped the placement generation");
}
