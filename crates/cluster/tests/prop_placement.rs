//! Property tests for the shared placement module (PR 8, satellite 3):
//! every operator assigned exactly once, node capacities respected,
//! determinism for a fixed input, and ring parity with the simulator's
//! `(job + stage) % nodes` round-robin when capacity never binds.

use neptune_cluster::placement::{
    partition_graph, reassign_dead, ring_place, NodeSlot, OpDemand, PlacementError,
};
use proptest::collection::vec;
use proptest::prelude::*;

fn ops_from(parallelisms: &[usize]) -> Vec<OpDemand> {
    parallelisms.iter().enumerate().map(|(i, &p)| OpDemand::new(format!("op{i}"), p)).collect()
}

fn nodes_from(capacities: &[usize]) -> Vec<NodeSlot> {
    capacities.iter().enumerate().map(|(i, &c)| NodeSlot::new(format!("n{i}"), c)).collect()
}

/// Instance slots a placement consumes on each node.
fn load(ops: &[OpDemand], placement: &neptune_cluster::placement::Placement, n: usize) -> usize {
    ops.iter().filter(|o| placement.node_of(&o.name) == Some(n)).map(|o| o.parallelism.max(1)).sum()
}

proptest! {
    /// A successful partition assigns every operator exactly once and
    /// never oversubscribes a node's instance slots.
    #[test]
    fn every_operator_placed_once_within_capacity(
        parallelisms in vec(1usize..4, 1..8),
        capacities in vec(1usize..16, 1..6),
        job in 0usize..8,
    ) {
        let ops = ops_from(&parallelisms);
        let nodes = nodes_from(&capacities);
        match partition_graph(job, &ops, &nodes) {
            Ok(p) => {
                prop_assert_eq!(p.len(), ops.len(), "every operator appears");
                for op in &ops {
                    let n = p.node_of(&op.name);
                    prop_assert!(n.is_some(), "operator {} unplaced", op.name);
                    prop_assert!(n.unwrap() < nodes.len());
                }
                for (n, node) in nodes.iter().enumerate() {
                    prop_assert!(
                        load(&ops, &p, n) <= node.capacity,
                        "node {} over capacity", n
                    );
                }
            }
            Err(PlacementError::InsufficientCapacity { needed, .. }) => {
                // Greedy placement may refuse packable inputs; the sound
                // claim is only that refusal names a real demand and that
                // a cluster with slack on every node never refuses (the
                // ample-capacity property below pins that case).
                prop_assert!(needed >= 1);
            }
            Err(PlacementError::NoNodes) => prop_assert!(capacities.is_empty()),
        }
    }

    /// Placement is a pure function of its inputs.
    #[test]
    fn placement_is_deterministic(
        parallelisms in vec(1usize..4, 1..8),
        capacities in vec(1usize..16, 1..6),
        job in 0usize..8,
    ) {
        let ops = ops_from(&parallelisms);
        let nodes = nodes_from(&capacities);
        prop_assert_eq!(partition_graph(job, &ops, &nodes), partition_graph(job, &ops, &nodes));
    }

    /// When no capacity ever binds, the stage-to-node map IS the
    /// simulator's ring rule — `simulate_cluster` and the coordinator
    /// place identically (the shared-module guarantee of this PR).
    #[test]
    fn ample_capacity_matches_simulator_ring(
        n_ops in 1usize..8,
        n_nodes in 1usize..6,
        job in 0usize..8,
    ) {
        let ops = ops_from(&vec![1; n_ops]);
        // Every node can host the whole job: the probe never advances.
        let nodes = nodes_from(&vec![n_ops; n_nodes]);
        let p = partition_graph(job, &ops, &nodes).unwrap();
        let ring: Vec<usize> = (0..n_nodes).collect();
        for (stage, op) in ops.iter().enumerate() {
            prop_assert_eq!(
                p.node_of(&op.name),
                Some(ring_place(job, stage, &ring)),
                "stage {} diverges from the simulator rule", stage
            );
        }
    }

    /// Reassignment after a death moves exactly the dead node's
    /// operators, keeps everyone else in place, and stays within the
    /// survivors' remaining capacity.
    #[test]
    fn reassignment_moves_only_displaced_operators(
        parallelisms in vec(1usize..3, 1..6),
        n_nodes in 2usize..6,
        dead in 0usize..6,
        job in 0usize..8,
    ) {
        let dead = dead % n_nodes;
        let ops = ops_from(&parallelisms);
        // Ample capacity so both rounds always succeed.
        let total: usize = parallelisms.iter().sum();
        let nodes = nodes_from(&vec![total; n_nodes]);
        let before = partition_graph(job, &ops, &nodes).unwrap();
        let after = reassign_dead(job, &ops, &nodes, &before, dead).unwrap();
        for op in &ops {
            let was = before.node_of(&op.name).unwrap();
            let now = after.node_of(&op.name).unwrap();
            if was == dead {
                prop_assert!(now != dead, "operator {} stayed on the dead node", &op.name);
            } else {
                prop_assert_eq!(now, was, "surviving operator {} moved", &op.name);
            }
        }
        for (n, node) in nodes.iter().enumerate() {
            if n != dead {
                prop_assert!(load(&ops, &after, n) <= node.capacity);
            }
        }
        // Deterministic too.
        prop_assert_eq!(&after, &reassign_dead(job, &ops, &nodes, &before, dead).unwrap());
    }
}
