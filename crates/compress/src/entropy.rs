//! Byte-level Shannon entropy estimation.
//!
//! The selective compression policy (§III-B5) must decide *per payload*
//! whether the LZ4 pass is worth its CPU cost. NEPTUNE's proxy for
//! compressibility is the Shannon entropy of the byte distribution: a
//! buffered batch of slowly-changing sensor readings has entropy well below
//! 8 bits/byte, while random binary payloads sit at ~8 bits/byte and only
//! waste cycles in the compressor.

/// Shannon entropy of `data`'s byte histogram, in **bits per byte**
/// (0.0 for empty or constant input, up to 8.0 for uniform random bytes).
pub fn shannon_entropy(data: &[u8]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let mut counts = [0u64; 256];
    for &b in data {
        counts[b as usize] += 1;
    }
    entropy_of_counts(&counts, data.len() as u64)
}

fn entropy_of_counts(counts: &[u64; 256], total: u64) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let total_f = total as f64;
    let mut h = 0.0;
    for &c in counts.iter() {
        if c > 0 {
            let p = c as f64 / total_f;
            h -= p * p.log2();
        }
    }
    h
}

/// Incremental entropy estimator that can be fed chunks as a buffer fills,
/// so the flush path does not rescan the whole buffer.
///
/// This mirrors NEPTUNE's object-reuse discipline: one estimator per link,
/// [`reset`](EntropyEstimator::reset) after each flush, no per-batch
/// allocation.
#[derive(Debug, Clone)]
pub struct EntropyEstimator {
    counts: [u64; 256],
    total: u64,
}

impl Default for EntropyEstimator {
    fn default() -> Self {
        Self::new()
    }
}

impl EntropyEstimator {
    /// New empty estimator.
    pub fn new() -> Self {
        EntropyEstimator { counts: [0; 256], total: 0 }
    }

    /// Account for one chunk of payload bytes.
    pub fn update(&mut self, chunk: &[u8]) {
        for &b in chunk {
            self.counts[b as usize] += 1;
        }
        self.total += chunk.len() as u64;
    }

    /// Current entropy estimate in bits/byte.
    pub fn entropy(&self) -> f64 {
        entropy_of_counts(&self.counts, self.total)
    }

    /// Number of bytes accounted so far.
    pub fn total_bytes(&self) -> u64 {
        self.total
    }

    /// Clear all counts for reuse on the next batch.
    pub fn reset(&mut self) {
        self.counts = [0; 256];
        self.total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(shannon_entropy(&[]), 0.0);
    }

    #[test]
    fn constant_input_is_zero() {
        assert_eq!(shannon_entropy(&[42u8; 1000]), 0.0);
    }

    #[test]
    fn two_symbols_equal_is_one_bit() {
        let data: Vec<u8> = (0..1000).map(|i| (i % 2) as u8).collect();
        assert!((shannon_entropy(&data) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_bytes_are_eight_bits() {
        let data: Vec<u8> = (0..=255u8).cycle().take(256 * 16).collect();
        assert!((shannon_entropy(&data) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn skewed_distribution_matches_formula() {
        // 3/4 of one symbol, 1/4 of another: H = 0.75*log2(4/3)+0.25*2 = 0.8113
        let mut data = vec![0u8; 750];
        data.extend(vec![1u8; 250]);
        let expected = -(0.75f64 * 0.75f64.log2() + 0.25 * 0.25f64.log2());
        assert!((shannon_entropy(&data) - expected).abs() < 1e-12);
    }

    #[test]
    fn incremental_matches_batch() {
        let data: Vec<u8> = (0..4096).map(|i| ((i * 7 + i / 13) % 256) as u8).collect();
        let mut est = EntropyEstimator::new();
        for chunk in data.chunks(100) {
            est.update(chunk);
        }
        assert!((est.entropy() - shannon_entropy(&data)).abs() < 1e-12);
        assert_eq!(est.total_bytes(), 4096);
    }

    #[test]
    fn reset_clears_state() {
        let mut est = EntropyEstimator::new();
        est.update(&[1, 2, 3, 4]);
        est.reset();
        assert_eq!(est.total_bytes(), 0);
        assert_eq!(est.entropy(), 0.0);
        // Reusable after reset.
        est.update(&[9u8; 10]);
        assert_eq!(est.entropy(), 0.0);
        assert_eq!(est.total_bytes(), 10);
    }

    #[test]
    fn entropy_is_bounded() {
        let samples: Vec<Vec<u8>> = vec![
            (0..100).map(|i| (i * 31) as u8).collect(),
            vec![0, 255, 0, 255, 1],
            b"the quick brown fox".to_vec(),
        ];
        for s in samples {
            let h = shannon_entropy(&s);
            assert!((0.0..=8.0).contains(&h), "entropy {h} out of range");
        }
    }
}
