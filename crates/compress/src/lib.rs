//! # neptune-compress
//!
//! Compression substrate for the NEPTUNE reproduction.
//!
//! §III-B5 of the paper: *"NEPTUNE incorporates support for entropy based
//! dynamic compression. ... NEPTUNE employs a selective compression scheme
//! that compresses a payload only if its entropy is less than a configurable
//! threshold. To reduce the latency that can be introduced by compression,
//! we used the LZ4 compression algorithm."*
//!
//! The paper used the reference LZ4 library; this crate reimplements the
//! **LZ4 block format from scratch** (hash-table greedy compressor plus a
//! bounds-checked decompressor), a byte-level **Shannon entropy estimator**,
//! and the **selective compression policy** that stamps each payload with a
//! one-byte codec tag so the receiver knows whether to decompress.
//!
//! ```
//! use neptune_compress::{SelectiveCompressor, CompressionDecision};
//!
//! let low_entropy = vec![7u8; 4096];
//! let policy = SelectiveCompressor::new(4.0); // bits/byte threshold
//! let framed = policy.encode(&low_entropy);
//! assert!(matches!(framed.decision, CompressionDecision::Compressed { .. }));
//! let restored = SelectiveCompressor::decode(&framed.payload).unwrap();
//! assert_eq!(restored, low_entropy);
//! ```

pub mod entropy;
pub mod lz4;
pub mod selective;

pub use entropy::{shannon_entropy, EntropyEstimator};
pub use lz4::{compress, compress_into, decompress, decompress_into, max_compressed_len, Lz4Error};
pub use selective::{CompressionDecision, FramedPayload, SelectiveCompressor, TAG_LZ4, TAG_RAW};
