//! From-scratch implementation of the LZ4 *block* format.
//!
//! Format recap (per the official block-format specification): a block is a
//! series of *sequences*. Each sequence is
//!
//! ```text
//! | token | [literal-length bytes] | literals | offset(2, LE) | [match-length bytes] |
//! ```
//!
//! * token high nibble = literal length (15 ⇒ continued in extra bytes of
//!   255 until a byte < 255),
//! * token low nibble  = match length − 4 (15 ⇒ continued the same way),
//! * offset is the back-reference distance, 1..=65535 (0 is invalid),
//! * the final sequence holds only literals (no offset / match length),
//! * matches are at least 4 bytes (`MIN_MATCH`), and per the spec the last
//!   match must end at least 12 bytes before the end of the block
//!   (`MF_LIMIT`), with the last 5 bytes always literal.
//!
//! The compressor is the classic single-pass greedy scheme with a 4-byte
//! hash table — the same strategy as the reference `LZ4_compress_default`.
//! It always produces valid, spec-conformant blocks; the compression ratio
//! on low-entropy IoT sensor batches is what the paper's selective scheme
//! exploits.

/// Minimum length of an LZ4 match.
const MIN_MATCH: usize = 4;
/// The last match must start at least this many bytes before block end.
const MF_LIMIT: usize = 12;
/// The last 5 bytes of a block must be literals.
const LAST_LITERALS: usize = 5;
/// Log2 of the compressor hash-table size.
const HASH_LOG: usize = 16;
/// Maximum back-reference distance representable in the 2-byte offset.
const MAX_DISTANCE: usize = 65_535;

/// Errors produced while decoding an LZ4 block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lz4Error {
    /// The input ended in the middle of a sequence.
    TruncatedInput,
    /// A match offset of zero, or one pointing before the block start.
    InvalidOffset {
        /// The offending offset.
        offset: usize,
        /// Output cursor position when it was encountered.
        position: usize,
    },
    /// Decoded output exceeded the destination buffer.
    OutputOverflow {
        /// Bytes the sequence needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
}

impl std::fmt::Display for Lz4Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Lz4Error::TruncatedInput => write!(f, "lz4: truncated input"),
            Lz4Error::InvalidOffset { offset, position } => {
                write!(f, "lz4: invalid offset {offset} at output position {position}")
            }
            Lz4Error::OutputOverflow { needed, available } => {
                write!(f, "lz4: output overflow (needed {needed}, available {available})")
            }
        }
    }
}

impl std::error::Error for Lz4Error {}

/// Worst-case compressed size for `len` input bytes
/// (`len + len/255 + 16`, matching `LZ4_compressBound`).
pub fn max_compressed_len(len: usize) -> usize {
    len + len / 255 + 16
}

#[inline]
fn hash4(bytes: &[u8]) -> usize {
    // Fibonacci hashing of the 4-byte little-endian word, as in reference LZ4.
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    ((v.wrapping_mul(2_654_435_761)) >> (32 - HASH_LOG)) as usize
}

#[inline]
fn read_u32(bytes: &[u8], i: usize) -> u32 {
    u32::from_le_bytes([bytes[i], bytes[i + 1], bytes[i + 2], bytes[i + 3]])
}

/// Append an LZ4 length continuation (`255, 255, ..., rest`).
#[inline]
fn push_length(out: &mut Vec<u8>, mut len: usize) {
    while len >= 255 {
        out.push(255);
        len -= 255;
    }
    out.push(len as u8);
}

/// Compress `input` into a freshly allocated LZ4 block.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(max_compressed_len(input.len()));
    compress_into(input, &mut out);
    out
}

/// Compress `input`, appending the block to `out` (which is *not* cleared —
/// the NEPTUNE output buffers reuse one workhorse vector per link, per the
/// paper's object-reuse scheme).
pub fn compress_into(input: &[u8], out: &mut Vec<u8>) {
    let n = input.len();
    // Blocks too small to contain a legal match are emitted as one literal run.
    if n < MF_LIMIT + 1 {
        emit_final_literals(input, 0, out);
        return;
    }

    let mut table = vec![0u32; 1 << HASH_LOG];
    // `table` stores position+1 so 0 means "empty".
    let mut anchor = 0usize; // start of pending literals
    let mut i = 0usize;
    let match_limit = n - MF_LIMIT; // last position where a match may start

    while i <= match_limit {
        let h = hash4(&input[i..]);
        let candidate = table[h] as usize;
        table[h] = (i + 1) as u32;
        if candidate != 0 {
            let cand = candidate - 1;
            if i - cand <= MAX_DISTANCE && read_u32(input, cand) == read_u32(input, i) {
                // Extend the match forward; it may not run into the final
                // LAST_LITERALS region.
                let max_len = n - LAST_LITERALS - i;
                let mut len = MIN_MATCH;
                while len < max_len && input[cand + len] == input[i + len] {
                    len += 1;
                }
                if len >= MIN_MATCH {
                    emit_sequence(input, anchor, i, i - cand, len, out);
                    i += len;
                    anchor = i;
                    // Prime the table with a position inside the match so
                    // runs keep matching (cheap approximation of the
                    // reference's two-position insert).
                    if i <= match_limit && i >= 2 {
                        let back = i - 2;
                        table[hash4(&input[back..])] = (back + 1) as u32;
                    }
                    continue;
                }
            }
        }
        i += 1;
    }
    emit_final_literals(input, anchor, out);
}

/// Emit one literal+match sequence.
fn emit_sequence(
    input: &[u8],
    anchor: usize,
    match_start: usize,
    offset: usize,
    match_len: usize,
    out: &mut Vec<u8>,
) {
    debug_assert!(match_len >= MIN_MATCH);
    debug_assert!((1..=MAX_DISTANCE).contains(&offset));
    let lit_len = match_start - anchor;
    let ml_code = match_len - MIN_MATCH;
    let token_lit = lit_len.min(15) as u8;
    let token_ml = ml_code.min(15) as u8;
    out.push((token_lit << 4) | token_ml);
    if lit_len >= 15 {
        push_length(out, lit_len - 15);
    }
    out.extend_from_slice(&input[anchor..match_start]);
    out.extend_from_slice(&(offset as u16).to_le_bytes());
    if ml_code >= 15 {
        push_length(out, ml_code - 15);
    }
}

/// Emit the final literals-only sequence.
fn emit_final_literals(input: &[u8], anchor: usize, out: &mut Vec<u8>) {
    let lit_len = input.len() - anchor;
    let token_lit = lit_len.min(15) as u8;
    out.push(token_lit << 4);
    if lit_len >= 15 {
        push_length(out, lit_len - 15);
    }
    out.extend_from_slice(&input[anchor..]);
}

/// Decompress a block into a freshly allocated vector. `decompressed_len`
/// must be the exact original length (NEPTUNE's frame header carries it).
pub fn decompress(block: &[u8], decompressed_len: usize) -> Result<Vec<u8>, Lz4Error> {
    let mut out = Vec::with_capacity(decompressed_len);
    decompress_into(block, decompressed_len, &mut out)?;
    Ok(out)
}

/// Decompress appending to `out` (not cleared). Fails if the block does not
/// decode to exactly `decompressed_len` bytes.
pub fn decompress_into(
    block: &[u8],
    decompressed_len: usize,
    out: &mut Vec<u8>,
) -> Result<(), Lz4Error> {
    let start = out.len();
    let limit = start + decompressed_len;
    let mut i = 0usize;

    loop {
        let token = *block.get(i).ok_or(Lz4Error::TruncatedInput)?;
        i += 1;

        // Literal run.
        let mut lit_len = (token >> 4) as usize;
        if lit_len == 15 {
            lit_len += read_length(block, &mut i)?;
        }
        if i + lit_len > block.len() {
            return Err(Lz4Error::TruncatedInput);
        }
        if out.len() + lit_len > limit {
            return Err(Lz4Error::OutputOverflow {
                needed: out.len() + lit_len - start,
                available: decompressed_len,
            });
        }
        out.extend_from_slice(&block[i..i + lit_len]);
        i += lit_len;

        // Final sequence: literals only, input exhausted.
        if i == block.len() {
            break;
        }

        // Match part.
        if i + 2 > block.len() {
            return Err(Lz4Error::TruncatedInput);
        }
        let offset = u16::from_le_bytes([block[i], block[i + 1]]) as usize;
        i += 2;
        let produced = out.len() - start;
        if offset == 0 || offset > produced {
            return Err(Lz4Error::InvalidOffset { offset, position: produced });
        }
        let mut match_len = (token & 0x0F) as usize;
        if match_len == 15 {
            match_len += read_length(block, &mut i)?;
        }
        match_len += MIN_MATCH;
        if out.len() + match_len > limit {
            return Err(Lz4Error::OutputOverflow {
                needed: out.len() + match_len - start,
                available: decompressed_len,
            });
        }
        // Byte-by-byte copy handles overlapping matches (offset < match_len),
        // which is how LZ4 encodes runs.
        for src in out.len() - offset..out.len() - offset + match_len {
            let b = out[src];
            out.push(b);
        }
    }

    if out.len() != limit {
        return Err(Lz4Error::OutputOverflow {
            needed: out.len() - start,
            available: decompressed_len,
        });
    }
    Ok(())
}

/// Read an LZ4 length continuation.
#[inline]
fn read_length(block: &[u8], i: &mut usize) -> Result<usize, Lz4Error> {
    let mut total = 0usize;
    loop {
        let b = *block.get(*i).ok_or(Lz4Error::TruncatedInput)?;
        *i += 1;
        total += b as usize;
        if b != 255 {
            return Ok(total);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> Vec<u8> {
        let c = compress(data);
        assert!(c.len() <= max_compressed_len(data.len()), "bound violated");
        decompress(&c, data.len()).expect("decompress")
    }

    #[test]
    fn empty_input() {
        assert_eq!(roundtrip(&[]), Vec::<u8>::new());
    }

    #[test]
    fn tiny_inputs() {
        for n in 1..=16 {
            let data: Vec<u8> = (0..n as u8).collect();
            assert_eq!(roundtrip(&data), data, "len {n}");
        }
    }

    #[test]
    fn constant_run_compresses_well() {
        let data = vec![0xABu8; 10_000];
        let c = compress(&data);
        assert!(c.len() < 100, "constant run should compress >100x, got {}", c.len());
        assert_eq!(decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn repeating_pattern_compresses() {
        let pattern = b"sensor=42,valve=open;";
        let mut data = Vec::new();
        for _ in 0..500 {
            data.extend_from_slice(pattern);
        }
        let c = compress(&data);
        assert!(c.len() < data.len() / 4, "ratio too low: {} / {}", c.len(), data.len());
        assert_eq!(decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn incompressible_data_roundtrips() {
        // Simple xorshift PRNG for deterministic pseudo-random bytes.
        let mut state = 0x12345678u32;
        let data: Vec<u8> = (0..8192)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 17;
                state ^= state << 5;
                state as u8
            })
            .collect();
        let c = compress(&data);
        assert_eq!(decompress(&c, data.len()).unwrap(), data);
        // Random data should not shrink (slight expansion is expected).
        assert!(c.len() >= data.len());
    }

    #[test]
    fn long_literal_run_lengths_encoded() {
        // >15 literals before any match forces the length-continuation path.
        let mut data: Vec<u8> = (0..=255u8).collect(); // 256 distinct literals
        data.extend_from_slice(&[1u8; 64]); // then a compressible run
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn long_match_lengths_encoded() {
        // Matches far longer than 15+4 force match-length continuations.
        let mut data = vec![7u8; 1000];
        data.extend_from_slice(b"trailer-bytes");
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn overlapping_match_run_decodes() {
        // "abcabcabc..." produces matches with offset 3 < match_len.
        let mut data = Vec::new();
        for _ in 0..300 {
            data.extend_from_slice(b"abc");
        }
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn sensor_like_payload() {
        // Slowly-varying sensor readings — the paper's low-entropy case.
        let mut data = Vec::new();
        let mut v: i32 = 500;
        for t in 0..2000 {
            v += (t % 7) as i32 - 3;
            data.extend_from_slice(&(t as u64).to_le_bytes());
            data.extend_from_slice(&v.to_le_bytes());
            data.extend_from_slice(&[0u8; 4]); // padding fields
        }
        let c = compress(&data);
        assert!(c.len() < data.len() / 2, "sensor batch should compress 2x+");
        assert_eq!(decompress(&c, data.len()).unwrap(), data);
    }

    #[test]
    fn decompress_rejects_truncation() {
        let data = vec![9u8; 256];
        let mut c = compress(&data);
        c.truncate(c.len() - 1);
        let err = decompress(&c, data.len()).unwrap_err();
        assert!(
            matches!(err, Lz4Error::TruncatedInput | Lz4Error::OutputOverflow { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn decompress_rejects_zero_offset() {
        // token: 1 literal, match len 4; literal 'x'; offset 0.
        let block = [0x10, b'x', 0x00, 0x00];
        let err = decompress(&block, 5).unwrap_err();
        assert_eq!(err, Lz4Error::InvalidOffset { offset: 0, position: 1 });
    }

    #[test]
    fn decompress_rejects_offset_before_start() {
        // 1 literal then a match with offset 5 > produced bytes (1).
        let block = [0x10, b'x', 0x05, 0x00];
        let err = decompress(&block, 5).unwrap_err();
        assert!(matches!(err, Lz4Error::InvalidOffset { offset: 5, .. }));
    }

    #[test]
    fn decompress_rejects_wrong_declared_length() {
        let data = vec![3u8; 100];
        let c = compress(&data);
        assert!(decompress(&c, 99).is_err());
        assert!(decompress(&c, 101).is_err());
        assert!(decompress(&c, 100).is_ok());
    }

    #[test]
    fn decompress_into_appends_without_clearing() {
        let data = b"hello world hello world hello world".to_vec();
        let c = compress(&data);
        let mut out = b"prefix:".to_vec();
        decompress_into(&c, data.len(), &mut out).unwrap();
        assert_eq!(&out[..7], b"prefix:");
        assert_eq!(&out[7..], &data[..]);
    }

    #[test]
    fn compress_into_appends_without_clearing() {
        let data = vec![1u8; 100];
        let mut out = vec![0xEE];
        compress_into(&data, &mut out);
        assert_eq!(out[0], 0xEE);
        assert_eq!(decompress(&out[1..], 100).unwrap(), data);
    }

    #[test]
    fn boundary_sizes_around_mflimit() {
        // The spec's MF_LIMIT/LAST_LITERALS rules kick in near these sizes.
        for n in [11usize, 12, 13, 16, 17, 18, 19, 20, 64, 65] {
            let data = vec![5u8; n];
            assert_eq!(roundtrip(&data), data, "len {n}");
        }
    }
}
