//! Entropy-based selective compression policy (§III-B5).
//!
//! Each encoded payload is framed as:
//!
//! ```text
//! | tag (1B) | original_len (4B LE, only when tag == TAG_LZ4) | body |
//! ```
//!
//! `TAG_RAW` payloads carry the body verbatim; `TAG_LZ4` payloads carry an
//! LZ4 block plus the original length needed by the decompressor. The
//! decision is made per payload against a configurable entropy threshold,
//! exactly as the paper prescribes: *"compresses a payload only if its
//! entropy is less than a configurable threshold"*. The paper also notes the
//! decision should be made *per stream*: [`SelectiveCompressor`] is cheap to
//! construct, so the runtime holds one per link with that link's threshold.

use crate::entropy::shannon_entropy;
use crate::lz4;

/// Frame tag: body is uncompressed.
pub const TAG_RAW: u8 = 0;
/// Frame tag: body is an LZ4 block preceded by the 4-byte original length.
pub const TAG_LZ4: u8 = 1;

/// What the policy decided for a payload, with the evidence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CompressionDecision {
    /// Entropy at or above threshold (or compression disabled); sent raw.
    Raw {
        /// Measured entropy in bits/byte.
        entropy: f64,
    },
    /// Entropy below threshold and LZ4 produced a smaller frame.
    Compressed {
        /// Measured entropy in bits/byte.
        entropy: f64,
        /// Bytes before compression.
        original_len: usize,
        /// Bytes after compression (excluding frame header).
        compressed_len: usize,
    },
    /// Entropy was below threshold but LZ4 did not shrink the payload, so
    /// it was sent raw anyway (the expansion guard).
    Incompressible {
        /// Measured entropy in bits/byte.
        entropy: f64,
    },
}

/// An encoded payload plus the decision that produced it.
#[derive(Debug, Clone)]
pub struct FramedPayload {
    /// Frame bytes ready for the wire (tag + optional length + body).
    pub payload: Vec<u8>,
    /// The decision taken.
    pub decision: CompressionDecision,
}

impl FramedPayload {
    /// Bytes that will traverse the network for this payload.
    pub fn wire_len(&self) -> usize {
        self.payload.len()
    }
}

/// Errors from decoding a selective-compression frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Empty frame.
    Empty,
    /// Unknown tag byte.
    UnknownTag(u8),
    /// Frame too short for its declared layout.
    Truncated,
    /// Inner LZ4 block failed to decode.
    Lz4(lz4::Lz4Error),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Empty => write!(f, "selective: empty frame"),
            DecodeError::UnknownTag(t) => write!(f, "selective: unknown tag {t}"),
            DecodeError::Truncated => write!(f, "selective: truncated frame"),
            DecodeError::Lz4(e) => write!(f, "selective: {e}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// The per-link selective compression policy.
#[derive(Debug, Clone, Copy)]
pub struct SelectiveCompressor {
    /// Payloads with entropy strictly below this (bits/byte) are compressed.
    threshold_bits_per_byte: f64,
    /// Master switch: when false every payload is framed raw.
    enabled: bool,
}

impl SelectiveCompressor {
    /// Policy that compresses payloads with entropy below
    /// `threshold_bits_per_byte` (0..=8).
    pub fn new(threshold_bits_per_byte: f64) -> Self {
        assert!(
            (0.0..=8.0).contains(&threshold_bits_per_byte),
            "entropy threshold must be within [0, 8] bits/byte"
        );
        SelectiveCompressor { threshold_bits_per_byte, enabled: true }
    }

    /// Policy with compression disabled entirely (the paper's recommended
    /// setting for high-entropy streams).
    pub fn disabled() -> Self {
        SelectiveCompressor { threshold_bits_per_byte: 0.0, enabled: false }
    }

    /// Policy that compresses everything regardless of entropy (used by the
    /// ablation study to measure the cost the selective scheme avoids).
    pub fn always() -> Self {
        SelectiveCompressor { threshold_bits_per_byte: 8.0, enabled: true }
    }

    /// The configured threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold_bits_per_byte
    }

    /// Whether compression may ever run under this policy.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Encode one payload according to the policy.
    pub fn encode(&self, payload: &[u8]) -> FramedPayload {
        let mut out = Vec::with_capacity(payload.len() + 8);
        let decision = self.encode_into(payload, &mut out);
        FramedPayload { payload: out, decision }
    }

    /// Encode appending into a reusable buffer; returns the decision.
    pub fn encode_into(&self, payload: &[u8], out: &mut Vec<u8>) -> CompressionDecision {
        if !self.enabled {
            out.push(TAG_RAW);
            out.extend_from_slice(payload);
            return CompressionDecision::Raw { entropy: f64::NAN };
        }
        let entropy = shannon_entropy(payload);
        // `always()` uses threshold 8.0; a uniform-random payload has
        // entropy exactly 8.0, so treat the max threshold as inclusive.
        let should = entropy < self.threshold_bits_per_byte
            || (self.threshold_bits_per_byte >= 8.0 && !payload.is_empty());
        if !should {
            out.push(TAG_RAW);
            out.extend_from_slice(payload);
            return CompressionDecision::Raw { entropy };
        }
        let mark = out.len();
        out.push(TAG_LZ4);
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        lz4::compress_into(payload, out);
        let compressed_len = out.len() - mark - 5;
        if compressed_len >= payload.len() {
            // Expansion guard: fall back to raw.
            out.truncate(mark);
            out.push(TAG_RAW);
            out.extend_from_slice(payload);
            return CompressionDecision::Incompressible { entropy };
        }
        CompressionDecision::Compressed { entropy, original_len: payload.len(), compressed_len }
    }

    /// Decode a frame produced by any policy (the tag is self-describing).
    pub fn decode(frame: &[u8]) -> Result<Vec<u8>, DecodeError> {
        let mut out = Vec::new();
        Self::decode_into(frame, &mut out)?;
        Ok(out)
    }

    /// Decode appending into a reusable buffer.
    pub fn decode_into(frame: &[u8], out: &mut Vec<u8>) -> Result<(), DecodeError> {
        let (&tag, body) = frame.split_first().ok_or(DecodeError::Empty)?;
        match tag {
            TAG_RAW => {
                out.extend_from_slice(body);
                Ok(())
            }
            TAG_LZ4 => {
                if body.len() < 4 {
                    return Err(DecodeError::Truncated);
                }
                let len = u32::from_le_bytes([body[0], body[1], body[2], body[3]]) as usize;
                lz4::decompress_into(&body[4..], len, out).map_err(DecodeError::Lz4)
            }
            other => Err(DecodeError::UnknownTag(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_bytes(n: usize) -> Vec<u8> {
        let mut state = 0x9E3779B9u64;
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 33) as u8
            })
            .collect()
    }

    #[test]
    fn low_entropy_gets_compressed() {
        let data = vec![3u8; 4096];
        let f = SelectiveCompressor::new(4.0).encode(&data);
        match f.decision {
            CompressionDecision::Compressed { entropy, original_len, compressed_len } => {
                assert_eq!(entropy, 0.0);
                assert_eq!(original_len, 4096);
                assert!(compressed_len < 100);
            }
            other => panic!("expected compression, got {other:?}"),
        }
        assert!(f.wire_len() < 200);
        assert_eq!(SelectiveCompressor::decode(&f.payload).unwrap(), data);
    }

    #[test]
    fn high_entropy_stays_raw() {
        let data = random_bytes(4096);
        let f = SelectiveCompressor::new(4.0).encode(&data);
        assert!(matches!(f.decision, CompressionDecision::Raw { entropy } if entropy > 7.5));
        assert_eq!(f.wire_len(), data.len() + 1);
        assert_eq!(SelectiveCompressor::decode(&f.payload).unwrap(), data);
    }

    #[test]
    fn disabled_never_compresses() {
        let data = vec![0u8; 1000];
        let f = SelectiveCompressor::disabled().encode(&data);
        assert!(matches!(f.decision, CompressionDecision::Raw { .. }));
        assert_eq!(f.payload[0], TAG_RAW);
        assert_eq!(SelectiveCompressor::decode(&f.payload).unwrap(), data);
    }

    #[test]
    fn always_compresses_even_random_but_guards_expansion() {
        let data = random_bytes(2048);
        let f = SelectiveCompressor::always().encode(&data);
        // Random data expands under LZ4, so the guard must kick in.
        assert!(matches!(f.decision, CompressionDecision::Incompressible { .. }));
        assert_eq!(SelectiveCompressor::decode(&f.payload).unwrap(), data);
    }

    #[test]
    fn always_compresses_sensor_like_data() {
        let mut data = Vec::new();
        for i in 0..1000u32 {
            data.extend_from_slice(&(i / 50).to_le_bytes());
        }
        let f = SelectiveCompressor::always().encode(&data);
        assert!(matches!(f.decision, CompressionDecision::Compressed { .. }));
        assert_eq!(SelectiveCompressor::decode(&f.payload).unwrap(), data);
    }

    #[test]
    fn empty_payload_roundtrips() {
        for policy in [
            SelectiveCompressor::new(4.0),
            SelectiveCompressor::disabled(),
            SelectiveCompressor::always(),
        ] {
            let f = policy.encode(&[]);
            assert_eq!(SelectiveCompressor::decode(&f.payload).unwrap(), Vec::<u8>::new());
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(SelectiveCompressor::decode(&[]).unwrap_err(), DecodeError::Empty);
        assert_eq!(
            SelectiveCompressor::decode(&[77, 1, 2]).unwrap_err(),
            DecodeError::UnknownTag(77)
        );
        assert_eq!(
            SelectiveCompressor::decode(&[TAG_LZ4, 1, 2]).unwrap_err(),
            DecodeError::Truncated
        );
        assert!(matches!(
            SelectiveCompressor::decode(&[TAG_LZ4, 10, 0, 0, 0, 0xFF]).unwrap_err(),
            DecodeError::Lz4(_)
        ));
    }

    #[test]
    fn threshold_boundary_behaviour() {
        // Two-symbol data has entropy exactly 1.0; threshold is strict.
        let data: Vec<u8> = (0..2048).map(|i| (i % 2) as u8).collect();
        let at = SelectiveCompressor::new(1.0).encode(&data);
        assert!(matches!(at.decision, CompressionDecision::Raw { .. }));
        let above = SelectiveCompressor::new(1.01).encode(&data);
        assert!(matches!(above.decision, CompressionDecision::Compressed { .. }));
    }

    #[test]
    #[should_panic(expected = "within [0, 8]")]
    fn rejects_out_of_range_threshold() {
        SelectiveCompressor::new(9.0);
    }

    #[test]
    fn encode_into_reuses_buffer() {
        let policy = SelectiveCompressor::new(4.0);
        let mut buf = Vec::new();
        policy.encode_into(&[1u8; 100], &mut buf);
        let first_len = buf.len();
        buf.clear();
        policy.encode_into(&[2u8; 100], &mut buf);
        assert_eq!(buf.len(), first_len);
    }
}
