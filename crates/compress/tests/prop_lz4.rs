//! Property-based tests for the from-scratch LZ4 codec and the selective
//! compression framing.
//!
//! Invariants:
//! 1. compress → decompress is the identity for arbitrary byte vectors.
//! 2. compressed size never exceeds `max_compressed_len`.
//! 3. selective framing round-trips under every policy.
//! 4. the decompressor never panics on arbitrary (possibly corrupt) input —
//!    it either errors or returns bytes, but must stay memory-safe.

use neptune_compress::{
    compress, decompress, max_compressed_len, shannon_entropy, SelectiveCompressor,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn roundtrip_arbitrary(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let c = compress(&data);
        prop_assert!(c.len() <= max_compressed_len(data.len()));
        let d = decompress(&c, data.len()).unwrap();
        prop_assert_eq!(d, data);
    }

    #[test]
    fn roundtrip_low_entropy(
        byte in any::<u8>(),
        runs in proptest::collection::vec((any::<u8>(), 1usize..200), 0..50),
    ) {
        // Runs of repeated bytes — the compressible regime.
        let mut data = vec![byte; 16];
        for (b, n) in runs {
            data.extend(std::iter::repeat_n(b, n));
        }
        let c = compress(&data);
        let d = decompress(&c, data.len()).unwrap();
        prop_assert_eq!(d, data);
    }

    #[test]
    fn roundtrip_structured_records(
        n_records in 0usize..300,
        base in any::<u32>(),
        step in 0u32..16,
    ) {
        // Fixed-layout records with slowly changing values, like buffered
        // IoT sensor packets.
        let mut data = Vec::new();
        for i in 0..n_records as u32 {
            data.extend_from_slice(&(base.wrapping_add(i * step)).to_le_bytes());
            data.extend_from_slice(&i.to_le_bytes());
            data.push(0);
        }
        let c = compress(&data);
        let d = decompress(&c, data.len()).unwrap();
        prop_assert_eq!(d, data);
    }

    #[test]
    fn selective_roundtrip_any_policy(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        threshold in 0.0f64..=8.0,
        mode in 0u8..3,
    ) {
        let policy = match mode {
            0 => SelectiveCompressor::new(threshold),
            1 => SelectiveCompressor::disabled(),
            _ => SelectiveCompressor::always(),
        };
        let framed = policy.encode(&data);
        let decoded = SelectiveCompressor::decode(&framed.payload).unwrap();
        prop_assert_eq!(decoded, data);
    }

    #[test]
    fn decompressor_never_panics_on_garbage(
        block in proptest::collection::vec(any::<u8>(), 0..512),
        declared_len in 0usize..1024,
    ) {
        // Must not panic; any Result is acceptable.
        let _ = decompress(&block, declared_len);
    }

    #[test]
    fn selective_decoder_never_panics_on_garbage(
        frame in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let _ = SelectiveCompressor::decode(&frame);
    }

    #[test]
    fn entropy_bounded_and_permutation_invariant(
        mut data in proptest::collection::vec(any::<u8>(), 1..2048),
    ) {
        let h = shannon_entropy(&data);
        prop_assert!((0.0..=8.0 + 1e-9).contains(&h));
        data.reverse();
        let h2 = shannon_entropy(&data);
        prop_assert!((h - h2).abs() < 1e-12, "entropy must be order-invariant");
    }
}
