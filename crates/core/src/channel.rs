//! Channels: the runtime fabric of a link.
//!
//! A *link* connects two operators; with parallelism it fans out into
//! `src_instances x dst_instances` **channels**. Each channel owns:
//!
//! * an [`OutputBuffer`] on the sending side (application-level buffering,
//!   §III-B1), governed by its link's retunable flush policy,
//! * a built [`Link`] stack — transport flavour (in-process or TCP),
//!   optional trace tagging, optional reliability — that blocks under
//!   backpressure (§III-B4),
//! * contiguous per-channel sequence numbers that let the receiver verify
//!   in-order, exactly-once delivery (§I-B's correctness requirement).
//!
//! The channel's buffer mutex is held across the flush-and-dispatch step
//! on purpose: batches of one channel must reach the transport in flush
//! order, or sequence validation downstream would flag reordering.

use crate::metrics::OperatorCounters;
use neptune_link::{Link, TraceTagger};
use neptune_net::buffer::{FlushedBatch, OutputBuffer, PushOutcome};
use neptune_net::transport::TransportError;
use neptune_net::watermark::WatermarkQueue;
use neptune_telemetry::{OperatorTelemetry, SpanRing};
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Identifies one channel: `(link index, source instance, destination
/// instance)` packed into a u64 for the wire header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChannelId(u64);

impl ChannelId {
    /// Pack a channel id.
    pub fn new(link: u16, src_instance: u16, dst_instance: u16) -> Self {
        ChannelId(((link as u64) << 32) | ((src_instance as u64) << 16) | dst_instance as u64)
    }

    /// Unpack from the wire representation.
    pub fn from_raw(raw: u64) -> Self {
        ChannelId(raw)
    }

    /// Wire representation.
    pub fn raw(&self) -> u64 {
        self.0
    }

    /// Link index within the graph.
    pub fn link(&self) -> u16 {
        (self.0 >> 32) as u16
    }

    /// Sending instance index.
    pub fn src_instance(&self) -> u16 {
        (self.0 >> 16) as u16
    }

    /// Receiving instance index.
    pub fn dst_instance(&self) -> u16 {
        self.0 as u16
    }
}

/// Errors surfaced to emitting operators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmitError {
    /// The downstream endpoint has been closed (job stopping).
    Closed,
    /// The packet could not be serialized.
    Codec(String),
    /// Transport-level failure.
    Transport(String),
}

impl std::fmt::Display for EmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmitError::Closed => write!(f, "downstream closed"),
            EmitError::Codec(m) => write!(f, "codec error: {m}"),
            EmitError::Transport(m) => write!(f, "transport error: {m}"),
        }
    }
}

impl std::error::Error for EmitError {}

/// The sending half of one channel: an [`OutputBuffer`] feeding a built
/// [`Link`] stack.
pub struct ChannelEndpoint {
    channel: ChannelId,
    buffer: Mutex<OutputBuffer>,
    /// Mirror of "the buffer holds at least one message", maintained under
    /// the buffer lock. Lets the flusher thread skip idle endpoints with a
    /// single atomic load instead of taking every buffer mutex each tick.
    has_data: AtomicBool,
    /// Set once the downstream link fails terminally (dispatch error or an
    /// explicit [`fail_link`](Self::fail_link)). Emitters fast-fail with
    /// [`EmitError::Closed`] instead of buffering into a black hole.
    failed: AtomicBool,
    /// The link stack batches are dispatched into: tagging, optional
    /// reliability, transport.
    link: Arc<Link>,
    /// Counters of the *sending* operator.
    counters: Arc<OperatorCounters>,
    /// Stage recorder of the *sending* operator (ISSUE 2). `None` keeps
    /// the dispatch path free of clock reads entirely.
    telemetry: Option<Arc<OperatorTelemetry>>,
    /// Installed by the runtime's IO tier: invoked when a push starts the
    /// flush-deadline clock (the buffer went empty → non-empty), so the
    /// endpoint's flush task can park on the *exact* deadline via the
    /// timer wheel instead of a scan tick. Called with the buffer lock
    /// held — the waker must only wake an IO task, never take buffer or
    /// queue locks.
    flush_waker: RwLock<Option<Arc<dyn Fn() + Send + Sync>>>,
}

impl ChannelEndpoint {
    /// Assemble a channel endpoint over a built link. `telemetry`, when
    /// given, receives the buffer-wait stage of every flushed batch and
    /// turns on sent-at stamping for transport-latency measurement
    /// downstream.
    pub fn new(
        channel: ChannelId,
        buffer: OutputBuffer,
        link: Arc<Link>,
        counters: Arc<OperatorCounters>,
        telemetry: Option<Arc<OperatorTelemetry>>,
    ) -> Self {
        ChannelEndpoint {
            channel,
            buffer: Mutex::new(buffer),
            has_data: AtomicBool::new(false),
            failed: AtomicBool::new(false),
            link,
            counters,
            telemetry,
            flush_waker: RwLock::new(None),
        }
    }

    /// Install causal tracing (ISSUE 7): the sampled-discipline tagger of
    /// the link stack. `track` is this operator's span track; `originate`
    /// makes the endpoint mint trace ids for sampled sequence numbers
    /// (source-operator endpoints only).
    pub fn set_tracing(&self, ring: Arc<SpanRing>, track: u16, originate: bool) {
        self.link.set_tagger(TraceTagger::sampled(ring, track, originate));
    }

    /// Propagate an inbound packet's trace id onto the batch currently
    /// building in this endpoint's buffer. No-op when tracing is off.
    pub fn tag_trace(&self, trace_id: u64) {
        self.link.tag_inbound(trace_id);
    }

    /// The channel this endpoint serves.
    pub fn channel(&self) -> ChannelId {
        self.channel
    }

    /// The link stack this endpoint dispatches into (stats export, QoS).
    pub fn link(&self) -> &Arc<Link> {
        &self.link
    }

    /// Install the IO-tier waker poked whenever this endpoint's buffer
    /// goes from empty to non-empty (the moment a flush deadline starts
    /// ticking).
    pub fn set_flush_waker(&self, f: impl Fn() + Send + Sync + 'static) {
        *self.flush_waker.write() = Some(Arc::new(f));
    }

    /// Deadline by which the currently buffered data must flush; `None`
    /// when the buffer is empty or the link has no flush timer.
    pub fn flush_deadline(&self) -> Option<Instant> {
        self.buffer.lock().flush_deadline()
    }

    /// The destination watermark queue for an in-process link; `None` for
    /// TCP channels (their backpressure lives in the sender's IO queue).
    pub fn inproc_queue(&self) -> Option<&Arc<WatermarkQueue<neptune_net::frame::Frame>>> {
        self.link.queue()
    }

    /// Buffer one serialized packet; dispatches a batch if the push filled
    /// the buffer. Blocks under downstream backpressure.
    pub fn push(&self, message: &[u8]) -> Result<(), EmitError> {
        if self.failed.load(Ordering::Acquire) {
            return Err(EmitError::Closed);
        }
        let mut buf = self.buffer.lock();
        let outcome = buf.push(message);
        self.after_push(&mut buf, outcome)
    }

    /// Buffer one packet that already carries its 4-byte length prefix —
    /// the serialize-once fan-out path ([`crate::operator::OperatorContext`]
    /// encodes `[len | bytes]` once and appends the same slice to every
    /// destination endpoint).
    pub fn push_preencoded(&self, prefixed: &[u8]) -> Result<(), EmitError> {
        if self.failed.load(Ordering::Acquire) {
            return Err(EmitError::Closed);
        }
        let mut buf = self.buffer.lock();
        let outcome = buf.push_prefixed(prefixed);
        self.after_push(&mut buf, outcome)
    }

    fn after_push(&self, buf: &mut OutputBuffer, outcome: PushOutcome) -> Result<(), EmitError> {
        match outcome {
            PushOutcome::Buffered => {
                let was_empty = !self.has_data.swap(true, Ordering::AcqRel);
                if was_empty {
                    if let Some(waker) = self.flush_waker.read().as_ref() {
                        waker();
                    }
                }
                Ok(())
            }
            PushOutcome::Flush(batch) => {
                self.has_data.store(false, Ordering::Release);
                self.dispatch(buf, batch)
            }
        }
    }

    /// Timer path: flush if the oldest buffered message is older than the
    /// link's flush interval. Cheap when idle: an empty endpoint is skipped
    /// on an atomic load, without touching the buffer mutex.
    pub fn flush_if_due(&self, now: Instant) -> Result<(), EmitError> {
        if !self.has_data.load(Ordering::Acquire) {
            return Ok(());
        }
        if self.failed.load(Ordering::Acquire) {
            return Err(EmitError::Closed);
        }
        let mut buf = self.buffer.lock();
        match buf.take_if_due(now) {
            Some(batch) => {
                self.has_data.store(false, Ordering::Release);
                self.dispatch(&mut buf, batch)
            }
            None => Ok(()),
        }
    }

    /// Unconditional flush (teardown / explicit).
    pub fn force_flush(&self) -> Result<(), EmitError> {
        if self.failed.load(Ordering::Acquire) {
            return Err(EmitError::Closed);
        }
        let mut buf = self.buffer.lock();
        match buf.force_flush() {
            Some(batch) => {
                self.has_data.store(false, Ordering::Release);
                self.dispatch(&mut buf, batch)
            }
            None => Ok(()),
        }
    }

    /// Emit an aligned-snapshot barrier (ISSUE 10) behind everything
    /// buffered so far: force-flush pending data, then send the barrier
    /// control frame down the link stack. Barriers are control traffic —
    /// they bypass the output buffer, take no sequence number, and do not
    /// count toward `frames_out` (the settle invariant balances data
    /// frames only).
    pub fn barrier(&self, checkpoint_id: u64) -> Result<(), EmitError> {
        self.force_flush()?;
        self.link.barrier(checkpoint_id).map_err(|e| match e {
            TransportError::Closed => EmitError::Closed,
            other => EmitError::Transport(other.to_string()),
        })
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.buffer.lock().buffered_count() == 0
    }

    /// True once the downstream link failed (dispatch error or explicit
    /// [`fail_link`](Self::fail_link)).
    pub fn is_failed(&self) -> bool {
        self.failed.load(Ordering::Acquire)
    }

    /// Declare this channel's downstream link dead (the link supervisor
    /// exhausted its retries, or a fault was injected).
    ///
    /// Beyond marking the endpoint so emitters fast-fail, this closes an
    /// in-process destination queue: the backpressure gate only reopens
    /// on *consumption*, so a producer parked in `push_blocking` behind a
    /// closed high-watermark gate would otherwise wait forever on a link
    /// that will never drain. `WatermarkQueue::close` wakes every gated
    /// producer with an error, which surfaces here as
    /// [`EmitError::Closed`].
    pub fn fail_link(&self) {
        self.failed.store(true, Ordering::Release);
        self.link.close();
    }

    /// Dispatch a batch to the link. Called with the buffer lock held so
    /// batches leave in flush order (per-channel ordering invariant).
    fn dispatch(&self, buf: &mut OutputBuffer, batch: FlushedBatch) -> Result<(), EmitError> {
        let out = self.dispatch_inner(buf, batch);
        if out.is_err() {
            // A channel whose link errored is done: the transports behind
            // every flavour fail terminally, so later emits would only
            // block or error again. Latch the failure so they fast-fail.
            self.failed.store(true, Ordering::Release);
        }
        out
    }

    fn dispatch_inner(&self, buf: &mut OutputBuffer, batch: FlushedBatch) -> Result<(), EmitError> {
        let count = batch.count;
        let wait = batch.queueing_delay.as_micros() as u64;
        // Telemetry point (ISSUE 2): the buffer already measured how long
        // its oldest message waited; one wall-clock read per *batch* stamps
        // the frame so the receiver can split off transport time. Disabled
        // telemetry performs no clock reads here — the link's tagger stamps
        // lazily for traced batches.
        let sent_at = match &self.telemetry {
            Some(t) => {
                t.buffer_wait.record(wait);
                crate::now_micros()
            }
            None => 0,
        };
        let wire = self
            .link
            .send_batch(batch.base_seq, batch.encoded.clone(), count, sent_at, wait)
            .map_err(|e| match e {
                TransportError::Closed => EmitError::Closed,
                other => EmitError::Transport(other.to_string()),
            })?;
        // In-process flavours hand the same bytes to the receiver, which
        // recycles them once consumed — this call is then a refcount-gated
        // no-op. Wire flavours copy onto the wire, so the storage goes
        // straight back to the buffer (sole handle → reclaimed).
        buf.recycle(batch.encoded);
        self.link.stats().record_packets(count as u64);
        self.counters.frames_out.fetch_add(1, Ordering::Relaxed);
        self.counters.bytes_out.fetch_add(wire as u64, Ordering::Relaxed);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neptune_compress::SelectiveCompressor;
    use neptune_link::LinkBuilder;
    use neptune_net::frame::Frame;
    use neptune_net::watermark::{WatermarkConfig, WatermarkQueue};

    fn inproc_link(channel: ChannelId, queue: &Arc<WatermarkQueue<Frame>>) -> Arc<Link> {
        LinkBuilder::new(channel.raw()).in_process(queue.clone()).build()
    }

    fn make_inproc_endpoint(
        capacity: usize,
    ) -> (Arc<ChannelEndpoint>, Arc<WatermarkQueue<neptune_net::frame::Frame>>) {
        let queue = Arc::new(WatermarkQueue::new(WatermarkConfig::new(1 << 20, 1 << 10)));
        let channel = ChannelId::new(0, 0, 0);
        let endpoint = Arc::new(ChannelEndpoint::new(
            channel,
            OutputBuffer::new(capacity, Some(std::time::Duration::from_millis(5))),
            inproc_link(channel, &queue),
            Arc::new(OperatorCounters::default()),
            None,
        ));
        (endpoint, queue)
    }

    #[test]
    fn channel_id_packs_and_unpacks() {
        let id = ChannelId::new(7, 3, 12);
        assert_eq!(id.link(), 7);
        assert_eq!(id.src_instance(), 3);
        assert_eq!(id.dst_instance(), 12);
        assert_eq!(ChannelId::from_raw(id.raw()), id);
        // Distinct coordinates yield distinct ids.
        assert_ne!(ChannelId::new(7, 3, 12), ChannelId::new(7, 12, 3));
        assert_ne!(ChannelId::new(1, 0, 0), ChannelId::new(0, 1, 0));
    }

    #[test]
    fn push_buffers_until_capacity_then_delivers() {
        let (ep, q) = make_inproc_endpoint(64);
        for _ in 0..3 {
            ep.push(&[0u8; 10]).unwrap(); // 14 bytes each with prefix
        }
        assert!(q.is_empty(), "below capacity: nothing delivered");
        ep.push(&[0u8; 30]).unwrap(); // 76 bytes total >= 64
        let frame = q.pop().expect("batch delivered");
        assert_eq!(frame.messages.len(), 4);
        assert_eq!(frame.base_seq, 0);
    }

    #[test]
    fn sequence_numbers_continue_across_batches() {
        let (ep, q) = make_inproc_endpoint(16);
        for _ in 0..6 {
            ep.push(&[0u8; 16]).unwrap(); // every push flushes (20 >= 16)
        }
        let mut expected = 0u64;
        while let Some(f) = q.pop() {
            assert_eq!(f.base_seq, expected);
            expected += f.messages.len() as u64;
        }
        assert_eq!(expected, 6);
    }

    #[test]
    fn flush_if_due_and_force_flush() {
        let (ep, q) = make_inproc_endpoint(1 << 20);
        ep.push(b"slow").unwrap();
        ep.flush_if_due(Instant::now()).unwrap();
        assert!(q.is_empty(), "not due yet");
        std::thread::sleep(std::time::Duration::from_millis(8));
        ep.flush_if_due(Instant::now()).unwrap();
        assert_eq!(q.pop().unwrap().messages.len(), 1);

        ep.push(b"x").unwrap();
        assert!(!ep.is_empty());
        ep.force_flush().unwrap();
        assert!(ep.is_empty());
        assert_eq!(q.pop().unwrap().messages.len(), 1);
    }

    #[test]
    fn counters_track_frames_and_bytes() {
        let queue = Arc::new(WatermarkQueue::new(WatermarkConfig::new(1 << 20, 1 << 10)));
        let counters = Arc::new(OperatorCounters::default());
        let channel = ChannelId::new(0, 0, 0);
        let ep = ChannelEndpoint::new(
            channel,
            OutputBuffer::new(8, None),
            inproc_link(channel, &queue),
            counters.clone(),
            None,
        );
        ep.push(&[0u8; 8]).unwrap();
        ep.push(&[0u8; 8]).unwrap();
        assert_eq!(counters.frames_out.load(Ordering::Relaxed), 2);
        assert!(counters.bytes_out.load(Ordering::Relaxed) > 16);
        // The link's own stats bundle tracks the same dispatches.
        let snap = ep.link().stats_snapshot();
        assert_eq!(snap.flushes, 2);
        assert_eq!(snap.packets, 2);
        assert_eq!(snap.wire_bytes, counters.bytes_out.load(Ordering::Relaxed));
    }

    #[test]
    fn closed_downstream_surfaces_emit_error() {
        let (ep, q) = make_inproc_endpoint(8);
        q.close();
        assert_eq!(ep.push(&[0u8; 16]).unwrap_err(), EmitError::Closed);
    }

    #[test]
    fn fail_link_releases_producers_blocked_on_the_gate() {
        // Tiny watermark: the first delivered batch closes the gate, so
        // the second push parks inside the destination queue's
        // `push_blocking`. The gate only reopens on consumption — if the
        // link dies instead, `fail_link` must wake the parked producer
        // with `Closed` rather than leaving it deadlocked (ISSUE 3
        // satellite: link failure while the high-watermark gate is shut).
        let queue = Arc::new(WatermarkQueue::new(WatermarkConfig::new(8, 4)));
        let channel = ChannelId::new(0, 0, 0);
        let ep = Arc::new(ChannelEndpoint::new(
            channel,
            OutputBuffer::new(8, None),
            inproc_link(channel, &queue),
            Arc::new(OperatorCounters::default()),
            None,
        ));
        ep.push(&[0u8; 16]).unwrap(); // flushes immediately, closes the gate
        let gated = {
            let ep = ep.clone();
            std::thread::spawn(move || ep.push(&[0u8; 16]))
        };
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert!(!gated.is_finished(), "second producer must be gated, not dropped");
        ep.fail_link();
        assert_eq!(gated.join().unwrap().unwrap_err(), EmitError::Closed);
        assert!(ep.is_failed());
        assert_eq!(
            ep.push(&[0u8; 16]).unwrap_err(),
            EmitError::Closed,
            "endpoint fast-fails after link failure"
        );
        assert_eq!(ep.flush_if_due(Instant::now()), Ok(()), "idle endpoint stays cheap");
    }

    #[test]
    fn push_preencoded_matches_push() {
        let (ep, q) = make_inproc_endpoint(1 << 20);
        ep.push(b"plain").unwrap();
        let mut prefixed = 5u32.to_le_bytes().to_vec();
        prefixed.extend_from_slice(b"plain");
        ep.push_preencoded(&prefixed).unwrap();
        ep.force_flush().unwrap();
        let f = q.pop().unwrap();
        assert_eq!(f.messages, vec![b"plain".to_vec(), b"plain".to_vec()]);
        assert_eq!(f.base_seq, 0);
    }

    #[test]
    fn idle_endpoint_skips_flush_without_locking() {
        // White-box: an endpoint that never buffered anything keeps its
        // non-empty flag clear, and flush_if_due is a no-op returning Ok.
        let (ep, q) = make_inproc_endpoint(1 << 20);
        assert!(!ep.has_data.load(Ordering::Acquire));
        ep.flush_if_due(Instant::now()).unwrap();
        assert!(q.is_empty());
        ep.push(b"x").unwrap();
        assert!(ep.has_data.load(Ordering::Acquire), "push must raise the flag");
        ep.force_flush().unwrap();
        assert!(!ep.has_data.load(Ordering::Acquire), "flush must clear the flag");
    }

    #[test]
    fn telemetry_records_buffer_wait_and_stamps_frames() {
        let queue = Arc::new(WatermarkQueue::new(WatermarkConfig::new(1 << 20, 1 << 10)));
        let telemetry = Arc::new(OperatorTelemetry::new());
        let channel = ChannelId::new(0, 0, 0);
        let ep = ChannelEndpoint::new(
            channel,
            OutputBuffer::new(1 << 20, Some(std::time::Duration::from_millis(5))),
            inproc_link(channel, &queue),
            Arc::new(OperatorCounters::default()),
            Some(telemetry.clone()),
        );
        ep.push(b"measured").unwrap();
        std::thread::sleep(std::time::Duration::from_millis(10));
        ep.force_flush().unwrap();
        let snap = telemetry.buffer_wait.snapshot();
        assert_eq!(snap.count(), 1, "one flushed batch, one buffer-wait sample");
        assert!(snap.max() >= 8_000, "waited ~10ms, recorded {}µs", snap.max());
        let f = queue.pop().unwrap();
        assert!(f.sent_at_micros > 0, "telemetry-enabled dispatch must stamp sent-at");
        assert!(f.received_at.is_some());
    }

    #[test]
    fn tracing_originates_sampled_ids_and_propagates_tags() {
        use neptune_telemetry::{SpanRing, STAGE_BUFFER_WAIT};
        // Originating endpoint, sampling 1-in-4 by sequence number.
        let (ep, q) = make_inproc_endpoint(16);
        let ring = Arc::new(SpanRing::new(256, 4));
        let track = ring.register_track("src");
        ep.set_tracing(ring.clone(), track, true);
        for _ in 0..4 {
            ep.push(&[0u8; 16]).unwrap(); // every push flushes one frame
        }
        let traces: Vec<Option<u64>> = std::iter::from_fn(|| q.pop()).map(|f| f.trace).collect();
        assert_eq!(traces.len(), 4);
        assert!(traces[0].is_some(), "seq 0 is sampled at 1-in-4");
        assert!(traces[1].is_none() && traces[2].is_none() && traces[3].is_none());
        let spans = ring.snapshot();
        assert_eq!(spans.len(), 1, "one buffer-wait span for the traced batch");
        assert_eq!(spans[0].stage, STAGE_BUFFER_WAIT);
        assert_eq!(Some(spans[0].trace_id), traces[0]);

        // Downstream endpoint: propagates a tagged id, never mints.
        let (ep2, q2) = make_inproc_endpoint(1 << 20);
        ep2.set_tracing(ring.clone(), ring.register_track("relay"), false);
        ep2.push(b"untagged").unwrap();
        ep2.force_flush().unwrap();
        assert_eq!(q2.pop().unwrap().trace, None, "no tag, no origination");
        ep2.push(b"tagged").unwrap();
        ep2.tag_trace(0xBEEF);
        ep2.force_flush().unwrap();
        assert_eq!(q2.pop().unwrap().trace, Some(0xBEEF));
    }

    #[test]
    fn tcp_sink_roundtrips() {
        let rx = neptune_net::tcp::TcpReceiver::bind(
            "127.0.0.1:0",
            WatermarkConfig::new(1 << 20, 1 << 10),
        )
        .unwrap();
        let tx = neptune_net::tcp::TcpSender::connect(rx.local_addr(), 8).unwrap();
        let channel = ChannelId::new(2, 1, 0);
        let link = LinkBuilder::new(channel.raw()).tcp(tx, SelectiveCompressor::disabled()).build();
        let ep = ChannelEndpoint::new(
            channel,
            OutputBuffer::new(8, None),
            link,
            Arc::new(OperatorCounters::default()),
            None,
        );
        ep.push(&[7u8; 32]).unwrap();
        let f = rx.queue().pop_timeout(std::time::Duration::from_secs(5)).expect("frame");
        let id = ChannelId::from_raw(f.link_id);
        assert_eq!(id.link(), 2);
        assert_eq!(id.src_instance(), 1);
        assert_eq!(f.messages, vec![vec![7u8; 32]]);
        rx.shutdown();
    }
}
