//! Aligned checkpoints: snapshot stores, the checkpoint codec, and the
//! coordinator that assembles per-instance reports into consistent cuts.
//!
//! The protocol is classic Chandy–Lamport alignment, specialized to
//! NEPTUNE's graph runtime:
//!
//! 1. A timer on the IO tier starts a round by bumping the pending
//!    checkpoint id. Each source pump observes the bump at a stint
//!    boundary, snapshots its source's [`OperatorState`], force-flushes
//!    buffered data, then emits a **barrier control frame**
//!    (`ControlKind::Barrier`, checkpoint id in `base_seq`) on every
//!    outgoing channel — so the barrier travels *behind* everything the
//!    source emitted before it.
//! 2. A processor instance receiving a barrier on one input channel
//!    stops draining that channel (frames arriving behind the barrier
//!    are stashed) until the same barrier has arrived on **every**
//!    input channel. At alignment it snapshots its own state, forwards
//!    the barrier downstream, reports to the [`CheckpointCoordinator`],
//!    and only then replays the stash. Everything the snapshot saw is
//!    pre-barrier; everything stashed is post-barrier: a consistent cut.
//! 3. The coordinator completes the round when every participant has
//!    reported, encodes the cut — operator state blobs plus the
//!    receive-side dedup cursors from `ReliableIngress` — and hands it
//!    to the configured [`SnapshotStore`].
//!
//! The dedup cursors are what make restore *exactly-once* end to end:
//! PR 3's replay buffer re-sends frames a restored consumer may already
//! have folded into its state, and the restored cursors classify
//! exactly those as duplicates.
//!
//! [`OperatorState`]: crate::state::OperatorState

use crate::state::{put_bytes, OperatorState, StateError, StateReader};
use neptune_telemetry::{HistogramSnapshot, LatencyHistogram};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Checkpoint id carried by the final barrier a finishing source emits:
/// a channel that saw it is aligned for every future round, so
/// downstream alignment never waits on a closed channel.
pub const FINAL_BARRIER: u64 = u64::MAX;

/// One operator instance's contribution to a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstanceState {
    /// Operator name from the graph.
    pub operator: String,
    /// Instance index within the operator.
    pub instance: u32,
    /// [`OperatorState::state_kind`] at snapshot time, re-checked on
    /// restore so a topology edit cannot feed an operator foreign state.
    pub kind: String,
    /// [`OperatorState::state_version`] at snapshot time.
    pub version: u32,
    /// The serialized state.
    pub blob: Vec<u8>,
}

impl InstanceState {
    /// Capture `state` for (`operator`, `instance`).
    pub fn capture(operator: &str, instance: u32, state: &dyn OperatorState) -> Self {
        let mut blob = Vec::new();
        state.snapshot_state(&mut blob);
        InstanceState {
            operator: operator.to_string(),
            instance,
            kind: state.state_kind().to_string(),
            version: state.state_version(),
            blob,
        }
    }

    /// Restore this contribution into `state`, checking the kind first.
    pub fn restore_into(&self, state: &mut dyn OperatorState) -> Result<(), StateError> {
        if state.state_kind() != self.kind {
            return Err(StateError::Corrupt(format!(
                "snapshot holds {:?} state but operator {}[{}] expects {:?}",
                self.kind,
                self.operator,
                self.instance,
                state.state_kind()
            )));
        }
        state.restore_state(self.version, &self.blob)
    }
}

/// A completed consistent cut: every participant's state plus the
/// receive-side dedup cursors, under one checkpoint id.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CheckpointSnapshot {
    /// The round this cut belongs to.
    pub checkpoint_id: u64,
    /// Per-instance state contributions, sorted by (operator, instance).
    pub states: Vec<InstanceState>,
    /// `(link_id, next_seq)` dedup watermarks captured at alignment,
    /// sorted by link — see `ReliableIngress::cursors`.
    pub cursors: Vec<(u64, u64)>,
}

/// Magic prefixing every encoded snapshot (`"NCKP"`).
const SNAPSHOT_MAGIC: [u8; 4] = *b"NCKP";
/// Version of the snapshot container format itself (not of any one
/// operator's blob — those carry their own versions).
const SNAPSHOT_FORMAT: u32 = 1;

impl CheckpointSnapshot {
    /// The contribution for (`operator`, `instance`), if present.
    pub fn state_for(&self, operator: &str, instance: u32) -> Option<&InstanceState> {
        self.states.iter().find(|s| s.operator == operator && s.instance == instance)
    }

    /// Total bytes of operator state in this cut.
    pub fn state_bytes(&self) -> usize {
        self.states.iter().map(|s| s.blob.len()).sum()
    }

    /// Encode to the stable little-endian container format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.state_bytes());
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_FORMAT.to_le_bytes());
        out.extend_from_slice(&self.checkpoint_id.to_le_bytes());
        out.extend_from_slice(&(self.states.len() as u32).to_le_bytes());
        for s in &self.states {
            put_bytes(&mut out, s.operator.as_bytes());
            out.extend_from_slice(&s.instance.to_le_bytes());
            put_bytes(&mut out, s.kind.as_bytes());
            out.extend_from_slice(&s.version.to_le_bytes());
            put_bytes(&mut out, &s.blob);
        }
        out.extend_from_slice(&(self.cursors.len() as u32).to_le_bytes());
        for &(link, next) in &self.cursors {
            out.extend_from_slice(&link.to_le_bytes());
            out.extend_from_slice(&next.to_le_bytes());
        }
        out
    }

    /// Decode an [`encode`](Self::encode)d snapshot, validating magic,
    /// format version, and exact length.
    pub fn decode(bytes: &[u8]) -> Result<Self, StateError> {
        let mut r = StateReader::new(bytes);
        let magic = [r.u8()?, r.u8()?, r.u8()?, r.u8()?];
        if magic != SNAPSHOT_MAGIC {
            return Err(StateError::Corrupt(format!("bad snapshot magic {magic:02x?}")));
        }
        let format = r.u32()?;
        if format != SNAPSHOT_FORMAT {
            return Err(StateError::VersionMismatch { supported: SNAPSHOT_FORMAT, found: format });
        }
        let checkpoint_id = r.u64()?;
        let n_states = r.u32()?;
        let mut states = Vec::with_capacity(n_states as usize);
        for _ in 0..n_states {
            let operator = String::from_utf8(r.bytes()?.to_vec())
                .map_err(|_| StateError::Corrupt("operator name not utf-8".into()))?;
            let instance = r.u32()?;
            let kind = String::from_utf8(r.bytes()?.to_vec())
                .map_err(|_| StateError::Corrupt("state kind not utf-8".into()))?;
            let version = r.u32()?;
            let blob = r.bytes()?.to_vec();
            states.push(InstanceState { operator, instance, kind, version, blob });
        }
        let n_cursors = r.u32()?;
        let mut cursors = Vec::with_capacity(n_cursors as usize);
        for _ in 0..n_cursors {
            cursors.push((r.u64()?, r.u64()?));
        }
        r.finish()?;
        Ok(CheckpointSnapshot { checkpoint_id, states, cursors })
    }
}

/// Where completed checkpoints live. Implementations must make `put`
/// atomic per checkpoint: a concurrent `latest` sees either the whole
/// snapshot or the previous one, never a torn write.
pub trait SnapshotStore: Send + Sync {
    /// Persist a completed snapshot, pruning beyond the retention bound.
    fn put(&self, snapshot: &CheckpointSnapshot) -> io::Result<()>;
    /// The newest stored snapshot, if any.
    fn latest(&self) -> io::Result<Option<CheckpointSnapshot>>;
    /// The stored snapshot with this id, if retained.
    fn get(&self, checkpoint_id: u64) -> io::Result<Option<CheckpointSnapshot>>;
    /// Retained checkpoint ids, ascending.
    fn list(&self) -> io::Result<Vec<u64>>;
}

fn corrupt(e: StateError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

/// In-process store: survives operator restarts within a job, dies with
/// the process. Stores the *encoded* form so both store flavours
/// exercise the same codec path.
pub struct MemorySnapshotStore {
    retain: usize,
    snapshots: Mutex<BTreeMap<u64, Vec<u8>>>,
}

impl MemorySnapshotStore {
    /// A store retaining the newest `retain` checkpoints.
    pub fn new(retain: usize) -> Self {
        MemorySnapshotStore { retain: retain.max(1), snapshots: Mutex::new(BTreeMap::new()) }
    }
}

impl SnapshotStore for MemorySnapshotStore {
    fn put(&self, snapshot: &CheckpointSnapshot) -> io::Result<()> {
        let mut map = self.snapshots.lock();
        map.insert(snapshot.checkpoint_id, snapshot.encode());
        while map.len() > self.retain {
            let oldest = *map.keys().next().expect("nonempty map");
            map.remove(&oldest);
        }
        Ok(())
    }

    fn latest(&self) -> io::Result<Option<CheckpointSnapshot>> {
        match self.snapshots.lock().values().next_back() {
            Some(bytes) => Ok(Some(CheckpointSnapshot::decode(bytes).map_err(corrupt)?)),
            None => Ok(None),
        }
    }

    fn get(&self, checkpoint_id: u64) -> io::Result<Option<CheckpointSnapshot>> {
        match self.snapshots.lock().get(&checkpoint_id) {
            Some(bytes) => Ok(Some(CheckpointSnapshot::decode(bytes).map_err(corrupt)?)),
            None => Ok(None),
        }
    }

    fn list(&self) -> io::Result<Vec<u64>> {
        Ok(self.snapshots.lock().keys().copied().collect())
    }
}

/// File-backed store: one `ckpt-<id>.nckp` per checkpoint under a root
/// directory, written to a dot-prefixed temp file and atomically
/// renamed into place, so readers (and crashes mid-write) never observe
/// a torn snapshot.
pub struct FileSnapshotStore {
    dir: PathBuf,
    retain: usize,
}

impl FileSnapshotStore {
    /// A store rooted at `dir` (created on first `put`), retaining the
    /// newest `retain` checkpoints.
    pub fn new(dir: impl Into<PathBuf>, retain: usize) -> Self {
        FileSnapshotStore { dir: dir.into(), retain: retain.max(1) }
    }

    /// The root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, id: u64) -> PathBuf {
        self.dir.join(format!("ckpt-{id:020}.nckp"))
    }

    /// Ids found on disk, ascending. Unrelated files are ignored.
    fn ids(&self) -> io::Result<Vec<u64>> {
        let mut ids = Vec::new();
        let entries = match std::fs::read_dir(&self.dir) {
            Ok(e) => e,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(ids),
            Err(e) => return Err(e),
        };
        for entry in entries {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(id) = name.strip_prefix("ckpt-").and_then(|s| s.strip_suffix(".nckp")) {
                if let Ok(id) = id.parse::<u64>() {
                    ids.push(id);
                }
            }
        }
        ids.sort_unstable();
        Ok(ids)
    }

    fn read(&self, id: u64) -> io::Result<Option<CheckpointSnapshot>> {
        match std::fs::read(self.path_for(id)) {
            Ok(bytes) => Ok(Some(CheckpointSnapshot::decode(&bytes).map_err(corrupt)?)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }
}

impl SnapshotStore for FileSnapshotStore {
    fn put(&self, snapshot: &CheckpointSnapshot) -> io::Result<()> {
        std::fs::create_dir_all(&self.dir)?;
        let tmp = self.dir.join(format!(".ckpt-{:020}.tmp", snapshot.checkpoint_id));
        std::fs::write(&tmp, snapshot.encode())?;
        std::fs::rename(&tmp, self.path_for(snapshot.checkpoint_id))?;
        let ids = self.ids()?;
        if ids.len() > self.retain {
            for &old in &ids[..ids.len() - self.retain] {
                let _ = std::fs::remove_file(self.path_for(old));
            }
        }
        Ok(())
    }

    fn latest(&self) -> io::Result<Option<CheckpointSnapshot>> {
        match self.ids()?.last() {
            Some(&id) => self.read(id),
            None => Ok(None),
        }
    }

    fn get(&self, checkpoint_id: u64) -> io::Result<Option<CheckpointSnapshot>> {
        self.read(checkpoint_id)
    }

    fn list(&self) -> io::Result<Vec<u64>> {
        self.ids()
    }
}

/// Point-in-time view of checkpoint health, exported through all three
/// telemetry surfaces (JSON, Prometheus, pretty).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CheckpointStats {
    /// Rounds assembled, stored, and acknowledged.
    pub completed: u64,
    /// Rounds superseded before every participant reported (a source
    /// died mid-round, or injection lapped a slow participant).
    pub abandoned: u64,
    /// Store writes that failed (the round still counts as abandoned).
    pub store_failures: u64,
    /// Rounds currently collecting reports.
    pub in_flight: u64,
    /// Id of the newest completed round (`None` before the first).
    pub last_completed_id: Option<u64>,
    /// Microseconds since the newest completed round, at snapshot time.
    pub last_age_micros: Option<u64>,
    /// Injection-to-stored duration distribution, microseconds.
    pub duration_micros: HistogramSnapshot,
    /// Encoded snapshot size distribution, bytes.
    pub size_bytes: HistogramSnapshot,
}

/// One in-flight round's accumulating reports.
#[derive(Debug, Default)]
struct PendingRound {
    started_micros: u64,
    reported: usize,
    states: Vec<InstanceState>,
    cursors: Vec<(u64, u64)>,
}

/// Collects per-instance barrier reports into completed
/// [`CheckpointSnapshot`]s and maintains the stats the telemetry layer
/// exports.
///
/// Shared by every processor task and source pump in a job (behind an
/// `Arc`); all methods are thread-safe.
pub struct CheckpointCoordinator {
    store: Box<dyn SnapshotStore>,
    /// Total participants (source + processor instances) whose report
    /// completes a round.
    participants: usize,
    pending: Mutex<BTreeMap<u64, PendingRound>>,
    completed: AtomicU64,
    abandoned: AtomicU64,
    store_failures: AtomicU64,
    /// `last_id + 1` so 0 can mean "none yet".
    last_completed: AtomicU64,
    last_completed_micros: AtomicU64,
    duration: LatencyHistogram,
    size: LatencyHistogram,
}

impl CheckpointCoordinator {
    /// A coordinator completing rounds once `participants` instances
    /// have reported, persisting into `store`.
    pub fn new(store: Box<dyn SnapshotStore>, participants: usize) -> Self {
        CheckpointCoordinator {
            store,
            participants: participants.max(1),
            pending: Mutex::new(BTreeMap::new()),
            completed: AtomicU64::new(0),
            abandoned: AtomicU64::new(0),
            store_failures: AtomicU64::new(0),
            last_completed: AtomicU64::new(0),
            last_completed_micros: AtomicU64::new(0),
            duration: LatencyHistogram::new(),
            size: LatencyHistogram::new(),
        }
    }

    /// Number of participants whose reports complete a round.
    pub fn participants(&self) -> usize {
        self.participants
    }

    /// Mark the start of round `checkpoint_id` (called by the barrier
    /// timer at injection; `now_micros` stamps the duration baseline).
    pub fn begin(&self, checkpoint_id: u64, now_micros: u64) {
        self.pending
            .lock()
            .entry(checkpoint_id)
            .or_insert_with(|| PendingRound { started_micros: now_micros, ..Default::default() });
    }

    /// One participant's contribution to round `checkpoint_id`: its
    /// state blobs (possibly empty for stateless operators) and any
    /// ingress dedup cursors it owns. Completes — stores — the round
    /// when this is the final outstanding report.
    ///
    /// [`FINAL_BARRIER`] reports are alignment bookkeeping only and are
    /// ignored here.
    pub fn report(
        &self,
        checkpoint_id: u64,
        now_micros: u64,
        states: Vec<InstanceState>,
        cursors: Vec<(u64, u64)>,
    ) {
        if checkpoint_id == FINAL_BARRIER {
            return;
        }
        let complete = {
            let mut pending = self.pending.lock();
            let round = pending.entry(checkpoint_id).or_insert_with(|| PendingRound {
                started_micros: now_micros,
                ..Default::default()
            });
            round.reported += 1;
            round.states.extend(states);
            round.cursors.extend(cursors);
            if round.reported < self.participants {
                None
            } else {
                let round = pending.remove(&checkpoint_id).expect("entry just touched");
                // Older rounds can no longer complete in order; a newer
                // completed cut supersedes them.
                let stale: Vec<u64> = pending.range(..checkpoint_id).map(|(&id, _)| id).collect();
                for id in stale {
                    pending.remove(&id);
                    self.abandoned.fetch_add(1, Ordering::Relaxed);
                }
                Some(round)
            }
        };
        let Some(round) = complete else { return };
        let mut snapshot =
            CheckpointSnapshot { checkpoint_id, states: round.states, cursors: round.cursors };
        snapshot.states.sort_by(|a, b| {
            (a.operator.as_str(), a.instance).cmp(&(b.operator.as_str(), b.instance))
        });
        snapshot.cursors.sort_unstable();
        // Parallel senders on one link report independent cursor reads;
        // the highest watermark wins (cursors only advance).
        snapshot.cursors.dedup_by(|next, kept| {
            if next.0 == kept.0 {
                kept.1 = kept.1.max(next.1);
                true
            } else {
                false
            }
        });
        self.size.record(snapshot.encode().len() as u64);
        match self.store.put(&snapshot) {
            Ok(()) => {
                self.completed.fetch_add(1, Ordering::Relaxed);
                self.last_completed.store(checkpoint_id + 1, Ordering::Release);
                self.last_completed_micros.store(now_micros, Ordering::Release);
                self.duration.record(now_micros.saturating_sub(round.started_micros));
            }
            Err(_) => {
                self.store_failures.fetch_add(1, Ordering::Relaxed);
                self.abandoned.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// The newest completed snapshot from the backing store.
    pub fn latest(&self) -> io::Result<Option<CheckpointSnapshot>> {
        self.store.latest()
    }

    /// Rounds completed so far.
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Current stats for telemetry export; `now_micros` anchors the
    /// age-of-last-checkpoint gauge.
    pub fn stats(&self, now_micros: u64) -> CheckpointStats {
        let last = self.last_completed.load(Ordering::Acquire);
        let last_completed_id = last.checked_sub(1);
        let last_age_micros = last_completed_id
            .map(|_| now_micros.saturating_sub(self.last_completed_micros.load(Ordering::Acquire)));
        CheckpointStats {
            completed: self.completed.load(Ordering::Relaxed),
            abandoned: self.abandoned.load(Ordering::Relaxed),
            store_failures: self.store_failures.load(Ordering::Relaxed),
            in_flight: self.pending.lock().len() as u64,
            last_completed_id,
            last_age_micros,
            duration_micros: self.duration.snapshot(),
            size_bytes: self.size.snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::KeyedState;

    fn sample_snapshot(id: u64) -> CheckpointSnapshot {
        let mut s = KeyedState::new();
        s.put(b"k".to_vec(), b"v".to_vec());
        CheckpointSnapshot {
            checkpoint_id: id,
            states: vec![
                InstanceState::capture("agg", 0, &s),
                InstanceState {
                    operator: "agg".into(),
                    instance: 1,
                    kind: "keyed-state".into(),
                    version: 1,
                    blob: vec![0; 8],
                },
            ],
            cursors: vec![(3, 100), (9, 7)],
        }
    }

    #[test]
    fn snapshot_codec_round_trips_and_rejects_corruption() {
        let snap = sample_snapshot(42);
        let bytes = snap.encode();
        assert_eq!(CheckpointSnapshot::decode(&bytes).unwrap(), snap);
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(CheckpointSnapshot::decode(&bad), Err(StateError::Corrupt(_))));
        // Future container format.
        let mut newer = bytes.clone();
        newer[4..8].copy_from_slice(&9u32.to_le_bytes());
        assert!(matches!(
            CheckpointSnapshot::decode(&newer),
            Err(StateError::VersionMismatch { supported: 1, found: 9 })
        ));
        // Truncation and trailing garbage.
        assert!(CheckpointSnapshot::decode(&bytes[..bytes.len() - 1]).is_err());
        let mut long = bytes.clone();
        long.push(0);
        assert!(CheckpointSnapshot::decode(&long).is_err());
    }

    #[test]
    fn instance_state_restores_and_checks_kind() {
        let mut orig = KeyedState::new();
        orig.put(b"a".to_vec(), b"1".to_vec());
        let cap = InstanceState::capture("op", 3, &orig);
        assert_eq!(cap.kind, "keyed-state");
        let mut restored = KeyedState::new();
        cap.restore_into(&mut restored).unwrap();
        assert_eq!(restored, orig);
        let mut wrong = crate::window::TumblingWindow::new(1_000);
        assert!(matches!(cap.restore_into(&mut wrong), Err(StateError::Corrupt(_))));
    }

    #[test]
    fn memory_store_retains_newest() {
        let store = MemorySnapshotStore::new(2);
        assert!(store.latest().unwrap().is_none());
        for id in 1..=4 {
            store.put(&sample_snapshot(id)).unwrap();
        }
        assert_eq!(store.list().unwrap(), vec![3, 4]);
        assert_eq!(store.latest().unwrap().unwrap().checkpoint_id, 4);
        assert!(store.get(1).unwrap().is_none(), "pruned");
        assert_eq!(store.get(3).unwrap().unwrap(), sample_snapshot(3));
    }

    #[test]
    fn file_store_round_trips_prunes_and_ignores_strangers() {
        let dir = std::env::temp_dir().join(format!("neptune-ckpt-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = FileSnapshotStore::new(&dir, 2);
        assert!(store.latest().unwrap().is_none(), "missing dir is empty, not an error");
        for id in 1..=3 {
            store.put(&sample_snapshot(id)).unwrap();
        }
        std::fs::write(dir.join("README"), b"not a checkpoint").unwrap();
        assert_eq!(store.list().unwrap(), vec![2, 3]);
        assert_eq!(store.latest().unwrap().unwrap(), sample_snapshot(3));
        // A fresh handle over the same directory sees the same state —
        // the kill-and-resume path.
        let reopened = FileSnapshotStore::new(&dir, 2);
        assert_eq!(reopened.latest().unwrap().unwrap().checkpoint_id, 3);
        // Corrupt file surfaces as InvalidData rather than a panic.
        std::fs::write(store.path_for(9), b"torn").unwrap();
        assert_eq!(store.get(9).unwrap_err().kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn coordinator_completes_rounds_and_abandons_stale_ones() {
        let coord = CheckpointCoordinator::new(Box::new(MemorySnapshotStore::new(4)), 2);
        coord.begin(1, 1_000);
        coord.begin(2, 2_000);
        // Round 1 gets only one of two reports; round 2 completes first.
        coord.report(1, 1_100, vec![], vec![(5, 10)]);
        coord.report(2, 2_100, vec![], vec![(5, 20)]);
        coord.report(2, 2_500, vec![InstanceState::capture("w", 0, &KeyedState::new())], vec![]);
        let stats = coord.stats(3_000);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.abandoned, 1, "round 1 superseded by round 2");
        assert_eq!(stats.in_flight, 0);
        assert_eq!(stats.last_completed_id, Some(2));
        assert_eq!(stats.last_age_micros, Some(500), "3000 - completion at 2500");
        assert_eq!(stats.duration_micros.count(), 1);
        assert_eq!(stats.duration_micros.max(), 500, "2500 - begin at 2000");
        assert!(stats.size_bytes.max() > 0);
        let latest = coord.latest().unwrap().unwrap();
        assert_eq!(latest.checkpoint_id, 2);
        assert_eq!(latest.cursors, vec![(5, 20)], "duplicate link cursors keep the max");
        assert!(latest.state_for("w", 0).is_some());
        // FINAL_BARRIER reports are ignored.
        coord.report(FINAL_BARRIER, 9_000, vec![], vec![]);
        assert_eq!(coord.stats(9_000).in_flight, 0);
    }

    #[test]
    fn coordinator_reports_before_begin_still_complete() {
        // A participant can outrun the timer's begin() bookkeeping.
        let coord = CheckpointCoordinator::new(Box::new(MemorySnapshotStore::new(4)), 1);
        coord.report(7, 5_000, vec![], vec![]);
        assert_eq!(coord.completed(), 1);
        assert_eq!(coord.latest().unwrap().unwrap().checkpoint_id, 7);
    }

    #[test]
    fn empty_stats_have_no_last_checkpoint() {
        let coord = CheckpointCoordinator::new(Box::new(MemorySnapshotStore::new(1)), 3);
        let stats = coord.stats(1_000);
        assert_eq!(stats, CheckpointStats::default());
        assert_eq!(stats.last_completed_id, None);
        assert_eq!(stats.last_age_micros, None);
    }
}
