//! Reusable packet serialization — NEPTUNE's object-reuse scheme
//! (§III-B3 of the paper).
//!
//! *"Rather than separately and repeatedly create data structures used in
//! serialization and deserialization for individual messages, NEPTUNE
//! creates them once and reuses them for the entire set of buffered
//! messages."*
//!
//! A [`PacketCodec`] is created once per operator instance and reused for
//! every packet in every batch:
//!
//! * `encode_into` appends to a caller-owned buffer (the link's output
//!   buffer), allocating nothing;
//! * `decode_into` rebuilds a packet **in place**, reusing the packet's
//!   field vector and, where field types line up (the common case — IoT
//!   streams have a fixed schema), the existing `String`/`Vec<u8>`
//!   allocations of string and byte fields.
//!
//! The REUSE experiment regenerates the paper's GC-share measurement by
//! toggling this path against a naive allocate-per-packet decoder.
//!
//! ## Wire layout (little endian)
//!
//! ```text
//! u16 field_count
//! repeat field_count times:
//!   u8  name_len | name bytes (utf-8, <= 255 bytes)
//!   u8  type_tag
//!   value: I64/U64/F64/Timestamp -> 8 bytes; Bool -> 1 byte;
//!          Str/Bytes -> u32 len | bytes
//! ```

use crate::packet::{Field, FieldType, FieldValue, StreamPacket};

/// Codec failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended mid-structure.
    Truncated {
        /// What was being read.
        context: &'static str,
    },
    /// Unknown field type tag.
    BadTypeTag(u8),
    /// String field held invalid UTF-8.
    InvalidUtf8,
    /// Field name longer than 255 bytes.
    NameTooLong(usize),
    /// More than `u16::MAX` fields.
    TooManyFields(usize),
    /// Bytes remained after the declared fields.
    TrailingBytes(usize),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated { context } => {
                write!(f, "truncated packet while reading {context}")
            }
            CodecError::BadTypeTag(t) => write!(f, "unknown field type tag {t}"),
            CodecError::InvalidUtf8 => write!(f, "string field is not valid utf-8"),
            CodecError::NameTooLong(n) => write!(f, "field name of {n} bytes exceeds 255"),
            CodecError::TooManyFields(n) => write!(f, "{n} fields exceed the u16 limit"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after packet"),
        }
    }
}

impl std::error::Error for CodecError {}

const TAG_I64: u8 = 0;
const TAG_U64: u8 = 1;
const TAG_F64: u8 = 2;
const TAG_BOOL: u8 = 3;
const TAG_STR: u8 = 4;
const TAG_BYTES: u8 = 5;
const TAG_TIMESTAMP: u8 = 6;

fn tag_of(v: &FieldValue) -> u8 {
    match v.field_type() {
        FieldType::I64 => TAG_I64,
        FieldType::U64 => TAG_U64,
        FieldType::F64 => TAG_F64,
        FieldType::Bool => TAG_BOOL,
        FieldType::Str => TAG_STR,
        FieldType::Bytes => TAG_BYTES,
        FieldType::Timestamp => TAG_TIMESTAMP,
    }
}

/// Reusable serializer/deserializer. One per operator instance; no
/// per-packet state.
#[derive(Debug, Default)]
pub struct PacketCodec {
    /// Packets encoded since construction.
    encoded: u64,
    /// Packets decoded since construction.
    decoded: u64,
    /// Decode calls that reused at least one existing heap allocation.
    reused_allocations: u64,
}

impl PacketCodec {
    /// New codec.
    pub fn new() -> Self {
        Self::default()
    }

    /// Packets encoded so far.
    pub fn packets_encoded(&self) -> u64 {
        self.encoded
    }

    /// Packets decoded so far.
    pub fn packets_decoded(&self) -> u64 {
        self.decoded
    }

    /// Decode calls that reused an existing string/bytes allocation.
    pub fn reused_allocations(&self) -> u64 {
        self.reused_allocations
    }

    /// Serialize `packet`, appending to `out`.
    pub fn encode_into(
        &mut self,
        packet: &StreamPacket,
        out: &mut Vec<u8>,
    ) -> Result<(), CodecError> {
        if packet.len() > u16::MAX as usize {
            return Err(CodecError::TooManyFields(packet.len()));
        }
        out.reserve(packet.encoded_size());
        out.extend_from_slice(&(packet.len() as u16).to_le_bytes());
        for (name, value) in packet.iter() {
            if name.len() > 255 {
                return Err(CodecError::NameTooLong(name.len()));
            }
            out.push(name.len() as u8);
            out.extend_from_slice(name.as_bytes());
            out.push(tag_of(value));
            match value {
                FieldValue::I64(v) => out.extend_from_slice(&v.to_le_bytes()),
                FieldValue::U64(v) | FieldValue::Timestamp(v) => {
                    out.extend_from_slice(&v.to_le_bytes())
                }
                FieldValue::F64(v) => out.extend_from_slice(&v.to_le_bytes()),
                FieldValue::Bool(v) => out.push(*v as u8),
                FieldValue::Str(s) => {
                    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                    out.extend_from_slice(s.as_bytes());
                }
                FieldValue::Bytes(b) => {
                    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
                    out.extend_from_slice(b);
                }
            }
        }
        self.encoded += 1;
        Ok(())
    }

    /// Convenience: serialize into a fresh vector.
    pub fn encode(&mut self, packet: &StreamPacket) -> Result<Vec<u8>, CodecError> {
        let mut out = Vec::with_capacity(packet.encoded_size());
        self.encode_into(packet, &mut out)?;
        Ok(out)
    }

    /// Deserialize into `packet`, reusing its field vector and — when the
    /// layout matches the packet's previous contents — its string/bytes
    /// allocations. The entire input must be consumed.
    pub fn decode_into(
        &mut self,
        bytes: &[u8],
        packet: &mut StreamPacket,
    ) -> Result<(), CodecError> {
        let mut r = Reader { bytes, pos: 0 };
        let count = r.u16()? as usize;
        let fields = packet.fields_vec_mut();
        let reusable = fields.len().min(count);
        let mut reused_any = false;

        for i in 0..count {
            let name_len = r.u8()? as usize;
            let name_bytes = r.take(name_len, "field name")?;
            let name = std::str::from_utf8(name_bytes).map_err(|_| CodecError::InvalidUtf8)?;
            let tag = r.u8()?;
            if i < reusable {
                // In-place update path: reuse the slot's allocations.
                let slot = &mut fields[i];
                slot.name.clear();
                slot.name.push_str(name);
                reused_any |= decode_value_into(&mut r, tag, &mut slot.value)?;
            } else {
                let mut value = FieldValue::Bool(false);
                decode_value_into(&mut r, tag, &mut value)?;
                fields.push(Field { name: name.to_string(), value });
            }
        }
        fields.truncate(count);
        if r.pos != bytes.len() {
            return Err(CodecError::TrailingBytes(bytes.len() - r.pos));
        }
        self.decoded += 1;
        if reused_any {
            self.reused_allocations += 1;
        }
        Ok(())
    }

    /// Convenience: deserialize into a fresh packet.
    pub fn decode(&mut self, bytes: &[u8]) -> Result<StreamPacket, CodecError> {
        let mut p = StreamPacket::new();
        self.decode_into(bytes, &mut p)?;
        Ok(p)
    }
}

/// Decode one value; reuses `slot`'s heap allocation when possible.
/// Returns true when an allocation was reused.
fn decode_value_into(
    r: &mut Reader<'_>,
    tag: u8,
    slot: &mut FieldValue,
) -> Result<bool, CodecError> {
    match tag {
        TAG_I64 => {
            *slot = FieldValue::I64(i64::from_le_bytes(r.array::<8>("i64")?));
            Ok(false)
        }
        TAG_U64 => {
            *slot = FieldValue::U64(u64::from_le_bytes(r.array::<8>("u64")?));
            Ok(false)
        }
        TAG_F64 => {
            *slot = FieldValue::F64(f64::from_le_bytes(r.array::<8>("f64")?));
            Ok(false)
        }
        TAG_TIMESTAMP => {
            *slot = FieldValue::Timestamp(u64::from_le_bytes(r.array::<8>("timestamp")?));
            Ok(false)
        }
        TAG_BOOL => {
            *slot = FieldValue::Bool(r.u8()? != 0);
            Ok(false)
        }
        TAG_STR => {
            let len = r.u32()? as usize;
            let data = r.take(len, "string field")?;
            let text = std::str::from_utf8(data).map_err(|_| CodecError::InvalidUtf8)?;
            if let FieldValue::Str(existing) = slot {
                existing.clear();
                existing.push_str(text);
                Ok(true)
            } else {
                *slot = FieldValue::Str(text.to_string());
                Ok(false)
            }
        }
        TAG_BYTES => {
            let len = r.u32()? as usize;
            let data = r.take(len, "bytes field")?;
            if let FieldValue::Bytes(existing) = slot {
                existing.clear();
                existing.extend_from_slice(data);
                Ok(true)
            } else {
                *slot = FieldValue::Bytes(data.to_vec());
                Ok(false)
            }
        }
        other => Err(CodecError::BadTypeTag(other)),
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], CodecError> {
        if self.pos + n > self.bytes.len() {
            return Err(CodecError::Truncated { context });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1, "u8")?[0])
    }

    fn u16(&mut self) -> Result<u16, CodecError> {
        let b = self.take(2, "u16")?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn array<const N: usize>(&mut self, context: &'static str) -> Result<[u8; N], CodecError> {
        let b = self.take(N, context)?;
        Ok(b.try_into().expect("length checked"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StreamPacket {
        let mut p = StreamPacket::new();
        p.push_field("id", FieldValue::U64(42))
            .push_field("delta", FieldValue::I64(-17))
            .push_field("temp", FieldValue::F64(21.375))
            .push_field("ok", FieldValue::Bool(true))
            .push_field("site", FieldValue::Str("plant-7".into()))
            .push_field("blob", FieldValue::Bytes(vec![0, 255, 127]))
            .push_field("ts", FieldValue::Timestamp(1_736_000_000_000_000));
        p
    }

    #[test]
    fn roundtrip_all_types() {
        let mut codec = PacketCodec::new();
        let p = sample();
        let bytes = codec.encode(&p).unwrap();
        let q = codec.decode(&bytes).unwrap();
        assert_eq!(p, q);
        assert_eq!(codec.packets_encoded(), 1);
        assert_eq!(codec.packets_decoded(), 1);
    }

    #[test]
    fn roundtrip_empty_packet() {
        let mut codec = PacketCodec::new();
        let p = StreamPacket::new();
        let bytes = codec.encode(&p).unwrap();
        assert_eq!(bytes, vec![0, 0]);
        assert_eq!(codec.decode(&bytes).unwrap(), p);
    }

    #[test]
    fn encoded_size_estimate_covers_actual() {
        let mut codec = PacketCodec::new();
        let p = sample();
        let bytes = codec.encode(&p).unwrap();
        assert!(p.encoded_size() >= bytes.len(), "{} < {}", p.encoded_size(), bytes.len());
    }

    #[test]
    fn decode_into_reuses_string_allocation() {
        let mut codec = PacketCodec::new();
        let mut p = StreamPacket::new();
        p.push_field("site", FieldValue::Str("a-long-site-name-xyz".into()));
        let bytes = codec.encode(&p).unwrap();

        // Target packet with a same-typed field: its String must be reused.
        let mut target = StreamPacket::new();
        target.push_field("old", FieldValue::Str(String::with_capacity(64)));
        let old_ptr = match target.field_at(0) {
            Some(FieldValue::Str(s)) => s.as_ptr(),
            _ => unreachable!(),
        };
        codec.decode_into(&bytes, &mut target).unwrap();
        match target.field_at(0) {
            Some(FieldValue::Str(s)) => {
                assert_eq!(s, "a-long-site-name-xyz");
                assert_eq!(s.as_ptr(), old_ptr, "string allocation must be reused");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(target.name_at(0), Some("site"));
        assert_eq!(codec.reused_allocations(), 1);
    }

    #[test]
    fn decode_into_shrinks_and_grows_field_vec() {
        let mut codec = PacketCodec::new();
        let small = {
            let mut p = StreamPacket::new();
            p.push_field("a", FieldValue::U64(1));
            codec.encode(&p).unwrap()
        };
        let big = codec.encode(&sample()).unwrap();

        let mut target = StreamPacket::new();
        codec.decode_into(&big, &mut target).unwrap();
        assert_eq!(target.len(), 7);
        codec.decode_into(&small, &mut target).unwrap();
        assert_eq!(target.len(), 1);
        assert_eq!(target.get("a").unwrap().as_u64(), Some(1));
        codec.decode_into(&big, &mut target).unwrap();
        assert_eq!(target.len(), 7);
    }

    #[test]
    fn rejects_truncated_input() {
        let mut codec = PacketCodec::new();
        let bytes = codec.encode(&sample()).unwrap();
        for cut in [0, 1, 3, bytes.len() / 2, bytes.len() - 1] {
            assert!(codec.decode(&bytes[..cut]).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn rejects_bad_type_tag() {
        // count=1, name "x", tag 99.
        let bytes = [1, 0, 1, b'x', 99];
        let mut codec = PacketCodec::new();
        assert_eq!(codec.decode(&bytes).unwrap_err(), CodecError::BadTypeTag(99));
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut codec = PacketCodec::new();
        let mut bytes = codec.encode(&sample()).unwrap();
        bytes.push(0);
        assert_eq!(codec.decode(&bytes).unwrap_err(), CodecError::TrailingBytes(1));
    }

    #[test]
    fn rejects_invalid_utf8_in_string_field() {
        let mut codec = PacketCodec::new();
        let mut p = StreamPacket::new();
        p.push_field("s", FieldValue::Str("ab".into()));
        let mut bytes = codec.encode(&p).unwrap();
        let n = bytes.len();
        bytes[n - 2] = 0xFF; // corrupt string content
        assert_eq!(codec.decode(&bytes).unwrap_err(), CodecError::InvalidUtf8);
    }

    #[test]
    fn rejects_oversized_name() {
        let mut codec = PacketCodec::new();
        let mut p = StreamPacket::new();
        p.push_field("n".repeat(300), FieldValue::Bool(false));
        assert_eq!(codec.encode(&p).unwrap_err(), CodecError::NameTooLong(300));
    }

    #[test]
    fn encode_into_appends() {
        let mut codec = PacketCodec::new();
        let p = sample();
        let mut out = vec![0xAA];
        codec.encode_into(&p, &mut out).unwrap();
        assert_eq!(out[0], 0xAA);
        assert_eq!(codec.decode(&out[1..]).unwrap(), p);
    }

    #[test]
    fn fixed_schema_stream_reuses_consistently() {
        // Decoding a homogeneous stream into one workhorse packet should
        // reuse allocations on every packet after the first.
        let mut codec = PacketCodec::new();
        let encoded: Vec<Vec<u8>> = (0..50)
            .map(|i| {
                let mut p = StreamPacket::new();
                p.push_field("reading", FieldValue::F64(i as f64))
                    .push_field("label", FieldValue::Str(format!("sensor-{i}")));
                codec.encode(&p).unwrap()
            })
            .collect();
        let mut workhorse = StreamPacket::new();
        for bytes in &encoded {
            codec.decode_into(bytes, &mut workhorse).unwrap();
        }
        assert_eq!(codec.packets_decoded(), 50);
        assert_eq!(codec.reused_allocations(), 49, "all but the first decode must reuse");
    }
}
