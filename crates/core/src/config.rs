//! Runtime and per-link configuration.
//!
//! Defaults follow the paper's evaluation setup (§IV-A): *"For NEPTUNE, we
//! have used the default configurations where the buffer size is set to
//! 1 MB. Thread pool sizes are determined automatically depending on the
//! number of cores in the machine it is running on."*

use neptune_compress::SelectiveCompressor;
use neptune_net::watermark::ShedPolicy;
use std::time::Duration;

/// Per-link compression policy (§III-B5: *"should be enabled and configured
/// for each stream individually even within the same stream processing
/// job"*).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CompressionMode {
    /// Never compress (the runtime default, like the paper's).
    Disabled,
    /// Compress payloads whose Shannon entropy is below this many
    /// bits/byte.
    Threshold(f64),
    /// Compress everything (used by the ablation study).
    Always,
}

impl CompressionMode {
    /// Materialize the policy object used on the flush path.
    pub fn to_compressor(self) -> SelectiveCompressor {
        match self {
            CompressionMode::Disabled => SelectiveCompressor::disabled(),
            CompressionMode::Threshold(t) => SelectiveCompressor::new(t),
            CompressionMode::Always => SelectiveCompressor::always(),
        }
    }
}

/// Per-link overrides of the job-wide defaults.
#[derive(Debug, Clone, Default)]
pub struct LinkOptions {
    /// Override of [`RuntimeConfig::buffer_bytes`].
    pub buffer_bytes: Option<usize>,
    /// Override of [`RuntimeConfig::flush_interval`].
    pub flush_interval: Option<Duration>,
    /// Override of [`RuntimeConfig::compression`].
    pub compression: Option<CompressionMode>,
}

impl LinkOptions {
    /// Builder: set the buffer capacity for this link.
    pub fn buffer_bytes(mut self, bytes: usize) -> Self {
        self.buffer_bytes = Some(bytes);
        self
    }

    /// Builder: set the flush-timer interval for this link.
    pub fn flush_interval(mut self, interval: Duration) -> Self {
        self.flush_interval = Some(interval);
        self
    }

    /// Builder: set the compression mode for this link.
    pub fn compression(mut self, mode: CompressionMode) -> Self {
        self.compression = Some(mode);
        self
    }
}

/// How operator instances are assigned to resources.
///
/// §VI lists *"a dynamic deployment model that leverages the available
/// capabilities of cluster nodes"* as future work; this implements its
/// static core: capacity-aware placement. Heavier resources (more cores,
/// more memory) receive proportionally more operator instances.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum PlacementStrategy {
    /// Instances cycle over resources uniformly (the default).
    #[default]
    RoundRobin,
    /// Weighted placement: resource `i` receives instances in proportion
    /// to `weights[i]` (e.g. core counts). Length must equal
    /// [`RuntimeConfig::resources`]; weights must not all be zero.
    CapacityWeighted(Vec<u32>),
}

/// How batches travel between operator instances on different resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportMode {
    /// Always hand batches over in process (single-machine deployments).
    InProcess,
    /// Use loopback/network TCP between instances on different resources,
    /// exercising the full IO-thread and kernel-flow-control path.
    Tcp,
}

/// Telemetry toggles (ISSUE 2). Off by default: the hot-path stage
/// recorders cost a few clock reads per batch and one per packet, and the
/// headline bench budget allows at most 2% — disabled means *no* wall-time
/// reads on the data path, not merely discarded samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Master switch for latency histograms and the background sampler.
    pub enabled: bool,
    /// Interval between background [`TelemetrySampler`] snapshots.
    ///
    /// [`TelemetrySampler`]: neptune_telemetry::TelemetrySampler
    pub sample_interval: Duration,
    /// Bound on the in-memory time series (oldest samples drop first).
    pub series_capacity: usize,
    /// Causal per-packet tracing (ISSUE 7): deterministically sample one
    /// in this many source packets and record per-stage spans for them.
    /// `0` disables tracing entirely (no extra hot-path clock reads —
    /// the unsampled cost is a single mask test). Must be a power of two
    /// when nonzero, so sampling is one AND instead of a division.
    pub trace_sample_every: u32,
    /// Spans retained across the trace ring's shards (oldest overwrite).
    pub trace_capacity: usize,
    /// Structured runtime events retained in the job's flight recorder
    /// (gate transitions, shedding, breaker trips, reconnects, ...).
    /// `0` disables the recorder. Recording is wait-free and edge-only,
    /// so the default leaves it on even with telemetry off.
    pub recorder_capacity: usize,
    /// Bind address (e.g. `"127.0.0.1:9898"`) for the live scrape
    /// endpoint serving `/metrics`, `/traces`, and `/events` from the IO
    /// tier. `None` (the default) binds nothing. The
    /// `NEPTUNE_SCRAPE_ADDR` environment variable supplies a default,
    /// mirroring `NEPTUNE_IO_THREADS`.
    pub scrape_addr: Option<String>,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            enabled: false,
            sample_interval: Duration::from_millis(100),
            series_capacity: 1024,
            trace_sample_every: 0,
            trace_capacity: 4096,
            recorder_capacity: 512,
            scrape_addr: std::env::var("NEPTUNE_SCRAPE_ADDR").ok().filter(|s| !s.is_empty()),
        }
    }
}

impl TelemetryConfig {
    /// An enabled config with default interval and capacity.
    pub fn enabled() -> Self {
        TelemetryConfig { enabled: true, ..Default::default() }
    }

    /// Telemetry plus causal tracing at 1-in-`sample_every` packets.
    pub fn with_tracing(sample_every: u32) -> Self {
        TelemetryConfig { enabled: true, trace_sample_every: sample_every, ..Default::default() }
    }

    /// True when per-packet tracing is armed.
    pub fn tracing_enabled(&self) -> bool {
        self.trace_sample_every > 0
    }
}

/// Fault-tolerance toggles (ISSUE 3). Off by default: heartbeat beacons,
/// the failure-detector monitor thread, and recovery accounting cost
/// timer slots and a background thread per job, which single-machine
/// benchmarks should not pay for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HaConfig {
    /// Master switch for heartbeats, failure detection, and recovery
    /// counters.
    pub enabled: bool,
    /// Expected heartbeat period per resource. Each resource stamps a
    /// liveness beacon on this cadence; the monitor thread feeds the
    /// beacons into the failure detector.
    pub heartbeat_interval: Duration,
    /// Heartbeat silence after which a resource is declared dead.
    /// Suspicion starts at half this. Must be at least twice the
    /// heartbeat interval (detector invariant).
    pub failure_timeout: Duration,
    /// Bound on unacked bytes retained per supervised link for replay.
    pub replay_budget_bytes: usize,
    /// Connect attempts before a supervised link is declared terminally
    /// failed.
    pub max_reconnect_attempts: u32,
}

impl Default for HaConfig {
    fn default() -> Self {
        HaConfig {
            enabled: false,
            heartbeat_interval: Duration::from_millis(50),
            failure_timeout: Duration::from_millis(250),
            replay_budget_bytes: 4 << 20,
            max_reconnect_attempts: 8,
        }
    }
}

impl HaConfig {
    /// An enabled config with default intervals and budgets.
    pub fn enabled() -> Self {
        HaConfig { enabled: true, ..Default::default() }
    }
}

/// Failure-containment and graceful-degradation toggles (ISSUE 5).
///
/// Two independent opt-ins live here:
///
/// * `enabled` arms **operator supervision**: panicking batch executions
///   are caught and retried with `neptune-ha`'s deterministic jittered
///   backoff, poison batches are quarantined into the job's bounded
///   dead-letter queue, and a per-operator circuit breaker
///   (Closed→Open→HalfOpen) drains-and-drops while an operator is sick so
///   upstream watermark gates never wedge. Off by default: a panic then
///   unwinds to the worker pool exactly as before (batch lost, counter
///   bumped).
/// * `shed_policy` arms **SLO-driven load shedding** on the inbound
///   watermark queues, active only once a gate has been closed for longer
///   than `max_stall`. The default [`ShedPolicy::None`] preserves the
///   paper's lossless backpressure (§III-B4) exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContainmentConfig {
    /// Master switch for supervision, quarantine, and circuit breaking.
    pub enabled: bool,
    /// Times a panicking batch is re-executed before quarantine.
    pub max_retries: u32,
    /// Seed for the deterministic retry-backoff jitter (chaos
    /// reproducibility, mirroring `NEPTUNE_CHAOS_SEED`).
    pub retry_backoff_seed: u64,
    /// Consecutive quarantined batches that trip an operator's breaker.
    pub breaker_threshold: u32,
    /// How long a tripped breaker rejects batches before probing.
    pub breaker_cooldown: Duration,
    /// Consecutive successful probes that close a half-open breaker.
    pub breaker_probes: u32,
    /// Entries retained in the per-job dead-letter queue; the oldest entry
    /// is evicted when a new poison batch arrives at capacity.
    pub dead_letter_capacity: usize,
    /// Bytes of the failing frame captured per dead letter (truncated
    /// beyond this, so a poison batch cannot balloon the quarantine).
    pub dead_letter_capture_bytes: usize,
    /// Load-shedding policy for inbound queues. Independent of `enabled`;
    /// [`ShedPolicy::None`] keeps backpressure lossless.
    pub shed_policy: ShedPolicy,
    /// Continuous gate-closed time after which `shed_policy` arms.
    pub max_stall: Duration,
}

impl Default for ContainmentConfig {
    fn default() -> Self {
        ContainmentConfig {
            enabled: false,
            max_retries: 2,
            retry_backoff_seed: 7,
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(250),
            breaker_probes: 2,
            dead_letter_capacity: 64,
            dead_letter_capture_bytes: 64 << 10,
            shed_policy: ShedPolicy::None,
            max_stall: Duration::from_millis(250),
        }
    }
}

impl ContainmentConfig {
    /// Supervision enabled with default retry/breaker/quarantine knobs
    /// (shedding stays off — that is a separate opt-in).
    pub fn enabled() -> Self {
        ContainmentConfig { enabled: true, ..Default::default() }
    }
}

/// Which [`SnapshotStore`](crate::checkpoint::SnapshotStore) backs the
/// checkpoint subsystem.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum SnapshotStoreKind {
    /// In-process store (the default): snapshots survive operator
    /// restarts within the job but not process death. Right for tests
    /// and for the chaos harness's kill-and-resume phase.
    #[default]
    Memory,
    /// File-backed store rooted at this directory: one file per
    /// completed checkpoint, written temp-then-rename so a crash never
    /// leaves a torn snapshot visible.
    File(std::path::PathBuf),
}

/// Aligned-checkpoint toggles (ISSUE 10, ROADMAP item 4). Off by
/// default: when disabled the runtime spawns no barrier timer, sources
/// emit no barrier frames, and processors take the exact pre-checkpoint
/// drain path — bit-identical behaviour to builds before this feature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Master switch for barrier injection, alignment, and snapshots.
    pub enabled: bool,
    /// Interval between checkpoint rounds. Each round injects one
    /// barrier wave at the sources.
    pub interval: Duration,
    /// Completed checkpoints retained in the store; older ones are
    /// pruned as new ones complete.
    pub retain: usize,
    /// Where completed snapshots live.
    pub store: SnapshotStoreKind,
}

impl Default for CheckpointConfig {
    fn default() -> Self {
        CheckpointConfig {
            enabled: false,
            interval: Duration::from_millis(100),
            retain: 3,
            store: SnapshotStoreKind::Memory,
        }
    }
}

impl CheckpointConfig {
    /// An enabled config with default interval, retention, and the
    /// in-memory store.
    pub fn enabled() -> Self {
        CheckpointConfig { enabled: true, ..Default::default() }
    }

    /// An enabled config snapshotting every `interval`.
    pub fn every(interval: Duration) -> Self {
        CheckpointConfig { enabled: true, interval, ..Default::default() }
    }

    /// An enabled config persisting snapshots under `dir`.
    pub fn file_backed(dir: impl Into<std::path::PathBuf>) -> Self {
        CheckpointConfig {
            enabled: true,
            store: SnapshotStoreKind::File(dir.into()),
            ..Default::default()
        }
    }
}

/// Job-wide runtime configuration.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Application-level buffer capacity per channel, in bytes.
    /// Paper default: 1 MB.
    pub buffer_bytes: usize,
    /// Flush-timer bound on buffering delay since the first buffered
    /// message (§III-B1's latency soft upper bound).
    pub flush_interval: Duration,
    /// Inbound-queue high watermark, bytes (§III-B4).
    pub watermark_high: usize,
    /// Inbound-queue low watermark, bytes. Must be below the high one.
    pub watermark_low: usize,
    /// Default link compression mode.
    pub compression: CompressionMode,
    /// Worker threads per resource. `None` = sized automatically from the
    /// host core count (and never below the number of processor instances
    /// placed on the resource, which keeps blocking emits deadlock-free).
    pub worker_threads: Option<usize>,
    /// IO-tier threads per job (§IV-C's two-tier model). The IO tier runs
    /// every background activity — source pumps, per-endpoint flush
    /// tasks, the HA monitor, the telemetry sampler — as cooperatively
    /// scheduled tasks, so this does **not** need to scale with source
    /// parallelism. `None` = sized automatically from the host core
    /// count; the `NEPTUNE_IO_THREADS` environment variable overrides the
    /// default (mirroring `NEPTUNE_CHAOS_SEED`).
    pub io_threads: Option<usize>,
    /// Max frames a processor drains per scheduled execution.
    pub batch_max_frames: usize,
    /// Depth of the bounded queue between worker threads and each TCP
    /// writer IO thread.
    pub io_queue_depth: usize,
    /// Batched scheduling (§III-B2). `false` reproduces the paper's
    /// per-message ablation: every packet flushes and schedules
    /// individually (Table I's "Individual Message Processing").
    pub batched_scheduling: bool,
    /// Number of Granules resources (containers) to launch.
    pub resources: usize,
    /// Transport between resources.
    pub transport: TransportMode,
    /// Readiness-driven TCP (the epoll reactor path). When `true` (the
    /// default) and `transport` is [`TransportMode::Tcp`], cross-resource
    /// links run as nonblocking state machines on the IO tier — thread
    /// count stays O(`io_threads`) regardless of connection count. When
    /// `false`, the original blocking thread-per-connection path is used.
    /// The wire format is identical either way. The
    /// `NEPTUNE_NET_REACTOR` environment variable (`0`/`false`/`off` to
    /// disable, anything else to enable) overrides the default.
    pub net_reactor: bool,
    /// How operator instances map onto resources.
    pub placement: PlacementStrategy,
    /// Latency/stage instrumentation and background sampling (ISSUE 2).
    pub telemetry: TelemetryConfig,
    /// Heartbeats, failure detection, and recovery accounting (ISSUE 3).
    pub ha: HaConfig,
    /// Operator supervision, poison quarantine, and load shedding
    /// (ISSUE 5).
    pub containment: ContainmentConfig,
    /// Aligned checkpoints and stateful recovery (ISSUE 10).
    pub checkpoint: CheckpointConfig,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            buffer_bytes: 1 << 20, // 1 MB, the paper's default
            flush_interval: Duration::from_millis(10),
            watermark_high: 8 << 20,
            watermark_low: 4 << 20,
            compression: CompressionMode::Disabled,
            worker_threads: None,
            io_threads: std::env::var("NEPTUNE_IO_THREADS")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&n: &usize| n > 0),
            batch_max_frames: 16,
            io_queue_depth: 128,
            batched_scheduling: true,
            resources: 1,
            transport: TransportMode::InProcess,
            net_reactor: std::env::var("NEPTUNE_NET_REACTOR")
                .map(|v| parse_net_reactor(&v))
                .unwrap_or(true),
            placement: PlacementStrategy::RoundRobin,
            telemetry: TelemetryConfig::default(),
            ha: HaConfig::default(),
            containment: ContainmentConfig::default(),
            checkpoint: CheckpointConfig::default(),
        }
    }
}

/// `NEPTUNE_NET_REACTOR` semantics: explicit negatives disable, anything
/// else enables.
fn parse_net_reactor(v: &str) -> bool {
    !matches!(v.trim(), "0" | "false" | "off")
}

impl RuntimeConfig {
    /// Validate cross-field constraints.
    pub fn validate(&self) -> Result<(), String> {
        if self.buffer_bytes == 0 {
            return Err("buffer_bytes must be positive".into());
        }
        if self.watermark_low >= self.watermark_high {
            return Err(format!(
                "watermark_low ({}) must be below watermark_high ({})",
                self.watermark_low, self.watermark_high
            ));
        }
        if self.batch_max_frames == 0 {
            return Err("batch_max_frames must be positive".into());
        }
        if self.io_queue_depth == 0 {
            return Err("io_queue_depth must be positive".into());
        }
        if self.io_threads == Some(0) {
            return Err("io_threads must be positive when set".into());
        }
        if self.resources == 0 {
            return Err("resources must be positive".into());
        }
        if let CompressionMode::Threshold(t) = self.compression {
            if !(0.0..=8.0).contains(&t) {
                return Err(format!("compression threshold {t} outside [0, 8] bits/byte"));
            }
        }
        if self.telemetry.enabled {
            if self.telemetry.sample_interval.is_zero() {
                return Err("telemetry sample_interval must be positive".into());
            }
            if self.telemetry.series_capacity == 0 {
                return Err("telemetry series_capacity must be positive".into());
            }
        }
        if self.telemetry.trace_sample_every > 0 {
            if !self.telemetry.trace_sample_every.is_power_of_two() {
                return Err(format!(
                    "telemetry trace_sample_every ({}) must be a power of two",
                    self.telemetry.trace_sample_every
                ));
            }
            if self.telemetry.trace_capacity == 0 {
                return Err("telemetry trace_capacity must be positive when tracing".into());
            }
        }
        if let Some(addr) = &self.telemetry.scrape_addr {
            if addr.parse::<std::net::SocketAddr>().is_err() {
                return Err(format!("telemetry scrape_addr {addr:?} is not a socket address"));
            }
        }
        if self.ha.enabled {
            if self.ha.heartbeat_interval.is_zero() {
                return Err("ha heartbeat_interval must be positive".into());
            }
            if self.ha.failure_timeout < self.ha.heartbeat_interval * 2 {
                return Err(format!(
                    "ha failure_timeout ({:?}) must be at least twice heartbeat_interval ({:?})",
                    self.ha.failure_timeout, self.ha.heartbeat_interval
                ));
            }
            if self.ha.replay_budget_bytes == 0 {
                return Err("ha replay_budget_bytes must be positive".into());
            }
            if self.ha.max_reconnect_attempts == 0 {
                return Err("ha max_reconnect_attempts must be positive".into());
            }
        }
        if self.containment.enabled {
            if self.containment.breaker_threshold == 0 {
                return Err("containment breaker_threshold must be at least 1".into());
            }
            if self.containment.breaker_cooldown.is_zero() {
                return Err("containment breaker_cooldown must be positive".into());
            }
            if self.containment.dead_letter_capacity == 0 {
                return Err("containment dead_letter_capacity must be positive".into());
            }
            if self.containment.dead_letter_capture_bytes == 0 {
                return Err("containment dead_letter_capture_bytes must be positive".into());
            }
        }
        if self.containment.shed_policy != ShedPolicy::None && self.containment.max_stall.is_zero()
        {
            return Err("containment max_stall must be positive when shedding is enabled".into());
        }
        if self.checkpoint.enabled {
            if self.checkpoint.interval.is_zero() {
                return Err("checkpoint interval must be positive".into());
            }
            if self.checkpoint.retain == 0 {
                return Err("checkpoint retain must be at least 1".into());
            }
            if let SnapshotStoreKind::File(dir) = &self.checkpoint.store {
                if dir.as_os_str().is_empty() {
                    return Err("checkpoint store directory must not be empty".into());
                }
            }
        }
        if let PlacementStrategy::CapacityWeighted(w) = &self.placement {
            if w.len() != self.resources {
                return Err(format!(
                    "placement weights ({}) must match resources ({})",
                    w.len(),
                    self.resources
                ));
            }
            if w.iter().all(|&x| x == 0) {
                return Err("placement weights must not all be zero".into());
            }
        }
        Ok(())
    }

    /// The effective buffer capacity, honoring the batched-scheduling
    /// ablation toggle (per-message mode flushes on every push).
    pub fn effective_buffer_bytes(&self, link_override: Option<usize>) -> usize {
        if !self.batched_scheduling {
            1
        } else {
            link_override.unwrap_or(self.buffer_bytes)
        }
    }

    /// The effective per-execution frame budget under the ablation toggle.
    pub fn effective_batch_max(&self) -> usize {
        if self.batched_scheduling {
            self.batch_max_frames
        } else {
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = RuntimeConfig::default();
        assert_eq!(c.buffer_bytes, 1 << 20);
        assert!(c.batched_scheduling);
        assert_eq!(c.compression, CompressionMode::Disabled);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut c = RuntimeConfig { buffer_bytes: 0, ..Default::default() };
        assert!(c.validate().is_err());
        c.buffer_bytes = 1024;
        c.watermark_low = c.watermark_high;
        assert!(c.validate().is_err());
        c.watermark_low = 1;
        c.compression = CompressionMode::Threshold(9.0);
        assert!(c.validate().is_err());
        c.compression = CompressionMode::Threshold(4.0);
        c.resources = 0;
        assert!(c.validate().is_err());
        c.resources = 1;
        c.io_threads = Some(0);
        assert!(c.validate().is_err());
        c.io_threads = Some(1);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn ablation_toggle_changes_effective_values() {
        let mut c = RuntimeConfig::default();
        assert_eq!(c.effective_buffer_bytes(None), 1 << 20);
        assert_eq!(c.effective_buffer_bytes(Some(4096)), 4096);
        assert_eq!(c.effective_batch_max(), 16);
        c.batched_scheduling = false;
        assert_eq!(c.effective_buffer_bytes(Some(4096)), 1);
        assert_eq!(c.effective_batch_max(), 1);
    }

    #[test]
    fn placement_weights_validated() {
        let ok = RuntimeConfig {
            resources: 3,
            placement: PlacementStrategy::CapacityWeighted(vec![8, 8, 4]),
            ..Default::default()
        };
        assert!(ok.validate().is_ok());
        let wrong_len = RuntimeConfig {
            resources: 2,
            placement: PlacementStrategy::CapacityWeighted(vec![1]),
            ..Default::default()
        };
        assert!(wrong_len.validate().is_err());
        let all_zero = RuntimeConfig {
            resources: 2,
            placement: PlacementStrategy::CapacityWeighted(vec![0, 0]),
            ..Default::default()
        };
        assert!(all_zero.validate().is_err());
    }

    #[test]
    fn telemetry_defaults_off_and_validated() {
        let c = RuntimeConfig::default();
        assert!(!c.telemetry.enabled, "telemetry must be opt-in");
        let on = RuntimeConfig { telemetry: TelemetryConfig::enabled(), ..Default::default() };
        assert!(on.validate().is_ok());
        let bad_interval = RuntimeConfig {
            telemetry: TelemetryConfig {
                enabled: true,
                sample_interval: Duration::ZERO,
                ..Default::default()
            },
            ..Default::default()
        };
        assert!(bad_interval.validate().is_err());
        let bad_capacity = RuntimeConfig {
            telemetry: TelemetryConfig { enabled: true, series_capacity: 0, ..Default::default() },
            ..Default::default()
        };
        assert!(bad_capacity.validate().is_err());
    }

    #[test]
    fn tracing_config_validated() {
        let on =
            RuntimeConfig { telemetry: TelemetryConfig::with_tracing(128), ..Default::default() };
        assert!(on.telemetry.tracing_enabled());
        assert!(on.validate().is_ok());
        let off = RuntimeConfig::default();
        assert!(!off.telemetry.tracing_enabled(), "tracing must be opt-in");
        let not_pow2 =
            RuntimeConfig { telemetry: TelemetryConfig::with_tracing(100), ..Default::default() };
        assert!(not_pow2.validate().is_err(), "sample rate must be a power of two");
        let no_ring = RuntimeConfig {
            telemetry: TelemetryConfig { trace_capacity: 0, ..TelemetryConfig::with_tracing(64) },
            ..Default::default()
        };
        assert!(no_ring.validate().is_err());
        let bad_addr = RuntimeConfig {
            telemetry: TelemetryConfig {
                scrape_addr: Some("not-an-addr".into()),
                ..Default::default()
            },
            ..Default::default()
        };
        assert!(bad_addr.validate().is_err());
        let good_addr = RuntimeConfig {
            telemetry: TelemetryConfig {
                scrape_addr: Some("127.0.0.1:0".into()),
                ..Default::default()
            },
            ..Default::default()
        };
        assert!(good_addr.validate().is_ok());
    }

    #[test]
    fn ha_defaults_off_and_validated() {
        let c = RuntimeConfig::default();
        assert!(!c.ha.enabled, "fault tolerance must be opt-in");
        assert!(c.validate().is_ok());
        let on = RuntimeConfig { ha: HaConfig::enabled(), ..Default::default() };
        assert!(on.validate().is_ok());
        let tight = RuntimeConfig {
            ha: HaConfig {
                enabled: true,
                heartbeat_interval: Duration::from_millis(100),
                failure_timeout: Duration::from_millis(150),
                ..Default::default()
            },
            ..Default::default()
        };
        assert!(tight.validate().is_err(), "timeout under 2x interval must be rejected");
        let no_budget = RuntimeConfig {
            ha: HaConfig { enabled: true, replay_budget_bytes: 0, ..Default::default() },
            ..Default::default()
        };
        assert!(no_budget.validate().is_err());
        let no_retries = RuntimeConfig {
            ha: HaConfig { enabled: true, max_reconnect_attempts: 0, ..Default::default() },
            ..Default::default()
        };
        assert!(no_retries.validate().is_err());
    }

    #[test]
    fn containment_defaults_off_and_validated() {
        let c = RuntimeConfig::default();
        assert!(!c.containment.enabled, "supervision must be opt-in");
        assert_eq!(c.containment.shed_policy, ShedPolicy::None, "shedding must be opt-in");
        assert!(c.validate().is_ok());
        let on = RuntimeConfig { containment: ContainmentConfig::enabled(), ..Default::default() };
        assert!(on.validate().is_ok());
        let bad_breaker = RuntimeConfig {
            containment: ContainmentConfig { breaker_threshold: 0, ..ContainmentConfig::enabled() },
            ..Default::default()
        };
        assert!(bad_breaker.validate().is_err());
        let bad_dlq = RuntimeConfig {
            containment: ContainmentConfig {
                dead_letter_capacity: 0,
                ..ContainmentConfig::enabled()
            },
            ..Default::default()
        };
        assert!(bad_dlq.validate().is_err());
        let bad_stall = RuntimeConfig {
            containment: ContainmentConfig {
                shed_policy: ShedPolicy::DropOldest,
                max_stall: Duration::ZERO,
                ..Default::default()
            },
            ..Default::default()
        };
        assert!(bad_stall.validate().is_err(), "armed shedding needs a positive max_stall");
    }

    #[test]
    fn checkpoint_defaults_off_and_validated() {
        let c = RuntimeConfig::default();
        assert!(!c.checkpoint.enabled, "checkpointing must be opt-in");
        assert_eq!(c.checkpoint.store, SnapshotStoreKind::Memory);
        assert!(c.validate().is_ok());
        let on = RuntimeConfig { checkpoint: CheckpointConfig::enabled(), ..Default::default() };
        assert!(on.validate().is_ok());
        let timed = CheckpointConfig::every(Duration::from_millis(25));
        assert!(timed.enabled && timed.interval == Duration::from_millis(25));
        let filed = CheckpointConfig::file_backed("/tmp/ckpt");
        assert!(matches!(filed.store, SnapshotStoreKind::File(_)));
        let bad_interval = RuntimeConfig {
            checkpoint: CheckpointConfig {
                interval: Duration::ZERO,
                ..CheckpointConfig::enabled()
            },
            ..Default::default()
        };
        assert!(bad_interval.validate().is_err());
        let bad_retain = RuntimeConfig {
            checkpoint: CheckpointConfig { retain: 0, ..CheckpointConfig::enabled() },
            ..Default::default()
        };
        assert!(bad_retain.validate().is_err());
        let bad_dir = RuntimeConfig {
            checkpoint: CheckpointConfig {
                store: SnapshotStoreKind::File(Default::default()),
                ..CheckpointConfig::enabled()
            },
            ..Default::default()
        };
        assert!(bad_dir.validate().is_err());
    }

    #[test]
    fn net_reactor_env_parsing() {
        for off in ["0", "false", "off", " 0 ", "false\n"] {
            assert!(!parse_net_reactor(off), "{off:?} must disable the reactor");
        }
        for on in ["1", "true", "on", "yes", ""] {
            assert!(parse_net_reactor(on), "{on:?} must enable the reactor");
        }
    }

    #[test]
    fn link_options_builder() {
        let o = LinkOptions::default()
            .buffer_bytes(2048)
            .flush_interval(Duration::from_millis(5))
            .compression(CompressionMode::Always);
        assert_eq!(o.buffer_bytes, Some(2048));
        assert_eq!(o.flush_interval, Some(Duration::from_millis(5)));
        assert_eq!(o.compression, Some(CompressionMode::Always));
    }

    #[test]
    fn compression_mode_materializes() {
        assert!(!CompressionMode::Disabled.to_compressor().is_enabled());
        assert!(CompressionMode::Always.to_compressor().is_enabled());
        let t = CompressionMode::Threshold(3.5).to_compressor();
        assert_eq!(t.threshold(), 3.5);
    }
}
