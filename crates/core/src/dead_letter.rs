//! Poison-packet quarantine: the per-job dead-letter queue.
//!
//! When operator supervision gives up on a batch — it panicked through
//! every retry — the batch is not silently lost (the pre-supervision
//! behavior) and not re-queued (it would wedge the operator forever).
//! Instead its payload bytes, provenance, and the panic message are
//! captured here, bounded in both entry count and per-entry bytes, for
//! offline inspection via [`JobHandle::dead_letters`] and the telemetry
//! exports.
//!
//! [`JobHandle::dead_letters`]: crate::runtime::JobHandle::dead_letters

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

/// One quarantined poison batch.
#[derive(Debug, Clone)]
pub struct DeadLetter {
    /// Operator whose processing panicked.
    pub operator: String,
    /// Instance index of that operator.
    pub instance: usize,
    /// Link the frame arrived on.
    pub link_id: u64,
    /// First packet sequence number of the frame.
    pub base_seq: u64,
    /// Messages carried by the frame when it was quarantined.
    pub messages: u32,
    /// Panic message of the final failed attempt.
    pub panic_msg: String,
    /// Executions attempted before giving up (1 + retries).
    pub attempts: u32,
    /// The frame's raw message bytes, concatenated in message order and
    /// truncated to the configured capture budget.
    pub bytes: Vec<u8>,
    /// Original (untruncated) payload size in bytes.
    pub original_len: usize,
}

/// Bounded FIFO of quarantined batches. At capacity the *oldest* entry is
/// evicted — fresh poison is more useful for debugging a live job than
/// stale poison, and the eviction counter records the loss.
pub struct DeadLetterQueue {
    capacity: usize,
    entries: Mutex<VecDeque<DeadLetter>>,
    total: AtomicU64,
    evicted: AtomicU64,
}

impl DeadLetterQueue {
    /// Queue holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "dead-letter capacity must be positive");
        DeadLetterQueue {
            capacity,
            entries: Mutex::new(VecDeque::new()),
            total: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        }
    }

    /// Quarantine one batch.
    pub fn push(&self, letter: DeadLetter) {
        let mut entries = self.entries.lock();
        if entries.len() == self.capacity {
            entries.pop_front();
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        entries.push_back(letter);
        self.total.fetch_add(1, Ordering::Relaxed);
    }

    /// Clone of every entry currently held, oldest first.
    pub fn snapshot(&self) -> Vec<DeadLetter> {
        self.entries.lock().iter().cloned().collect()
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True when nothing has been quarantined (or everything was drained).
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    /// Batches quarantined over the job's lifetime (evictions included).
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Entries evicted to stay within capacity.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Maximum entries held.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn letter(seq: u64) -> DeadLetter {
        DeadLetter {
            operator: "op".into(),
            instance: 0,
            link_id: 1,
            base_seq: seq,
            messages: 1,
            panic_msg: "boom".into(),
            attempts: 3,
            bytes: vec![0xAB; 4],
            original_len: 4,
        }
    }

    #[test]
    fn bounded_fifo_evicts_oldest() {
        let q = DeadLetterQueue::new(2);
        q.push(letter(1));
        q.push(letter(2));
        q.push(letter(3));
        let snap = q.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].base_seq, 2, "oldest must be evicted first");
        assert_eq!(snap[1].base_seq, 3);
        assert_eq!(q.total(), 3);
        assert_eq!(q.evicted(), 1);
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }
}
