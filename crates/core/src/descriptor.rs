//! JSON graph descriptors (§III-A7 of the paper).
//!
//! *"A stream processing graph can be created by directly invoking the
//! NEPTUNE API or through a JSON descriptor file."*
//!
//! Operator implementations are code, so a descriptor references them by
//! **factory name** through an [`OperatorRegistry`] the host application
//! populates; the descriptor contributes the topology, parallelism,
//! partitioning, per-link options, and runtime configuration.
//!
//! ```json
//! {
//!   "name": "relay",
//!   "operators": [
//!     {"name": "sender", "kind": "source", "factory": "counting",
//!      "parallelism": 1, "params": {"count": 1000}},
//!     {"name": "relay", "kind": "processor", "factory": "forward",
//!      "parallelism": 2}
//!   ],
//!   "links": [
//!     {"from": "sender", "to": "relay",
//!      "partitioning": {"scheme": "shuffle"},
//!      "buffer_bytes": 16384, "flush_ms": 10,
//!      "compression": {"mode": "threshold", "threshold": 4.0}}
//!   ],
//!   "config": {"buffer_bytes": 1048576, "resources": 2, "transport": "tcp"}
//! }
//! ```

use crate::config::{
    CompressionMode, LinkOptions, PlacementStrategy, RuntimeConfig, TransportMode,
};
use crate::graph::{Factory, Graph, GraphBuilder, GraphError, OperatorSpec};
use crate::json::{parse, JsonValue};
use crate::operator::{StreamProcessor, StreamSource};
use crate::partition::PartitioningScheme;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

type SourceCtor = Arc<dyn Fn(&JsonValue) -> Box<dyn StreamSource> + Send + Sync>;
type ProcessorCtor = Arc<dyn Fn(&JsonValue) -> Box<dyn StreamProcessor> + Send + Sync>;

/// Maps factory names referenced by descriptors to operator constructors.
#[derive(Default, Clone)]
pub struct OperatorRegistry {
    sources: HashMap<String, SourceCtor>,
    processors: HashMap<String, ProcessorCtor>,
}

impl OperatorRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a source factory. The constructor receives the operator's
    /// `params` object (or `null` when absent) once per instance.
    pub fn register_source<S, F>(&mut self, name: impl Into<String>, ctor: F) -> &mut Self
    where
        S: StreamSource + 'static,
        F: Fn(&JsonValue) -> S + Send + Sync + 'static,
    {
        self.sources.insert(name.into(), Arc::new(move |p| Box::new(ctor(p))));
        self
    }

    /// Register a processor factory.
    pub fn register_processor<P, F>(&mut self, name: impl Into<String>, ctor: F) -> &mut Self
    where
        P: StreamProcessor + 'static,
        F: Fn(&JsonValue) -> P + Send + Sync + 'static,
    {
        self.processors.insert(name.into(), Arc::new(move |p| Box::new(ctor(p))));
        self
    }

    /// Names of registered source factories.
    pub fn source_names(&self) -> Vec<&str> {
        self.sources.keys().map(String::as_str).collect()
    }

    /// Names of registered processor factories.
    pub fn processor_names(&self) -> Vec<&str> {
        self.processors.keys().map(String::as_str).collect()
    }

    /// Build a graph [`Factory`] for a registered source, binding `params`
    /// now — the programmatic equivalent of a descriptor's
    /// `{"kind": "source", "factory": name, "params": …}` entry. `None`
    /// when the name is not registered. `neptune-cluster` uses this to
    /// assemble per-node sub-graphs without round-tripping through JSON
    /// text.
    pub fn source_factory(&self, name: &str, params: &JsonValue) -> Option<Factory> {
        let ctor = self.sources.get(name)?.clone();
        let params = params.clone();
        Some(Factory::Source(Arc::new(move || ctor(&params))))
    }

    /// Processor counterpart of [`source_factory`](Self::source_factory).
    pub fn processor_factory(&self, name: &str, params: &JsonValue) -> Option<Factory> {
        let ctor = self.processors.get(name)?.clone();
        let params = params.clone();
        Some(Factory::Processor(Arc::new(move || ctor(&params))))
    }
}

/// Descriptor processing failures.
#[derive(Debug, Clone, PartialEq)]
pub enum DescriptorError {
    /// The text is not valid JSON.
    Json(String),
    /// A required key is missing or has the wrong type.
    Shape(String),
    /// A factory name is not registered.
    UnknownFactory {
        /// The missing factory.
        factory: String,
        /// The declared kind.
        kind: String,
    },
    /// The assembled graph failed validation.
    Graph(GraphError),
}

impl std::fmt::Display for DescriptorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DescriptorError::Json(m) => write!(f, "descriptor json: {m}"),
            DescriptorError::Shape(m) => write!(f, "descriptor shape: {m}"),
            DescriptorError::UnknownFactory { factory, kind } => {
                write!(f, "unknown {kind} factory '{factory}'")
            }
            DescriptorError::Graph(e) => write!(f, "descriptor graph: {e}"),
        }
    }
}

impl std::error::Error for DescriptorError {}

fn shape(msg: impl Into<String>) -> DescriptorError {
    DescriptorError::Shape(msg.into())
}

/// Parse a JSON descriptor into a validated graph plus the runtime
/// configuration (descriptor `config` entries override the defaults).
pub fn parse_descriptor(
    text: &str,
    registry: &OperatorRegistry,
) -> Result<(Graph, RuntimeConfig), DescriptorError> {
    let doc = parse(text).map_err(|e| DescriptorError::Json(e.to_string()))?;
    let name = doc
        .get("name")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| shape("top-level 'name' string required"))?;
    let mut builder = GraphBuilder::new(name);

    let operators = doc
        .get("operators")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| shape("top-level 'operators' array required"))?;
    for (i, op) in operators.iter().enumerate() {
        let op_name = op
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| shape(format!("operator {i}: 'name' required")))?;
        let kind = op
            .get("kind")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| shape(format!("operator '{op_name}': 'kind' required")))?;
        let factory_name = op
            .get("factory")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| shape(format!("operator '{op_name}': 'factory' required")))?;
        let parallelism = match op.get("parallelism") {
            None => 1,
            Some(v) => v.as_u64().ok_or_else(|| {
                shape(format!("operator '{op_name}': 'parallelism' must be a positive integer"))
            })? as usize,
        };
        let params = op.get("params").cloned().unwrap_or(JsonValue::Null);
        let factory = match kind {
            "source" => registry.source_factory(factory_name, &params).ok_or_else(|| {
                DescriptorError::UnknownFactory {
                    factory: factory_name.into(),
                    kind: "source".into(),
                }
            })?,
            "processor" => registry.processor_factory(factory_name, &params).ok_or_else(|| {
                DescriptorError::UnknownFactory {
                    factory: factory_name.into(),
                    kind: "processor".into(),
                }
            })?,
            other => {
                return Err(shape(format!(
                    "operator '{op_name}': kind must be 'source' or 'processor', got '{other}'"
                )))
            }
        };
        builder =
            builder.operator_spec(OperatorSpec { name: op_name.into(), parallelism, factory });
    }

    if let Some(links) = doc.get("links") {
        let links = links.as_array().ok_or_else(|| shape("'links' must be an array"))?;
        for (i, l) in links.iter().enumerate() {
            let from = l
                .get("from")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| shape(format!("link {i}: 'from' required")))?;
            let to = l
                .get("to")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| shape(format!("link {i}: 'to' required")))?;
            let partitioning = parse_partitioning(l.get("partitioning"))?;
            let options = parse_link_options(l)?;
            builder = builder.link_with(from, to, partitioning, options);
        }
    }

    let config = parse_config(doc.get("config"))?;
    let graph = builder.build().map_err(DescriptorError::Graph)?;
    Ok((graph, config))
}

fn parse_partitioning(v: Option<&JsonValue>) -> Result<PartitioningScheme, DescriptorError> {
    let Some(v) = v else {
        return Ok(PartitioningScheme::Shuffle);
    };
    let scheme = v
        .get("scheme")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| shape("partitioning 'scheme' string required"))?;
    match scheme {
        "shuffle" => Ok(PartitioningScheme::Shuffle),
        "global" => Ok(PartitioningScheme::Global),
        "broadcast" => Ok(PartitioningScheme::Broadcast),
        "fields" => {
            let keys = v
                .get("keys")
                .and_then(JsonValue::as_array)
                .ok_or_else(|| shape("fields partitioning requires 'keys' array"))?;
            let keys: Result<Vec<String>, _> = keys
                .iter()
                .map(|k| {
                    k.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| shape("'keys' entries must be strings"))
                })
                .collect();
            let keys = keys?;
            if keys.is_empty() {
                return Err(shape("fields partitioning requires at least one key"));
            }
            Ok(PartitioningScheme::Fields(keys))
        }
        other => Err(shape(format!(
            "unknown partitioning scheme '{other}' (expected shuffle/global/broadcast/fields)"
        ))),
    }
}

fn parse_compression(v: &JsonValue) -> Result<CompressionMode, DescriptorError> {
    let mode = v
        .get("mode")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| shape("compression 'mode' string required"))?;
    match mode {
        "disabled" => Ok(CompressionMode::Disabled),
        "always" => Ok(CompressionMode::Always),
        "threshold" => {
            let t = v
                .get("threshold")
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| shape("threshold compression requires numeric 'threshold'"))?;
            Ok(CompressionMode::Threshold(t))
        }
        other => Err(shape(format!("unknown compression mode '{other}'"))),
    }
}

fn parse_link_options(l: &JsonValue) -> Result<LinkOptions, DescriptorError> {
    let mut options = LinkOptions::default();
    if let Some(b) = l.get("buffer_bytes") {
        options.buffer_bytes =
            Some(b.as_u64().ok_or_else(|| shape("'buffer_bytes' must be a positive integer"))?
                as usize);
    }
    if let Some(ms) = l.get("flush_ms") {
        options.flush_interval = Some(Duration::from_millis(
            ms.as_u64().ok_or_else(|| shape("'flush_ms' must be a positive integer"))?,
        ));
    }
    if let Some(c) = l.get("compression") {
        options.compression = Some(parse_compression(c)?);
    }
    Ok(options)
}

fn parse_config(v: Option<&JsonValue>) -> Result<RuntimeConfig, DescriptorError> {
    let mut config = RuntimeConfig::default();
    let Some(v) = v else { return Ok(config) };
    if let Some(b) = v.get("buffer_bytes") {
        config.buffer_bytes =
            b.as_u64().ok_or_else(|| shape("config 'buffer_bytes' must be an integer"))? as usize;
    }
    if let Some(ms) = v.get("flush_ms") {
        config.flush_interval = Duration::from_millis(
            ms.as_u64().ok_or_else(|| shape("config 'flush_ms' must be an integer"))?,
        );
    }
    if let Some(h) = v.get("watermark_high") {
        config.watermark_high =
            h.as_u64().ok_or_else(|| shape("config 'watermark_high' must be an integer"))? as usize;
    }
    if let Some(l) = v.get("watermark_low") {
        config.watermark_low =
            l.as_u64().ok_or_else(|| shape("config 'watermark_low' must be an integer"))? as usize;
    }
    if let Some(r) = v.get("resources") {
        config.resources =
            r.as_u64().ok_or_else(|| shape("config 'resources' must be an integer"))? as usize;
    }
    if let Some(b) = v.get("batched_scheduling") {
        config.batched_scheduling =
            b.as_bool().ok_or_else(|| shape("config 'batched_scheduling' must be a bool"))?;
    }
    if let Some(c) = v.get("compression") {
        config.compression = parse_compression(c)?;
    }
    if let Some(t) = v.get("transport") {
        config.transport = match t.as_str() {
            Some("in-process") => TransportMode::InProcess,
            Some("tcp") => TransportMode::Tcp,
            _ => return Err(shape("config 'transport' must be 'in-process' or 'tcp'")),
        };
    }
    if let Some(pl) = v.get("placement") {
        let strategy = pl
            .get("strategy")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| shape("placement 'strategy' string required"))?;
        config.placement = match strategy {
            "round-robin" => PlacementStrategy::RoundRobin,
            "capacity-weighted" => {
                let weights = pl
                    .get("weights")
                    .and_then(JsonValue::as_array)
                    .ok_or_else(|| shape("capacity-weighted placement requires 'weights'"))?;
                let weights: Result<Vec<u32>, _> = weights
                    .iter()
                    .map(|w| {
                        w.as_u64()
                            .map(|x| x as u32)
                            .ok_or_else(|| shape("'weights' entries must be integers"))
                    })
                    .collect();
                PlacementStrategy::CapacityWeighted(weights?)
            }
            other => return Err(shape(format!("unknown placement strategy '{other}'"))),
        };
    }
    if let Some(w) = v.get("worker_threads") {
        config.worker_threads =
            Some(w.as_u64().ok_or_else(|| shape("config 'worker_threads' must be an integer"))?
                as usize);
    }
    Ok(config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{OperatorContext, SourceStatus};
    use crate::packet::{FieldValue, StreamPacket};

    struct CountSource {
        left: u64,
    }
    impl StreamSource for CountSource {
        fn next(&mut self, ctx: &mut OperatorContext) -> SourceStatus {
            if self.left == 0 {
                return SourceStatus::Exhausted;
            }
            self.left -= 1;
            let mut p = StreamPacket::new();
            p.push_field("n", FieldValue::U64(self.left));
            ctx.emit(&p).unwrap();
            SourceStatus::Emitted(1)
        }
    }
    struct Nop;
    impl StreamProcessor for Nop {
        fn process(&mut self, _p: &StreamPacket, _ctx: &mut OperatorContext) {}
    }

    fn registry() -> OperatorRegistry {
        let mut r = OperatorRegistry::new();
        r.register_source("counting", |params| CountSource {
            left: params.get("count").and_then(JsonValue::as_u64).unwrap_or(10),
        });
        r.register_processor("nop", |_params| Nop);
        r
    }

    const DESCRIPTOR: &str = r#"{
        "name": "relay",
        "operators": [
            {"name": "sender", "kind": "source", "factory": "counting",
             "params": {"count": 500}},
            {"name": "relay", "kind": "processor", "factory": "nop", "parallelism": 2},
            {"name": "sink", "kind": "processor", "factory": "nop"}
        ],
        "links": [
            {"from": "sender", "to": "relay",
             "partitioning": {"scheme": "fields", "keys": ["n"]},
             "buffer_bytes": 4096, "flush_ms": 5,
             "compression": {"mode": "threshold", "threshold": 4.5}},
            {"from": "relay", "to": "sink", "partitioning": {"scheme": "broadcast"}}
        ],
        "config": {"buffer_bytes": 65536, "resources": 2, "transport": "tcp",
                   "batched_scheduling": true, "flush_ms": 20}
    }"#;

    #[test]
    fn full_descriptor_parses() {
        let (graph, config) = parse_descriptor(DESCRIPTOR, &registry()).unwrap();
        assert_eq!(graph.name(), "relay");
        assert_eq!(graph.operators().len(), 3);
        assert_eq!(graph.operator("relay").unwrap().parallelism, 2);
        assert_eq!(graph.links().len(), 2);
        let l0 = &graph.links()[0];
        assert!(
            matches!(&l0.partitioning, PartitioningScheme::Fields(k) if k == &vec!["n".to_string()])
        );
        assert_eq!(l0.options.buffer_bytes, Some(4096));
        assert_eq!(l0.options.flush_interval, Some(Duration::from_millis(5)));
        assert_eq!(l0.options.compression, Some(CompressionMode::Threshold(4.5)));
        assert!(matches!(&graph.links()[1].partitioning, PartitioningScheme::Broadcast));
        assert_eq!(config.buffer_bytes, 65536);
        assert_eq!(config.resources, 2);
        assert_eq!(config.transport, TransportMode::Tcp);
        assert_eq!(config.flush_interval, Duration::from_millis(20));
    }

    #[test]
    fn descriptor_defaults_apply() {
        let doc = r#"{
            "name": "min",
            "operators": [
                {"name": "s", "kind": "source", "factory": "counting"},
                {"name": "p", "kind": "processor", "factory": "nop"}
            ],
            "links": [{"from": "s", "to": "p"}]
        }"#;
        let (graph, config) = parse_descriptor(doc, &registry()).unwrap();
        assert!(matches!(graph.links()[0].partitioning, PartitioningScheme::Shuffle));
        assert_eq!(config.buffer_bytes, RuntimeConfig::default().buffer_bytes);
        assert_eq!(graph.operator("s").unwrap().parallelism, 1);
    }

    #[test]
    fn unknown_factory_rejected() {
        let doc = r#"{
            "name": "g",
            "operators": [{"name": "s", "kind": "source", "factory": "ghost"}]
        }"#;
        let err = parse_descriptor(doc, &registry()).unwrap_err();
        assert!(
            matches!(err, DescriptorError::UnknownFactory { factory, .. } if factory == "ghost")
        );
    }

    #[test]
    fn bad_kind_rejected() {
        let doc = r#"{
            "name": "g",
            "operators": [{"name": "s", "kind": "widget", "factory": "counting"}]
        }"#;
        assert!(matches!(parse_descriptor(doc, &registry()), Err(DescriptorError::Shape(_))));
    }

    #[test]
    fn invalid_json_rejected() {
        assert!(matches!(
            parse_descriptor("{not json", &registry()),
            Err(DescriptorError::Json(_))
        ));
    }

    #[test]
    fn graph_validation_errors_surface() {
        let doc = r#"{
            "name": "g",
            "operators": [
                {"name": "s", "kind": "source", "factory": "counting"},
                {"name": "p", "kind": "processor", "factory": "nop"}
            ],
            "links": [{"from": "s", "to": "missing"}]
        }"#;
        assert!(matches!(
            parse_descriptor(doc, &registry()),
            Err(DescriptorError::Graph(GraphError::UnknownOperator { .. }))
        ));
    }

    #[test]
    fn params_reach_factories() {
        let (graph, _) = parse_descriptor(DESCRIPTOR, &registry()).unwrap();
        // Instantiate the source and drain it: must emit exactly 500.
        let Factory::Source(f) = &graph.operator("sender").unwrap().factory else { panic!("kind") };
        let mut src = f();
        let mut ctx = OperatorContext::collector("sender");
        let mut emitted = 0;
        loop {
            match src.next(&mut ctx) {
                SourceStatus::Emitted(n) => emitted += n,
                SourceStatus::Exhausted => break,
                SourceStatus::Idle => {}
            }
        }
        assert_eq!(emitted, 500);
    }

    #[test]
    fn descriptor_job_runs_end_to_end() {
        let (graph, mut config) = parse_descriptor(DESCRIPTOR, &registry()).unwrap();
        // Keep the test in-process and fast.
        config.transport = TransportMode::InProcess;
        config.resources = 1;
        let job = crate::runtime::LocalRuntime::new(config).submit(graph).unwrap();
        assert!(job.await_sources(Duration::from_secs(30)));
        let metrics = job.stop();
        assert_eq!(metrics.operator("sender").packets_out, 500);
        // Broadcast from 2 relay instances to 1 sink: 500 packets arrive.
        assert_eq!(metrics.operator("relay").packets_in, 500);
        assert_eq!(metrics.total_seq_violations(), 0);
    }

    #[test]
    fn placement_parses_from_config() {
        let doc = r#"{
            "name": "placed",
            "operators": [
                {"name": "s", "kind": "source", "factory": "counting"},
                {"name": "p", "kind": "processor", "factory": "nop"}
            ],
            "links": [{"from": "s", "to": "p"}],
            "config": {"resources": 2,
                       "placement": {"strategy": "capacity-weighted", "weights": [8, 4]}}
        }"#;
        let (_, config) = parse_descriptor(doc, &registry()).unwrap();
        assert_eq!(
            config.placement,
            crate::config::PlacementStrategy::CapacityWeighted(vec![8, 4])
        );
        let bad = doc.replace("capacity-weighted", "psychic");
        assert!(matches!(parse_descriptor(&bad, &registry()), Err(DescriptorError::Shape(_))));
    }

    #[test]
    fn fields_partitioning_requires_keys() {
        let doc = r#"{
            "name": "g",
            "operators": [
                {"name": "s", "kind": "source", "factory": "counting"},
                {"name": "p", "kind": "processor", "factory": "nop"}
            ],
            "links": [{"from": "s", "to": "p", "partitioning": {"scheme": "fields"}}]
        }"#;
        assert!(matches!(parse_descriptor(doc, &registry()), Err(DescriptorError::Shape(_))));
    }
}
