//! Stream processing graphs (§III-A7 of the paper).
//!
//! *"A stream processing graph in NEPTUNE comprises: (1) stream sources and
//! stream processors for different stages, (2) parallelism levels for
//! stream operators, (3) links connecting stream operators, and (4) stream
//! partitioning schemes for each link."*
//!
//! [`GraphBuilder`] is the fluent API; [`crate::descriptor`] builds the
//! same structure from a JSON descriptor file. Validation enforces the
//! structural invariants the runtime depends on: unique operator names,
//! links between existing operators, no inbound links into sources, and
//! acyclicity.

use crate::config::LinkOptions;
use crate::operator::{StreamProcessor, StreamSource};
use crate::partition::PartitioningScheme;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// Factory producing fresh source instances (called once per parallel
/// instance).
pub type SourceFactory = Arc<dyn Fn() -> Box<dyn StreamSource> + Send + Sync>;
/// Factory producing fresh processor instances.
pub type ProcessorFactory = Arc<dyn Fn() -> Box<dyn StreamProcessor> + Send + Sync>;

/// Whether an operator ingests (source) or transforms (processor).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OperatorKind {
    /// Stream source: no inbound links; runs on a pump thread.
    Source,
    /// Stream processor: data-driven; at least one inbound link.
    Processor,
}

/// The factory for an operator's instances.
#[derive(Clone)]
pub enum Factory {
    /// Source factory.
    Source(SourceFactory),
    /// Processor factory.
    Processor(ProcessorFactory),
}

impl std::fmt::Debug for Factory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Factory::Source(_) => write!(f, "Factory::Source(..)"),
            Factory::Processor(_) => write!(f, "Factory::Processor(..)"),
        }
    }
}

/// One operator declaration.
#[derive(Debug, Clone)]
pub struct OperatorSpec {
    /// Unique operator name.
    pub name: String,
    /// Number of parallel instances (§III-A5).
    pub parallelism: usize,
    /// Instance factory.
    pub factory: Factory,
}

impl OperatorSpec {
    /// The operator's kind.
    pub fn kind(&self) -> OperatorKind {
        match self.factory {
            Factory::Source(_) => OperatorKind::Source,
            Factory::Processor(_) => OperatorKind::Processor,
        }
    }
}

/// One link declaration.
#[derive(Debug, Clone)]
pub struct LinkSpec {
    /// Upstream operator name.
    pub from: String,
    /// Downstream operator name.
    pub to: String,
    /// How the stream partitions across the downstream instances.
    pub partitioning: PartitioningScheme,
    /// Per-link overrides (buffering, compression).
    pub options: LinkOptions,
}

/// Validation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// Two operators share a name.
    DuplicateOperator(String),
    /// A link references a missing operator.
    UnknownOperator {
        /// Position of the offending link.
        link_index: usize,
        /// The name that did not resolve.
        name: String,
    },
    /// A link targets a source (sources have no inbound streams).
    LinkIntoSource(String),
    /// An operator links to itself.
    SelfLoop(String),
    /// The same (from, to) pair is declared twice.
    DuplicateLink {
        /// Upstream operator.
        from: String,
        /// Downstream operator.
        to: String,
    },
    /// The link structure contains a cycle.
    Cycle,
    /// The graph has no source operator.
    NoSources,
    /// An operator declared zero instances.
    ZeroParallelism(String),
    /// The graph has no operators at all.
    Empty,
    /// An operator name is empty.
    EmptyName,
    /// More instances than the u16 channel encoding can address.
    ParallelismTooLarge(String),
    /// More links than the u16 channel encoding can address.
    TooManyLinks(usize),
    /// A processor has no inbound link and would never run.
    UnreachableProcessor(String),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::DuplicateOperator(n) => write!(f, "duplicate operator '{n}'"),
            GraphError::UnknownOperator { link_index, name } => {
                write!(f, "link {link_index} references unknown operator '{name}'")
            }
            GraphError::LinkIntoSource(n) => write!(f, "link into source '{n}'"),
            GraphError::SelfLoop(n) => write!(f, "operator '{n}' links to itself"),
            GraphError::DuplicateLink { from, to } => {
                write!(f, "duplicate link {from} -> {to}")
            }
            GraphError::Cycle => write!(f, "graph contains a cycle"),
            GraphError::NoSources => write!(f, "graph has no stream sources"),
            GraphError::ZeroParallelism(n) => write!(f, "operator '{n}' has zero parallelism"),
            GraphError::Empty => write!(f, "graph has no operators"),
            GraphError::EmptyName => write!(f, "operator with empty name"),
            GraphError::ParallelismTooLarge(n) => {
                write!(f, "operator '{n}' exceeds 65535 instances")
            }
            GraphError::TooManyLinks(n) => write!(f, "{n} links exceed the u16 limit"),
            GraphError::UnreachableProcessor(n) => {
                write!(f, "processor '{n}' has no inbound link and would never run")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// A validated stream processing graph.
#[derive(Debug, Clone)]
pub struct Graph {
    name: String,
    operators: Vec<OperatorSpec>,
    links: Vec<LinkSpec>,
}

impl Graph {
    /// The job's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All operator declarations.
    pub fn operators(&self) -> &[OperatorSpec] {
        &self.operators
    }

    /// All link declarations (index order = channel link ids).
    pub fn links(&self) -> &[LinkSpec] {
        &self.links
    }

    /// Look up an operator by name.
    pub fn operator(&self, name: &str) -> Option<&OperatorSpec> {
        self.operators.iter().find(|o| o.name == name)
    }

    /// Indices of links leaving `name`.
    pub fn out_links(&self, name: &str) -> Vec<usize> {
        self.links.iter().enumerate().filter(|(_, l)| l.from == name).map(|(i, _)| i).collect()
    }

    /// Indices of links entering `name`.
    pub fn in_links(&self, name: &str) -> Vec<usize> {
        self.links.iter().enumerate().filter(|(_, l)| l.to == name).map(|(i, _)| i).collect()
    }

    /// Total operator instances across the graph.
    pub fn total_instances(&self) -> usize {
        self.operators.iter().map(|o| o.parallelism).sum()
    }

    /// Operator names in a valid topological order.
    pub fn topological_order(&self) -> Vec<&str> {
        // Validation guaranteed acyclicity; rerun Kahn for the order.
        let mut indegree: HashMap<&str, usize> =
            self.operators.iter().map(|o| (o.name.as_str(), 0)).collect();
        for l in &self.links {
            *indegree.get_mut(l.to.as_str()).expect("validated") += 1;
        }
        let mut queue: VecDeque<&str> = self
            .operators
            .iter()
            .filter(|o| indegree[o.name.as_str()] == 0)
            .map(|o| o.name.as_str())
            .collect();
        let mut order = Vec::with_capacity(self.operators.len());
        while let Some(n) = queue.pop_front() {
            order.push(n);
            for l in self.links.iter().filter(|l| l.from == n) {
                let d = indegree.get_mut(l.to.as_str()).expect("validated");
                *d -= 1;
                if *d == 0 {
                    queue.push_back(l.to.as_str());
                }
            }
        }
        order
    }
}

/// Fluent builder for [`Graph`].
pub struct GraphBuilder {
    name: String,
    operators: Vec<OperatorSpec>,
    links: Vec<LinkSpec>,
}

impl GraphBuilder {
    /// Start a graph named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        GraphBuilder { name: name.into(), operators: Vec::new(), links: Vec::new() }
    }

    /// Add a source with parallelism 1.
    pub fn source<S, F>(self, name: impl Into<String>, factory: F) -> Self
    where
        S: StreamSource + 'static,
        F: Fn() -> S + Send + Sync + 'static,
    {
        self.source_n(name, 1, factory)
    }

    /// Add a source with `parallelism` instances.
    pub fn source_n<S, F>(mut self, name: impl Into<String>, parallelism: usize, factory: F) -> Self
    where
        S: StreamSource + 'static,
        F: Fn() -> S + Send + Sync + 'static,
    {
        self.operators.push(OperatorSpec {
            name: name.into(),
            parallelism,
            factory: Factory::Source(Arc::new(move || Box::new(factory()))),
        });
        self
    }

    /// Add a processor with parallelism 1.
    pub fn processor<P, F>(self, name: impl Into<String>, factory: F) -> Self
    where
        P: StreamProcessor + 'static,
        F: Fn() -> P + Send + Sync + 'static,
    {
        self.processor_n(name, 1, factory)
    }

    /// Add a processor with `parallelism` instances.
    pub fn processor_n<P, F>(
        mut self,
        name: impl Into<String>,
        parallelism: usize,
        factory: F,
    ) -> Self
    where
        P: StreamProcessor + 'static,
        F: Fn() -> P + Send + Sync + 'static,
    {
        self.operators.push(OperatorSpec {
            name: name.into(),
            parallelism,
            factory: Factory::Processor(Arc::new(move || Box::new(factory()))),
        });
        self
    }

    /// Add a pre-boxed operator spec (used by the JSON descriptor layer).
    pub fn operator_spec(mut self, spec: OperatorSpec) -> Self {
        self.operators.push(spec);
        self
    }

    /// Connect `from` to `to` with a partitioning scheme.
    pub fn link(
        self,
        from: impl Into<String>,
        to: impl Into<String>,
        partitioning: PartitioningScheme,
    ) -> Self {
        self.link_with(from, to, partitioning, LinkOptions::default())
    }

    /// Connect with per-link options.
    pub fn link_with(
        mut self,
        from: impl Into<String>,
        to: impl Into<String>,
        partitioning: PartitioningScheme,
        options: LinkOptions,
    ) -> Self {
        self.links.push(LinkSpec { from: from.into(), to: to.into(), partitioning, options });
        self
    }

    /// Validate and produce the graph.
    pub fn build(self) -> Result<Graph, GraphError> {
        let GraphBuilder { name, operators, links } = self;
        if operators.is_empty() {
            return Err(GraphError::Empty);
        }
        if links.len() > u16::MAX as usize {
            return Err(GraphError::TooManyLinks(links.len()));
        }
        let mut seen = HashSet::new();
        for op in &operators {
            if op.name.is_empty() {
                return Err(GraphError::EmptyName);
            }
            if !seen.insert(op.name.as_str()) {
                return Err(GraphError::DuplicateOperator(op.name.clone()));
            }
            if op.parallelism == 0 {
                return Err(GraphError::ZeroParallelism(op.name.clone()));
            }
            if op.parallelism > u16::MAX as usize {
                return Err(GraphError::ParallelismTooLarge(op.name.clone()));
            }
        }
        if !operators.iter().any(|o| o.kind() == OperatorKind::Source) {
            return Err(GraphError::NoSources);
        }
        let by_name: HashMap<&str, &OperatorSpec> =
            operators.iter().map(|o| (o.name.as_str(), o)).collect();
        let mut seen_links = HashSet::new();
        for (i, l) in links.iter().enumerate() {
            for end in [&l.from, &l.to] {
                if !by_name.contains_key(end.as_str()) {
                    return Err(GraphError::UnknownOperator { link_index: i, name: end.clone() });
                }
            }
            if l.from == l.to {
                return Err(GraphError::SelfLoop(l.from.clone()));
            }
            if by_name[l.to.as_str()].kind() == OperatorKind::Source {
                return Err(GraphError::LinkIntoSource(l.to.clone()));
            }
            if !seen_links.insert((l.from.as_str(), l.to.as_str())) {
                return Err(GraphError::DuplicateLink { from: l.from.clone(), to: l.to.clone() });
            }
        }
        // Every processor must be reachable (have at least one inbound link).
        for op in &operators {
            if op.kind() == OperatorKind::Processor && !links.iter().any(|l| l.to == op.name) {
                return Err(GraphError::UnreachableProcessor(op.name.clone()));
            }
        }
        // Kahn's algorithm for cycle detection.
        let mut indegree: HashMap<&str, usize> =
            operators.iter().map(|o| (o.name.as_str(), 0)).collect();
        for l in &links {
            *indegree.get_mut(l.to.as_str()).expect("checked") += 1;
        }
        let mut queue: VecDeque<&str> = operators
            .iter()
            .filter(|o| indegree[o.name.as_str()] == 0)
            .map(|o| o.name.as_str())
            .collect();
        let mut visited = 0usize;
        while let Some(n) = queue.pop_front() {
            visited += 1;
            for l in links.iter().filter(|l| l.from == n) {
                let d = indegree.get_mut(l.to.as_str()).expect("checked");
                *d -= 1;
                if *d == 0 {
                    queue.push_back(l.to.as_str());
                }
            }
        }
        if visited != operators.len() {
            return Err(GraphError::Cycle);
        }
        Ok(Graph { name, operators, links })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{OperatorContext, SourceStatus};
    use crate::packet::StreamPacket;

    struct NullSource;
    impl StreamSource for NullSource {
        fn next(&mut self, _ctx: &mut OperatorContext) -> SourceStatus {
            SourceStatus::Exhausted
        }
    }
    struct NullProc;
    impl StreamProcessor for NullProc {
        fn process(&mut self, _p: &StreamPacket, _ctx: &mut OperatorContext) {}
    }

    fn three_stage() -> GraphBuilder {
        GraphBuilder::new("relay")
            .source("sender", || NullSource)
            .processor_n("relay", 2, || NullProc)
            .processor("receiver", || NullProc)
            .link("sender", "relay", PartitioningScheme::Shuffle)
            .link("relay", "receiver", PartitioningScheme::Shuffle)
    }

    #[test]
    fn valid_graph_builds() {
        let g = three_stage().build().unwrap();
        assert_eq!(g.name(), "relay");
        assert_eq!(g.operators().len(), 3);
        assert_eq!(g.links().len(), 2);
        assert_eq!(g.total_instances(), 4);
        assert_eq!(g.operator("relay").unwrap().parallelism, 2);
        assert_eq!(g.out_links("sender"), vec![0]);
        assert_eq!(g.in_links("receiver"), vec![1]);
        assert_eq!(g.topological_order(), vec!["sender", "relay", "receiver"]);
    }

    #[test]
    fn duplicate_operator_rejected() {
        let err = GraphBuilder::new("g")
            .source("a", || NullSource)
            .processor("a", || NullProc)
            .build()
            .unwrap_err();
        assert_eq!(err, GraphError::DuplicateOperator("a".into()));
    }

    #[test]
    fn unknown_link_endpoint_rejected() {
        let err = GraphBuilder::new("g")
            .source("s", || NullSource)
            .processor("p", || NullProc)
            .link("s", "ghost", PartitioningScheme::Shuffle)
            .build()
            .unwrap_err();
        assert!(matches!(err, GraphError::UnknownOperator { name, .. } if name == "ghost"));
    }

    #[test]
    fn link_into_source_rejected() {
        let err = GraphBuilder::new("g")
            .source("s", || NullSource)
            .processor("p", || NullProc)
            .link("s", "p", PartitioningScheme::Shuffle)
            .link("p", "s", PartitioningScheme::Shuffle)
            .build()
            .unwrap_err();
        assert_eq!(err, GraphError::LinkIntoSource("s".into()));
    }

    #[test]
    fn self_loop_rejected() {
        let err = GraphBuilder::new("g")
            .source("s", || NullSource)
            .processor("p", || NullProc)
            .link("s", "p", PartitioningScheme::Shuffle)
            .link("p", "p", PartitioningScheme::Shuffle)
            .build()
            .unwrap_err();
        assert_eq!(err, GraphError::SelfLoop("p".into()));
    }

    #[test]
    fn cycle_rejected() {
        let err = GraphBuilder::new("g")
            .source("s", || NullSource)
            .processor("a", || NullProc)
            .processor("b", || NullProc)
            .link("s", "a", PartitioningScheme::Shuffle)
            .link("a", "b", PartitioningScheme::Shuffle)
            .link("b", "a", PartitioningScheme::Shuffle)
            .build()
            .unwrap_err();
        assert_eq!(err, GraphError::Cycle);
    }

    #[test]
    fn no_sources_rejected() {
        // A single processor cannot even be linked; it is both sourceless
        // and unreachable — NoSources fires first.
        let err = GraphBuilder::new("g").processor("p", || NullProc).build().unwrap_err();
        assert_eq!(err, GraphError::NoSources);
    }

    #[test]
    fn unreachable_processor_rejected() {
        let err = GraphBuilder::new("g")
            .source("s", || NullSource)
            .processor("p", || NullProc)
            .processor("island", || NullProc)
            .link("s", "p", PartitioningScheme::Shuffle)
            .build()
            .unwrap_err();
        assert_eq!(err, GraphError::UnreachableProcessor("island".into()));
    }

    #[test]
    fn zero_parallelism_rejected() {
        let err = GraphBuilder::new("g").source_n("s", 0, || NullSource).build().unwrap_err();
        assert_eq!(err, GraphError::ZeroParallelism("s".into()));
    }

    #[test]
    fn duplicate_link_rejected() {
        let err = GraphBuilder::new("g")
            .source("s", || NullSource)
            .processor("p", || NullProc)
            .link("s", "p", PartitioningScheme::Shuffle)
            .link("s", "p", PartitioningScheme::Global)
            .build()
            .unwrap_err();
        assert!(matches!(err, GraphError::DuplicateLink { .. }));
    }

    #[test]
    fn empty_graph_rejected() {
        assert_eq!(GraphBuilder::new("g").build().unwrap_err(), GraphError::Empty);
    }

    #[test]
    fn diamond_topology_valid() {
        let g = GraphBuilder::new("diamond")
            .source("s", || NullSource)
            .processor("left", || NullProc)
            .processor("right", || NullProc)
            .processor("join", || NullProc)
            .link("s", "left", PartitioningScheme::Shuffle)
            .link("s", "right", PartitioningScheme::Shuffle)
            .link("left", "join", PartitioningScheme::Shuffle)
            .link("right", "join", PartitioningScheme::Shuffle)
            .build()
            .unwrap();
        assert_eq!(g.in_links("join").len(), 2);
        let order = g.topological_order();
        assert_eq!(order[0], "s");
        assert_eq!(order[3], "join");
    }

    #[test]
    fn factories_produce_fresh_instances() {
        let g = three_stage().build().unwrap();
        match &g.operator("sender").unwrap().factory {
            Factory::Source(f) => {
                let _a = f();
                let _b = f();
            }
            _ => panic!("wrong kind"),
        }
        assert_eq!(g.operator("relay").unwrap().kind(), OperatorKind::Processor);
    }
}
