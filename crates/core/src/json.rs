//! A minimal JSON parser and writer, implemented from scratch.
//!
//! §III-A7 of the paper: *"A stream processing graph can be created by
//! directly invoking the NEPTUNE API or through a JSON descriptor file."*
//! This module provides just enough JSON to support those descriptors (and
//! to emit machine-readable benchmark reports) without pulling a
//! serialization dependency into the core crate.
//!
//! Supported: objects, arrays, strings (with standard escapes and
//! `\uXXXX`), numbers (as `f64`), booleans, null. Duplicate object keys
//! keep the last value, like `serde_json`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object. BTreeMap keeps serialization deterministic.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// String content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric content, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric content truncated to u64, if a non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Boolean content, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array content, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Object content, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Serialize to compact JSON text.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(true) => out.push_str("true"),
            JsonValue::Bool(false) => out.push_str("false"),
            JsonValue::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            JsonValue::String(s) => write_escaped(s, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse errors with byte offsets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError { message: msg.into(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.keyword("true", JsonValue::Bool(true)),
            Some(b'f') => self.keyword("false", JsonValue::Bool(false)),
            Some(b'n') => self.keyword("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn keyword(&mut self, kw: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(self.err(format!("invalid literal, expected '{kw}'")))
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(JsonValue::Object(map)),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(JsonValue::Array(items)),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        // Handle surrogate pairs.
                        let c = if (0xD800..0xDC00).contains(&cp) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("unpaired high surrogate"));
                            }
                            let low = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(combined)
                        } else {
                            char::from_u32(cp)
                        };
                        match c {
                            Some(c) => out.push(c),
                            None => return Err(self.err("invalid unicode escape")),
                        }
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(b) if b < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(b) => {
                    // Reassemble UTF-8 multibyte sequences.
                    let len = match b {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(self.err("invalid utf-8 byte")),
                    };
                    let start = self.pos - 1;
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated utf-8 sequence"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid utf-8 sequence"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.err("invalid \\u escape")),
            };
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ascii");
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err(format!("invalid number '{text}'")))
    }
}

/// Convenience: build an object from key/value pairs.
pub fn object(pairs: impl IntoIterator<Item = (&'static str, JsonValue)>) -> JsonValue {
    JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse("42").unwrap(), JsonValue::Number(42.0));
        assert_eq!(parse("-3.5e2").unwrap(), JsonValue::Number(-350.0));
        assert_eq!(parse("\"hi\"").unwrap(), JsonValue::String("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = r#"{"a": [1, 2, {"b": null}], "c": {"d": true}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn handles_escapes_and_unicode() {
        let v = parse(r#""line\nbreak A 😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "line\nbreak A 😀");
    }

    #[test]
    fn handles_utf8_passthrough() {
        let v = parse("\"héllo wörld ☃\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "héllo wörld ☃");
    }

    #[test]
    fn roundtrips_through_to_json() {
        let doc = r#"{"buffer_bytes":1048576,"compression":{"threshold":4.5},"name":"relay","stages":["a","b"],"timer":null}"#;
        let v = parse(doc).unwrap();
        let text = v.to_json();
        assert_eq!(parse(&text).unwrap(), v);
        assert_eq!(text, doc);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "01x",
            "\"unterminated",
            "[1] trailing",
            "{\"a\":1,}",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn rejects_unescaped_control_chars() {
        assert!(parse("\"a\u{0001}b\"").is_err());
    }

    #[test]
    fn duplicate_keys_keep_last() {
        let v = parse(r#"{"k": 1, "k": 2}"#).unwrap();
        assert_eq!(v.get("k").unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn accessor_type_mismatches_return_none() {
        let v = parse("[1]").unwrap();
        assert!(v.get("x").is_none());
        assert!(v.as_str().is_none());
        assert!(v.as_f64().is_none());
        assert!(v.as_bool().is_none());
        assert!(v.as_object().is_none());
        let n = parse("3.5").unwrap();
        assert_eq!(n.as_u64(), None, "non-integer must not coerce to u64");
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
    }

    #[test]
    fn object_builder_helper() {
        let v = object([("name", JsonValue::String("x".into())), ("n", JsonValue::Number(3.0))]);
        assert_eq!(v.get("name").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn escaped_output_reparses() {
        let original = JsonValue::String("quote\" slash\\ tab\t nl\n ctrl\u{0002}".into());
        let text = original.to_json();
        assert_eq!(parse(&text).unwrap(), original);
    }

    #[test]
    fn deep_nesting_parses() {
        let mut doc = String::new();
        for _ in 0..100 {
            doc.push('[');
        }
        doc.push('1');
        for _ in 0..100 {
            doc.push(']');
        }
        assert!(parse(&doc).is_ok());
    }
}
