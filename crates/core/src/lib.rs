//! # neptune-core
//!
//! NEPTUNE: a real-time, high-throughput stream processing framework for
//! IoT and sensing environments — a from-scratch Rust reproduction of
//! *Buddhika & Pallickara, IPDPS/IPPS 2016*, layered on the
//! `neptune-granules` runtime substrate exactly as the paper layers
//! NEPTUNE on Granules.
//!
//! ## Programming model (§III-A)
//!
//! * [`StreamPacket`] — the most fine-grained element of data: a set of
//!   typed data fields ([`FieldValue`]) drawn from natively supported
//!   primitive types.
//! * [`StreamSource`] — ingests external streams and emits packets into
//!   the graph.
//! * [`StreamProcessor`] — domain logic over packets from one or more
//!   incoming streams, emitting over outgoing streams.
//! * **Links** — connect operator instances; configured per link with a
//!   [`PartitioningScheme`] and transport options.
//! * **Parallelism** — each operator declares an instance count; streams
//!   are partitioned across instances.
//! * [`Graph`] — sources + processors + parallelism + links + partitioning,
//!   built via the fluent [`GraphBuilder`] API or a JSON descriptor
//!   ([`descriptor`]).
//!
//! ## Throughput optimizations (§III-B)
//!
//! 1. application-level buffering with capacity thresholds and flush
//!    timers (`neptune-net::OutputBuffer`, wired per channel),
//! 2. batched scheduling — one Granules execution drains a whole batch,
//! 3. object reuse — pooled packets and reusable codecs ([`pool`],
//!    [`codec`]),
//! 4. watermark backpressure propagated through blocking transports,
//! 5. entropy-based selective compression per link
//!    (`neptune-compress`).
//!
//! ## Quickstart
//!
//! ```
//! use neptune_core::prelude::*;
//!
//! // A source that emits the numbers 0..100, then finishes.
//! struct Nums(u64);
//! impl StreamSource for Nums {
//!     fn next(&mut self, ctx: &mut OperatorContext) -> SourceStatus {
//!         if self.0 >= 100 { return SourceStatus::Exhausted; }
//!         let mut p = StreamPacket::new();
//!         p.push_field("n", FieldValue::U64(self.0));
//!         self.0 += 1;
//!         ctx.emit(&p).unwrap();
//!         SourceStatus::Emitted(1)
//!     }
//! }
//!
//! // A processor that counts what it sees.
//! use std::sync::{Arc, atomic::{AtomicU64, Ordering}};
//! struct Count(Arc<AtomicU64>);
//! impl StreamProcessor for Count {
//!     fn process(&mut self, _p: &StreamPacket, _ctx: &mut OperatorContext) {
//!         self.0.fetch_add(1, Ordering::Relaxed);
//!     }
//! }
//!
//! let seen = Arc::new(AtomicU64::new(0));
//! let seen2 = seen.clone();
//! let graph = GraphBuilder::new("quick")
//!     .source("nums", move || Nums(0))
//!     .processor("count", move || Count(seen2.clone()))
//!     .link("nums", "count", PartitioningScheme::Shuffle)
//!     .build()
//!     .unwrap();
//! let job = LocalRuntime::new(RuntimeConfig::default()).submit(graph).unwrap();
//! job.await_sources(std::time::Duration::from_secs(10));
//! job.stop();
//! assert_eq!(seen.load(Ordering::Relaxed), 100);
//! ```

pub mod channel;
pub mod checkpoint;
pub mod codec;
pub mod config;
pub mod dead_letter;
pub mod descriptor;
pub mod graph;
pub mod json;
pub mod metrics;
pub mod operator;
pub mod packet;
pub mod partition;
pub mod pool;
pub mod runtime;
pub mod sources;
pub mod state;
pub mod telemetry;
pub mod window;

pub use channel::ChannelId;
pub use checkpoint::{
    CheckpointSnapshot, CheckpointStats, FileSnapshotStore, InstanceState, MemorySnapshotStore,
    SnapshotStore,
};
pub use codec::{CodecError, PacketCodec};
pub use config::{
    CheckpointConfig, CompressionMode, ContainmentConfig, HaConfig, LinkOptions, PlacementStrategy,
    RuntimeConfig, SnapshotStoreKind, TelemetryConfig,
};
pub use dead_letter::{DeadLetter, DeadLetterQueue};
pub use descriptor::{DescriptorError, OperatorRegistry};
pub use graph::{Graph, GraphBuilder, GraphError, LinkSpec, OperatorKind, OperatorSpec};
pub use metrics::{ContainmentStats, JobMetrics, OperatorMetrics};
pub use operator::{OperatorContext, SourceStatus, StreamProcessor, StreamSource};
pub use packet::{FieldType, FieldValue, Schema, SchemaError, StreamPacket};
pub use partition::PartitioningScheme;
pub use pool::{PacketPool, PoolStats};
pub use runtime::{JobHandle, LocalRuntime};
pub use sources::{IteratorSource, QueueSource, RateLimitedSource};
pub use state::{KeyedState, OperatorState, StateError};
pub use telemetry::{QueueGauge, TelemetryHub, TelemetrySample, TelemetrySnapshot};
pub use window::{SlidingWindow, TumblingWindow, WindowAggregate};

/// Convenience imports for building NEPTUNE jobs.
pub mod prelude {
    pub use crate::checkpoint::{FileSnapshotStore, MemorySnapshotStore, SnapshotStore};
    pub use crate::config::{
        CheckpointConfig, CompressionMode, ContainmentConfig, HaConfig, LinkOptions,
        PlacementStrategy, RuntimeConfig, SnapshotStoreKind, TelemetryConfig,
    };
    pub use crate::dead_letter::DeadLetter;
    pub use crate::graph::{Graph, GraphBuilder};
    pub use crate::operator::{OperatorContext, SourceStatus, StreamProcessor, StreamSource};
    pub use crate::packet::{FieldType, FieldValue, Schema, StreamPacket};
    pub use crate::partition::PartitioningScheme;
    pub use crate::runtime::{JobHandle, LocalRuntime};
    pub use crate::state::{KeyedState, OperatorState, StateError};
    pub use crate::telemetry::{QueueGauge, TelemetrySnapshot};
}

/// Turn any panic — on *any* thread — into an immediate nonzero exit.
///
/// Harness binaries (bench drivers, `cluster_bench`) assert liberally on
/// worker, sink, and device threads. A bare panic there unwinds only its
/// own thread: the main thread keeps waiting on a counter that will
/// never advance, burns the full drain deadline, and (if the panicking
/// thread is never joined) the process can still exit 0 under a broken
/// run. CI then records a green bench with garbage numbers. Installing
/// this hook first thing in `main` makes every assertion failure
/// terminate the whole process with exit code 1, after letting the
/// default hook print the message and location.
pub fn failfast() {
    let default = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        default(info);
        eprintln!("failfast: panic on thread '{}' — exiting 1", {
            let t = std::thread::current();
            t.name().unwrap_or("<unnamed>").to_string()
        });
        std::process::exit(1);
    }));
}

/// Microseconds since the Unix epoch — the timestamp base used by packet
/// timestamp fields and latency measurement.
pub fn now_micros() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("system clock before epoch")
        .as_micros() as u64
}
