//! Job and per-operator metrics.
//!
//! Counters are lock-free atomics updated on the hot path and snapshotted
//! by the benchmark harness; the paper's three evaluation metrics —
//! throughput, latency, and bandwidth consumption (§IV) — are all derived
//! from these plus packet timestamps.

use neptune_net::pool::BytesPoolStats;
use neptune_telemetry::{Exporter, FieldDef, FieldKind};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shorthand for the walk tables below.
const fn fd(
    json_key: &'static str,
    pretty_key: &'static str,
    prom_name: &'static str,
    prom_kind: FieldKind,
) -> FieldDef {
    FieldDef { json_key, pretty_key, prom_name, prom_kind }
}

/// Shared counters for one operator (all instances aggregate into one set;
/// per-instance attribution is recoverable from instance-tagged snapshots
/// if needed, but the paper reports per-operator numbers).
#[derive(Debug, Default)]
pub struct OperatorCounters {
    /// Packets received (processors) from upstream links.
    pub packets_in: AtomicU64,
    /// Packets emitted over outgoing links.
    pub packets_out: AtomicU64,
    /// Batches (frames) received.
    pub frames_in: AtomicU64,
    /// Batches (frames) sent.
    pub frames_out: AtomicU64,
    /// Wire bytes sent over outgoing links (headers included).
    pub bytes_out: AtomicU64,
    /// Scheduled executions of this operator's task.
    pub executions: AtomicU64,
    /// Sequence-order or duplication violations observed (exactly-once
    /// checks; must be 0 in a healthy run).
    pub seq_violations: AtomicU64,
    /// Panicking batch executions caught by the supervisor (retries
    /// included; each caught unwind counts once).
    pub panics: AtomicU64,
    /// Supervised re-executions after a caught panic.
    pub retries: AtomicU64,
    /// Poison batches quarantined to the dead-letter queue after the
    /// retry cap.
    pub quarantined: AtomicU64,
    /// Circuit-breaker trips (Closed/HalfOpen → Open) for this operator.
    pub breaker_trips: AtomicU64,
    /// Frames drained-and-dropped while the breaker was open.
    pub breaker_dropped: AtomicU64,
}

/// Immutable snapshot of one operator's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OperatorMetrics {
    /// Packets received.
    pub packets_in: u64,
    /// Packets emitted.
    pub packets_out: u64,
    /// Frames received.
    pub frames_in: u64,
    /// Frames sent.
    pub frames_out: u64,
    /// Wire bytes sent.
    pub bytes_out: u64,
    /// Scheduled executions.
    pub executions: u64,
    /// Ordering/duplication violations.
    pub seq_violations: u64,
    /// Caught panicking executions.
    pub panics: u64,
    /// Retries after caught panics.
    pub retries: u64,
    /// Batches quarantined as poison.
    pub quarantined: u64,
    /// Circuit-breaker trips.
    pub breaker_trips: u64,
    /// Frames dropped while the breaker was open.
    pub breaker_dropped: u64,
}

impl OperatorCounters {
    /// Snapshot the counters.
    pub fn snapshot(&self) -> OperatorMetrics {
        OperatorMetrics {
            packets_in: self.packets_in.load(Ordering::Relaxed),
            packets_out: self.packets_out.load(Ordering::Relaxed),
            frames_in: self.frames_in.load(Ordering::Relaxed),
            frames_out: self.frames_out.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            executions: self.executions.load(Ordering::Relaxed),
            seq_violations: self.seq_violations.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            breaker_trips: self.breaker_trips.load(Ordering::Relaxed),
            breaker_dropped: self.breaker_dropped.load(Ordering::Relaxed),
        }
    }
}

impl OperatorMetrics {
    /// Average packets per scheduled execution (batching effectiveness).
    pub fn packets_per_execution(&self) -> f64 {
        if self.executions == 0 {
            0.0
        } else {
            self.packets_in as f64 / self.executions as f64
        }
    }

    /// Average batch size in packets per frame.
    pub fn packets_per_frame(&self) -> f64 {
        if self.frames_in == 0 {
            0.0
        } else {
            self.packets_in as f64 / self.frames_in as f64
        }
    }

    /// Render schema: every scalar declared once, walked by all three
    /// exporters (ISSUE 7 satellite — no more triple-maintained lists).
    /// `frames_in` and `executions` stay JSON-only, matching the
    /// pre-refactor Prometheus surface.
    const FIELDS: [FieldDef; 12] = [
        fd("packets_in", "", "neptune_packets_in_total", FieldKind::Counter),
        fd("packets_out", "", "neptune_packets_out_total", FieldKind::Counter),
        fd("frames_in", "", "", FieldKind::Counter),
        fd("frames_out", "", "neptune_frames_out_total", FieldKind::Counter),
        fd("bytes_out", "", "neptune_bytes_out_total", FieldKind::Counter),
        fd("executions", "", "", FieldKind::Counter),
        fd("seq_violations", "", "neptune_seq_violations_total", FieldKind::Counter),
        fd("panics", "", "neptune_operator_panics_total", FieldKind::Counter),
        fd("retries", "", "neptune_operator_retries_total", FieldKind::Counter),
        fd("quarantined", "", "neptune_operator_quarantined_total", FieldKind::Counter),
        fd("breaker_trips", "", "neptune_breaker_trips_total", FieldKind::Counter),
        fd("breaker_dropped", "", "neptune_breaker_dropped_total", FieldKind::Counter),
    ];

    /// Walk this operator's counters into `exporter`, labelled with the
    /// operator name. Invisible in pretty output (histogram lines render
    /// the operator there).
    pub fn walk(&self, exporter: &mut dyn Exporter, operator: &str) {
        let values = [
            self.packets_in,
            self.packets_out,
            self.frames_in,
            self.frames_out,
            self.bytes_out,
            self.executions,
            self.seq_violations,
            self.panics,
            self.retries,
            self.quarantined,
            self.breaker_trips,
            self.breaker_dropped,
        ];
        exporter.begin_group("", "operator", &[("operator", operator)]);
        for (def, value) in Self::FIELDS.iter().zip(values) {
            exporter.field(def, value);
        }
        exporter.end_group();
    }
}

/// Gauges of the two-tier execution plane: the event-driven IO tier
/// (source pumps, flush tasks, HA monitor, telemetry sampler as
/// cooperatively scheduled tasks over a fixed thread set plus a timer
/// wheel) and the worker tier (the Granules resource pools). The headline
/// property — thread count independent of source parallelism — is
/// directly readable here: `io_threads` stays fixed while `live_io_tasks`
/// scales with the job.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThreadModelStats {
    /// Fixed IO-tier threads serving all IO tasks of the job.
    pub io_threads: usize,
    /// Worker threads across all resources (operator execution tier).
    pub worker_threads: usize,
    /// IO tasks spawned and not yet completed (pumps, flushers, monitors).
    pub live_io_tasks: usize,
    /// IO tasks currently waiting in the ready queue.
    pub queued_io_tasks: usize,
    /// Live registrations on the IO tier's hierarchical timer wheel.
    pub timer_depth: usize,
    /// Cumulative timer callbacks fired.
    pub timer_fires: u64,
    /// Cumulative IO-task park transitions (task went idle).
    pub io_parks: u64,
    /// Cumulative IO-task wake events (capacity, timer, or explicit).
    pub io_wakes: u64,
    /// Cumulative IO-task run stints.
    pub io_polls: u64,
    /// Open inbound TCP connections across the job's receivers (gauge;
    /// 0 when the transport is in-process or the job has stopped).
    pub net_connections: usize,
    /// Sockets currently registered with the network reactor (gauge; 0
    /// when the reactor path is disabled).
    pub net_interests: usize,
    /// Cumulative readiness events the reactor dispatched to IO tasks.
    pub net_readiness_events: u64,
    /// Cumulative interest re-arms after `WouldBlock` (each one is a
    /// socket operation that ran dry and went back to waiting).
    pub net_rearms: u64,
    /// Largest accept burst drained in one readiness stint across the
    /// job's listeners (high-water mark of accept backlog pressure).
    pub net_accept_backlog_peak: u64,
    /// Telemetry time-series samples lost to sampler-ring claim races
    /// (ISSUE 7 satellite; 0 when the sampler keeps up or is off).
    pub sampler_dropped: u64,
    /// Trace spans published to the span ring (0 when tracing is off).
    pub trace_spans: u64,
    /// Trace spans lost to span-ring claim races.
    pub trace_dropped: u64,
    /// Runtime events appended to the flight recorder.
    pub recorder_events: u64,
    /// Runtime events lost to recorder claim races.
    pub recorder_dropped: u64,
}

impl ThreadModelStats {
    const IO_FIELDS: [FieldDef; 9] = [
        fd("io_threads", "threads", "neptune_io_threads", FieldKind::Gauge),
        fd("worker_threads", "workers", "neptune_worker_threads", FieldKind::Gauge),
        fd("live_io_tasks", "live_tasks", "neptune_io_tasks_live", FieldKind::Gauge),
        fd("queued_io_tasks", "queued", "neptune_io_queue_depth", FieldKind::Gauge),
        fd("timer_depth", "timer_depth", "neptune_timer_depth", FieldKind::Gauge),
        fd("timer_fires", "", "neptune_timer_fires_total", FieldKind::Counter),
        fd("io_parks", "parks", "neptune_io_parks_total", FieldKind::Counter),
        fd("io_wakes", "wakes", "neptune_io_wakes_total", FieldKind::Counter),
        fd("io_polls", "", "neptune_io_polls_total", FieldKind::Counter),
    ];

    const NET_FIELDS: [FieldDef; 5] = [
        fd("net_connections", "connections", "neptune_net_connections", FieldKind::Gauge),
        fd("net_interests", "interests", "neptune_net_interests", FieldKind::Gauge),
        fd(
            "net_readiness_events",
            "readiness_events",
            "neptune_net_readiness_events_total",
            FieldKind::Counter,
        ),
        fd("net_rearms", "rearms", "neptune_net_rearms_total", FieldKind::Counter),
        fd(
            "net_accept_backlog_peak",
            "accept_backlog_peak",
            "neptune_net_accept_backlog_peak",
            FieldKind::Gauge,
        ),
    ];

    const OBSERVABILITY_FIELDS: [FieldDef; 5] = [
        fd(
            "sampler_dropped",
            "sampler_dropped",
            "neptune_sampler_dropped_total",
            FieldKind::Counter,
        ),
        fd("trace_spans", "trace_spans", "neptune_trace_spans_total", FieldKind::Counter),
        fd("trace_dropped", "trace_dropped", "neptune_trace_dropped_total", FieldKind::Counter),
        fd(
            "recorder_events",
            "recorder_events",
            "neptune_recorder_events_total",
            FieldKind::Counter,
        ),
        fd(
            "recorder_dropped",
            "recorder_dropped",
            "neptune_recorder_dropped_total",
            FieldKind::Counter,
        ),
    ];

    /// Walk the tier gauges into `exporter` as three pretty groups —
    /// "io tier", "net tier", "observability" — all merging into the
    /// `thread_model` JSON object.
    pub fn walk(&self, exporter: &mut dyn Exporter) {
        let io_values = [
            self.io_threads as u64,
            self.worker_threads as u64,
            self.live_io_tasks as u64,
            self.queued_io_tasks as u64,
            self.timer_depth as u64,
            self.timer_fires,
            self.io_parks,
            self.io_wakes,
            self.io_polls,
        ];
        let net_values = [
            self.net_connections as u64,
            self.net_interests as u64,
            self.net_readiness_events,
            self.net_rearms,
            self.net_accept_backlog_peak,
        ];
        let obs_values = [
            self.sampler_dropped,
            self.trace_spans,
            self.trace_dropped,
            self.recorder_events,
            self.recorder_dropped,
        ];
        for (label, defs, values) in [
            ("io tier", &Self::IO_FIELDS[..], &io_values[..]),
            ("net tier", &Self::NET_FIELDS[..], &net_values[..]),
            ("observability", &Self::OBSERVABILITY_FIELDS[..], &obs_values[..]),
        ] {
            exporter.begin_group(label, "thread_model", &[]);
            for (def, value) in defs.iter().zip(values) {
                exporter.field(def, *value);
            }
            exporter.end_group();
        }
    }
}

/// Job-wide failure-containment counters (ISSUE 5): what the supervision
/// ladder caught, what the queues sacrificed, and what the worker pools
/// absorbed. All zero in a healthy run with containment off.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ContainmentStats {
    /// Panics caught by the worker pools themselves — the last-resort
    /// layer below supervision (a panic that unwound out of a task).
    pub worker_panics: u64,
    /// Panicking executions caught by operator supervisors.
    pub panics: u64,
    /// Supervised retries after caught panics.
    pub retries: u64,
    /// Poison batches quarantined to the dead-letter queue.
    pub quarantined: u64,
    /// Circuit-breaker trips across all operators.
    pub breaker_trips: u64,
    /// Frames drained-and-dropped by open breakers.
    pub breaker_dropped: u64,
    /// Dead letters currently held in the queue.
    pub dead_letters: u64,
    /// Dead letters evicted because the queue was at capacity.
    pub dead_letters_evicted: u64,
    /// Items sacrificed by queue shed policies.
    pub shed_total: u64,
    /// Bytes sacrificed by queue shed policies.
    pub shed_bytes: u64,
}

impl ContainmentStats {
    const FIELDS: [FieldDef; 10] = [
        fd("worker_panics", "worker_panics", "neptune_worker_panics_total", FieldKind::Counter),
        fd("panics", "panics", "neptune_containment_panics_total", FieldKind::Counter),
        fd("retries", "retries", "neptune_containment_retries_total", FieldKind::Counter),
        fd(
            "quarantined",
            "quarantined",
            "neptune_containment_quarantined_total",
            FieldKind::Counter,
        ),
        fd(
            "breaker_trips",
            "breaker_trips",
            "neptune_containment_breaker_trips_total",
            FieldKind::Counter,
        ),
        fd(
            "breaker_dropped",
            "breaker_dropped",
            "neptune_containment_breaker_dropped_total",
            FieldKind::Counter,
        ),
        fd("dead_letters", "dead_letters", "neptune_dead_letters", FieldKind::Gauge),
        fd(
            "dead_letters_evicted",
            "dead_letters_evicted",
            "neptune_dead_letters_evicted_total",
            FieldKind::Counter,
        ),
        fd("shed_total", "shed_total", "neptune_shed_total", FieldKind::Counter),
        fd("shed_bytes", "shed_bytes", "neptune_shed_bytes_total", FieldKind::Counter),
    ];

    /// Walk the containment counters into `exporter` as one group.
    pub fn walk(&self, exporter: &mut dyn Exporter) {
        let values = [
            self.worker_panics,
            self.panics,
            self.retries,
            self.quarantined,
            self.breaker_trips,
            self.breaker_dropped,
            self.dead_letters,
            self.dead_letters_evicted,
            self.shed_total,
            self.shed_bytes,
        ];
        exporter.begin_group("containment", "containment", &[]);
        for (def, value) in Self::FIELDS.iter().zip(values) {
            exporter.field(def, value);
        }
        exporter.end_group();
    }
}

/// Snapshot of a whole job's metrics, keyed by operator name.
#[derive(Debug, Clone, Default)]
pub struct JobMetrics {
    /// Per-operator snapshots.
    pub operators: BTreeMap<String, OperatorMetrics>,
    /// Job-wide batch-buffer pool counters (hits, misses, bytes reused);
    /// filled by [`crate::runtime::JobHandle::metrics`], default-zero when
    /// the snapshot comes straight from a bare [`MetricsRegistry`].
    pub buffer_pool: BytesPoolStats,
    /// Two-tier thread-model gauges; filled by
    /// [`crate::runtime::JobHandle::metrics`], default-zero from a bare
    /// [`MetricsRegistry`].
    pub thread_model: ThreadModelStats,
    /// Failure-containment counters; operator-level parts aggregate from
    /// the per-operator snapshots, queue/pool parts are filled by
    /// [`crate::runtime::JobHandle::metrics`].
    pub containment: ContainmentStats,
}

impl JobMetrics {
    /// Metrics of one operator (default-zero when unknown).
    pub fn operator(&self, name: &str) -> OperatorMetrics {
        self.operators.get(name).copied().unwrap_or_default()
    }

    /// Total packets emitted by all sources (operators with no inputs show
    /// `packets_in == 0`).
    pub fn total_source_packets(&self) -> u64 {
        self.operators.values().filter(|m| m.packets_in == 0).map(|m| m.packets_out).sum()
    }

    /// Total wire bytes across all operators.
    pub fn total_bytes_out(&self) -> u64 {
        self.operators.values().map(|m| m.bytes_out).sum()
    }

    /// Total sequencing violations across the job (exactly-once check).
    pub fn total_seq_violations(&self) -> u64 {
        self.operators.values().map(|m| m.seq_violations).sum()
    }
}

/// A registry of operator counters shared between runtime internals and
/// snapshots.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<parking_lot::RwLock<BTreeMap<String, Arc<OperatorCounters>>>>,
}

impl MetricsRegistry {
    /// New, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counters for `operator`, created on first use.
    pub fn for_operator(&self, operator: &str) -> Arc<OperatorCounters> {
        if let Some(c) = self.inner.read().get(operator) {
            return c.clone();
        }
        self.inner
            .write()
            .entry(operator.to_string())
            .or_insert_with(|| Arc::new(OperatorCounters::default()))
            .clone()
    }

    /// Snapshot every operator.
    pub fn snapshot(&self) -> JobMetrics {
        let operators: BTreeMap<String, OperatorMetrics> =
            self.inner.read().iter().map(|(k, v)| (k.clone(), v.snapshot())).collect();
        let mut containment = ContainmentStats::default();
        for m in operators.values() {
            containment.panics += m.panics;
            containment.retries += m.retries;
            containment.quarantined += m.quarantined;
            containment.breaker_trips += m.breaker_trips;
            containment.breaker_dropped += m.breaker_dropped;
        }
        JobMetrics {
            operators,
            buffer_pool: BytesPoolStats::default(),
            thread_model: ThreadModelStats::default(),
            containment,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_returns_same_counters_per_name() {
        let reg = MetricsRegistry::new();
        let a = reg.for_operator("relay");
        let b = reg.for_operator("relay");
        a.packets_in.fetch_add(5, Ordering::Relaxed);
        assert_eq!(b.packets_in.load(Ordering::Relaxed), 5);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn snapshot_reflects_counters() {
        let reg = MetricsRegistry::new();
        let c = reg.for_operator("src");
        c.packets_out.store(100, Ordering::Relaxed);
        c.bytes_out.store(6400, Ordering::Relaxed);
        c.executions.store(4, Ordering::Relaxed);
        let snap = reg.snapshot();
        let m = snap.operator("src");
        assert_eq!(m.packets_out, 100);
        assert_eq!(m.bytes_out, 6400);
        assert_eq!(snap.operator("unknown"), OperatorMetrics::default());
    }

    #[test]
    fn derived_ratios() {
        let m = OperatorMetrics {
            packets_in: 1000,
            frames_in: 10,
            executions: 5,
            ..Default::default()
        };
        assert_eq!(m.packets_per_execution(), 200.0);
        assert_eq!(m.packets_per_frame(), 100.0);
        let z = OperatorMetrics::default();
        assert_eq!(z.packets_per_execution(), 0.0);
        assert_eq!(z.packets_per_frame(), 0.0);
    }

    #[test]
    fn walk_drives_pretty_and_prometheus_from_one_schema() {
        let tm = ThreadModelStats {
            io_threads: 2,
            worker_threads: 8,
            io_parks: 5,
            trace_spans: 7,
            ..Default::default()
        };
        let mut pretty = neptune_telemetry::PrettyExporter::new();
        tm.walk(&mut pretty);
        let text = pretty.finish();
        assert!(text.contains("io tier: threads=2 workers=8"));
        assert!(text.contains("parks=5"));
        assert!(text.contains("observability: sampler_dropped=0 trace_spans=7"));

        let mut prom = neptune_telemetry::PrometheusExporter::new();
        tm.walk(&mut prom);
        ContainmentStats { worker_panics: 3, ..Default::default() }.walk(&mut prom);
        OperatorMetrics { packets_in: 11, ..Default::default() }.walk(&mut prom, "relay");
        let out = prom.finish();
        assert!(out.contains("# TYPE neptune_io_threads gauge\nneptune_io_threads 2\n"));
        assert!(out.contains("neptune_trace_spans_total 7\n"));
        assert!(out.contains("neptune_worker_panics_total 3\n"));
        assert!(out.contains("neptune_packets_in_total{operator=\"relay\"} 11\n"));
    }

    #[test]
    fn job_aggregates() {
        let reg = MetricsRegistry::new();
        let src = reg.for_operator("source");
        src.packets_out.store(500, Ordering::Relaxed);
        src.bytes_out.store(4000, Ordering::Relaxed);
        let proc_ = reg.for_operator("proc");
        proc_.packets_in.store(500, Ordering::Relaxed);
        proc_.packets_out.store(500, Ordering::Relaxed);
        proc_.bytes_out.store(4000, Ordering::Relaxed);
        proc_.seq_violations.store(0, Ordering::Relaxed);
        let snap = reg.snapshot();
        assert_eq!(snap.total_source_packets(), 500);
        assert_eq!(snap.total_bytes_out(), 8000);
        assert_eq!(snap.total_seq_violations(), 0);
    }
}
