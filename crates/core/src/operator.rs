//! Stream operators: sources and processors (§III-A2/A3 of the paper).
//!
//! *"Stream sources are used to ingest external data streams into a stream
//! processing graph and emit stream packets to the next stage ... Domain
//! specific processing logic to process a stream packet is encapsulated
//! within a stream processor."*
//!
//! Users implement [`StreamSource`] or [`StreamProcessor`]; the runtime
//! supplies an [`OperatorContext`] carrying the instance's identity and the
//! emit API. *"Users need to provide processing logic for a single packet
//! while NEPTUNE transparently manages batched execution"* (§III-B2) — so
//! `process` sees one packet at a time even though the runtime schedules
//! whole batches.

use crate::channel::{ChannelEndpoint, EmitError};
use crate::codec::PacketCodec;
use crate::packet::StreamPacket;
use crate::partition::{Partitioner, PartitioningScheme, Route};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// What a source's `next` call produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceStatus {
    /// Emitted this many packets; call again immediately.
    Emitted(usize),
    /// No data available right now; back off briefly.
    Idle,
    /// The source is done; the pump thread exits.
    Exhausted,
}

/// Ingests an external stream and emits packets into the graph.
///
/// Each instance runs on its own pump thread: `next` is called in a loop
/// until it returns [`SourceStatus::Exhausted`] or the job stops. Emits
/// block under backpressure, which is how throttling reaches the source
/// (Fig. 4 of the paper).
pub trait StreamSource: Send {
    /// Called once before the first `next`.
    fn open(&mut self, _ctx: &mut OperatorContext) {}
    /// Produce zero or more packets via [`OperatorContext::emit`].
    fn next(&mut self, ctx: &mut OperatorContext) -> SourceStatus;
    /// Called once after the last `next`.
    fn close(&mut self, _ctx: &mut OperatorContext) {}
    /// The source's checkpointable state, if it holds any (read cursors,
    /// replay offsets). Stateful sources return `Some`; the checkpoint
    /// subsystem snapshots it when a barrier is injected and restores it
    /// before `open` on recovery. The default `None` means stateless —
    /// checkpoints skip the source entirely.
    fn state(&mut self) -> Option<&mut dyn crate::state::OperatorState> {
        None
    }
}

/// Processes packets from incoming streams, optionally emitting packets on
/// outgoing streams.
pub trait StreamProcessor: Send {
    /// Called once before the first `process`.
    fn open(&mut self, _ctx: &mut OperatorContext) {}
    /// Handle one packet. The runtime batches invocations transparently.
    fn process(&mut self, packet: &StreamPacket, ctx: &mut OperatorContext);
    /// Called once when the instance shuts down.
    fn close(&mut self, _ctx: &mut OperatorContext) {}
    /// The processor's checkpointable state, if it holds any (window
    /// aggregators, a [`crate::state::KeyedState`] map). Snapshotted at
    /// barrier alignment, restored before `open` on recovery; `None`
    /// (the default) marks the operator stateless.
    fn state(&mut self) -> Option<&mut dyn crate::state::OperatorState> {
        None
    }
}

/// One outgoing link as seen by an emitting instance.
pub struct OutgoingLink {
    /// Downstream operator name (the link selector for `emit_to`).
    pub dst_operator: String,
    /// Router across the destination's instances.
    pub partitioner: Partitioner,
    /// One endpoint per destination instance.
    pub endpoints: Vec<Arc<ChannelEndpoint>>,
}

impl OutgoingLink {
    /// Build the sending side of a link for one source instance.
    pub fn new(
        dst_operator: impl Into<String>,
        scheme: &PartitioningScheme,
        endpoints: Vec<Arc<ChannelEndpoint>>,
    ) -> Self {
        OutgoingLink {
            dst_operator: dst_operator.into(),
            partitioner: Partitioner::new(scheme),
            endpoints,
        }
    }
}

enum ContextSink {
    /// Real runtime: emit through channels.
    Channels {
        links: Vec<OutgoingLink>,
        codec: PacketCodec,
        scratch: Vec<u8>,
        counters: Arc<crate::metrics::OperatorCounters>,
    },
    /// Test harness: capture `(link, packet)` pairs in memory.
    Collector(Vec<(Option<String>, StreamPacket)>),
}

/// Execution context handed to operators: identity plus the emit API.
pub struct OperatorContext {
    operator: String,
    instance: usize,
    instances: usize,
    sink: ContextSink,
    emitted: u64,
    /// Per-instance packet pool (§III-B3): operators that build new
    /// packets check them out here instead of allocating per message.
    pool: crate::pool::PacketPool,
}

impl OperatorContext {
    /// Runtime constructor: a context that emits over real channels.
    pub fn for_channels(
        operator: impl Into<String>,
        instance: usize,
        instances: usize,
        links: Vec<OutgoingLink>,
        counters: Arc<crate::metrics::OperatorCounters>,
    ) -> Self {
        OperatorContext {
            operator: operator.into(),
            instance,
            instances,
            sink: ContextSink::Channels {
                links,
                codec: PacketCodec::new(),
                scratch: Vec::with_capacity(512),
                counters,
            },
            emitted: 0,
            pool: crate::pool::PacketPool::for_batch(64),
        }
    }

    /// Test constructor: a context that records emitted packets in memory.
    /// Use [`take_collected`](Self::take_collected) to inspect them.
    pub fn collector(operator: impl Into<String>) -> Self {
        OperatorContext {
            operator: operator.into(),
            instance: 0,
            instances: 1,
            sink: ContextSink::Collector(Vec::new()),
            emitted: 0,
            pool: crate::pool::PacketPool::for_batch(8),
        }
    }

    /// The operator's name.
    pub fn operator(&self) -> &str {
        &self.operator
    }

    /// This instance's index in `0..instances`.
    pub fn instance(&self) -> usize {
        self.instance
    }

    /// Total parallel instances of this operator.
    pub fn instances(&self) -> usize {
        self.instances
    }

    /// Packets emitted through this context so far.
    pub fn packets_emitted(&self) -> u64 {
        self.emitted
    }

    /// Check out a cleared packet from the instance's pool — the
    /// allocation-free way for an operator to build an output packet
    /// (§III-B3). Return it with [`checkin_packet`](Self::checkin_packet)
    /// after emitting.
    pub fn checkout_packet(&mut self) -> StreamPacket {
        self.pool.checkout()
    }

    /// Return a packet to the pool for reuse (its field storage survives).
    pub fn checkin_packet(&mut self, packet: StreamPacket) {
        self.pool.checkin(packet);
    }

    /// Pool effectiveness counters for this instance.
    pub fn pool_stats(&self) -> crate::pool::PoolStats {
        self.pool.stats()
    }

    /// Emit a packet over **all** outgoing links (§III-A3: an operator
    /// emits over one or more outgoing streams).
    pub fn emit(&mut self, packet: &StreamPacket) -> Result<(), EmitError> {
        self.emit_inner(packet, None)
    }

    /// Emit a packet over the link toward one named downstream operator
    /// (§III-A4: *"users can configure the link to use when emitting
    /// packets"*).
    pub fn emit_to(&mut self, dst_operator: &str, packet: &StreamPacket) -> Result<(), EmitError> {
        self.emit_inner(packet, Some(dst_operator))
    }

    fn emit_inner(&mut self, packet: &StreamPacket, only: Option<&str>) -> Result<(), EmitError> {
        match &mut self.sink {
            ContextSink::Collector(collected) => {
                collected.push((only.map(str::to_string), packet.clone()));
                self.emitted += 1;
                Ok(())
            }
            ContextSink::Channels { links, codec, scratch, counters } => {
                if let Some(name) = only {
                    if !links.iter().any(|l| l.dst_operator == name) {
                        return Err(EmitError::Transport(format!(
                            "no outgoing link toward operator '{name}'"
                        )));
                    }
                }
                // Serialize once — including the batch length prefix — and
                // reuse the same bytes for every destination (object reuse:
                // one codec, one scratch buffer per instance; a broadcast
                // or multi-link emit never re-encodes the packet).
                scratch.clear();
                scratch.extend_from_slice(&[0u8; 4]); // length backfilled below
                codec.encode_into(packet, scratch).map_err(|e| EmitError::Codec(e.to_string()))?;
                let body_len = (scratch.len() - 4) as u32;
                scratch[..4].copy_from_slice(&body_len.to_le_bytes());
                let mut delivered = 0u64;
                for link in links.iter_mut() {
                    if let Some(name) = only {
                        if link.dst_operator != name {
                            continue;
                        }
                    }
                    match link.partitioner.route(packet, link.endpoints.len()) {
                        Route::One(i) => {
                            link.endpoints[i].push_preencoded(scratch)?;
                            delivered += 1;
                        }
                        Route::All => {
                            for ep in &link.endpoints {
                                ep.push_preencoded(scratch)?;
                                delivered += 1;
                            }
                        }
                    }
                }
                self.emitted += delivered;
                counters.packets_out.fetch_add(delivered, Ordering::Relaxed);
                Ok(())
            }
        }
    }

    /// Collector mode: drain the captured `(link, packet)` pairs.
    ///
    /// Panics when called on a channel-backed context.
    pub fn take_collected(&mut self) -> Vec<(Option<String>, StreamPacket)> {
        match &mut self.sink {
            ContextSink::Collector(v) => std::mem::take(v),
            _ => panic!("take_collected on a channel-backed context"),
        }
    }

    /// Flush every outgoing buffer unconditionally (teardown path).
    pub fn force_flush_all(&self) -> Result<(), EmitError> {
        if let ContextSink::Channels { links, .. } = &self.sink {
            for link in links {
                for ep in &link.endpoints {
                    ep.force_flush()?;
                }
            }
        }
        Ok(())
    }

    /// All channel endpoints of this context (runtime wiring for the flush
    /// timer).
    pub fn endpoints(&self) -> Vec<Arc<ChannelEndpoint>> {
        match &self.sink {
            ContextSink::Channels { links, .. } => {
                links.iter().flat_map(|l| l.endpoints.iter().cloned()).collect()
            }
            ContextSink::Collector(_) => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelId;
    use crate::metrics::OperatorCounters;
    use crate::packet::FieldValue;
    use neptune_link::LinkBuilder;
    use neptune_net::buffer::OutputBuffer;
    use neptune_net::watermark::{WatermarkConfig, WatermarkQueue};

    fn packet(n: u64) -> StreamPacket {
        let mut p = StreamPacket::new();
        p.push_field("n", FieldValue::U64(n));
        p
    }

    #[test]
    fn collector_context_captures_emits() {
        let mut ctx = OperatorContext::collector("test-op");
        assert_eq!(ctx.operator(), "test-op");
        assert_eq!(ctx.instance(), 0);
        assert_eq!(ctx.instances(), 1);
        ctx.emit(&packet(1)).unwrap();
        ctx.emit_to("downstream", &packet(2)).unwrap();
        let collected = ctx.take_collected();
        assert_eq!(collected.len(), 2);
        assert_eq!(collected[0].0, None);
        assert_eq!(collected[1].0, Some("downstream".into()));
        assert_eq!(collected[1].1.get("n").unwrap().as_u64(), Some(2));
        assert_eq!(ctx.packets_emitted(), 2);
    }

    fn channel_ctx(
        dsts: &[(&str, usize)],
    ) -> (OperatorContext, Vec<Arc<WatermarkQueue<neptune_net::frame::Frame>>>) {
        let counters = Arc::new(OperatorCounters::default());
        let mut queues = Vec::new();
        let mut links = Vec::new();
        for (li, (name, n_inst)) in dsts.iter().enumerate() {
            let mut endpoints = Vec::new();
            for di in 0..*n_inst {
                let q = Arc::new(WatermarkQueue::new(WatermarkConfig::new(1 << 20, 1 << 10)));
                queues.push(q.clone());
                let id = ChannelId::new(li as u16, 0, di as u16);
                endpoints.push(Arc::new(ChannelEndpoint::new(
                    id,
                    OutputBuffer::new(1, None), // flush every packet
                    LinkBuilder::new(id.raw()).in_process(q).build(),
                    counters.clone(),
                    None,
                )));
            }
            links.push(OutgoingLink::new(*name, &PartitioningScheme::Shuffle, endpoints));
        }
        (OperatorContext::for_channels("src", 0, 1, links, counters), queues)
    }

    #[test]
    fn emit_reaches_all_links() {
        let (mut ctx, queues) = channel_ctx(&[("a", 1), ("b", 1)]);
        ctx.emit(&packet(5)).unwrap();
        assert_eq!(queues[0].len(), 1);
        assert_eq!(queues[1].len(), 1);
        assert_eq!(ctx.packets_emitted(), 2);
    }

    #[test]
    fn emit_to_targets_one_link() {
        let (mut ctx, queues) = channel_ctx(&[("a", 1), ("b", 1)]);
        ctx.emit_to("b", &packet(5)).unwrap();
        assert_eq!(queues[0].len(), 0);
        assert_eq!(queues[1].len(), 1);
    }

    #[test]
    fn emit_to_unknown_link_errors() {
        let (mut ctx, _queues) = channel_ctx(&[("a", 1)]);
        let err = ctx.emit_to("nope", &packet(1)).unwrap_err();
        assert!(matches!(err, EmitError::Transport(_)));
    }

    #[test]
    fn shuffle_spreads_across_instances() {
        let (mut ctx, queues) = channel_ctx(&[("a", 3)]);
        for i in 0..6 {
            ctx.emit(&packet(i)).unwrap();
        }
        assert_eq!(queues[0].len(), 2);
        assert_eq!(queues[1].len(), 2);
        assert_eq!(queues[2].len(), 2);
    }

    #[test]
    fn broadcast_fan_out_delivers_identical_bytes() {
        // Serialize-once fan-out: a broadcast packet reaches every
        // destination instance as byte-identical messages.
        let counters = Arc::new(OperatorCounters::default());
        let mut queues = Vec::new();
        let mut endpoints = Vec::new();
        for di in 0..3 {
            let q = Arc::new(WatermarkQueue::new(WatermarkConfig::new(1 << 20, 1 << 10)));
            queues.push(q.clone());
            let id = ChannelId::new(0, 0, di as u16);
            endpoints.push(Arc::new(ChannelEndpoint::new(
                id,
                OutputBuffer::new(1, None),
                LinkBuilder::new(id.raw()).in_process(q).build(),
                counters.clone(),
                None,
            )));
        }
        let links = vec![OutgoingLink::new("fan", &PartitioningScheme::Broadcast, endpoints)];
        let mut ctx = OperatorContext::for_channels("src", 0, 1, links, counters);
        ctx.emit(&packet(123)).unwrap();
        assert_eq!(ctx.packets_emitted(), 3);
        let frames: Vec<_> = queues.iter().map(|q| q.pop().unwrap()).collect();
        for f in &frames {
            assert_eq!(f.messages.len(), 1);
            assert_eq!(f.messages[0], frames[0].messages[0]);
        }
        let mut codec = PacketCodec::new();
        let decoded = codec.decode(&frames[2].messages[0]).unwrap();
        assert_eq!(decoded.get("n").unwrap().as_u64(), Some(123));
    }

    #[test]
    fn emitted_packets_decode_back() {
        let (mut ctx, queues) = channel_ctx(&[("a", 1)]);
        ctx.emit(&packet(99)).unwrap();
        let frame = queues[0].pop().unwrap();
        let mut codec = PacketCodec::new();
        let decoded = codec.decode(&frame.messages[0]).unwrap();
        assert_eq!(decoded.get("n").unwrap().as_u64(), Some(99));
    }

    #[test]
    #[should_panic(expected = "channel-backed context")]
    fn take_collected_panics_on_channel_context() {
        let (mut ctx, _queues) = channel_ctx(&[("a", 1)]);
        ctx.take_collected();
    }

    #[test]
    fn context_pool_recycles_packets() {
        let mut ctx = OperatorContext::collector("pooled");
        let mut p = ctx.checkout_packet();
        assert_eq!(ctx.pool_stats().misses, 1);
        p.push_field("x", FieldValue::U64(1));
        ctx.emit(&p).unwrap();
        ctx.checkin_packet(p);
        let q = ctx.checkout_packet();
        assert!(q.is_empty(), "pooled packet must come back cleared");
        assert_eq!(ctx.pool_stats().hits, 1);
        ctx.checkin_packet(q);
    }

    #[test]
    fn endpoints_enumerates_all() {
        let (ctx, _queues) = channel_ctx(&[("a", 2), ("b", 3)]);
        assert_eq!(ctx.endpoints().len(), 5);
        let c = OperatorContext::collector("x");
        assert!(c.endpoints().is_empty());
    }
}
