//! Stream packets — the most fine-grained element of data in NEPTUNE
//! (§III-A1 of the paper).
//!
//! *"Users can define stream packets by combining one or more data fields
//! as required. NEPTUNE natively supports a set of primitive data types and
//! data structures to aid in defining data fields within a stream packet."*
//!
//! A [`StreamPacket`] is an ordered list of named, typed fields. A
//! [`Schema`] optionally constrains the field layout; sources typically
//! declare one so downstream operators can rely on field positions and use
//! the faster index-based accessors.

/// The primitive field types NEPTUNE supports natively.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FieldType {
    /// Signed 64-bit integer.
    I64,
    /// Unsigned 64-bit integer.
    U64,
    /// 64-bit float.
    F64,
    /// Boolean.
    Bool,
    /// UTF-8 string.
    Str,
    /// Raw bytes.
    Bytes,
    /// Microseconds since the Unix epoch; carried by latency probes.
    Timestamp,
}

/// A field value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Signed integer value.
    I64(i64),
    /// Unsigned integer value.
    U64(u64),
    /// Float value.
    F64(f64),
    /// Boolean value.
    Bool(bool),
    /// String value.
    Str(String),
    /// Byte-array value.
    Bytes(Vec<u8>),
    /// Timestamp in microseconds since the epoch.
    Timestamp(u64),
}

impl FieldValue {
    /// The type of this value.
    pub fn field_type(&self) -> FieldType {
        match self {
            FieldValue::I64(_) => FieldType::I64,
            FieldValue::U64(_) => FieldType::U64,
            FieldValue::F64(_) => FieldType::F64,
            FieldValue::Bool(_) => FieldType::Bool,
            FieldValue::Str(_) => FieldType::Str,
            FieldValue::Bytes(_) => FieldType::Bytes,
            FieldValue::Timestamp(_) => FieldType::Timestamp,
        }
    }

    /// Integer content, if `I64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            FieldValue::I64(v) => Some(*v),
            _ => None,
        }
    }

    /// Unsigned content, if `U64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            FieldValue::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// Float content, if `F64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            FieldValue::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// Boolean content, if `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            FieldValue::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// String content, if `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            FieldValue::Str(v) => Some(v),
            _ => None,
        }
    }

    /// Byte content, if `Bytes`.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            FieldValue::Bytes(v) => Some(v),
            _ => None,
        }
    }

    /// Timestamp content, if `Timestamp`.
    pub fn as_timestamp(&self) -> Option<u64> {
        match self {
            FieldValue::Timestamp(v) => Some(*v),
            _ => None,
        }
    }

    /// Approximate serialized size in bytes (used to pre-size buffers).
    pub fn encoded_size(&self) -> usize {
        match self {
            FieldValue::I64(_)
            | FieldValue::U64(_)
            | FieldValue::F64(_)
            | FieldValue::Timestamp(_) => 9,
            FieldValue::Bool(_) => 2,
            FieldValue::Str(s) => 5 + s.len(),
            FieldValue::Bytes(b) => 5 + b.len(),
        }
    }
}

/// One named, typed field slot.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Field name, unique within a packet/schema.
    pub name: String,
    /// Field value.
    pub value: FieldValue,
}

/// A stream packet: an ordered collection of named, typed fields.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StreamPacket {
    fields: Vec<Field>,
}

impl StreamPacket {
    /// New empty packet.
    pub fn new() -> Self {
        StreamPacket { fields: Vec::new() }
    }

    /// New packet with pre-reserved field capacity.
    pub fn with_capacity(n: usize) -> Self {
        StreamPacket { fields: Vec::with_capacity(n) }
    }

    /// Append a field. Names are not deduplicated; `get` returns the first
    /// match.
    pub fn push_field(&mut self, name: impl Into<String>, value: FieldValue) -> &mut Self {
        self.fields.push(Field { name: name.into(), value });
        self
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when there are no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Field by position — the fast accessor for schema-stable streams.
    pub fn field_at(&self, i: usize) -> Option<&FieldValue> {
        self.fields.get(i).map(|f| &f.value)
    }

    /// Field name by position.
    pub fn name_at(&self, i: usize) -> Option<&str> {
        self.fields.get(i).map(|f| f.name.as_str())
    }

    /// First field with this name.
    pub fn get(&self, name: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|f| f.name == name).map(|f| &f.value)
    }

    /// Mutable access by name.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut FieldValue> {
        self.fields.iter_mut().find(|f| f.name == name).map(|f| &mut f.value)
    }

    /// The packet's source timestamp: the first `Timestamp`-typed field,
    /// in µs since the Unix epoch. This is the end-to-end latency anchor
    /// (ISSUE 2) — sources that want e2e measurement stamp packets with
    /// [`crate::now_micros`] at ingestion, the convention the telemetry
    /// layer reads back at every downstream operator.
    pub fn source_timestamp(&self) -> Option<u64> {
        self.fields.iter().find_map(|f| f.value.as_timestamp())
    }

    /// Iterate `(name, value)` pairs in order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &FieldValue)> {
        self.fields.iter().map(|f| (f.name.as_str(), &f.value))
    }

    /// Remove all fields, keeping the allocation (object reuse).
    pub fn clear(&mut self) {
        self.fields.clear();
    }

    /// Approximate serialized size in bytes.
    pub fn encoded_size(&self) -> usize {
        2 + self.fields.iter().map(|f| 2 + f.name.len() + f.value.encoded_size()).sum::<usize>()
    }

    /// Crate-internal access for the codec's in-place, allocation-reusing
    /// deserialization path.
    pub(crate) fn fields_vec_mut(&mut self) -> &mut Vec<Field> {
        &mut self.fields
    }
}

/// Schema violations reported by [`Schema::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// Field count differs from the schema.
    FieldCount {
        /// Fields the schema declares.
        expected: usize,
        /// Fields the packet has.
        actual: usize,
    },
    /// A field's name differs at some position.
    NameMismatch {
        /// Field position.
        index: usize,
        /// Name the schema declares.
        expected: String,
        /// Name the packet has.
        actual: String,
    },
    /// A field's type differs at some position.
    TypeMismatch {
        /// Field position.
        index: usize,
        /// Type the schema declares.
        expected: FieldType,
        /// Type the packet has.
        actual: FieldType,
    },
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchemaError::FieldCount { expected, actual } => {
                write!(f, "schema expects {expected} fields, packet has {actual}")
            }
            SchemaError::NameMismatch { index, expected, actual } => {
                write!(f, "field {index}: schema names it '{expected}', packet '{actual}'")
            }
            SchemaError::TypeMismatch { index, expected, actual } => {
                write!(f, "field {index}: schema type {expected:?}, packet {actual:?}")
            }
        }
    }
}

impl std::error::Error for SchemaError {}

/// An ordered set of named, typed field slots that a stream's packets must
/// match.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schema {
    fields: Vec<(String, FieldType)>,
}

impl Schema {
    /// Empty schema; add slots with [`field`](Self::field).
    pub fn new() -> Self {
        Schema { fields: Vec::new() }
    }

    /// Append a field slot (builder style).
    pub fn field(mut self, name: impl Into<String>, ty: FieldType) -> Self {
        self.fields.push((name.into(), ty));
        self
    }

    /// Number of declared fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema declares no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Position of a field name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|(n, _)| n == name)
    }

    /// Declared type at a position.
    pub fn type_at(&self, i: usize) -> Option<FieldType> {
        self.fields.get(i).map(|(_, t)| *t)
    }

    /// Check a packet's layout against this schema.
    pub fn validate(&self, packet: &StreamPacket) -> Result<(), SchemaError> {
        if packet.len() != self.fields.len() {
            return Err(SchemaError::FieldCount {
                expected: self.fields.len(),
                actual: packet.len(),
            });
        }
        for (i, (name, ty)) in self.fields.iter().enumerate() {
            let actual_name = packet.name_at(i).expect("checked len");
            if actual_name != name {
                return Err(SchemaError::NameMismatch {
                    index: i,
                    expected: name.clone(),
                    actual: actual_name.to_string(),
                });
            }
            let actual_ty = packet.field_at(i).expect("checked len").field_type();
            if actual_ty != *ty {
                return Err(SchemaError::TypeMismatch {
                    index: i,
                    expected: *ty,
                    actual: actual_ty,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_packet() -> StreamPacket {
        let mut p = StreamPacket::new();
        p.push_field("id", FieldValue::U64(7))
            .push_field("temp", FieldValue::F64(21.5))
            .push_field("ok", FieldValue::Bool(true))
            .push_field("site", FieldValue::Str("lab-3".into()))
            .push_field("raw", FieldValue::Bytes(vec![1, 2, 3]))
            .push_field("ts", FieldValue::Timestamp(1_000_000));
        p
    }

    #[test]
    fn field_access_by_name_and_index() {
        let p = sample_packet();
        assert_eq!(p.len(), 6);
        assert_eq!(p.get("id").unwrap().as_u64(), Some(7));
        assert_eq!(p.get("temp").unwrap().as_f64(), Some(21.5));
        assert_eq!(p.field_at(2).unwrap().as_bool(), Some(true));
        assert_eq!(p.name_at(3), Some("site"));
        assert_eq!(p.get("site").unwrap().as_str(), Some("lab-3"));
        assert_eq!(p.get("raw").unwrap().as_bytes(), Some(&[1u8, 2, 3][..]));
        assert_eq!(p.get("ts").unwrap().as_timestamp(), Some(1_000_000));
        assert!(p.get("missing").is_none());
        assert!(p.field_at(99).is_none());
    }

    #[test]
    fn typed_accessors_reject_wrong_types() {
        let p = sample_packet();
        assert!(p.get("id").unwrap().as_str().is_none());
        assert!(p.get("site").unwrap().as_u64().is_none());
        assert!(p.get("ok").unwrap().as_f64().is_none());
        assert!(p.get("ts").unwrap().as_u64().is_none(), "timestamp is not a plain u64");
    }

    #[test]
    fn mutation_in_place() {
        let mut p = sample_packet();
        *p.get_mut("temp").unwrap() = FieldValue::F64(25.0);
        assert_eq!(p.get("temp").unwrap().as_f64(), Some(25.0));
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut p = sample_packet();
        let cap = p.fields.capacity();
        p.clear();
        assert!(p.is_empty());
        assert_eq!(p.fields.capacity(), cap);
    }

    #[test]
    fn field_types_reported() {
        let p = sample_packet();
        let types: Vec<FieldType> = p.iter().map(|(_, v)| v.field_type()).collect();
        assert_eq!(
            types,
            vec![
                FieldType::U64,
                FieldType::F64,
                FieldType::Bool,
                FieldType::Str,
                FieldType::Bytes,
                FieldType::Timestamp
            ]
        );
    }

    #[test]
    fn schema_validates_matching_packet() {
        let schema = Schema::new()
            .field("id", FieldType::U64)
            .field("temp", FieldType::F64)
            .field("ok", FieldType::Bool)
            .field("site", FieldType::Str)
            .field("raw", FieldType::Bytes)
            .field("ts", FieldType::Timestamp);
        assert!(schema.validate(&sample_packet()).is_ok());
        assert_eq!(schema.index_of("site"), Some(3));
        assert_eq!(schema.type_at(0), Some(FieldType::U64));
    }

    #[test]
    fn schema_rejects_mismatches() {
        let schema = Schema::new().field("id", FieldType::U64).field("x", FieldType::F64);
        let mut p = StreamPacket::new();
        p.push_field("id", FieldValue::U64(1));
        assert!(matches!(
            schema.validate(&p),
            Err(SchemaError::FieldCount { expected: 2, actual: 1 })
        ));
        p.push_field("y", FieldValue::F64(0.0));
        assert!(matches!(schema.validate(&p), Err(SchemaError::NameMismatch { index: 1, .. })));
        let mut p2 = StreamPacket::new();
        p2.push_field("id", FieldValue::U64(1)).push_field("x", FieldValue::I64(3));
        assert!(matches!(schema.validate(&p2), Err(SchemaError::TypeMismatch { index: 1, .. })));
    }

    #[test]
    fn encoded_size_is_plausible() {
        let p = sample_packet();
        let est = p.encoded_size();
        // 6 fields with names and small payloads: between 40 and 120 bytes.
        assert!((40..150).contains(&est), "estimate {est}");
    }
}
