//! Stream partitioning schemes (§III-A6 of the paper).
//!
//! *"Partitioning schemes define how a stream should be partitioned when it
//! is routed to different instances of the same stream processor. ...
//! NEPTUNE supports a set of partitioning schemes natively and also allows
//! users to design custom partitioning schemes."*
//!
//! Native schemes: [`Shuffle`](PartitioningScheme::Shuffle) (round-robin
//! load balancing), [`Fields`](PartitioningScheme::Fields) (key-hash
//! grouping, so all packets with equal key fields land on one instance),
//! [`Global`](PartitioningScheme::Global) (everything to instance 0),
//! [`Broadcast`](PartitioningScheme::Broadcast) (everything to every
//! instance), and [`Custom`](PartitioningScheme::Custom).

use crate::packet::{FieldValue, StreamPacket};
use std::sync::Arc;

/// Where a packet should be routed within a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Deliver to one destination instance.
    One(usize),
    /// Deliver to every destination instance.
    All,
}

/// A user-supplied routing function: `(packet, n_instances) -> instance`.
pub type CustomRouter = Arc<dyn Fn(&StreamPacket, usize) -> usize + Send + Sync>;

/// User-facing declaration of how a link partitions its stream.
#[derive(Clone)]
pub enum PartitioningScheme {
    /// Round-robin across destination instances.
    Shuffle,
    /// Hash of the named fields; equal keys always co-locate.
    Fields(Vec<String>),
    /// Everything to instance 0.
    Global,
    /// Replicate to every instance.
    Broadcast,
    /// User-supplied routing: `(packet, n_instances) -> instance`.
    Custom(CustomRouter),
}

impl std::fmt::Debug for PartitioningScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitioningScheme::Shuffle => write!(f, "Shuffle"),
            PartitioningScheme::Fields(keys) => write!(f, "Fields({keys:?})"),
            PartitioningScheme::Global => write!(f, "Global"),
            PartitioningScheme::Broadcast => write!(f, "Broadcast"),
            PartitioningScheme::Custom(_) => write!(f, "Custom(..)"),
        }
    }
}

impl PartitioningScheme {
    /// Partition by a single key field.
    pub fn by_field(name: impl Into<String>) -> Self {
        PartitioningScheme::Fields(vec![name.into()])
    }
}

/// The runtime-side stateful router for one (link, source-instance) pair.
/// Shuffle keeps a per-sender round-robin cursor so instances balance even
/// without coordination.
#[derive(Debug)]
pub struct Partitioner {
    scheme: PartitioningSchemeInner,
    cursor: usize,
}

enum PartitioningSchemeInner {
    Shuffle,
    Fields(Vec<String>),
    Global,
    Broadcast,
    Custom(CustomRouter),
}

impl std::fmt::Debug for PartitioningSchemeInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Shuffle => write!(f, "Shuffle"),
            Self::Fields(k) => write!(f, "Fields({k:?})"),
            Self::Global => write!(f, "Global"),
            Self::Broadcast => write!(f, "Broadcast"),
            Self::Custom(_) => write!(f, "Custom"),
        }
    }
}

impl Partitioner {
    /// Instantiate the router for a scheme.
    pub fn new(scheme: &PartitioningScheme) -> Self {
        let inner = match scheme {
            PartitioningScheme::Shuffle => PartitioningSchemeInner::Shuffle,
            PartitioningScheme::Fields(k) => PartitioningSchemeInner::Fields(k.clone()),
            PartitioningScheme::Global => PartitioningSchemeInner::Global,
            PartitioningScheme::Broadcast => PartitioningSchemeInner::Broadcast,
            PartitioningScheme::Custom(f) => PartitioningSchemeInner::Custom(f.clone()),
        };
        Partitioner { scheme: inner, cursor: 0 }
    }

    /// Route one packet among `n_instances` destination instances.
    ///
    /// Panics if `n_instances == 0`.
    pub fn route(&mut self, packet: &StreamPacket, n_instances: usize) -> Route {
        assert!(n_instances > 0, "cannot route to zero instances");
        match &self.scheme {
            PartitioningSchemeInner::Shuffle => {
                let i = self.cursor % n_instances;
                self.cursor = self.cursor.wrapping_add(1);
                Route::One(i)
            }
            PartitioningSchemeInner::Fields(keys) => {
                let h = hash_fields(packet, keys);
                Route::One((h % n_instances as u64) as usize)
            }
            PartitioningSchemeInner::Global => Route::One(0),
            PartitioningSchemeInner::Broadcast => Route::All,
            PartitioningSchemeInner::Custom(f) => {
                let i = f(packet, n_instances);
                assert!(
                    i < n_instances,
                    "custom partitioner returned instance {i} of {n_instances}"
                );
                Route::One(i)
            }
        }
    }
}

/// FNV-1a over the selected fields' canonical encodings. Missing fields
/// hash as a fixed sentinel so routing stays deterministic.
fn hash_fields(packet: &StreamPacket, keys: &[String]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x1000_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    for key in keys {
        match packet.get(key) {
            Some(FieldValue::I64(v)) => eat(&v.to_le_bytes()),
            Some(FieldValue::U64(v)) | Some(FieldValue::Timestamp(v)) => eat(&v.to_le_bytes()),
            Some(FieldValue::F64(v)) => eat(&v.to_bits().to_le_bytes()),
            Some(FieldValue::Bool(v)) => eat(&[*v as u8]),
            Some(FieldValue::Str(s)) => eat(s.as_bytes()),
            Some(FieldValue::Bytes(b)) => eat(b),
            None => eat(&[0xFE, 0xED]),
        }
        eat(&[0x1F]); // field separator
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet_with_key(key: u64) -> StreamPacket {
        let mut p = StreamPacket::new();
        p.push_field("device", FieldValue::U64(key));
        p.push_field("reading", FieldValue::F64(key as f64 * 0.5));
        p
    }

    #[test]
    fn shuffle_is_round_robin() {
        let mut part = Partitioner::new(&PartitioningScheme::Shuffle);
        let p = packet_with_key(1);
        let routes: Vec<Route> = (0..6).map(|_| part.route(&p, 3)).collect();
        assert_eq!(
            routes,
            vec![
                Route::One(0),
                Route::One(1),
                Route::One(2),
                Route::One(0),
                Route::One(1),
                Route::One(2)
            ]
        );
    }

    #[test]
    fn fields_routing_is_deterministic_and_sticky() {
        let mut part = Partitioner::new(&PartitioningScheme::by_field("device"));
        for key in 0..100u64 {
            let p = packet_with_key(key);
            let first = part.route(&p, 5);
            for _ in 0..3 {
                assert_eq!(part.route(&p, 5), first, "key {key} must be sticky");
            }
        }
    }

    #[test]
    fn fields_routing_spreads_keys() {
        let mut part = Partitioner::new(&PartitioningScheme::by_field("device"));
        let mut counts = [0usize; 4];
        for key in 0..1000u64 {
            if let Route::One(i) = part.route(&packet_with_key(key), 4) {
                counts[i] += 1;
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((150..400).contains(&c), "instance {i} got {c} of 1000");
        }
    }

    #[test]
    fn multi_field_keys_differ_from_single() {
        let mut single = Partitioner::new(&PartitioningScheme::by_field("device"));
        let mut multi =
            Partitioner::new(&PartitioningScheme::Fields(vec!["device".into(), "reading".into()]));
        // Same device, different reading: single-field must co-locate,
        // multi-field generally should not always co-locate.
        let mut p1 = StreamPacket::new();
        p1.push_field("device", FieldValue::U64(7)).push_field("reading", FieldValue::F64(1.0));
        let mut p2 = StreamPacket::new();
        p2.push_field("device", FieldValue::U64(7)).push_field("reading", FieldValue::F64(2.0));
        assert_eq!(single.route(&p1, 16), single.route(&p2, 16));
        // With 16 instances a differing second key should split with
        // overwhelming probability for at least one of several readings.
        let mut split = false;
        for r in 0..32 {
            let mut q = StreamPacket::new();
            q.push_field("device", FieldValue::U64(7))
                .push_field("reading", FieldValue::F64(r as f64));
            if multi.route(&q, 16) != multi.route(&p1, 16) {
                split = true;
                break;
            }
        }
        assert!(split, "multi-field hash never split distinct keys");
    }

    #[test]
    fn global_always_routes_to_zero() {
        let mut part = Partitioner::new(&PartitioningScheme::Global);
        for key in 0..10 {
            assert_eq!(part.route(&packet_with_key(key), 7), Route::One(0));
        }
    }

    #[test]
    fn broadcast_routes_to_all() {
        let mut part = Partitioner::new(&PartitioningScheme::Broadcast);
        assert_eq!(part.route(&packet_with_key(1), 3), Route::All);
    }

    #[test]
    fn custom_scheme_invoked() {
        let scheme = PartitioningScheme::Custom(Arc::new(|p: &StreamPacket, n| {
            (p.get("device").and_then(|v| v.as_u64()).unwrap_or(0) as usize + 1) % n
        }));
        let mut part = Partitioner::new(&scheme);
        assert_eq!(part.route(&packet_with_key(0), 4), Route::One(1));
        assert_eq!(part.route(&packet_with_key(6), 4), Route::One(3));
    }

    #[test]
    #[should_panic(expected = "custom partitioner returned")]
    fn custom_out_of_range_panics() {
        let scheme = PartitioningScheme::Custom(Arc::new(|_, n| n));
        Partitioner::new(&scheme).route(&packet_with_key(0), 2);
    }

    #[test]
    fn missing_key_field_is_deterministic() {
        let mut part = Partitioner::new(&PartitioningScheme::by_field("nonexistent"));
        let a = part.route(&packet_with_key(1), 8);
        let b = part.route(&packet_with_key(2), 8);
        assert_eq!(a, b, "missing fields hash to the sentinel");
    }

    #[test]
    fn single_instance_always_zero() {
        for scheme in [
            PartitioningScheme::Shuffle,
            PartitioningScheme::by_field("device"),
            PartitioningScheme::Global,
        ] {
            let mut part = Partitioner::new(&scheme);
            assert_eq!(part.route(&packet_with_key(9), 1), Route::One(0));
        }
    }
}
