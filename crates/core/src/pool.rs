//! Object pools — the frugal object-creation scheme of §III-B3.
//!
//! *"NEPTUNE relieves memory pressure through a frugal object creation
//! scheme that reduces strain on the garbage collector via reuse of objects
//! and data structures."*
//!
//! Rust has no GC, but the paper's mechanism translates directly: pooled
//! [`StreamPacket`]s and scratch byte buffers mean the hot path performs no
//! heap allocation per packet, which the REUSE experiment measures with a
//! counting allocator. Pools are intentionally *not* thread-safe — one pool
//! lives inside each operator instance, which Granules guarantees is
//! single-threaded — so checkout/checkin are plain vector ops.

use crate::packet::StreamPacket;

/// Counters describing a pool's effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Checkouts satisfied from the free list.
    pub hits: u64,
    /// Checkouts that had to allocate a fresh object.
    pub misses: u64,
    /// Objects returned to the pool.
    pub returns: u64,
    /// Returns dropped because the pool was at capacity.
    pub discards: u64,
}

impl PoolStats {
    /// Fraction of checkouts served without allocating (0 when unused).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A bounded pool of reusable [`StreamPacket`]s.
#[derive(Debug)]
pub struct PacketPool {
    free: Vec<StreamPacket>,
    max_retained: usize,
    stats: PoolStats,
}

impl PacketPool {
    /// Pool retaining at most `max_retained` idle packets.
    pub fn new(max_retained: usize) -> Self {
        assert!(max_retained > 0, "pool must retain at least one object");
        PacketPool {
            free: Vec::with_capacity(max_retained.min(1024)),
            max_retained,
            stats: PoolStats::default(),
        }
    }

    /// Default pool size used by operator instances: a batch worth of
    /// packets.
    pub fn for_batch(batch_size: usize) -> Self {
        Self::new(batch_size.max(1) * 2)
    }

    /// Check out a packet: cleared, with whatever field capacity its past
    /// life accumulated.
    pub fn checkout(&mut self) -> StreamPacket {
        match self.free.pop() {
            Some(mut p) => {
                self.stats.hits += 1;
                p.clear();
                p
            }
            None => {
                self.stats.misses += 1;
                StreamPacket::new()
            }
        }
    }

    /// Return a packet for reuse. Keeps allocation, drops the packet if
    /// the pool is full.
    pub fn checkin(&mut self, packet: StreamPacket) {
        if self.free.len() < self.max_retained {
            self.stats.returns += 1;
            self.free.push(packet);
        } else {
            self.stats.discards += 1;
        }
    }

    /// Idle packets currently retained.
    pub fn idle(&self) -> usize {
        self.free.len()
    }

    /// Effectiveness counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }
}

/// A bounded pool of scratch byte buffers (serialization scratch, batch
/// staging).
#[derive(Debug)]
pub struct BufferPool {
    free: Vec<Vec<u8>>,
    max_retained: usize,
    stats: PoolStats,
}

impl BufferPool {
    /// Pool retaining at most `max_retained` idle buffers.
    pub fn new(max_retained: usize) -> Self {
        assert!(max_retained > 0, "pool must retain at least one object");
        BufferPool { free: Vec::new(), max_retained, stats: PoolStats::default() }
    }

    /// Check out a cleared buffer.
    pub fn checkout(&mut self) -> Vec<u8> {
        match self.free.pop() {
            Some(mut b) => {
                self.stats.hits += 1;
                b.clear();
                b
            }
            None => {
                self.stats.misses += 1;
                Vec::new()
            }
        }
    }

    /// Return a buffer for reuse.
    pub fn checkin(&mut self, buffer: Vec<u8>) {
        if self.free.len() < self.max_retained {
            self.stats.returns += 1;
            self.free.push(buffer);
        } else {
            self.stats.discards += 1;
        }
    }

    /// Idle buffers currently retained.
    pub fn idle(&self) -> usize {
        self.free.len()
    }

    /// Effectiveness counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::FieldValue;

    #[test]
    fn checkout_from_empty_pool_allocates() {
        let mut pool = PacketPool::new(4);
        let p = pool.checkout();
        assert!(p.is_empty());
        assert_eq!(pool.stats().misses, 1);
        assert_eq!(pool.stats().hits, 0);
    }

    #[test]
    fn checkin_then_checkout_reuses() {
        let mut pool = PacketPool::new(4);
        let mut p = pool.checkout();
        p.push_field("x", FieldValue::U64(1));
        pool.checkin(p);
        assert_eq!(pool.idle(), 1);
        let q = pool.checkout();
        assert!(q.is_empty(), "checked-out packet must be cleared");
        assert_eq!(pool.stats().hits, 1);
        assert_eq!(pool.stats().returns, 1);
    }

    #[test]
    fn pool_capacity_bounds_retention() {
        let mut pool = PacketPool::new(2);
        for _ in 0..5 {
            let p = pool.checkout();
            pool.checkin(p);
        }
        // Sequential checkout/checkin never exceeds 1 idle.
        assert_eq!(pool.idle(), 1);
        // Now overfill.
        let (a, b, c) = (pool.checkout(), pool.checkout(), pool.checkout());
        pool.checkin(a);
        pool.checkin(b);
        pool.checkin(c);
        assert_eq!(pool.idle(), 2);
        assert_eq!(pool.stats().discards, 1);
    }

    #[test]
    fn hit_rate_reflects_reuse() {
        let mut pool = PacketPool::new(8);
        let p = pool.checkout(); // miss
        pool.checkin(p);
        for _ in 0..9 {
            let p = pool.checkout(); // hits
            pool.checkin(p);
        }
        assert!((pool.stats().hit_rate() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn buffer_pool_keeps_capacity() {
        let mut pool = BufferPool::new(4);
        let mut b = pool.checkout();
        b.extend_from_slice(&[0u8; 4096]);
        let cap = b.capacity();
        pool.checkin(b);
        let b2 = pool.checkout();
        assert!(b2.is_empty());
        assert!(b2.capacity() >= cap, "capacity must survive the pool");
    }

    #[test]
    fn for_batch_sizes_generously() {
        let pool = PacketPool::for_batch(64);
        assert_eq!(pool.max_retained, 128);
        let pool = PacketPool::for_batch(0);
        assert_eq!(pool.max_retained, 2);
    }

    #[test]
    #[should_panic(expected = "at least one object")]
    fn zero_capacity_rejected() {
        PacketPool::new(0);
    }
}
