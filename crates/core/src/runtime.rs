//! The NEPTUNE runtime: deploys a [`Graph`] onto Granules resources and
//! orchestrates the optimized data plane.
//!
//! ## How the paper's pieces map to this module
//!
//! * **Resources & tasks (§II)** — each processor instance becomes one
//!   Granules [`ComputationalTask`] with data-driven scheduling; each
//!   source instance runs on a dedicated pump thread (sources *pull* from
//!   external systems, §III-A2).
//! * **Batched scheduling (§III-B2)** — frame deliveries signal the task;
//!   Granules coalesces signals, and one scheduled execution drains the
//!   whole inbound queue in `batch_max_frames` chunks.
//! * **Two-tier thread model (§IV-C)** — worker threads (the resource
//!   pools) never touch sockets; IO threads (TCP reader/writer, owned by
//!   `neptune-net`) never run operator logic.
//! * **Backpressure (§III-B4)** — inbound queues are watermark-bounded;
//!   emits block all the way back to the source pump threads.
//! * **Correctness (§I-B)** — per-channel contiguous sequence numbers are
//!   validated on receive; any loss, duplication, or reordering increments
//!   `seq_violations` (asserted zero by the test suite).
//! * **Observability (§IV)** — when [`RuntimeConfig`] enables telemetry,
//!   every operator records end-to-end latency plus a four-stage breakdown
//!   (buffer wait, transport, schedule delay, execution) into lock-free
//!   histograms, and a background sampler keeps a bounded time series of
//!   counters and queue gauges; see [`JobHandle::telemetry`].
//!
//! Deadlock freedom: a worker thread can block while emitting downstream,
//! so each resource's pool is sized to at least the number of processor
//! instances placed on it — every instance can always make progress, and
//! the blocking chain terminates at the source pumps.

use crate::channel::{ChannelEndpoint, ChannelId, SinkHandle};
use crate::codec::PacketCodec;
use crate::config::{PlacementStrategy, RuntimeConfig, TransportMode};
use crate::graph::{Factory, Graph, OperatorKind};
use crate::metrics::{JobMetrics, MetricsRegistry, OperatorCounters};
use crate::operator::{OperatorContext, OutgoingLink, SourceStatus, StreamProcessor};
use crate::packet::StreamPacket;
use crate::telemetry::{QueueGauge, TelemetryHub, TelemetrySample, TelemetrySnapshot};
use neptune_granules::{ComputationalTask, Resource, ScheduleSpec, TaskContext, TaskOutcome};
use neptune_ha::{DetectorConfig, FailureDetector, PeerState, RecoverySnapshot, RecoveryStats};
use neptune_net::buffer::OutputBuffer;
use neptune_net::frame::Frame;
use neptune_net::pool::BytesPool;
use neptune_net::tcp::{TcpReceiver, TcpSender};
use neptune_net::transport::InProcessTransport;
use neptune_net::watermark::{WatermarkConfig, WatermarkQueue};
use neptune_telemetry::{OperatorTelemetry, TelemetrySampler};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Job submission failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The runtime configuration failed validation.
    Config(String),
    /// Socket setup failed (TCP transport mode).
    Io(String),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Config(m) => write!(f, "invalid configuration: {m}"),
            SubmitError::Io(m) => write!(f, "io error during deployment: {m}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Deploys stream processing graphs as jobs on this machine.
pub struct LocalRuntime {
    config: RuntimeConfig,
}

impl LocalRuntime {
    /// Runtime with the given job-wide configuration.
    pub fn new(config: RuntimeConfig) -> Self {
        LocalRuntime { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// Deploy a graph; operators start immediately.
    pub fn submit(&self, graph: Graph) -> Result<JobHandle, SubmitError> {
        self.config.validate().map_err(SubmitError::Config)?;
        deploy(graph, self.config.clone())
    }
}

/// The granules task wrapping one processor instance.
struct ProcessorTask {
    processor: Box<dyn StreamProcessor>,
    ctx: OperatorContext,
    queue: Arc<WatermarkQueue<Frame>>,
    codec: PacketCodec,
    /// Workhorse packet reused for every decode (object reuse, §III-B3).
    workhorse: StreamPacket,
    /// Reused frame staging vector.
    staged: Vec<Frame>,
    batch_max: usize,
    counters: Arc<OperatorCounters>,
    /// Expected next sequence number per channel (exactly-once check).
    expected_seq: HashMap<u64, u64>,
    /// Job-wide batch-buffer pool; processed frames return their storage
    /// here so upstream output buffers and TCP readers can reuse it
    /// (object reuse, §III-B3).
    pool: Arc<BytesPool>,
    /// Latency recorder shared by all instances of this operator; `None`
    /// keeps the hot path free of clock reads when telemetry is off.
    telemetry: Option<Arc<OperatorTelemetry>>,
}

impl ProcessorTask {
    fn drain_queue(&mut self) -> TaskOutcome {
        loop {
            self.staged.clear();
            if self.queue.pop_batch(self.batch_max, &mut self.staged) == 0 {
                return TaskOutcome::Continue;
            }
            // Per-message ablation (Table I): one frame per scheduled
            // execution — the drain loop is what batched scheduling adds.
            let drain_fully = self.batch_max > 1;
            // `staged` is drained without freeing its storage; the frames
            // themselves drop after processing.
            for frame in self.staged.drain(..) {
                let expected = self.expected_seq.entry(frame.link_id).or_insert(0);
                if frame.base_seq != *expected {
                    self.counters.seq_violations.fetch_add(1, Ordering::Relaxed);
                }
                *expected = frame.base_seq + frame.messages.len() as u64;
                self.counters.frames_in.fetch_add(1, Ordering::Relaxed);
                // Stage telemetry: schedule delay is how long the frame sat
                // on the inbound queue; transport is dispatch→arrival,
                // recovered by subtracting the queue wait from the
                // sender-stamped total in-flight time.
                let now = if self.telemetry.is_some() { crate::now_micros() } else { 0 };
                if let Some(t) = &self.telemetry {
                    let schedule_us = match frame.received_at {
                        Some(received) => {
                            let us = received.elapsed().as_micros() as u64;
                            t.schedule_delay.record(us);
                            us
                        }
                        None => 0,
                    };
                    if frame.sent_at_micros > 0 {
                        let in_flight = now.saturating_sub(frame.sent_at_micros);
                        t.transport.record(in_flight.saturating_sub(schedule_us));
                    }
                }
                for message in &frame.messages {
                    match self.codec.decode_into(message, &mut self.workhorse) {
                        Ok(()) => {
                            self.counters.packets_in.fetch_add(1, Ordering::Relaxed);
                            if let Some(t) = &self.telemetry {
                                if let Some(ts) = self.workhorse.source_timestamp() {
                                    t.e2e.record(now.saturating_sub(ts));
                                }
                            }
                            self.processor.process(&self.workhorse, &mut self.ctx);
                        }
                        Err(_) => {
                            self.counters.seq_violations.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                // Batch storage goes back to the pool once every message in
                // it has been decoded; the recycle is a no-op while other
                // frames still share the buffer.
                self.pool.recycle(frame.messages.into_batch());
            }
            if !drain_fully {
                // End this scheduled execution after one frame; ask for a
                // fresh one if the queue still holds frames whose signals
                // were coalesced into this run.
                return if self.queue.is_empty() {
                    TaskOutcome::Continue
                } else {
                    TaskOutcome::Reschedule
                };
            }
        }
    }
}

impl ComputationalTask for ProcessorTask {
    fn initialize(&mut self, _gctx: &TaskContext) {
        self.processor.open(&mut self.ctx);
    }

    fn execute(&mut self, _gctx: &TaskContext) -> TaskOutcome {
        self.counters.executions.fetch_add(1, Ordering::Relaxed);
        match self.telemetry.clone() {
            None => self.drain_queue(),
            Some(t) => {
                let started = Instant::now();
                let outcome = self.drain_queue();
                t.execution.record(started.elapsed().as_micros() as u64);
                outcome
            }
        }
    }

    fn terminate(&mut self, _gctx: &TaskContext) {
        self.processor.close(&mut self.ctx);
        // close() may have emitted; push those bytes out.
        let _ = self.ctx.force_flush_all();
    }
}

/// A running NEPTUNE job.
pub struct JobHandle {
    graph_name: String,
    stop_flag: Arc<AtomicBool>,
    active_pumps: Arc<AtomicUsize>,
    pumps: Mutex<Vec<std::thread::JoinHandle<()>>>,
    flusher_stop: Arc<AtomicBool>,
    flusher: Mutex<Option<std::thread::JoinHandle<()>>>,
    resources: Vec<Resource>,
    /// Processor task handles grouped by operator, in topological order.
    processor_handles: Vec<(String, Vec<neptune_granules::TaskHandle>)>,
    queues: Vec<Arc<WatermarkQueue<Frame>>>,
    endpoints: Vec<Arc<ChannelEndpoint>>,
    receivers: Mutex<Vec<TcpReceiver>>,
    pool: Arc<BytesPool>,
    registry: MetricsRegistry,
    stopped: AtomicBool,
    /// `(operator, instance) -> resource index`, for observability and
    /// placement tests.
    placement: Vec<(String, usize, usize)>,
    /// Per-operator latency recorders; `None` when telemetry is disabled.
    telemetry_hub: Option<Arc<TelemetryHub>>,
    /// Background counter/gauge sampler; `None` when telemetry is disabled.
    sampler: Option<TelemetrySampler<TelemetrySample>>,
    /// Fault-tolerance state; `None` when HA is disabled.
    ha: Option<HaRuntime>,
}

/// Background fault-tolerance state of a running job (ISSUE 3): shared
/// recovery counters, the heartbeat failure detector, and the monitor
/// thread that feeds resource beacons into it.
struct HaRuntime {
    stats: Arc<RecoveryStats>,
    detector: Arc<FailureDetector>,
    monitor_stop: Arc<AtomicBool>,
    monitor: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl JobHandle {
    /// The submitted graph's name.
    pub fn graph_name(&self) -> &str {
        &self.graph_name
    }

    /// Live metrics snapshot.
    pub fn metrics(&self) -> JobMetrics {
        let mut m = self.registry.snapshot();
        m.buffer_pool = self.pool.stats();
        m
    }

    /// Live gauges of every inbound watermark queue, one per processor
    /// instance in deployment order. Gate events count how often
    /// backpressure engaged (§III-B4); the backpressure harness asserts
    /// they actually fire.
    pub fn queue_gauges(&self) -> Vec<QueueGauge> {
        self.queues.iter().map(|q| QueueGauge::observe(q)).collect()
    }

    /// Full telemetry snapshot: per-operator latency histograms (end-to-end
    /// plus the four-stage breakdown), live counters and queue gauges, and
    /// the background sampler's time series. `None` when telemetry is
    /// disabled in [`RuntimeConfig`].
    pub fn telemetry(&self) -> Option<TelemetrySnapshot> {
        let hub = self.telemetry_hub.as_ref()?;
        Some(TelemetrySnapshot {
            graph_name: self.graph_name.clone(),
            operators: hub.snapshot(),
            metrics: self.metrics(),
            queues: self.queue_gauges(),
            series: self.sampler.as_ref().map(|s| s.series()).unwrap_or_default(),
            recovery: self.recovery(),
        })
    }

    /// Recovery counters: retransmits, reconnects, failure detections and
    /// their latency distribution. `None` when fault tolerance is disabled
    /// in [`RuntimeConfig`].
    pub fn recovery(&self) -> Option<RecoverySnapshot> {
        self.ha.as_ref().map(|h| h.stats.snapshot())
    }

    /// Liveness verdict per resource from the heartbeat failure detector,
    /// in resource order. `None` when fault tolerance is disabled.
    pub fn resource_states(&self) -> Option<Vec<(String, PeerState)>> {
        let ha = self.ha.as_ref()?;
        Some(
            self.resources
                .iter()
                .map(|r| {
                    let name = r.name().to_string();
                    let state = ha.detector.state(&name).unwrap_or(PeerState::Alive);
                    (name, state)
                })
                .collect(),
        )
    }

    /// Chaos hook: freeze (or thaw) a resource's heartbeat beacon so the
    /// failure detector sees it fall silent without tearing anything down.
    pub fn chaos_suspend_resource(&self, resource: usize, suspended: bool) {
        self.resources[resource].set_heartbeat_suspended(suspended);
    }

    /// Total backpressure gate events across the job.
    pub fn total_gate_events(&self) -> u64 {
        self.queues.iter().map(|q| q.gate_events()).sum()
    }

    /// Where every operator instance was placed:
    /// `(operator name, instance index, resource index)`.
    pub fn placement(&self) -> &[(String, usize, usize)] {
        &self.placement
    }

    /// Source pump threads still running.
    pub fn active_sources(&self) -> usize {
        self.active_pumps.load(Ordering::Acquire)
    }

    /// Wait until every source is exhausted (true) or the timeout elapses
    /// (false).
    pub fn await_sources(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.active_sources() > 0 {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_micros(500));
        }
        true
    }

    /// Flush all buffers and wait until every queue and buffer is empty,
    /// every task is idle, **and every dispatched frame has been received**
    /// — the last condition covers frames that are in flight inside TCP
    /// sender queues or kernel socket buffers, which no local queue can
    /// see. Returns false on timeout.
    pub fn settle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut stable = 0;
        loop {
            for ep in &self.endpoints {
                let _ = ep.force_flush();
            }
            for r in &self.resources {
                r.drain();
            }
            let snapshot = self.registry.snapshot();
            let frames_out: u64 = snapshot.operators.values().map(|m| m.frames_out).sum();
            let frames_in: u64 = snapshot.operators.values().map(|m| m.frames_in).sum();
            let busy = self.queues.iter().any(|q| !q.is_empty())
                || self.endpoints.iter().any(|ep| !ep.is_empty())
                || frames_out != frames_in;
            if busy {
                stable = 0;
            } else {
                stable += 1;
                if stable >= 2 {
                    return true;
                }
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_micros(500));
        }
    }

    /// Stop the job: sources first, then a full drain, then processor
    /// close hooks in topological order (each followed by a drain so
    /// close-time emissions are fully processed downstream), then
    /// teardown. Returns the final metrics.
    pub fn stop(mut self) -> JobMetrics {
        self.stop_flag.store(true, Ordering::Release);
        for pump in self.pumps.lock().drain(..) {
            let _ = pump.join();
        }
        self.settle(Duration::from_secs(30));
        // Terminate processors in topological order, draining after each
        // stage so close() emissions propagate.
        for (_, handles) in &self.processor_handles {
            for h in handles {
                h.terminate();
            }
            self.settle(Duration::from_secs(10));
        }
        self.flusher_stop.store(true, Ordering::Release);
        if let Some(f) = self.flusher.lock().take() {
            let _ = f.join();
        }
        if let Some(ha) = &self.ha {
            ha.monitor_stop.store(true, Ordering::Release);
            if let Some(m) = ha.monitor.lock().take() {
                let _ = m.join();
            }
        }
        for q in &self.queues {
            q.close();
        }
        for r in self.resources {
            r.shutdown();
        }
        for rx in self.receivers.lock().drain(..) {
            rx.shutdown();
        }
        if let Some(sampler) = self.sampler.as_mut() {
            sampler.stop();
        }
        self.stopped.store(true, Ordering::Release);
        let mut m = self.registry.snapshot();
        m.buffer_pool = self.pool.stats();
        m
    }
}

fn deploy(graph: Graph, config: RuntimeConfig) -> Result<JobHandle, SubmitError> {
    let registry = MetricsRegistry::new();
    let telemetry_hub = config.telemetry.enabled.then(|| Arc::new(TelemetryHub::new()));
    let stop_flag = Arc::new(AtomicBool::new(false));
    // One batch-buffer pool per job: output buffers check storage out,
    // transports hand it to receiving tasks by refcount, and processed
    // frames recycle it (§III-B3 object reuse, now across threads).
    let pool = Arc::new(BytesPool::default());

    // ---- Placement: strategy-driven assignment of instances. ----
    let n_resources = config.resources;
    // Expand the strategy into a placement cycle: round-robin is the
    // uniform cycle; capacity-weighted repeats each resource index in
    // proportion to its weight, interleaved so heavy resources do not
    // receive long runs of consecutive instances.
    let cycle: Vec<usize> = match &config.placement {
        PlacementStrategy::RoundRobin => (0..n_resources).collect(),
        PlacementStrategy::CapacityWeighted(weights) => {
            let max_w = *weights.iter().max().expect("validated nonempty");
            let mut cycle = Vec::new();
            for round in 0..max_w {
                for (ri, &w) in weights.iter().enumerate() {
                    if round < w {
                        cycle.push(ri);
                    }
                }
            }
            cycle
        }
    };
    let mut placement: HashMap<(usize, usize), usize> = HashMap::new();
    let mut placement_table: Vec<(String, usize, usize)> = Vec::new();
    {
        let mut rr = 0usize;
        for (oi, op) in graph.operators().iter().enumerate() {
            for inst in 0..op.parallelism {
                let resource = cycle[rr % cycle.len()];
                placement.insert((oi, inst), resource);
                placement_table.push((op.name.clone(), inst, resource));
                rr += 1;
            }
        }
    }

    // ---- Resources, pools sized for deadlock freedom. ----
    let mut processor_instances_per_resource = vec![0usize; n_resources];
    for (oi, op) in graph.operators().iter().enumerate() {
        if op.kind() == OperatorKind::Processor {
            for inst in 0..op.parallelism {
                processor_instances_per_resource[placement[&(oi, inst)]] += 1;
            }
        }
    }
    let auto_workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let resources: Vec<Resource> = (0..n_resources)
        .map(|ri| {
            let base = config.worker_threads.unwrap_or(auto_workers);
            let workers = base.max(processor_instances_per_resource[ri]).max(1);
            Resource::builder(format!("{}-res{ri}", graph.name())).workers(workers).build()
        })
        .collect();
    if config.ha.enabled {
        for r in &resources {
            r.enable_heartbeat(config.ha.heartbeat_interval);
        }
    }

    // ---- Inbound queues (one per processor instance). ----
    let watermark = WatermarkConfig::new(config.watermark_high, config.watermark_low);
    let mut queues_by_instance: HashMap<(usize, usize), Arc<WatermarkQueue<Frame>>> =
        HashMap::new();
    let mut receivers: Vec<TcpReceiver> = Vec::new();
    let mut receiver_addr: HashMap<(usize, usize), std::net::SocketAddr> = HashMap::new();
    let mut receiver_index: HashMap<(usize, usize), usize> = HashMap::new();
    let mut all_queues: Vec<Arc<WatermarkQueue<Frame>>> = Vec::new();

    for (oi, op) in graph.operators().iter().enumerate() {
        if op.kind() != OperatorKind::Processor {
            continue;
        }
        for inst in 0..op.parallelism {
            let my_res = placement[&(oi, inst)];
            // Does any inbound channel cross resources under TCP mode?
            let needs_tcp = config.transport == TransportMode::Tcp
                && graph.in_links(&op.name).iter().any(|&li| {
                    let from = &graph.links()[li].from;
                    let (foi, fop) = graph
                        .operators()
                        .iter()
                        .enumerate()
                        .find(|(_, o)| &o.name == from)
                        .expect("validated");
                    (0..fop.parallelism).any(|si| placement[&(foi, si)] != my_res)
                });
            let queue = if needs_tcp {
                let rx = TcpReceiver::bind_pooled("127.0.0.1:0", watermark, pool.clone())
                    .map_err(|e| SubmitError::Io(e.to_string()))?;
                let q = rx.queue();
                receiver_addr.insert((oi, inst), rx.local_addr());
                receiver_index.insert((oi, inst), receivers.len());
                receivers.push(rx);
                q
            } else {
                Arc::new(WatermarkQueue::new(watermark))
            };
            all_queues.push(queue.clone());
            queues_by_instance.insert((oi, inst), queue);
        }
    }

    // ---- Channel endpoints per link x (src_inst, dst_inst). ----
    let op_index: HashMap<&str, usize> =
        graph.operators().iter().enumerate().map(|(i, o)| (o.name.as_str(), i)).collect();
    let mut outgoing: HashMap<(usize, usize), Vec<OutgoingLink>> = HashMap::new();
    let mut all_endpoints: Vec<Arc<ChannelEndpoint>> = Vec::new();
    // Deliver hooks installed after tasks exist: channel -> (oi, inst).
    let mut inproc_transports: Vec<(Arc<InProcessTransport>, (usize, usize))> = Vec::new();

    for (li, link) in graph.links().iter().enumerate() {
        let src_oi = op_index[link.from.as_str()];
        let dst_oi = op_index[link.to.as_str()];
        let src_par = graph.operators()[src_oi].parallelism;
        let dst_par = graph.operators()[dst_oi].parallelism;
        let src_counters = registry.for_operator(&link.from);
        let buffer_bytes = config.effective_buffer_bytes(link.options.buffer_bytes);
        let flush_interval = link.options.flush_interval.unwrap_or(config.flush_interval);
        let compression = link.options.compression.unwrap_or(config.compression);

        for src_inst in 0..src_par {
            let src_res = placement[&(src_oi, src_inst)];
            let mut endpoints = Vec::with_capacity(dst_par);
            for dst_inst in 0..dst_par {
                let dst_res = placement[&(dst_oi, dst_inst)];
                let channel = ChannelId::new(li as u16, src_inst as u16, dst_inst as u16);
                let use_tcp = config.transport == TransportMode::Tcp && src_res != dst_res;
                let sink = if use_tcp {
                    let addr = receiver_addr[&(dst_oi, dst_inst)];
                    let sender = TcpSender::connect(addr, config.io_queue_depth)
                        .map_err(|e| SubmitError::Io(e.to_string()))?;
                    SinkHandle::Tcp(Arc::new(sender))
                } else {
                    let q = queues_by_instance[&(dst_oi, dst_inst)].clone();
                    let t = Arc::new(InProcessTransport::new(q));
                    inproc_transports.push((t.clone(), (dst_oi, dst_inst)));
                    SinkHandle::InProcess(t)
                };
                let ep = Arc::new(ChannelEndpoint::new(
                    channel,
                    OutputBuffer::with_pool(buffer_bytes, Some(flush_interval), pool.clone()),
                    compression.to_compressor(),
                    sink,
                    src_counters.clone(),
                    // Buffer-wait latency is attributed to the *sending*
                    // operator: its output buffer is where packets wait.
                    telemetry_hub.as_ref().map(|h| h.for_operator(&link.from)),
                ));
                all_endpoints.push(ep.clone());
                endpoints.push(ep);
            }
            outgoing.entry((src_oi, src_inst)).or_default().push(OutgoingLink::new(
                link.to.clone(),
                &link.partitioning,
                endpoints,
            ));
        }
    }

    // ---- Deploy processor tasks. ----
    let batch_max = config.effective_batch_max();
    let mut task_handles: HashMap<(usize, usize), neptune_granules::TaskHandle> = HashMap::new();
    let mut handles_by_operator: HashMap<String, Vec<neptune_granules::TaskHandle>> =
        HashMap::new();
    for (oi, op) in graph.operators().iter().enumerate() {
        let Factory::Processor(factory) = &op.factory else {
            continue;
        };
        let counters = registry.for_operator(&op.name);
        for inst in 0..op.parallelism {
            let links = outgoing.remove(&(oi, inst)).unwrap_or_default();
            let ctx = OperatorContext::for_channels(
                op.name.clone(),
                inst,
                op.parallelism,
                links,
                counters.clone(),
            );
            let task = ProcessorTask {
                processor: factory(),
                ctx,
                queue: queues_by_instance[&(oi, inst)].clone(),
                codec: PacketCodec::new(),
                workhorse: StreamPacket::new(),
                staged: Vec::with_capacity(batch_max),
                batch_max,
                counters: counters.clone(),
                expected_seq: HashMap::new(),
                pool: pool.clone(),
                telemetry: telemetry_hub.as_ref().map(|h| h.for_operator(&op.name)),
            };
            let resource = &resources[placement[&(oi, inst)]];
            // Batched scheduling lets a slot drain bursts on one worker
            // stint; the per-message ablation forces a fresh scheduler
            // crossing (pool handoff) per execution, like the paper's
            // individual-message mode.
            let spec = if config.batched_scheduling {
                ScheduleSpec::data_driven()
            } else {
                ScheduleSpec::data_driven().with_max_consecutive_runs(1)
            };
            let handle =
                resource.deploy(task, spec).map_err(|e| SubmitError::Config(e.to_string()))?;
            task_handles.insert((oi, inst), handle.clone());
            handles_by_operator.entry(op.name.clone()).or_default().push(handle);
        }
    }

    // ---- Wire delivery notifications to task signals. ----
    for (transport, dst) in inproc_transports {
        let handle = task_handles[&dst].clone();
        transport.on_deliver(move || handle.signal());
    }
    for ((oi, inst), ri) in &receiver_index {
        let handle = task_handles[&(*oi, *inst)].clone();
        receivers[*ri].on_deliver(move || handle.signal());
    }

    // ---- Source pump threads. ----
    let active_pumps = Arc::new(AtomicUsize::new(0));
    let mut pumps = Vec::new();
    for (oi, op) in graph.operators().iter().enumerate() {
        let Factory::Source(factory) = &op.factory else {
            continue;
        };
        let counters = registry.for_operator(&op.name);
        for inst in 0..op.parallelism {
            let links = outgoing.remove(&(oi, inst)).unwrap_or_default();
            let mut ctx = OperatorContext::for_channels(
                op.name.clone(),
                inst,
                op.parallelism,
                links,
                counters.clone(),
            );
            let mut source = factory();
            let stop = stop_flag.clone();
            let active = active_pumps.clone();
            active.fetch_add(1, Ordering::AcqRel);
            let name = format!("{}-src-{}-{inst}", graph.name(), op.name);
            let pump = std::thread::Builder::new()
                .name(name)
                .spawn(move || {
                    source.open(&mut ctx);
                    while !stop.load(Ordering::Acquire) {
                        match source.next(&mut ctx) {
                            SourceStatus::Emitted(_) => {}
                            SourceStatus::Idle => {
                                std::thread::sleep(Duration::from_micros(200));
                            }
                            SourceStatus::Exhausted => break,
                        }
                    }
                    source.close(&mut ctx);
                    let _ = ctx.force_flush_all();
                    active.fetch_sub(1, Ordering::AcqRel);
                })
                .map_err(|e| SubmitError::Io(e.to_string()))?;
            pumps.push(pump);
        }
    }

    // ---- Flush-timer thread (one per job, scanning all endpoints). ----
    let flusher_stop = Arc::new(AtomicBool::new(false));
    let flusher = {
        let endpoints = all_endpoints.clone();
        let stop = flusher_stop.clone();
        let min_interval = graph
            .links()
            .iter()
            .map(|l| l.options.flush_interval.unwrap_or(config.flush_interval))
            .min()
            .unwrap_or(config.flush_interval);
        let tick = (min_interval / 2).max(Duration::from_micros(500));
        std::thread::Builder::new()
            .name(format!("{}-flusher", graph.name()))
            .spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    let now = Instant::now();
                    for ep in &endpoints {
                        let _ = ep.flush_if_due(now);
                    }
                    std::thread::sleep(tick);
                }
            })
            .map_err(|e| SubmitError::Io(e.to_string()))?
    };

    // Topological order of processor handles for close-time draining.
    let processor_handles: Vec<(String, Vec<neptune_granules::TaskHandle>)> = graph
        .topological_order()
        .into_iter()
        .filter_map(|name| handles_by_operator.remove(name).map(|hs| (name.to_string(), hs)))
        .collect();

    // ---- Background telemetry sampler (§IV, Fig. 4 oscillations). ----
    let sampler = telemetry_hub.as_ref().map(|_| {
        let registry = registry.clone();
        let pool = pool.clone();
        let queues = all_queues.clone();
        TelemetrySampler::start(
            config.telemetry.sample_interval,
            config.telemetry.series_capacity,
            move || {
                let mut metrics = registry.snapshot();
                metrics.buffer_pool = pool.stats();
                TelemetrySample {
                    metrics,
                    queues: queues.iter().map(|q| QueueGauge::observe(q)).collect(),
                }
            },
        )
    });

    // ---- Fault tolerance: heartbeat monitor + failure detector (ISSUE 3). ----
    let ha = if config.ha.enabled {
        let stats = Arc::new(RecoveryStats::new());
        let detector = Arc::new(FailureDetector::new(
            DetectorConfig::new(config.ha.heartbeat_interval, config.ha.failure_timeout),
            stats.clone(),
        ));
        // Restart-nudge targets: every task handle on each resource. A
        // dead declaration forces those tasks to run again, resuming from
        // the inbound queues — the replay point, since frames not yet
        // consumed are still sitting there.
        let mut handles_by_resource: HashMap<String, Vec<neptune_granules::TaskHandle>> =
            HashMap::new();
        for ((oi, inst), handle) in &task_handles {
            let name = resources[placement[&(*oi, *inst)]].name().to_string();
            handles_by_resource.entry(name).or_default().push(handle.clone());
        }
        let probes: Vec<_> =
            resources.iter().map(|r| (r.name().to_string(), r.heartbeat_probe())).collect();
        let monitor_stop = Arc::new(AtomicBool::new(false));
        let monitor = {
            let stop = monitor_stop.clone();
            let detector = detector.clone();
            let tick = (config.ha.heartbeat_interval / 2).max(Duration::from_micros(500));
            std::thread::Builder::new()
                .name(format!("{}-ha-monitor", graph.name()))
                .spawn(move || {
                    // Every resource starts alive: its silence window opens
                    // now, not at an arbitrary earlier instant.
                    for (name, _) in &probes {
                        detector.heartbeat(name);
                    }
                    let mut last = vec![0u64; probes.len()];
                    while !stop.load(Ordering::Acquire) {
                        for (i, (name, probe)) in probes.iter().enumerate() {
                            if let Some(count) = probe.count() {
                                if count > last[i] {
                                    last[i] = count;
                                    detector.heartbeat(name);
                                }
                            }
                        }
                        for (peer, state) in detector.poll() {
                            if state == PeerState::Dead {
                                if let Some(handles) = handles_by_resource.get(&peer) {
                                    for h in handles {
                                        h.force();
                                    }
                                }
                            }
                        }
                        std::thread::sleep(tick);
                    }
                })
                .map_err(|e| SubmitError::Io(e.to_string()))?
        };
        Some(HaRuntime { stats, detector, monitor_stop, monitor: Mutex::new(Some(monitor)) })
    } else {
        None
    };

    Ok(JobHandle {
        graph_name: graph.name().to_string(),
        stop_flag,
        active_pumps,
        pumps: Mutex::new(pumps),
        flusher_stop,
        flusher: Mutex::new(Some(flusher)),
        resources,
        processor_handles,
        queues: all_queues,
        endpoints: all_endpoints,
        receivers: Mutex::new(receivers),
        pool,
        registry,
        stopped: AtomicBool::new(false),
        placement: placement_table,
        telemetry_hub,
        sampler,
        ha,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::packet::{FieldValue, StreamPacket};
    use crate::partition::PartitioningScheme;
    use std::sync::atomic::AtomicU64;

    struct CountingSource {
        remaining: u64,
        next_val: u64,
    }

    impl crate::operator::StreamSource for CountingSource {
        fn next(&mut self, ctx: &mut OperatorContext) -> SourceStatus {
            if self.remaining == 0 {
                return SourceStatus::Exhausted;
            }
            let mut p = StreamPacket::new();
            p.push_field("n", FieldValue::U64(self.next_val));
            self.next_val += 1;
            self.remaining -= 1;
            match ctx.emit(&p) {
                Ok(()) => SourceStatus::Emitted(1),
                Err(_) => SourceStatus::Exhausted,
            }
        }
    }

    struct Forward;
    impl StreamProcessor for Forward {
        fn process(&mut self, p: &StreamPacket, ctx: &mut OperatorContext) {
            let _ = ctx.emit(p);
        }
    }

    struct SinkCollect {
        seen: Arc<AtomicU64>,
        sum: Arc<AtomicU64>,
    }
    impl StreamProcessor for SinkCollect {
        fn process(&mut self, p: &StreamPacket, _ctx: &mut OperatorContext) {
            self.seen.fetch_add(1, Ordering::Relaxed);
            if let Some(n) = p.get("n").and_then(|v| v.as_u64()) {
                self.sum.fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    fn run_relay(config: RuntimeConfig, packets: u64, relay_par: usize) -> (u64, u64, JobMetrics) {
        let seen = Arc::new(AtomicU64::new(0));
        let sum = Arc::new(AtomicU64::new(0));
        let (s2, m2) = (seen.clone(), sum.clone());
        let graph = GraphBuilder::new("relay-test")
            .source("sender", move || CountingSource { remaining: packets, next_val: 0 })
            .processor_n("relay", relay_par, || Forward)
            .processor("receiver", move || SinkCollect { seen: s2.clone(), sum: m2.clone() })
            .link("sender", "relay", PartitioningScheme::Shuffle)
            .link("relay", "receiver", PartitioningScheme::Shuffle)
            .build()
            .unwrap();
        let job = LocalRuntime::new(config).submit(graph).unwrap();
        assert!(job.await_sources(Duration::from_secs(30)), "sources timed out");
        let metrics = job.stop();
        (seen.load(Ordering::Relaxed), sum.load(Ordering::Relaxed), metrics)
    }

    #[test]
    fn relay_delivers_every_packet_exactly_once() {
        let n = 5_000u64;
        let (seen, sum, metrics) =
            run_relay(RuntimeConfig { buffer_bytes: 4096, ..Default::default() }, n, 1);
        assert_eq!(seen, n);
        assert_eq!(sum, n * (n - 1) / 2, "payload integrity");
        assert_eq!(metrics.total_seq_violations(), 0);
        assert_eq!(metrics.operator("sender").packets_out, n);
        assert_eq!(metrics.operator("relay").packets_in, n);
        assert_eq!(metrics.operator("receiver").packets_in, n);
    }

    #[test]
    fn relay_with_parallel_middle_stage() {
        let n = 4_000u64;
        let (seen, sum, metrics) =
            run_relay(RuntimeConfig { buffer_bytes: 2048, ..Default::default() }, n, 4);
        assert_eq!(seen, n);
        assert_eq!(sum, n * (n - 1) / 2);
        assert_eq!(metrics.total_seq_violations(), 0);
    }

    #[test]
    fn tiny_buffers_flush_per_packet() {
        // Per-message mode: every packet is its own frame.
        let n = 500u64;
        let config = RuntimeConfig { batched_scheduling: false, ..Default::default() };
        let (seen, _, metrics) = run_relay(config, n, 1);
        assert_eq!(seen, n);
        let relay = metrics.operator("relay");
        assert_eq!(relay.frames_in, n, "per-message mode must frame each packet");
    }

    #[test]
    fn batching_reduces_frames_and_executions() {
        let n = 20_000u64;
        let (seen, _, metrics) =
            run_relay(RuntimeConfig { buffer_bytes: 64 * 1024, ..Default::default() }, n, 1);
        assert_eq!(seen, n);
        let relay = metrics.operator("relay");
        assert!(relay.frames_in < n / 10, "batching too weak: {} frames", relay.frames_in);
        assert!(
            relay.executions < relay.packets_in / 10,
            "scheduling not batched: {} executions for {} packets",
            relay.executions,
            relay.packets_in
        );
    }

    #[test]
    fn batch_buffers_recycle_through_the_pool() {
        // The zero-copy data path: flushed batch storage must round-trip
        // sender -> queue -> processor -> pool -> sender again, so steady
        // state serves checkouts from the free list instead of malloc.
        let n = 20_000u64;
        let (seen, _, metrics) =
            run_relay(RuntimeConfig { buffer_bytes: 4096, ..Default::default() }, n, 1);
        assert_eq!(seen, n);
        let pool = metrics.buffer_pool;
        assert!(pool.hits > 0, "pool never reused a buffer: {pool:?}");
        assert!(pool.bytes_reused > 0, "no bytes reused: {pool:?}");
        assert!(pool.returns > 0, "processed frames never returned storage: {pool:?}");
    }

    #[test]
    fn flush_timer_bounds_latency_for_slow_streams() {
        // A trickle source with a huge buffer: only the flush timer can
        // move packets, and packets must still all arrive.
        let seen = Arc::new(AtomicU64::new(0));
        let s2 = seen.clone();
        struct Trickle {
            left: u32,
        }
        impl crate::operator::StreamSource for Trickle {
            fn next(&mut self, ctx: &mut OperatorContext) -> SourceStatus {
                if self.left == 0 {
                    return SourceStatus::Exhausted;
                }
                self.left -= 1;
                let mut p = StreamPacket::new();
                p.push_field("n", FieldValue::U64(self.left as u64));
                ctx.emit(&p).unwrap();
                std::thread::sleep(Duration::from_millis(2));
                SourceStatus::Emitted(1)
            }
        }
        struct Counter(Arc<AtomicU64>);
        impl StreamProcessor for Counter {
            fn process(&mut self, _p: &StreamPacket, _ctx: &mut OperatorContext) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let graph = GraphBuilder::new("trickle")
            .source("src", || Trickle { left: 20 })
            .processor("sink", move || Counter(s2.clone()))
            .link("src", "sink", PartitioningScheme::Shuffle)
            .build()
            .unwrap();
        let config = RuntimeConfig {
            buffer_bytes: 1 << 20,
            flush_interval: Duration::from_millis(5),
            ..Default::default()
        };
        let job = LocalRuntime::new(config).submit(graph).unwrap();
        job.await_sources(Duration::from_secs(30));
        // Even before stop(), the timer must have flushed most packets.
        job.settle(Duration::from_secs(10));
        let before_stop = seen.load(Ordering::Relaxed);
        assert!(before_stop >= 19, "flush timer inactive: {before_stop} of 20 arrived");
        let metrics = job.stop();
        assert_eq!(seen.load(Ordering::Relaxed), 20);
        assert_eq!(metrics.total_seq_violations(), 0);
    }

    #[test]
    fn multiple_resources_in_process() {
        let n = 3_000u64;
        let config = RuntimeConfig { resources: 3, buffer_bytes: 1024, ..Default::default() };
        let (seen, sum, metrics) = run_relay(config, n, 2);
        assert_eq!(seen, n);
        assert_eq!(sum, n * (n - 1) / 2);
        assert_eq!(metrics.total_seq_violations(), 0);
    }

    #[test]
    fn tcp_transport_between_resources() {
        let n = 2_000u64;
        let config = RuntimeConfig {
            resources: 2,
            transport: TransportMode::Tcp,
            buffer_bytes: 2048,
            ..Default::default()
        };
        let (seen, sum, metrics) = run_relay(config, n, 1);
        assert_eq!(seen, n);
        assert_eq!(sum, n * (n - 1) / 2);
        assert_eq!(metrics.total_seq_violations(), 0);
    }

    #[test]
    fn fields_partitioning_colocates_keys() {
        // Each relay instance records which keys it saw; a key must never
        // appear at two instances.
        let seen_by: Arc<Mutex<HashMap<u64, usize>>> = Arc::new(Mutex::new(HashMap::new()));
        struct KeyedSink {
            seen_by: Arc<Mutex<HashMap<u64, usize>>>,
            violations: Arc<AtomicU64>,
        }
        impl StreamProcessor for KeyedSink {
            fn process(&mut self, p: &StreamPacket, ctx: &mut OperatorContext) {
                let key = p.get("n").unwrap().as_u64().unwrap() % 17;
                let mut map = self.seen_by.lock();
                let inst = ctx.instance();
                match map.get(&key) {
                    Some(&prev) if prev != inst => {
                        self.violations.fetch_add(1, Ordering::Relaxed);
                    }
                    _ => {
                        map.insert(key, inst);
                    }
                }
            }
        }
        struct KeySource(u64);
        impl crate::operator::StreamSource for KeySource {
            fn next(&mut self, ctx: &mut OperatorContext) -> SourceStatus {
                if self.0 == 0 {
                    return SourceStatus::Exhausted;
                }
                self.0 -= 1;
                let mut p = StreamPacket::new();
                p.push_field("n", FieldValue::U64(self.0));
                // Re-key by modulo so instances see repeating keys.
                let key = self.0 % 17;
                p.push_field("key", FieldValue::U64(key));
                ctx.emit(&p).unwrap();
                SourceStatus::Emitted(1)
            }
        }
        let violations = Arc::new(AtomicU64::new(0));
        let (sb, v) = (seen_by.clone(), violations.clone());
        let graph = GraphBuilder::new("keyed")
            .source("src", || KeySource(2000))
            .processor_n("sink", 4, move || KeyedSink {
                seen_by: sb.clone(),
                violations: v.clone(),
            })
            .link("src", "sink", PartitioningScheme::by_field("key"))
            .build()
            .unwrap();
        let job = LocalRuntime::new(RuntimeConfig { buffer_bytes: 512, ..Default::default() })
            .submit(graph)
            .unwrap();
        job.await_sources(Duration::from_secs(30));
        let metrics = job.stop();
        assert_eq!(violations.load(Ordering::Relaxed), 0, "key co-location violated");
        assert_eq!(metrics.operator("sink").packets_in, 2000);
    }

    #[test]
    fn broadcast_reaches_every_instance() {
        let seen = Arc::new(AtomicU64::new(0));
        let s2 = seen.clone();
        struct Counter(Arc<AtomicU64>);
        impl StreamProcessor for Counter {
            fn process(&mut self, _p: &StreamPacket, _ctx: &mut OperatorContext) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let graph = GraphBuilder::new("bcast")
            .source("src", || CountingSource { remaining: 100, next_val: 0 })
            .processor_n("sink", 3, move || Counter(s2.clone()))
            .link("src", "sink", PartitioningScheme::Broadcast)
            .build()
            .unwrap();
        let job = LocalRuntime::new(RuntimeConfig::default()).submit(graph).unwrap();
        job.await_sources(Duration::from_secs(30));
        let metrics = job.stop();
        assert_eq!(seen.load(Ordering::Relaxed), 300, "broadcast must triple delivery");
        assert_eq!(metrics.operator("src").packets_out, 300);
    }

    #[test]
    fn processor_close_emissions_propagate() {
        // A windowing processor that holds everything until close() — its
        // close-time emission must still reach the sink.
        struct Holder {
            count: u64,
        }
        impl StreamProcessor for Holder {
            fn process(&mut self, _p: &StreamPacket, _ctx: &mut OperatorContext) {
                self.count += 1;
            }
            fn close(&mut self, ctx: &mut OperatorContext) {
                let mut p = StreamPacket::new();
                p.push_field("total", FieldValue::U64(self.count));
                let _ = ctx.emit(&p);
            }
        }
        let total = Arc::new(AtomicU64::new(0));
        let t2 = total.clone();
        struct TotalSink(Arc<AtomicU64>);
        impl StreamProcessor for TotalSink {
            fn process(&mut self, p: &StreamPacket, _ctx: &mut OperatorContext) {
                self.0.store(p.get("total").unwrap().as_u64().unwrap(), Ordering::Relaxed);
            }
        }
        let graph = GraphBuilder::new("close-emit")
            .source("src", || CountingSource { remaining: 321, next_val: 0 })
            .processor("window", || Holder { count: 0 })
            .processor("sink", move || TotalSink(t2.clone()))
            .link("src", "window", PartitioningScheme::Shuffle)
            .link("window", "sink", PartitioningScheme::Shuffle)
            .build()
            .unwrap();
        let job = LocalRuntime::new(RuntimeConfig::default()).submit(graph).unwrap();
        job.await_sources(Duration::from_secs(30));
        job.stop();
        assert_eq!(total.load(Ordering::Relaxed), 321);
    }

    #[test]
    fn backpressure_throttles_source_not_drops() {
        // Slow sink + tiny watermarks: the source must be slowed down, and
        // every packet must still arrive (no fail-fast drops, §III-B4).
        let seen = Arc::new(AtomicU64::new(0));
        let s2 = seen.clone();
        struct SlowSink(Arc<AtomicU64>);
        impl StreamProcessor for SlowSink {
            fn process(&mut self, _p: &StreamPacket, _ctx: &mut OperatorContext) {
                std::thread::sleep(Duration::from_micros(100));
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let n = 2_000u64;
        let graph = GraphBuilder::new("bp")
            .source("src", move || CountingSource { remaining: n, next_val: 0 })
            .processor("slow", move || SlowSink(s2.clone()))
            .link("src", "slow", PartitioningScheme::Shuffle)
            .build()
            .unwrap();
        let config = RuntimeConfig {
            buffer_bytes: 256,
            watermark_high: 2048,
            watermark_low: 512,
            ..Default::default()
        };
        let job = LocalRuntime::new(config).submit(graph).unwrap();
        job.await_sources(Duration::from_secs(60));
        let metrics = job.stop();
        assert_eq!(seen.load(Ordering::Relaxed), n, "backpressure must not drop packets");
        assert_eq!(metrics.total_seq_violations(), 0);
    }

    #[test]
    fn capacity_weighted_placement_respects_weights() {
        use crate::config::PlacementStrategy;
        let graph = GraphBuilder::new("weighted")
            .source("src", || CountingSource { remaining: 100, next_val: 0 })
            .processor_n("work", 11, || Forward)
            .link("src", "work", PartitioningScheme::Shuffle)
            .build()
            .unwrap();
        let config = RuntimeConfig {
            resources: 3,
            placement: PlacementStrategy::CapacityWeighted(vec![4, 1, 1]),
            ..Default::default()
        };
        let job = LocalRuntime::new(config).submit(graph).unwrap();
        let mut per_resource = [0usize; 3];
        for (_, _, r) in job.placement() {
            per_resource[*r] += 1;
        }
        job.await_sources(Duration::from_secs(30));
        job.stop();
        // 12 instances over weights 4:1:1 -> resource 0 gets ~4x the rest.
        assert!(
            per_resource[0] >= 2 * per_resource[1].max(per_resource[2]),
            "placement {per_resource:?} ignored weights"
        );
        assert_eq!(per_resource.iter().sum::<usize>(), 12);
    }

    #[test]
    fn telemetry_populates_stage_histograms_and_sampler() {
        use crate::config::TelemetryConfig;
        // A source that stamps each packet with its emission time so the
        // sink's e2e histogram has something to measure.
        struct StampedSource(u64);
        impl crate::operator::StreamSource for StampedSource {
            fn next(&mut self, ctx: &mut OperatorContext) -> SourceStatus {
                if self.0 == 0 {
                    return SourceStatus::Exhausted;
                }
                self.0 -= 1;
                let mut p = StreamPacket::new();
                p.push_field("ts", FieldValue::Timestamp(crate::now_micros()));
                p.push_field("n", FieldValue::U64(self.0));
                ctx.emit(&p).unwrap();
                SourceStatus::Emitted(1)
            }
        }
        let graph = GraphBuilder::new("telemetry-relay")
            .source("src", || StampedSource(3_000))
            .processor("relay", || Forward)
            .processor("sink", || Forward)
            .link("src", "relay", PartitioningScheme::Shuffle)
            .link("relay", "sink", PartitioningScheme::Shuffle)
            .build()
            .unwrap();
        let config = RuntimeConfig {
            buffer_bytes: 4096,
            telemetry: TelemetryConfig {
                sample_interval: Duration::from_millis(5),
                ..TelemetryConfig::enabled()
            },
            ..Default::default()
        };
        let job = LocalRuntime::new(config).submit(graph).unwrap();
        assert!(job.await_sources(Duration::from_secs(30)));
        assert!(job.settle(Duration::from_secs(10)));
        let snap = job.telemetry().expect("telemetry enabled");
        for op in ["relay", "sink"] {
            let t = &snap.operators[op];
            assert!(t.e2e.count() > 0, "{op}: e2e histogram empty");
            assert!(t.e2e.p50() <= t.e2e.p95() && t.e2e.p95() <= t.e2e.p99());
            assert!(t.schedule_delay.count() > 0, "{op}: no schedule samples");
            assert!(t.transport.count() > 0, "{op}: no transport samples");
            assert!(t.execution.count() > 0, "{op}: no execution samples");
        }
        // buffer_wait is recorded at the *senders* of each link.
        assert!(snap.operators["src"].buffer_wait.count() > 0);
        assert!(snap.operators["relay"].buffer_wait.count() > 0);
        assert!(!snap.series.is_empty(), "sampler produced no samples");
        assert!(!snap.to_json().is_empty());
        assert!(!snap.render_pretty().is_empty());
        assert!(!snap.render_prometheus().is_empty());
        job.stop();
    }

    #[test]
    fn telemetry_disabled_yields_none_and_named_gauges() {
        let graph = GraphBuilder::new("plain")
            .source("src", || CountingSource { remaining: 100, next_val: 0 })
            .processor("sink", || Forward)
            .link("src", "sink", PartitioningScheme::Shuffle)
            .build()
            .unwrap();
        let job = LocalRuntime::new(RuntimeConfig::default()).submit(graph).unwrap();
        job.await_sources(Duration::from_secs(30));
        assert!(job.telemetry().is_none(), "telemetry must be off by default");
        let gauges = job.queue_gauges();
        assert_eq!(gauges.len(), 1);
        assert!(gauges[0].capacity > 0);
        job.stop();
    }

    #[test]
    fn ha_detects_suspended_resource_and_counts_recovery() {
        use crate::config::{HaConfig, TelemetryConfig};
        let graph = GraphBuilder::new("ha-relay")
            .source("src", || CountingSource { remaining: 100, next_val: 0 })
            .processor("sink", || Forward)
            .link("src", "sink", PartitioningScheme::Shuffle)
            .build()
            .unwrap();
        let config = RuntimeConfig {
            telemetry: TelemetryConfig::enabled(),
            ha: HaConfig {
                enabled: true,
                heartbeat_interval: Duration::from_millis(10),
                failure_timeout: Duration::from_millis(60),
                ..Default::default()
            },
            ..Default::default()
        };
        let job = LocalRuntime::new(config).submit(graph).unwrap();
        assert!(job.await_sources(Duration::from_secs(30)));
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let states = job.resource_states().expect("ha enabled");
            if states.iter().all(|(_, s)| *s == PeerState::Alive) {
                break;
            }
            assert!(Instant::now() < deadline, "resource never reported alive: {states:?}");
            std::thread::sleep(Duration::from_millis(2));
        }
        // Chaos: freeze the beacon; the detector must walk suspect→dead.
        job.chaos_suspend_resource(0, true);
        let deadline = Instant::now() + Duration::from_secs(10);
        while job.resource_states().unwrap()[0].1 != PeerState::Dead {
            assert!(Instant::now() < deadline, "suspended resource never declared dead");
            std::thread::sleep(Duration::from_millis(2));
        }
        let snap = job.recovery().expect("ha enabled");
        assert!(snap.deaths >= 1, "death must be counted");
        assert!(snap.suspects >= 1, "suspicion precedes death");
        assert_eq!(snap.detection_latency.count(), snap.deaths);
        // Acceptance bound: detection latency stays under 3x the timeout.
        assert!(
            snap.detection_latency.p99() < 3 * 60_000,
            "detection too slow: {}us",
            snap.detection_latency.p99()
        );
        // Thaw: the beacon resumes and the detector revives the peer.
        job.chaos_suspend_resource(0, false);
        let deadline = Instant::now() + Duration::from_secs(10);
        while job.resource_states().unwrap()[0].1 != PeerState::Alive {
            assert!(Instant::now() < deadline, "thawed resource never revived");
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(job.recovery().unwrap().recoveries >= 1);
        let telemetry = job.telemetry().expect("telemetry enabled");
        let recovery = telemetry.recovery.as_ref().expect("recovery section present when HA is on");
        assert!(recovery.deaths >= 1);
        assert!(telemetry.to_json().contains("\"recovery\""));
        assert!(telemetry.render_prometheus().contains("neptune_recovery_deaths_total"));
        job.stop();
    }

    #[test]
    fn invalid_config_rejected_at_submit() {
        let graph = GraphBuilder::new("g")
            .source("s", || CountingSource { remaining: 1, next_val: 0 })
            .processor("p", || Forward)
            .link("s", "p", PartitioningScheme::Shuffle)
            .build()
            .unwrap();
        let bad = RuntimeConfig { watermark_low: 100, watermark_high: 100, ..Default::default() };
        assert!(matches!(LocalRuntime::new(bad).submit(graph), Err(SubmitError::Config(_))));
    }
}
