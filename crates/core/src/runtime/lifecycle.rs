//! Job lifecycle: waiting for sources, settling in-flight data, and the
//! ordered teardown in [`JobHandle::stop`].

use super::JobHandle;
use crate::metrics::JobMetrics;
use neptune_granules::IoPoolStats;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

impl JobHandle {
    /// Source pumps still live on the IO tier.
    pub fn active_sources(&self) -> usize {
        self.pump_gauge.active()
    }

    /// Wait until every source is exhausted (true) or the timeout elapses
    /// (false). Event-driven: pumps notify their gauge on completion, so
    /// this blocks on a condvar instead of polling.
    pub fn await_sources(&self, timeout: Duration) -> bool {
        self.pump_gauge.wait_zero(Instant::now() + timeout)
    }

    /// Flush all buffers and wait until every queue and buffer is empty,
    /// every task is idle, **and every dispatched frame has been received**
    /// — the last condition covers frames that are in flight inside TCP
    /// sender queues or kernel socket buffers, which no local queue can
    /// see. Returns false on timeout.
    pub fn settle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut stable = 0;
        loop {
            for ep in &self.endpoints {
                let _ = ep.force_flush();
            }
            for r in &self.resources {
                r.drain();
            }
            let snapshot = self.registry.snapshot();
            let frames_out: u64 = snapshot.operators.values().map(|m| m.frames_out).sum();
            let frames_in: u64 = snapshot.operators.values().map(|m| m.frames_in).sum();
            // Frames sacrificed by a shed policy were dispatched but will
            // never arrive; without this term a shedding run could never
            // balance its books and settle would always time out.
            let shed: u64 = self.queues.iter().map(|q| q.shed_total()).sum();
            let busy = self.queues.iter().any(|q| !q.is_empty())
                || self.endpoints.iter().any(|ep| !ep.is_empty())
                || frames_out != frames_in + shed;
            if busy {
                stable = 0;
            } else {
                stable += 1;
                if stable >= 2 {
                    return true;
                }
            }
            if Instant::now() >= deadline {
                return false;
            }
            // Pump progress cuts the wait short; otherwise re-check after
            // a bounded pause.
            self.progress.wait_for(Duration::from_micros(500));
        }
    }

    /// Stop the job: sources first, then a full drain, then processor
    /// close hooks in topological order (each followed by a drain so
    /// close-time emissions are fully processed downstream), then the IO
    /// tier (which force-flushes every endpoint and drains its queue),
    /// then teardown. Returns the final metrics.
    pub fn stop(mut self) -> JobMetrics {
        self.stop_flag.store(true, Ordering::Release);
        // Wake every pump so it observes the stop flag and finishes; gated
        // or deep-backoff pumps would otherwise linger until their next
        // scheduled wake.
        for h in &self.pump_handles {
            h.wake();
        }
        self.pump_gauge.wait_zero(Instant::now() + Duration::from_secs(30));
        self.settle(Duration::from_secs(30));
        // Terminate processors in topological order, draining after each
        // stage so close() emissions propagate.
        for (_, handles) in &self.processor_handles {
            for h in handles {
                h.terminate();
            }
            self.settle(Duration::from_secs(10));
        }
        // Network gauges are captured while connections are still open;
        // pool shutdown retires connection tasks and would zero the
        // connection gauge (cumulative counters are re-read below).
        let mut net = self.net_gauges();
        // Shut the IO tier down: the timer wheel stops, parked tasks get a
        // final drain stint (flush tasks force-flush), the ready queue
        // empties, and all IO threads join.
        let io_stats = match self.io_pool.take() {
            Some(mut pool) => {
                pool.shutdown();
                pool.stats()
            }
            None => IoPoolStats::default(),
        };
        let worker_threads: usize = self.resources.iter().map(|r| r.worker_count()).sum();
        let worker_panics: u64 = self.resources.iter().map(|r| r.worker_panics()).sum();
        for q in &self.queues {
            q.close();
        }
        for r in std::mem::take(&mut self.resources) {
            r.shutdown();
        }
        for rx in self.receivers.lock().drain(..) {
            rx.shutdown();
        }
        // The reactor goes down last: connection tasks deregistered their
        // sockets while it was still serving, so nothing dangles. Its
        // cumulative counters are final now — fold them into the exported
        // stats (the pre-shutdown snapshot kept only the gauges).
        if let Some(mut reactor) = self.reactor.take() {
            reactor.shutdown();
            let end = reactor.stats();
            net.reactor.events_dispatched = end.events_dispatched;
            net.reactor.rearms = end.rearms;
        }
        self.stopped.store(true, Ordering::Release);
        let mut m = self.registry.snapshot();
        m.buffer_pool = self.pool.stats();
        m.thread_model = super::thread_model_stats(io_stats, worker_threads, net);
        m.containment.worker_panics = worker_panics;
        for q in &self.queues {
            m.containment.shed_total += q.shed_total();
            m.containment.shed_bytes += q.shed_bytes();
        }
        if let Some(dlq) = &self.dead_letters {
            m.containment.dead_letters = dlq.len() as u64;
            m.containment.dead_letters_evicted = dlq.evicted();
        }
        m
    }
}
