//! The NEPTUNE runtime: deploys a [`Graph`] onto Granules resources and
//! orchestrates the optimized data plane.
//!
//! ## How the paper's pieces map to this module
//!
//! * **Resources & tasks (§II)** — each processor instance becomes one
//!   Granules [`neptune_granules::ComputationalTask`] with data-driven
//!   scheduling; each source instance is a cooperatively scheduled
//!   [`neptune_granules::IoTask`] pump (sources *pull* from external
//!   systems, §III-A2).
//! * **Batched scheduling (§III-B2)** — frame deliveries signal the task;
//!   Granules coalesces signals, and one scheduled execution drains the
//!   whole inbound queue in `batch_max_frames` chunks.
//! * **Two-tier thread model (§IV-C)** — worker threads (the resource
//!   pools) never touch sockets; a small event-driven IO tier
//!   ([`neptune_granules::IoPool`] plus a hierarchical timer wheel) hosts
//!   *every* background duty — source pumps, per-endpoint flush deadlines,
//!   the HA heartbeat monitor, the telemetry sampler — so idle cost and
//!   thread count stay O(io_threads) regardless of source parallelism.
//! * **Backpressure (§III-B4)** — inbound queues are watermark-bounded;
//!   they form the bounded ingress queue between the tiers: a gated queue
//!   parks its source pumps, and the gate-release listener wakes them.
//! * **Correctness (§I-B)** — per-channel contiguous sequence numbers are
//!   validated on receive; any loss, duplication, or reordering increments
//!   `seq_violations` (asserted zero by the test suite).
//! * **Observability (§IV)** — when [`RuntimeConfig`] enables telemetry,
//!   every operator records end-to-end latency plus a four-stage breakdown
//!   into lock-free histograms, and a periodic IO-tier task keeps a
//!   bounded time series of counters and queue gauges; per-tier gauges
//!   (threads, live/queued tasks, timer depth, parks/wakes) surface via
//!   [`JobHandle::thread_model`]. See [`JobHandle::telemetry`].
//!
//! Deadlock freedom: a worker thread can block while emitting downstream,
//! so each resource's pool is sized to at least the number of processor
//! instances placed on it — every instance can always make progress, and
//! the blocking chain terminates at the source pumps, which park rather
//! than block when a downstream gate is closed.

mod lifecycle;
mod pumps;
mod scrape;
mod wiring;

use crate::channel::ChannelEndpoint;
use crate::checkpoint::CheckpointCoordinator;
use crate::config::RuntimeConfig;
use crate::dead_letter::{DeadLetter, DeadLetterQueue};
use crate::graph::Graph;
use crate::metrics::{JobMetrics, MetricsRegistry, ThreadModelStats};
use crate::telemetry::{QueueGauge, TelemetryHub, TelemetrySample, TelemetrySnapshot};
use neptune_granules::{IoPool, IoPoolStats, IoTaskHandle, Reactor, ReactorStats, Resource};
use neptune_ha::{FailureDetector, PeerState, RecoverySnapshot, RecoveryStats};
use neptune_net::frame::Frame;
use neptune_net::pool::BytesPool;
use neptune_net::tcp::TcpReceiver;
use neptune_net::watermark::WatermarkQueue;
use neptune_telemetry::{FlightRecorder, RuntimeEvent, SampleRing, SpanRing};
use parking_lot::Mutex;
use pumps::{ProgressSignal, PumpGauge};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// Job submission failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The runtime configuration failed validation.
    Config(String),
    /// Socket setup failed (TCP transport mode).
    Io(String),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Config(m) => write!(f, "invalid configuration: {m}"),
            SubmitError::Io(m) => write!(f, "io error during deployment: {m}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Deploys stream processing graphs as jobs on this machine.
pub struct LocalRuntime {
    config: RuntimeConfig,
}

impl LocalRuntime {
    /// Runtime with the given job-wide configuration.
    pub fn new(config: RuntimeConfig) -> Self {
        LocalRuntime { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// Deploy a graph; operators start immediately.
    pub fn submit(&self, graph: Graph) -> Result<JobHandle, SubmitError> {
        self.config.validate().map_err(SubmitError::Config)?;
        wiring::deploy(graph, self.config.clone())
    }
}

/// A running NEPTUNE job.
pub struct JobHandle {
    graph_name: String,
    stop_flag: Arc<AtomicBool>,
    /// Live-pump counter with condvar waiting (`await_sources`).
    pump_gauge: Arc<PumpGauge>,
    /// IO-task handles of every source pump, for the stop-time wake sweep.
    pump_handles: Vec<IoTaskHandle>,
    /// Edge-triggered progress signal pumps notify on emit/finish.
    progress: Arc<ProgressSignal>,
    /// The job's IO tier; `None` only after `stop` has consumed it.
    io_pool: Option<IoPool>,
    /// The network reactor serving readiness events to TCP IO tasks;
    /// `None` when the transport is in-process, `net_reactor` is
    /// disabled, or `stop` has consumed it.
    reactor: Option<Reactor>,
    resources: Vec<Resource>,
    /// Processor task handles grouped by operator, in topological order.
    processor_handles: Vec<(String, Vec<neptune_granules::TaskHandle>)>,
    queues: Vec<Arc<WatermarkQueue<Frame>>>,
    endpoints: Vec<Arc<ChannelEndpoint>>,
    receivers: Mutex<Vec<TcpReceiver>>,
    pool: Arc<BytesPool>,
    registry: MetricsRegistry,
    stopped: AtomicBool,
    /// `(operator, instance) -> resource index`, for observability and
    /// placement tests.
    placement: Vec<(String, usize, usize)>,
    /// Per-operator latency recorders; `None` when telemetry is disabled.
    telemetry_hub: Option<Arc<TelemetryHub>>,
    /// Time series the periodic sampler task records into; `None` when
    /// telemetry is disabled.
    series: Option<Arc<SampleRing<TelemetrySample>>>,
    /// Fault-tolerance state; `None` when HA is disabled.
    ha: Option<HaRuntime>,
    /// Poison-batch quarantine; `None` when containment is disabled.
    dead_letters: Option<Arc<DeadLetterQueue>>,
    /// Per-stage span ring for causal packet tracing (ISSUE 7); `None`
    /// when `trace_sample_every` is 0.
    spans: Option<Arc<SpanRing>>,
    /// Flight recorder of structured runtime events; `None` when
    /// `recorder_capacity` is 0.
    recorder: Option<Arc<FlightRecorder>>,
    /// Bound address of the live scrape endpoint; `None` when no
    /// `scrape_addr` was configured.
    scrape_addr: Option<std::net::SocketAddr>,
    /// Aligned-snapshot coordinator (ISSUE 10); `None` when checkpointing
    /// is disabled.
    checkpoints: Option<Arc<CheckpointCoordinator>>,
}

/// Fault-tolerance state of a running job (ISSUE 3): shared recovery
/// counters and the heartbeat failure detector. The monitor that feeds
/// resource beacons into the detector runs as a periodic IO-tier task.
struct HaRuntime {
    stats: Arc<RecoveryStats>,
    detector: Arc<FailureDetector>,
}

/// Network-tier gauges folded into [`ThreadModelStats`] alongside the
/// IO-pool counters: reactor-side (interests, dispatches, re-arms) plus
/// receiver-side (open connections, accept backlog peak).
#[derive(Debug, Clone, Copy, Default)]
struct NetGauges {
    reactor: ReactorStats,
    connections: usize,
    accept_backlog_peak: u64,
}

/// Fold IO-pool gauges, the worker-tier thread count, and the network
/// gauges into the exported [`ThreadModelStats`].
fn thread_model_stats(io: IoPoolStats, worker_threads: usize, net: NetGauges) -> ThreadModelStats {
    ThreadModelStats {
        io_threads: io.io_threads,
        worker_threads,
        live_io_tasks: io.live_tasks,
        queued_io_tasks: io.queued_tasks,
        timer_depth: io.timer_depth,
        timer_fires: io.timer_fires,
        io_parks: io.parks,
        io_wakes: io.wakes,
        io_polls: io.polls,
        net_connections: net.connections,
        net_interests: net.reactor.registered,
        net_readiness_events: net.reactor.events_dispatched,
        net_rearms: net.reactor.rearms,
        net_accept_backlog_peak: net.accept_backlog_peak,
        ..Default::default()
    }
}

impl JobHandle {
    /// The submitted graph's name.
    pub fn graph_name(&self) -> &str {
        &self.graph_name
    }

    /// Live metrics snapshot.
    pub fn metrics(&self) -> JobMetrics {
        let mut m = self.registry.snapshot();
        m.buffer_pool = self.pool.stats();
        m.thread_model = self.thread_model();
        m.containment.worker_panics = self.resources.iter().map(|r| r.worker_panics()).sum();
        for q in &self.queues {
            m.containment.shed_total += q.shed_total();
            m.containment.shed_bytes += q.shed_bytes();
        }
        if let Some(dlq) = &self.dead_letters {
            m.containment.dead_letters = dlq.len() as u64;
            m.containment.dead_letters_evicted = dlq.evicted();
        }
        m
    }

    /// Quarantined poison batches, oldest first: the frames an operator
    /// kept panicking on through every retry, with their captured payload
    /// bytes and panic messages. Empty when containment is disabled or
    /// nothing has been quarantined.
    pub fn dead_letters(&self) -> Vec<DeadLetter> {
        self.dead_letters.as_ref().map(|d| d.snapshot()).unwrap_or_default()
    }

    /// Live gauges of the two-tier execution plane: IO/worker thread
    /// counts, live and queued IO tasks, timer-wheel depth, park/wake
    /// counters. The headline invariant — thread count independent of
    /// source parallelism — is directly checkable here.
    pub fn thread_model(&self) -> ThreadModelStats {
        let io = self.io_pool.as_ref().map(|p| p.stats()).unwrap_or_default();
        let workers = self.resources.iter().map(|r| r.worker_count()).sum();
        let mut tm = thread_model_stats(io, workers, self.net_gauges());
        if let Some(series) = &self.series {
            tm.sampler_dropped = series.dropped();
        }
        if let Some(spans) = &self.spans {
            tm.trace_spans = spans.recorded();
            tm.trace_dropped = spans.dropped();
        }
        if let Some(rec) = &self.recorder {
            tm.recorder_events = rec.events();
            tm.recorder_dropped = rec.dropped();
        }
        tm
    }

    /// The flight recorder's current event log, oldest first. Empty when
    /// `recorder_capacity` is 0 or nothing noteworthy has happened yet.
    pub fn flight_recorder(&self) -> Vec<RuntimeEvent> {
        self.recorder.as_ref().map(|r| r.snapshot()).unwrap_or_default()
    }

    /// The live flight recorder itself; `None` when disabled. Exposed so
    /// harnesses can assert causal event ordering.
    pub fn recorder(&self) -> Option<&Arc<FlightRecorder>> {
        self.recorder.as_ref()
    }

    /// The live span ring; `None` when tracing is disabled.
    pub fn span_ring(&self) -> Option<&Arc<SpanRing>> {
        self.spans.as_ref()
    }

    /// Chrome trace-event JSON of every recorded span, loadable in
    /// Perfetto / `chrome://tracing`. `None` when tracing is disabled.
    pub fn chrome_trace(&self) -> Option<String> {
        self.spans.as_ref().map(|s| s.to_chrome_trace())
    }

    /// Bound address of the `/metrics` · `/traces` · `/events` scrape
    /// listener; `None` when no `scrape_addr` was configured. With an
    /// OS-assigned port (`127.0.0.1:0`) this reports the real port.
    pub fn scrape_addr(&self) -> Option<std::net::SocketAddr> {
        self.scrape_addr
    }

    /// Current network-tier gauges (reactor + receivers).
    fn net_gauges(&self) -> NetGauges {
        let receivers = self.receivers.lock();
        let backlog = receivers.iter().map(|r| r.accept_backlog_peak()).max().unwrap_or(0);
        NetGauges {
            reactor: self.reactor.as_ref().map(|r| r.stats()).unwrap_or_default(),
            connections: receivers.iter().map(|r| r.open_connections()).sum(),
            accept_backlog_peak: backlog,
        }
    }

    /// Live gauges of every inbound watermark queue, one per processor
    /// instance in deployment order. Gate events count how often
    /// backpressure engaged (§III-B4); the backpressure harness asserts
    /// they actually fire.
    pub fn queue_gauges(&self) -> Vec<QueueGauge> {
        self.queues.iter().map(|q| QueueGauge::observe(q)).collect()
    }

    /// Full telemetry snapshot: per-operator latency histograms (end-to-end
    /// plus the four-stage breakdown), live counters and queue gauges, and
    /// the background sampler's time series. `None` when telemetry is
    /// disabled in [`RuntimeConfig`].
    pub fn telemetry(&self) -> Option<TelemetrySnapshot> {
        let hub = self.telemetry_hub.as_ref()?;
        Some(TelemetrySnapshot {
            graph_name: self.graph_name.clone(),
            operators: hub.snapshot(),
            metrics: self.metrics(),
            queues: self.queue_gauges(),
            series: self.series.as_ref().map(|r| r.series()).unwrap_or_default(),
            links: self.link_stats(),
            recovery: self.recovery(),
            dead_letters: self.dead_letters(),
            checkpoints: self.checkpoint_stats(),
        })
    }

    /// Checkpoint coordinator counters and histograms: completed and
    /// abandoned rounds, store failures, duration and encoded-size
    /// distributions, and the age of the newest cut. `None` when
    /// checkpointing is disabled in [`RuntimeConfig`].
    pub fn checkpoint_stats(&self) -> Option<crate::checkpoint::CheckpointStats> {
        self.checkpoints.as_ref().map(|c| c.stats(crate::now_micros()))
    }

    /// The newest completed checkpoint snapshot, decoded from the backing
    /// store. `None` when checkpointing is disabled or no round has
    /// completed yet.
    pub fn latest_checkpoint(&self) -> Option<crate::checkpoint::CheckpointSnapshot> {
        self.checkpoints.as_ref()?.latest().ok().flatten()
    }

    /// Per-link stats bundles from the link stack, in deployment order:
    /// flush/packet/byte counters, reliability counters, and the current
    /// flush-policy knobs.
    pub fn link_stats(&self) -> Vec<neptune_link::LinkStatsSnapshot> {
        self.endpoints.iter().map(|e| e.link().stats_snapshot()).collect()
    }

    /// Recovery counters: retransmits, reconnects, failure detections and
    /// their latency distribution. `None` when fault tolerance is disabled
    /// in [`RuntimeConfig`].
    pub fn recovery(&self) -> Option<RecoverySnapshot> {
        self.ha.as_ref().map(|h| h.stats.snapshot())
    }

    /// Liveness verdict per resource from the heartbeat failure detector,
    /// in resource order. `None` when fault tolerance is disabled.
    pub fn resource_states(&self) -> Option<Vec<(String, PeerState)>> {
        let ha = self.ha.as_ref()?;
        Some(
            self.resources
                .iter()
                .map(|r| {
                    let name = r.name().to_string();
                    let state = ha.detector.state(&name).unwrap_or(PeerState::Alive);
                    (name, state)
                })
                .collect(),
        )
    }

    /// Chaos hook: freeze (or thaw) a resource's heartbeat beacon so the
    /// failure detector sees it fall silent without tearing anything down.
    pub fn chaos_suspend_resource(&self, resource: usize, suspended: bool) {
        self.resources[resource].set_heartbeat_suspended(suspended);
    }

    /// Total backpressure gate events across the job.
    pub fn total_gate_events(&self) -> u64 {
        self.queues.iter().map(|q| q.gate_events()).sum()
    }

    /// Where every operator instance was placed:
    /// `(operator name, instance index, resource index)`.
    pub fn placement(&self) -> &[(String, usize, usize)] {
        &self.placement
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TransportMode;
    use crate::graph::GraphBuilder;
    use crate::operator::{OperatorContext, SourceStatus, StreamProcessor};
    use crate::packet::{FieldValue, StreamPacket};
    use crate::partition::PartitioningScheme;
    use neptune_granules::test_support::wait_for;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{Duration, Instant};

    struct CountingSource {
        remaining: u64,
        next_val: u64,
    }

    impl crate::operator::StreamSource for CountingSource {
        fn next(&mut self, ctx: &mut OperatorContext) -> SourceStatus {
            if self.remaining == 0 {
                return SourceStatus::Exhausted;
            }
            let mut p = StreamPacket::new();
            p.push_field("n", FieldValue::U64(self.next_val));
            self.next_val += 1;
            self.remaining -= 1;
            match ctx.emit(&p) {
                Ok(()) => SourceStatus::Emitted(1),
                Err(_) => SourceStatus::Exhausted,
            }
        }
    }

    struct Forward;
    impl StreamProcessor for Forward {
        fn process(&mut self, p: &StreamPacket, ctx: &mut OperatorContext) {
            let _ = ctx.emit(p);
        }
    }

    struct SinkCollect {
        seen: Arc<AtomicU64>,
        sum: Arc<AtomicU64>,
    }
    impl StreamProcessor for SinkCollect {
        fn process(&mut self, p: &StreamPacket, _ctx: &mut OperatorContext) {
            self.seen.fetch_add(1, Ordering::Relaxed);
            if let Some(n) = p.get("n").and_then(|v| v.as_u64()) {
                self.sum.fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    fn run_relay(config: RuntimeConfig, packets: u64, relay_par: usize) -> (u64, u64, JobMetrics) {
        let seen = Arc::new(AtomicU64::new(0));
        let sum = Arc::new(AtomicU64::new(0));
        let (s2, m2) = (seen.clone(), sum.clone());
        let graph = GraphBuilder::new("relay-test")
            .source("sender", move || CountingSource { remaining: packets, next_val: 0 })
            .processor_n("relay", relay_par, || Forward)
            .processor("receiver", move || SinkCollect { seen: s2.clone(), sum: m2.clone() })
            .link("sender", "relay", PartitioningScheme::Shuffle)
            .link("relay", "receiver", PartitioningScheme::Shuffle)
            .build()
            .unwrap();
        let job = LocalRuntime::new(config).submit(graph).unwrap();
        assert!(job.await_sources(Duration::from_secs(30)), "sources timed out");
        let metrics = job.stop();
        (seen.load(Ordering::Relaxed), sum.load(Ordering::Relaxed), metrics)
    }

    #[test]
    fn relay_delivers_every_packet_exactly_once() {
        let n = 5_000u64;
        let (seen, sum, metrics) =
            run_relay(RuntimeConfig { buffer_bytes: 4096, ..Default::default() }, n, 1);
        assert_eq!(seen, n);
        assert_eq!(sum, n * (n - 1) / 2, "payload integrity");
        assert_eq!(metrics.total_seq_violations(), 0);
        assert_eq!(metrics.operator("sender").packets_out, n);
        assert_eq!(metrics.operator("relay").packets_in, n);
        assert_eq!(metrics.operator("receiver").packets_in, n);
    }

    #[test]
    fn relay_with_parallel_middle_stage() {
        let n = 4_000u64;
        let (seen, sum, metrics) =
            run_relay(RuntimeConfig { buffer_bytes: 2048, ..Default::default() }, n, 4);
        assert_eq!(seen, n);
        assert_eq!(sum, n * (n - 1) / 2);
        assert_eq!(metrics.total_seq_violations(), 0);
    }

    #[test]
    fn tiny_buffers_flush_per_packet() {
        // Per-message mode: every packet is its own frame.
        let n = 500u64;
        let config = RuntimeConfig { batched_scheduling: false, ..Default::default() };
        let (seen, _, metrics) = run_relay(config, n, 1);
        assert_eq!(seen, n);
        let relay = metrics.operator("relay");
        assert_eq!(relay.frames_in, n, "per-message mode must frame each packet");
    }

    #[test]
    fn batching_reduces_frames_and_executions() {
        let n = 20_000u64;
        let (seen, _, metrics) =
            run_relay(RuntimeConfig { buffer_bytes: 64 * 1024, ..Default::default() }, n, 1);
        assert_eq!(seen, n);
        let relay = metrics.operator("relay");
        assert!(relay.frames_in < n / 10, "batching too weak: {} frames", relay.frames_in);
        assert!(
            relay.executions < relay.packets_in / 10,
            "scheduling not batched: {} executions for {} packets",
            relay.executions,
            relay.packets_in
        );
    }

    #[test]
    fn batch_buffers_recycle_through_the_pool() {
        // The zero-copy data path: flushed batch storage must round-trip
        // sender -> queue -> processor -> pool -> sender again, so steady
        // state serves checkouts from the free list instead of malloc.
        let n = 20_000u64;
        let (seen, _, metrics) =
            run_relay(RuntimeConfig { buffer_bytes: 4096, ..Default::default() }, n, 1);
        assert_eq!(seen, n);
        let pool = metrics.buffer_pool;
        assert!(pool.hits > 0, "pool never reused a buffer: {pool:?}");
        assert!(pool.bytes_reused > 0, "no bytes reused: {pool:?}");
        assert!(pool.returns > 0, "processed frames never returned storage: {pool:?}");
    }

    #[test]
    fn flush_timer_bounds_latency_for_slow_streams() {
        // A trickle source with a huge buffer: only the flush timer can
        // move packets, and packets must still all arrive. The source
        // paces itself by *reporting Idle* until 2ms have passed — the
        // pump's park/backoff provides the waiting, no sleeps anywhere.
        let seen = Arc::new(AtomicU64::new(0));
        let s2 = seen.clone();
        struct Trickle {
            left: u32,
            last_emit: Option<Instant>,
        }
        impl crate::operator::StreamSource for Trickle {
            fn next(&mut self, ctx: &mut OperatorContext) -> SourceStatus {
                if self.left == 0 {
                    return SourceStatus::Exhausted;
                }
                if let Some(t) = self.last_emit {
                    if t.elapsed() < Duration::from_millis(2) {
                        return SourceStatus::Idle;
                    }
                }
                self.left -= 1;
                let mut p = StreamPacket::new();
                p.push_field("n", FieldValue::U64(self.left as u64));
                ctx.emit(&p).unwrap();
                self.last_emit = Some(Instant::now());
                SourceStatus::Emitted(1)
            }
        }
        struct Counter(Arc<AtomicU64>);
        impl StreamProcessor for Counter {
            fn process(&mut self, _p: &StreamPacket, _ctx: &mut OperatorContext) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let graph = GraphBuilder::new("trickle")
            .source("src", || Trickle { left: 20, last_emit: None })
            .processor("sink", move || Counter(s2.clone()))
            .link("src", "sink", PartitioningScheme::Shuffle)
            .build()
            .unwrap();
        let config = RuntimeConfig {
            buffer_bytes: 1 << 20,
            flush_interval: Duration::from_millis(5),
            ..Default::default()
        };
        let job = LocalRuntime::new(config).submit(graph).unwrap();
        job.await_sources(Duration::from_secs(30));
        // Even before stop(), the timer must have flushed most packets.
        job.settle(Duration::from_secs(10));
        let before_stop = seen.load(Ordering::Relaxed);
        assert!(before_stop >= 19, "flush timer inactive: {before_stop} of 20 arrived");
        let metrics = job.stop();
        assert_eq!(seen.load(Ordering::Relaxed), 20);
        assert_eq!(metrics.total_seq_violations(), 0);
    }

    #[test]
    fn multiple_resources_in_process() {
        let n = 3_000u64;
        let config = RuntimeConfig { resources: 3, buffer_bytes: 1024, ..Default::default() };
        let (seen, sum, metrics) = run_relay(config, n, 2);
        assert_eq!(seen, n);
        assert_eq!(sum, n * (n - 1) / 2);
        assert_eq!(metrics.total_seq_violations(), 0);
    }

    #[test]
    fn tcp_transport_between_resources() {
        let n = 2_000u64;
        let config = RuntimeConfig {
            resources: 2,
            transport: TransportMode::Tcp,
            buffer_bytes: 2048,
            ..Default::default()
        };
        let (seen, sum, metrics) = run_relay(config, n, 1);
        assert_eq!(seen, n);
        assert_eq!(sum, n * (n - 1) / 2);
        assert_eq!(metrics.total_seq_violations(), 0);
    }

    #[test]
    fn fields_partitioning_colocates_keys() {
        // Each relay instance records which keys it saw; a key must never
        // appear at two instances.
        let seen_by: Arc<Mutex<HashMap<u64, usize>>> = Arc::new(Mutex::new(HashMap::new()));
        struct KeyedSink {
            seen_by: Arc<Mutex<HashMap<u64, usize>>>,
            violations: Arc<AtomicU64>,
        }
        impl StreamProcessor for KeyedSink {
            fn process(&mut self, p: &StreamPacket, ctx: &mut OperatorContext) {
                let key = p.get("n").unwrap().as_u64().unwrap() % 17;
                let mut map = self.seen_by.lock();
                let inst = ctx.instance();
                match map.get(&key) {
                    Some(&prev) if prev != inst => {
                        self.violations.fetch_add(1, Ordering::Relaxed);
                    }
                    _ => {
                        map.insert(key, inst);
                    }
                }
            }
        }
        struct KeySource(u64);
        impl crate::operator::StreamSource for KeySource {
            fn next(&mut self, ctx: &mut OperatorContext) -> SourceStatus {
                if self.0 == 0 {
                    return SourceStatus::Exhausted;
                }
                self.0 -= 1;
                let mut p = StreamPacket::new();
                p.push_field("n", FieldValue::U64(self.0));
                // Re-key by modulo so instances see repeating keys.
                let key = self.0 % 17;
                p.push_field("key", FieldValue::U64(key));
                ctx.emit(&p).unwrap();
                SourceStatus::Emitted(1)
            }
        }
        let violations = Arc::new(AtomicU64::new(0));
        let (sb, v) = (seen_by.clone(), violations.clone());
        let graph = GraphBuilder::new("keyed")
            .source("src", || KeySource(2000))
            .processor_n("sink", 4, move || KeyedSink {
                seen_by: sb.clone(),
                violations: v.clone(),
            })
            .link("src", "sink", PartitioningScheme::by_field("key"))
            .build()
            .unwrap();
        let job = LocalRuntime::new(RuntimeConfig { buffer_bytes: 512, ..Default::default() })
            .submit(graph)
            .unwrap();
        job.await_sources(Duration::from_secs(30));
        let metrics = job.stop();
        assert_eq!(violations.load(Ordering::Relaxed), 0, "key co-location violated");
        assert_eq!(metrics.operator("sink").packets_in, 2000);
    }

    #[test]
    fn broadcast_reaches_every_instance() {
        let seen = Arc::new(AtomicU64::new(0));
        let s2 = seen.clone();
        struct Counter(Arc<AtomicU64>);
        impl StreamProcessor for Counter {
            fn process(&mut self, _p: &StreamPacket, _ctx: &mut OperatorContext) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let graph = GraphBuilder::new("bcast")
            .source("src", || CountingSource { remaining: 100, next_val: 0 })
            .processor_n("sink", 3, move || Counter(s2.clone()))
            .link("src", "sink", PartitioningScheme::Broadcast)
            .build()
            .unwrap();
        let job = LocalRuntime::new(RuntimeConfig::default()).submit(graph).unwrap();
        job.await_sources(Duration::from_secs(30));
        let metrics = job.stop();
        assert_eq!(seen.load(Ordering::Relaxed), 300, "broadcast must triple delivery");
        assert_eq!(metrics.operator("src").packets_out, 300);
    }

    #[test]
    fn processor_close_emissions_propagate() {
        // A windowing processor that holds everything until close() — its
        // close-time emission must still reach the sink.
        struct Holder {
            count: u64,
        }
        impl StreamProcessor for Holder {
            fn process(&mut self, _p: &StreamPacket, _ctx: &mut OperatorContext) {
                self.count += 1;
            }
            fn close(&mut self, ctx: &mut OperatorContext) {
                let mut p = StreamPacket::new();
                p.push_field("total", FieldValue::U64(self.count));
                let _ = ctx.emit(&p);
            }
        }
        let total = Arc::new(AtomicU64::new(0));
        let t2 = total.clone();
        struct TotalSink(Arc<AtomicU64>);
        impl StreamProcessor for TotalSink {
            fn process(&mut self, p: &StreamPacket, _ctx: &mut OperatorContext) {
                self.0.store(p.get("total").unwrap().as_u64().unwrap(), Ordering::Relaxed);
            }
        }
        let graph = GraphBuilder::new("close-emit")
            .source("src", || CountingSource { remaining: 321, next_val: 0 })
            .processor("window", || Holder { count: 0 })
            .processor("sink", move || TotalSink(t2.clone()))
            .link("src", "window", PartitioningScheme::Shuffle)
            .link("window", "sink", PartitioningScheme::Shuffle)
            .build()
            .unwrap();
        let job = LocalRuntime::new(RuntimeConfig::default()).submit(graph).unwrap();
        job.await_sources(Duration::from_secs(30));
        job.stop();
        assert_eq!(total.load(Ordering::Relaxed), 321);
    }

    #[test]
    fn backpressure_throttles_source_not_drops() {
        // Slow sink + tiny watermarks: the source must be slowed down, and
        // every packet must still arrive (no fail-fast drops, §III-B4).
        // The sink's slowness is a bounded spin (worker-tier CPU), not a
        // sleep — the runtime itself must stay sleep-free.
        let seen = Arc::new(AtomicU64::new(0));
        let s2 = seen.clone();
        struct SlowSink(Arc<AtomicU64>);
        impl StreamProcessor for SlowSink {
            fn process(&mut self, _p: &StreamPacket, _ctx: &mut OperatorContext) {
                let until = Instant::now() + Duration::from_micros(100);
                while Instant::now() < until {
                    std::hint::spin_loop();
                }
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let n = 2_000u64;
        let graph = GraphBuilder::new("bp")
            .source("src", move || CountingSource { remaining: n, next_val: 0 })
            .processor("slow", move || SlowSink(s2.clone()))
            .link("src", "slow", PartitioningScheme::Shuffle)
            .build()
            .unwrap();
        let config = RuntimeConfig {
            buffer_bytes: 256,
            watermark_high: 2048,
            watermark_low: 512,
            ..Default::default()
        };
        let job = LocalRuntime::new(config).submit(graph).unwrap();
        job.await_sources(Duration::from_secs(60));
        let metrics = job.stop();
        assert_eq!(seen.load(Ordering::Relaxed), n, "backpressure must not drop packets");
        assert_eq!(metrics.total_seq_violations(), 0);
    }

    #[test]
    fn capacity_weighted_placement_respects_weights() {
        use crate::config::PlacementStrategy;
        let graph = GraphBuilder::new("weighted")
            .source("src", || CountingSource { remaining: 100, next_val: 0 })
            .processor_n("work", 11, || Forward)
            .link("src", "work", PartitioningScheme::Shuffle)
            .build()
            .unwrap();
        let config = RuntimeConfig {
            resources: 3,
            placement: PlacementStrategy::CapacityWeighted(vec![4, 1, 1]),
            ..Default::default()
        };
        let job = LocalRuntime::new(config).submit(graph).unwrap();
        let mut per_resource = [0usize; 3];
        for (_, _, r) in job.placement() {
            per_resource[*r] += 1;
        }
        job.await_sources(Duration::from_secs(30));
        job.stop();
        // 12 instances over weights 4:1:1 -> resource 0 gets ~4x the rest.
        assert!(
            per_resource[0] >= 2 * per_resource[1].max(per_resource[2]),
            "placement {per_resource:?} ignored weights"
        );
        assert_eq!(per_resource.iter().sum::<usize>(), 12);
    }

    #[test]
    fn telemetry_populates_stage_histograms_and_sampler() {
        use crate::config::TelemetryConfig;
        // A source that stamps each packet with its emission time so the
        // sink's e2e histogram has something to measure.
        struct StampedSource(u64);
        impl crate::operator::StreamSource for StampedSource {
            fn next(&mut self, ctx: &mut OperatorContext) -> SourceStatus {
                if self.0 == 0 {
                    return SourceStatus::Exhausted;
                }
                self.0 -= 1;
                let mut p = StreamPacket::new();
                p.push_field("ts", FieldValue::Timestamp(crate::now_micros()));
                p.push_field("n", FieldValue::U64(self.0));
                ctx.emit(&p).unwrap();
                SourceStatus::Emitted(1)
            }
        }
        let graph = GraphBuilder::new("telemetry-relay")
            .source("src", || StampedSource(3_000))
            .processor("relay", || Forward)
            .processor("sink", || Forward)
            .link("src", "relay", PartitioningScheme::Shuffle)
            .link("relay", "sink", PartitioningScheme::Shuffle)
            .build()
            .unwrap();
        let config = RuntimeConfig {
            buffer_bytes: 4096,
            telemetry: TelemetryConfig {
                sample_interval: Duration::from_millis(5),
                ..TelemetryConfig::enabled()
            },
            ..Default::default()
        };
        let job = LocalRuntime::new(config).submit(graph).unwrap();
        assert!(job.await_sources(Duration::from_secs(30)));
        assert!(job.settle(Duration::from_secs(10)));
        // The sampler is a periodic IO-tier task; give it until its next
        // few fires to have recorded at least one sample.
        assert!(
            wait_for(Duration::from_secs(5), || job.telemetry().map(|s| !s.series.is_empty())
                == Some(true)),
            "sampler produced no samples"
        );
        let snap = job.telemetry().expect("telemetry enabled");
        for op in ["relay", "sink"] {
            let t = &snap.operators[op];
            assert!(t.e2e.count() > 0, "{op}: e2e histogram empty");
            assert!(t.e2e.p50() <= t.e2e.p95() && t.e2e.p95() <= t.e2e.p99());
            assert!(t.schedule_delay.count() > 0, "{op}: no schedule samples");
            assert!(t.transport.count() > 0, "{op}: no transport samples");
            assert!(t.execution.count() > 0, "{op}: no execution samples");
        }
        // buffer_wait is recorded at the *senders* of each link.
        assert!(snap.operators["src"].buffer_wait.count() > 0);
        assert!(snap.operators["relay"].buffer_wait.count() > 0);
        assert!(!snap.to_json().is_empty());
        assert!(!snap.render_pretty().is_empty());
        assert!(!snap.render_prometheus().is_empty());
        job.stop();
    }

    #[test]
    fn telemetry_disabled_yields_none_and_named_gauges() {
        let graph = GraphBuilder::new("plain")
            .source("src", || CountingSource { remaining: 100, next_val: 0 })
            .processor("sink", || Forward)
            .link("src", "sink", PartitioningScheme::Shuffle)
            .build()
            .unwrap();
        let job = LocalRuntime::new(RuntimeConfig::default()).submit(graph).unwrap();
        job.await_sources(Duration::from_secs(30));
        assert!(job.telemetry().is_none(), "telemetry must be off by default");
        let gauges = job.queue_gauges();
        assert_eq!(gauges.len(), 1);
        assert!(gauges[0].capacity > 0);
        job.stop();
    }

    #[test]
    fn io_tier_gauges_populate_and_drain() {
        // The two-tier thread model is observable: a fixed IO-thread count
        // set by config, live tasks while running, and a fully drained
        // tier after stop().
        let graph = GraphBuilder::new("tiers")
            .source("src", || CountingSource { remaining: 1_000, next_val: 0 })
            .processor("sink", || Forward)
            .link("src", "sink", PartitioningScheme::Shuffle)
            .build()
            .unwrap();
        let config = RuntimeConfig { io_threads: Some(2), ..Default::default() };
        let job = LocalRuntime::new(config).submit(graph).unwrap();
        let live = job.thread_model();
        assert_eq!(live.io_threads, 2, "configured IO tier width must stick");
        assert!(live.worker_threads > 0);
        assert!(live.live_io_tasks >= 1, "pump + flush tasks must be live");
        assert!(job.await_sources(Duration::from_secs(30)));
        let metrics = job.stop();
        let tm = metrics.thread_model;
        assert_eq!(tm.io_threads, 2);
        assert_eq!(tm.live_io_tasks, 0, "IO tier must drain at stop: {tm:?}");
        assert_eq!(tm.queued_io_tasks, 0, "IO queue must empty at stop: {tm:?}");
        assert!(tm.io_polls > 0, "pumps never ran");
        assert!(tm.io_parks > 0, "pumps never parked");
        assert!(tm.io_wakes > 0, "pumps never woke");
    }

    #[test]
    fn single_io_thread_still_completes_jobs() {
        // io_threads=1 is the degenerate tier: every pump and flush task
        // shares one thread. Cooperative scheduling must still deliver
        // every packet (CI runs the whole suite in this mode).
        let n = 2_000u64;
        let config = RuntimeConfig { io_threads: Some(1), ..Default::default() };
        let (seen, sum, metrics) = run_relay(config, n, 2);
        assert_eq!(seen, n);
        assert_eq!(sum, n * (n - 1) / 2);
        assert_eq!(metrics.total_seq_violations(), 0);
        assert_eq!(metrics.thread_model.io_threads, 1);
    }

    #[test]
    fn ha_detects_suspended_resource_and_counts_recovery() {
        use crate::config::{HaConfig, TelemetryConfig};
        let graph = GraphBuilder::new("ha-relay")
            .source("src", || CountingSource { remaining: 100, next_val: 0 })
            .processor("sink", || Forward)
            .link("src", "sink", PartitioningScheme::Shuffle)
            .build()
            .unwrap();
        let config = RuntimeConfig {
            telemetry: TelemetryConfig::enabled(),
            ha: HaConfig {
                enabled: true,
                heartbeat_interval: Duration::from_millis(10),
                failure_timeout: Duration::from_millis(60),
                ..Default::default()
            },
            ..Default::default()
        };
        let job = LocalRuntime::new(config).submit(graph).unwrap();
        assert!(job.await_sources(Duration::from_secs(30)));
        assert!(
            wait_for(Duration::from_secs(10), || {
                job.resource_states()
                    .expect("ha enabled")
                    .iter()
                    .all(|(_, s)| *s == PeerState::Alive)
            }),
            "resource never reported alive: {:?}",
            job.resource_states()
        );
        // Chaos: freeze the beacon; the detector must walk suspect→dead.
        job.chaos_suspend_resource(0, true);
        assert!(
            wait_for(Duration::from_secs(10), || job.resource_states().unwrap()[0].1
                == PeerState::Dead),
            "suspended resource never declared dead"
        );
        let snap = job.recovery().expect("ha enabled");
        assert!(snap.deaths >= 1, "death must be counted");
        assert!(snap.suspects >= 1, "suspicion precedes death");
        assert_eq!(snap.detection_latency.count(), snap.deaths);
        // Acceptance bound: detection latency stays under 3x the timeout.
        assert!(
            snap.detection_latency.p99() < 3 * 60_000,
            "detection too slow: {}us",
            snap.detection_latency.p99()
        );
        // Thaw: the beacon resumes and the detector revives the peer.
        job.chaos_suspend_resource(0, false);
        assert!(
            wait_for(Duration::from_secs(10), || job.resource_states().unwrap()[0].1
                == PeerState::Alive),
            "thawed resource never revived"
        );
        assert!(job.recovery().unwrap().recoveries >= 1);
        let telemetry = job.telemetry().expect("telemetry enabled");
        let recovery = telemetry.recovery.as_ref().expect("recovery section present when HA is on");
        assert!(recovery.deaths >= 1);
        assert!(telemetry.to_json().contains("\"recovery\""));
        assert!(telemetry.render_prometheus().contains("neptune_recovery_deaths_total"));
        job.stop();
    }

    #[test]
    fn invalid_config_rejected_at_submit() {
        let graph = GraphBuilder::new("g")
            .source("s", || CountingSource { remaining: 1, next_val: 0 })
            .processor("p", || Forward)
            .link("s", "p", PartitioningScheme::Shuffle)
            .build()
            .unwrap();
        let bad = RuntimeConfig { watermark_low: 100, watermark_high: 100, ..Default::default() };
        assert!(matches!(LocalRuntime::new(bad).submit(graph), Err(SubmitError::Config(_))));
    }
}
