//! IO-tier tasks of the runtime: source pumps, per-endpoint flush tasks,
//! the HA heartbeat monitor, and the telemetry sampler.
//!
//! Before the two-tier refactor every one of these was a dedicated thread
//! — a job with 512 sources ran 512 pump threads, each sleeping 200µs
//! between `next()` polls even when fully idle. Now they are
//! [`IoTask`] state machines on the job's shared [`neptune_granules::IoPool`]:
//!
//! * a pump that has nothing to emit parks with exponential backoff
//!   ([`IoStatus::ParkUntil`]) instead of sleeping on a thread;
//! * a pump blocked by downstream backpressure parks *indefinitely* and is
//!   woken by the watermark queue's gate-release listener — the bounded
//!   ingress queue between the IO tier and the worker tier gates admission;
//! * a flush task parks on the endpoint's **exact** flush deadline via the
//!   timer wheel (no scan tick, no half-interval firing error);
//! * the monitor and sampler are periodic timer registrations.
//!
//! Idle cost is therefore O(io_threads), not O(sources).

use crate::channel::ChannelEndpoint;
use crate::checkpoint::{CheckpointCoordinator, CheckpointSnapshot, InstanceState, FINAL_BARRIER};
use crate::operator::{OperatorContext, SourceStatus, StreamSource};
use crate::telemetry::TelemetrySample;
use neptune_granules::io::{IoContext, IoStatus, IoTask};
use neptune_granules::IoTaskHandle;
use neptune_ha::{FailureDetector, PeerState};
use neptune_net::frame::Frame;
use neptune_net::watermark::WatermarkQueue;
use neptune_telemetry::{wall_micros, SampleRing, Span, SpanRing, STAGE_SOURCE};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// First idle park of a source pump; doubles on consecutive idles.
pub(crate) const MIN_IDLE_BACKOFF: Duration = Duration::from_micros(200);
/// Idle backoff cap: an idle source costs one timer fire per 20ms, total.
pub(crate) const MAX_IDLE_BACKOFF: Duration = Duration::from_millis(20);
/// Packets a pump may emit in one stint before yielding the IO thread.
pub(crate) const EMIT_BUDGET: usize = 64;
/// Wall-clock cap on one pump stint. Sources are supposed to return
/// promptly from `next()`, but one that blocks inside it (paced test
/// sources, slow devices) must not hold an IO thread — and with it every
/// flush deadline — for a whole emit budget.
pub(crate) const STINT_BUDGET: Duration = Duration::from_millis(1);

/// Counts live source pumps and lets `await_sources` block on zero without
/// polling: `dec` notifies, waiters sleep on the condvar.
#[derive(Default)]
pub(crate) struct PumpGauge {
    count: Mutex<usize>,
    cv: Condvar,
}

impl PumpGauge {
    pub(crate) fn new() -> Self {
        PumpGauge::default()
    }

    pub(crate) fn inc(&self) {
        *self.count.lock() += 1;
    }

    pub(crate) fn dec(&self) {
        let mut c = self.count.lock();
        *c = c.saturating_sub(1);
        self.cv.notify_all();
    }

    pub(crate) fn active(&self) -> usize {
        *self.count.lock()
    }

    /// Block until every pump finished (true) or `deadline` passed (false).
    pub(crate) fn wait_zero(&self, deadline: Instant) -> bool {
        let mut c = self.count.lock();
        while *c > 0 {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            self.cv.wait_for(&mut c, deadline - now);
        }
        true
    }
}

/// Edge-triggered "the job made progress" signal: pumps notify on emit and
/// on completion, `settle` waits on it instead of sleeping blind.
#[derive(Default)]
pub(crate) struct ProgressSignal {
    lock: Mutex<()>,
    cv: Condvar,
}

impl ProgressSignal {
    pub(crate) fn new() -> Self {
        ProgressSignal::default()
    }

    pub(crate) fn notify(&self) {
        self.cv.notify_all();
    }

    /// Wait for a notification, at most `timeout`.
    pub(crate) fn wait_for(&self, timeout: Duration) {
        let mut g = self.lock.lock();
        self.cv.wait_for(&mut g, timeout);
    }
}

/// Checkpoint plumbing of one source pump (ISSUE 10): the pump watches
/// the job-wide requested-round counter and, on a new round, snapshots
/// its source state, pushes a barrier behind the flushed data on every
/// outgoing channel, and reports to the coordinator.
pub(crate) struct SourceBarrier {
    pub(crate) coordinator: Arc<CheckpointCoordinator>,
    /// Latest round requested by the barrier timer (job-wide).
    pub(crate) requested: Arc<AtomicU64>,
    /// Latest round this pump has emitted barriers for.
    pub(crate) emitted: u64,
    /// Snapshot to restore into the source at open; taken once.
    pub(crate) restored: Option<Arc<CheckpointSnapshot>>,
}

/// One source instance as a cooperatively scheduled IO task.
pub(crate) struct SourcePump {
    pub(crate) source: Box<dyn StreamSource>,
    pub(crate) ctx: OperatorContext,
    pub(crate) stop: Arc<AtomicBool>,
    pub(crate) gauge: Arc<PumpGauge>,
    pub(crate) progress: Arc<ProgressSignal>,
    /// Downstream in-process watermark queues; when any is gated the pump
    /// parks and the queue's gate-release listener wakes it (IO-tier
    /// admission control).
    pub(crate) gates: Vec<Arc<WatermarkQueue<Frame>>>,
    pub(crate) idle_backoff: Duration,
    pub(crate) opened: bool,
    pub(crate) closed: bool,
    /// Span ring + this source's track when tracing is on (ISSUE 7).
    /// Pump stints are sampled deterministically by stint count; their
    /// spans carry trace id 0 (a stint spans many packets).
    pub(crate) spans: Option<(Arc<SpanRing>, u16)>,
    /// Stints run so far, the sampling domain for source spans.
    pub(crate) stints: u64,
    /// Aligned-snapshot plumbing (ISSUE 10); `None` when checkpointing is
    /// disabled — the pump then runs bit-identically to a pre-checkpoint
    /// build.
    pub(crate) checkpoint: Option<SourceBarrier>,
}

impl SourcePump {
    /// Close-once path shared by exhaustion, stop, and pool shutdown.
    fn finish(&mut self) -> IoStatus {
        if !self.closed {
            self.closed = true;
            // Contribute to any round requested before the source ended,
            // then seal every outgoing channel with FINAL_BARRIER so
            // downstream alignment treats them as permanently aligned.
            self.emit_barriers();
            if self.opened {
                self.source.close(&mut self.ctx);
                let _ = self.ctx.force_flush_all();
            }
            if self.checkpoint.is_some() {
                for ep in self.ctx.endpoints() {
                    let _ = ep.barrier(FINAL_BARRIER);
                }
            }
            self.gauge.dec();
            self.progress.notify();
        }
        IoStatus::Complete
    }

    /// If the barrier timer requested a round this pump has not served
    /// yet, snapshot the source's state, flush, emit the barrier on every
    /// outgoing channel, and report to the coordinator. Rounds missed
    /// while parked collapse into the newest one — the coordinator
    /// abandons the stale rounds when the newer cut completes.
    fn emit_barriers(&mut self) {
        let Some(cp) = &mut self.checkpoint else { return };
        let requested = cp.requested.load(Ordering::Acquire);
        if requested <= cp.emitted {
            return;
        }
        cp.emitted = requested;
        let mut states = Vec::new();
        if let Some(state) = self.source.state() {
            states.push(InstanceState::capture(
                self.ctx.operator(),
                self.ctx.instance() as u32,
                state,
            ));
        }
        for ep in self.ctx.endpoints() {
            let _ = ep.barrier(requested);
        }
        cp.coordinator.report(requested, crate::now_micros(), states, Vec::new());
    }
}

impl IoTask for SourcePump {
    fn run(&mut self, io: &IoContext) -> IoStatus {
        // Sampled stints get a source-stage span; unsampled ones pay a
        // mask test and an increment, nothing else (no clock reads when
        // tracing is off — the invariant the overhead bench asserts).
        match &self.spans {
            None => self.run_inner(io),
            Some((ring, track)) if ring.sampled(self.stints) => {
                let (ring, track) = (ring.clone(), *track);
                self.stints = self.stints.wrapping_add(1);
                let start = wall_micros();
                let t0 = Instant::now();
                let status = self.run_inner(io);
                ring.record(Span {
                    trace_id: 0,
                    start_micros: start,
                    dur_micros: t0.elapsed().as_micros() as u64,
                    stage: STAGE_SOURCE,
                    track,
                });
                status
            }
            Some(_) => {
                self.stints = self.stints.wrapping_add(1);
                self.run_inner(io)
            }
        }
    }

    fn on_shutdown(&mut self) {
        self.finish();
    }
}

impl SourcePump {
    fn run_inner(&mut self, io: &IoContext) -> IoStatus {
        if self.closed {
            return IoStatus::Complete;
        }
        if !self.opened {
            self.opened = true;
            self.source.open(&mut self.ctx);
            // Stateful recovery: overwrite open()'s defaults with the
            // restored blob, so the source resumes from the cut.
            if let Some(cp) = &mut self.checkpoint {
                if let Some(snap) = cp.restored.take() {
                    if let Some(state) = self.source.state() {
                        if let Some(saved) =
                            snap.state_for(self.ctx.operator(), self.ctx.instance() as u32)
                        {
                            let _ = saved.restore_into(state);
                        }
                    }
                }
            }
        }
        // Serve a requested checkpoint round before emitting more data:
        // the barrier must sit exactly at the round's cut point.
        self.emit_barriers();
        let stint_start = Instant::now();
        for _ in 0..EMIT_BUDGET {
            if self.stop.load(Ordering::Acquire) || io.shutting_down() {
                return self.finish();
            }
            if stint_start.elapsed() >= STINT_BUDGET {
                break;
            }
            // Admission gate: a closed watermark gate downstream means the
            // worker tier is saturated — park instead of blocking the IO
            // thread inside push; the gate listener wakes us on release.
            // A *shedding* queue is the exception: its push blocks at most
            // `max_stall` before the policy degrades, so the pump must keep
            // pushing or the shed path would never run.
            if self.gates.iter().any(|q| q.is_gated() && !q.sheds()) {
                return IoStatus::Park;
            }
            match self.source.next(&mut self.ctx) {
                SourceStatus::Emitted(_) => {
                    self.idle_backoff = MIN_IDLE_BACKOFF;
                    self.progress.notify();
                }
                SourceStatus::Idle => {
                    let backoff = self.idle_backoff;
                    self.idle_backoff = (self.idle_backoff * 2).min(MAX_IDLE_BACKOFF);
                    return IoStatus::ParkUntil(Instant::now() + backoff);
                }
                SourceStatus::Exhausted => return self.finish(),
            }
        }
        // Budget exhausted: requeue at the back so pumps share IO threads
        // fairly even when every source is saturated.
        IoStatus::Ready
    }
}

/// Flush-deadline watcher for one channel endpoint.
///
/// The endpoint's push path wakes this task when its buffer goes empty →
/// non-empty (the moment the flush clock starts); the task then parks on
/// the exact deadline via the timer wheel. Idle endpoints cost nothing.
pub(crate) struct FlushTask {
    pub(crate) endpoint: Arc<ChannelEndpoint>,
    pub(crate) stop: Arc<AtomicBool>,
}

impl IoTask for FlushTask {
    fn run(&mut self, io: &IoContext) -> IoStatus {
        if self.stop.load(Ordering::Acquire) || io.shutting_down() {
            let _ = self.endpoint.force_flush();
            return IoStatus::Complete;
        }
        let _ = self.endpoint.flush_if_due(Instant::now());
        match self.endpoint.flush_deadline() {
            Some(deadline) => IoStatus::ParkUntil(deadline),
            None => IoStatus::Park,
        }
    }

    fn on_shutdown(&mut self) {
        let _ = self.endpoint.force_flush();
    }
}

/// HA heartbeat monitor as a periodic IO task: feeds resource beacons into
/// the failure detector and force-reschedules tasks of dead resources.
pub(crate) struct MonitorTask {
    pub(crate) detector: Arc<FailureDetector>,
    pub(crate) probes: Vec<(String, neptune_granules::HeartbeatProbe)>,
    pub(crate) last: Vec<u64>,
    pub(crate) handles_by_resource: HashMap<String, Vec<neptune_granules::TaskHandle>>,
    pub(crate) primed: bool,
}

impl IoTask for MonitorTask {
    fn run(&mut self, io: &IoContext) -> IoStatus {
        if io.shutting_down() {
            return IoStatus::Complete;
        }
        if !self.primed {
            // Every resource starts alive: its silence window opens now,
            // not at an arbitrary earlier instant.
            self.primed = true;
            for (name, _) in &self.probes {
                self.detector.heartbeat(name);
            }
        }
        for (i, (name, probe)) in self.probes.iter().enumerate() {
            if let Some(count) = probe.count() {
                if count > self.last[i] {
                    self.last[i] = count;
                    self.detector.heartbeat(name);
                }
            }
        }
        for (peer, state) in self.detector.poll() {
            if state == PeerState::Dead {
                if let Some(handles) = self.handles_by_resource.get(&peer) {
                    for h in handles {
                        h.force();
                    }
                }
            }
        }
        // Periodic registration on the timer wheel re-wakes us.
        IoStatus::Park
    }
}

/// Telemetry sampler as a periodic IO task recording into a shared
/// [`SampleRing`] — sampling costs a timer registration, not a thread.
pub(crate) struct SamplerTask {
    pub(crate) ring: Arc<SampleRing<TelemetrySample>>,
    pub(crate) sample: Box<dyn FnMut() -> TelemetrySample + Send>,
}

impl IoTask for SamplerTask {
    fn run(&mut self, io: &IoContext) -> IoStatus {
        if io.shutting_down() {
            return IoStatus::Complete;
        }
        self.ring.record((self.sample)());
        IoStatus::Park
    }
}

/// Barrier injector as a periodic IO task (ISSUE 10): every checkpoint
/// interval it opens a new round with the coordinator, bumps the shared
/// requested-round counter, and wakes every source pump so parked sources
/// serve the round promptly instead of at their next natural wake.
///
/// Round ids start at 1 — 0 is the "nothing requested yet" state of the
/// shared counter, and [`FINAL_BARRIER`] (`u64::MAX`) is reserved for the
/// channel-sealing barrier emitted when a source finishes.
pub(crate) struct BarrierTimerTask {
    pub(crate) coordinator: Arc<CheckpointCoordinator>,
    pub(crate) requested: Arc<AtomicU64>,
    pub(crate) pumps: Vec<IoTaskHandle>,
}

impl IoTask for BarrierTimerTask {
    fn run(&mut self, io: &IoContext) -> IoStatus {
        if io.shutting_down() {
            return IoStatus::Complete;
        }
        let id = self.requested.fetch_add(1, Ordering::AcqRel) + 1;
        self.coordinator.begin(id, crate::now_micros());
        for pump in &self.pumps {
            pump.wake();
        }
        IoStatus::Park
    }
}
