//! Live scrape endpoint (ISSUE 7): a tiny std-only HTTP/1.0 responder
//! serving `/metrics` (Prometheus text exposition), `/traces` (Chrome
//! trace-event JSON), and `/events` (flight-recorder JSON) straight off
//! the job's observability state.
//!
//! The listener runs as one cooperatively scheduled [`IoTask`] on the
//! job's IO tier — no extra threads, matching the two-tier thread model.
//! With the network reactor enabled the task parks until epoll reports
//! the listener readable; without it the task falls back to a coarse
//! accept poll (`ParkUntil`), which is fine for a debugging endpoint.
//! Handlers render from cloneable shared state, so a scrape never locks
//! the data plane.

use neptune_granules::{IoContext, IoStatus, IoTask, NetSource};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// How long a handler waits on a slow client before dropping the
/// connection. Scrapes are tiny; anything slower is a stuck peer.
const CLIENT_IO_TIMEOUT: Duration = Duration::from_millis(200);

/// Accept-poll cadence when no reactor serves readiness events.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// One render closure per route, built over cloneable job state at
/// deploy time (the task cannot hold the `JobHandle` — it outlives it).
pub(super) struct ScrapeRoutes {
    /// `/metrics` — Prometheus text exposition.
    pub metrics: Box<dyn Fn() -> String + Send>,
    /// `/traces` — Chrome trace-event JSON.
    pub traces: Box<dyn Fn() -> String + Send>,
    /// `/events` — flight-recorder JSON.
    pub events: Box<dyn Fn() -> String + Send>,
}

/// The IO-tier task owning the scrape listener.
pub(super) struct ScrapeTask {
    listener: TcpListener,
    routes: ScrapeRoutes,
    /// Reactor registration; `None` on the polling fallback path.
    source: Option<NetSource>,
}

impl ScrapeTask {
    /// Wrap an already-bound nonblocking listener. `source` is its
    /// reactor registration when the reactor path is on.
    pub(super) fn new(
        listener: TcpListener,
        routes: ScrapeRoutes,
        source: Option<NetSource>,
    ) -> Self {
        ScrapeTask { listener, routes, source }
    }

    fn serve(&self, stream: TcpStream) {
        // Handlers run blocking with a short timeout: a scrape response
        // is a few KB, so one stint absorbs the whole exchange without
        // per-connection state machines.
        let _ = stream.set_nonblocking(false);
        let _ = stream.set_read_timeout(Some(CLIENT_IO_TIMEOUT));
        let _ = stream.set_write_timeout(Some(CLIENT_IO_TIMEOUT));
        let _ = respond(stream, &self.routes);
    }
}

impl IoTask for ScrapeTask {
    fn run(&mut self, ctx: &IoContext) -> IoStatus {
        if ctx.shutting_down() {
            if let Some(s) = &mut self.source {
                s.deregister();
            }
            return IoStatus::Complete;
        }
        if let Some(s) = &self.source {
            s.take_readiness();
        }
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => self.serve(stream),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    return match &self.source {
                        Some(s) => {
                            s.arm(true, false);
                            IoStatus::Park
                        }
                        None => IoStatus::ParkUntil(Instant::now() + POLL_INTERVAL),
                    };
                }
                Err(_) => return IoStatus::Complete,
            }
        }
    }
}

/// Read the request line, route it, write the response. Errors just drop
/// the connection — the endpoint is best-effort by design.
fn respond(mut stream: TcpStream, routes: &ScrapeRoutes) -> std::io::Result<()> {
    let mut buf = [0u8; 1024];
    let mut len = 0;
    // Read until the request line is complete; ignore the header block.
    while len < buf.len() {
        let n = stream.read(&mut buf[len..])?;
        if n == 0 {
            break;
        }
        len += n;
        if buf[..len].contains(&b'\n') {
            break;
        }
    }
    let request_line =
        std::str::from_utf8(&buf[..len]).unwrap_or("").lines().next().unwrap_or("").to_string();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = if method != "GET" {
        ("405 Method Not Allowed", "text/plain; charset=utf-8", "method not allowed\n".to_string())
    } else {
        match path {
            "/metrics" => ("200 OK", "text/plain; version=0.0.4", (routes.metrics)()),
            "/traces" => ("200 OK", "application/json", (routes.traces)()),
            "/events" => ("200 OK", "application/json", (routes.events)()),
            _ => ("404 Not Found", "text/plain; charset=utf-8", "not found\n".to_string()),
        }
    };
    let header = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn routes() -> ScrapeRoutes {
        ScrapeRoutes {
            metrics: Box::new(|| "# TYPE t counter\nt 1\n".to_string()),
            traces: Box::new(|| "{\"traceEvents\":[]}".to_string()),
            events: Box::new(|| "{\"events\":[]}".to_string()),
        }
    }

    fn get(addr: std::net::SocketAddr, path: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn routes_respond_and_unknown_is_404() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        listener.set_nonblocking(true).unwrap();
        let task =
            std::sync::Arc::new(parking_lot::Mutex::new(ScrapeTask::new(listener, routes(), None)));
        let t2 = task.clone();
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let s2 = stop.clone();
        // Drive the accept loop by hand (no pool needed for a unit test).
        let driver = std::thread::spawn(move || {
            while !s2.load(std::sync::atomic::Ordering::Acquire) {
                let mut guard = t2.lock();
                let t = &mut *guard;
                if let Some(s) = &t.source {
                    s.take_readiness();
                }
                while let Ok((stream, _)) = t.listener.accept() {
                    t.serve(stream);
                }
                drop(guard);
                std::thread::sleep(Duration::from_millis(2));
            }
        });
        let metrics = get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK"));
        assert!(metrics.contains("# TYPE t counter"));
        let traces = get(addr, "/traces");
        assert!(traces.contains("application/json"));
        assert!(traces.contains("traceEvents"));
        let miss = get(addr, "/nope");
        assert!(miss.starts_with("HTTP/1.1 404"));
        stop.store(true, std::sync::atomic::Ordering::Release);
        driver.join().unwrap();
    }
}
