//! Deployment: placement, resources, queues, channels, processor tasks,
//! and the IO tier (pumps, flush tasks, monitor, sampler).

use super::pumps::{
    BarrierTimerTask, FlushTask, MonitorTask, ProgressSignal, PumpGauge, SamplerTask,
    SourceBarrier, SourcePump,
};
use super::scrape::{ScrapeRoutes, ScrapeTask};
use super::{HaRuntime, JobHandle, SubmitError};
use crate::channel::{ChannelEndpoint, ChannelId};
use crate::checkpoint::{
    CheckpointCoordinator, CheckpointSnapshot, FileSnapshotStore, InstanceState,
    MemorySnapshotStore, SnapshotStore, FINAL_BARRIER,
};
use crate::codec::PacketCodec;
use crate::config::{PlacementStrategy, RuntimeConfig, SnapshotStoreKind, TransportMode};
use crate::dead_letter::{DeadLetter, DeadLetterQueue};
use crate::graph::{Factory, Graph, OperatorKind};
use crate::metrics::{MetricsRegistry, OperatorCounters};
use crate::operator::{OperatorContext, OutgoingLink, StreamProcessor};
use crate::packet::StreamPacket;
use crate::telemetry::{QueueGauge, TelemetryHub, TelemetrySample, TelemetrySnapshot};
use neptune_granules::{
    ComputationalTask, IoPool, IoTaskHandle, NetWaker, OperatorSupervisor, Reactor, Resource,
    ScheduleSpec, SupervisedOutcome, SupervisorPolicy, TaskContext, TaskOutcome,
};
use neptune_ha::{DetectorConfig, FailureDetector, ReconnectPolicy, RecoveryStats};
use neptune_link::{Link, LinkBuilder};
use neptune_net::buffer::OutputBuffer;
use neptune_net::flush::FlushPolicy;
use neptune_net::frame::{ControlKind, Frame};
use neptune_net::pool::BytesPool;
use neptune_net::tcp::{TcpReceiver, TcpSender};
use neptune_net::tcp_reactor::NetDriver;
use neptune_net::watermark::{ShedConfig, WatermarkConfig, WatermarkQueue};
use neptune_telemetry::{
    EventKind, FlightRecorder, OperatorTelemetry, SampleRing, Span, SpanRing, STAGE_EXECUTION,
    STAGE_SCHEDULE, STAGE_SINK, STAGE_TRANSPORT,
};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// IO threads when [`RuntimeConfig::io_threads`] is `None`: a quarter of
/// the host cores, clamped to [1, 4]. The tier is event-driven, so even 1
/// thread keeps hundreds of idle sources live; more helps only when many
/// pumps are simultaneously runnable.
fn auto_io_threads() -> usize {
    std::thread::available_parallelism().map(|n| (n.get() / 4).clamp(1, 4)).unwrap_or(2)
}

/// Per-instance failure-containment state: the supervisor (panic catch,
/// retry, breaker), the deterministic retry backoff, and the job's shared
/// dead-letter queue. Absent when containment is disabled — the hot path
/// then pays nothing for supervision.
pub(super) struct Supervision {
    /// Shared by every instance of the operator, so the breaker and the
    /// containment counters are per-operator as the paper's operator
    /// granularity suggests.
    supervisor: Arc<OperatorSupervisor>,
    backoff: ReconnectPolicy,
    dead_letters: Arc<DeadLetterQueue>,
    /// Per-entry byte budget when capturing a poison frame's payload.
    capture_bytes: usize,
}

/// Barrier-alignment state of one processor instance (ISSUE 10): the
/// receive side of the Chandy–Lamport-style aligned snapshot. A barrier
/// for round N arriving on channel C marks C *aligned*; data arriving on
/// an aligned channel is stashed (it belongs to the post-N epoch) until
/// every input channel has delivered its round-N barrier. At full
/// alignment the operator's state is a consistent cut: everything before
/// the barriers is in it, nothing after.
pub(super) struct Alignment {
    coordinator: Arc<CheckpointCoordinator>,
    /// Raw ids of every inbound channel feeding this instance's queue.
    inputs: Vec<u64>,
    /// Channels sealed by [`FINAL_BARRIER`] — permanently aligned.
    finished: HashSet<u64>,
    /// Round currently aligning; `None` when idle.
    current: Option<u64>,
    /// Channels whose barrier for the current round has arrived.
    aligned: HashSet<u64>,
    /// Data frames stashed from aligned channels while the round waits
    /// for its remaining inputs, in arrival order.
    held: Vec<Frame>,
    /// Newest round completed here; barriers at or below are duplicates.
    completed_through: u64,
    /// FINAL barrier forwarded downstream exactly once.
    final_forwarded: bool,
    /// Snapshot to restore into the processor at initialize; taken once.
    restored: Option<Arc<CheckpointSnapshot>>,
}

/// What checkpoint admission decided about one popped frame.
enum Admit {
    /// A data frame, clear to process now.
    Process(Frame),
    /// A barrier (consumed) or a frame stashed until alignment completes.
    Consumed,
    /// A round completed: process the released stash, in arrival order.
    Release(Vec<Frame>),
}

impl Alignment {
    fn admit(
        &mut self,
        frame: Frame,
        processor: &mut dyn StreamProcessor,
        ctx: &mut OperatorContext,
        expected_seq: &HashMap<u64, u64>,
    ) -> Admit {
        if frame.control == Some(ControlKind::Barrier) {
            let id = frame.base_seq;
            if id == FINAL_BARRIER {
                self.finished.insert(frame.link_id);
                self.aligned.remove(&frame.link_id);
                if self.finished.len() == self.inputs.len() && !self.final_forwarded {
                    self.final_forwarded = true;
                    for ep in ctx.endpoints() {
                        let _ = ep.barrier(FINAL_BARRIER);
                    }
                }
                return self.try_complete(processor, ctx, expected_seq);
            }
            if id <= self.completed_through {
                return Admit::Consumed; // duplicate of a finished round
            }
            match self.current {
                None => {
                    self.current = Some(id);
                    self.aligned.clear();
                }
                Some(cur) if id < cur => return Admit::Consumed,
                Some(cur) if id > cur => {
                    // A newer round overtook one still aligning — the old
                    // round can never complete here. Release its stash (in
                    // order) and restart alignment on the new round; the
                    // coordinator abandons the stale round when the newer
                    // cut completes.
                    let released = std::mem::take(&mut self.held);
                    self.current = Some(id);
                    self.aligned.clear();
                    self.aligned.insert(frame.link_id);
                    return match self.try_complete(processor, ctx, expected_seq) {
                        Admit::Release(more) => {
                            let mut all = released;
                            all.extend(more);
                            Admit::Release(all)
                        }
                        _ => Admit::Release(released),
                    };
                }
                Some(_) => {}
            }
            self.aligned.insert(frame.link_id);
            return self.try_complete(processor, ctx, expected_seq);
        }
        if self.current.is_some() && self.aligned.contains(&frame.link_id) {
            self.held.push(frame);
            return Admit::Consumed;
        }
        Admit::Process(frame)
    }

    /// Complete the in-flight round if every input is aligned or sealed:
    /// snapshot the operator state *before* replaying the stash (the
    /// stash is post-barrier data), forward the barrier downstream behind
    /// the flushed pre-barrier output, report the cut, release the stash.
    fn try_complete(
        &mut self,
        processor: &mut dyn StreamProcessor,
        ctx: &mut OperatorContext,
        expected_seq: &HashMap<u64, u64>,
    ) -> Admit {
        let Some(id) = self.current else { return Admit::Consumed };
        let covered =
            self.inputs.iter().all(|c| self.aligned.contains(c) || self.finished.contains(c));
        if !covered {
            return Admit::Consumed;
        }
        let mut states = Vec::new();
        if let Some(state) = processor.state() {
            states.push(InstanceState::capture(ctx.operator(), ctx.instance() as u32, state));
        }
        let cursors: Vec<(u64, u64)> = expected_seq.iter().map(|(&l, &c)| (l, c)).collect();
        for ep in ctx.endpoints() {
            let _ = ep.barrier(id);
        }
        self.coordinator.report(id, crate::now_micros(), states, cursors);
        self.completed_through = id;
        self.current = None;
        self.aligned.clear();
        Admit::Release(std::mem::take(&mut self.held))
    }
}

/// The granules task wrapping one processor instance.
pub(super) struct ProcessorTask {
    processor: Box<dyn crate::operator::StreamProcessor>,
    ctx: OperatorContext,
    queue: Arc<WatermarkQueue<Frame>>,
    codec: PacketCodec,
    /// Workhorse packet reused for every decode (object reuse, §III-B3).
    workhorse: StreamPacket,
    /// Reused frame staging vector.
    staged: Vec<Frame>,
    batch_max: usize,
    counters: Arc<OperatorCounters>,
    /// Expected next sequence number per channel (exactly-once check).
    expected_seq: HashMap<u64, u64>,
    /// Job-wide batch-buffer pool; processed frames return their storage
    /// here so upstream output buffers and TCP readers can reuse it
    /// (object reuse, §III-B3).
    pool: Arc<BytesPool>,
    /// Latency recorder shared by all instances of this operator; `None`
    /// keeps the hot path free of clock reads when telemetry is off.
    telemetry: Option<Arc<OperatorTelemetry>>,
    /// Failure containment (supervision + quarantine); `None` when off.
    supervision: Option<Supervision>,
    /// Span ring + this operator's trace track when causal tracing is on
    /// (ISSUE 7); `None` keeps the hot path free of trace branches.
    spans: Option<(Arc<SpanRing>, u16)>,
    /// True when this instance has no outgoing links: its execution span
    /// is the trace's terminal `sink` stage.
    is_sink: bool,
    /// Flight recorder for quarantine/panic events; `None` when disabled.
    recorder: Option<Arc<FlightRecorder>>,
    /// Dump the recorder to stderr only on the *first* quarantine this
    /// instance sees; later ones just record events.
    recorder_dumped: bool,
    /// Barrier alignment + restore plumbing (ISSUE 10); `None` when
    /// checkpointing is disabled — the drain loop is then a straight
    /// pass-through, bit-identical to a pre-checkpoint build.
    alignment: Option<Alignment>,
}

impl ProcessorTask {
    fn drain_queue(&mut self) -> TaskOutcome {
        loop {
            self.staged.clear();
            if self.queue.pop_batch(self.batch_max, &mut self.staged) == 0 {
                return TaskOutcome::Continue;
            }
            // Per-message ablation (Table I): one frame per scheduled
            // execution — the drain loop is what batched scheduling adds.
            let drain_fully = self.batch_max > 1;
            // `staged` is taken out of self so admitted frames can flow
            // through `&mut self` methods; its storage is put back (and
            // reused) after the drain.
            let mut staged = std::mem::take(&mut self.staged);
            for frame in staged.drain(..) {
                match self.admit(frame) {
                    Admit::Process(frame) => self.process_frame(frame),
                    Admit::Consumed => {}
                    Admit::Release(held) => {
                        for frame in held {
                            self.process_frame(frame);
                        }
                    }
                }
            }
            self.staged = staged;
            if !drain_fully {
                // End this scheduled execution after one frame; ask for a
                // fresh one if the queue still holds frames whose signals
                // were coalesced into this run.
                return if self.queue.is_empty() {
                    TaskOutcome::Continue
                } else {
                    TaskOutcome::Reschedule
                };
            }
        }
    }

    /// Route one popped frame through checkpoint admission: barriers are
    /// consumed (never counted as data frames, so the settle invariant is
    /// untouched), data on already-aligned channels is stashed until the
    /// round completes, everything else processes immediately. With
    /// checkpointing off this is a straight pass-through.
    fn admit(&mut self, frame: Frame) -> Admit {
        // Control frames are never data. Whatever the checkpoint config,
        // they must not reach the sequence check, the supervisor, or the
        // dead-letter queue — a cluster peer with checkpointing enabled
        // may still emit barriers at a node that has it disabled.
        if let Some(kind) = frame.control {
            if self.alignment.is_none() || kind != ControlKind::Barrier {
                return Admit::Consumed;
            }
        }
        match &mut self.alignment {
            None => Admit::Process(frame),
            Some(align) => {
                align.admit(frame, self.processor.as_mut(), &mut self.ctx, &self.expected_seq)
            }
        }
    }

    /// Process one admitted data frame: sequence check, telemetry, decode,
    /// execute (supervised or bare), recycle.
    fn process_frame(&mut self, frame: Frame) {
        let expected = self.expected_seq.entry(frame.link_id).or_insert(0);
        if frame.base_seq != *expected {
            self.counters.seq_violations.fetch_add(1, Ordering::Relaxed);
        }
        *expected = frame.base_seq + frame.messages.len() as u64;
        self.counters.frames_in.fetch_add(1, Ordering::Relaxed);
        // Stage telemetry: schedule delay is how long the frame sat
        // on the inbound queue; transport is dispatch→arrival,
        // recovered by subtracting the queue wait from the
        // sender-stamped total in-flight time.
        // A traced frame pays the clock read even with telemetry
        // off — that cost is confined to the 1-in-N sampled path.
        let traced = frame.trace.filter(|_| self.spans.is_some());
        let now =
            if self.telemetry.is_some() || traced.is_some() { crate::now_micros() } else { 0 };
        if let Some(t) = &self.telemetry {
            let schedule_us = match frame.received_at {
                Some(received) => {
                    let us = received.elapsed().as_micros() as u64;
                    t.schedule_delay.record(us);
                    us
                }
                None => 0,
            };
            if frame.sent_at_micros > 0 {
                let in_flight = now.saturating_sub(frame.sent_at_micros);
                t.transport.record(in_flight.saturating_sub(schedule_us));
            }
        }
        if let Some(id) = traced {
            let (ring, track) = self.spans.as_ref().expect("traced implies ring");
            // Schedule span: how long the frame sat on the inbound
            // queue; transport span: sender dispatch → arrival here.
            if let Some(received) = frame.received_at {
                let wait = received.elapsed().as_micros() as u64;
                let arrival = now.saturating_sub(wait);
                ring.record(Span {
                    trace_id: id,
                    start_micros: arrival,
                    dur_micros: wait,
                    stage: STAGE_SCHEDULE,
                    track: *track,
                });
                if frame.sent_at_micros > 0 {
                    ring.record(Span {
                        trace_id: id,
                        start_micros: frame.sent_at_micros,
                        dur_micros: arrival.saturating_sub(frame.sent_at_micros),
                        stage: STAGE_TRANSPORT,
                        track: *track,
                    });
                }
            }
            // Causal propagation: the next flush on each outgoing
            // endpoint carries this id downstream.
            for link in self.ctx.endpoints() {
                link.tag_trace(id);
            }
        }
        let span_start = traced.map(|_| Instant::now());
        match &self.supervision {
            None => {
                for message in &frame.messages {
                    match self.codec.decode_into(message, &mut self.workhorse) {
                        Ok(()) => {
                            self.counters.packets_in.fetch_add(1, Ordering::Relaxed);
                            if let Some(t) = &self.telemetry {
                                if let Some(ts) = self.workhorse.source_timestamp() {
                                    t.e2e.record(now.saturating_sub(ts));
                                }
                            }
                            self.processor.process(&self.workhorse, &mut self.ctx);
                        }
                        Err(_) => {
                            self.counters.seq_violations.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }
            Some(sup) => {
                // The frame is the poison unit: the whole message
                // loop runs under the supervisor so a panic anywhere
                // in decode or process is caught here. A retry
                // re-runs the full frame — messages processed before
                // the panic are re-emitted (at-least-once within the
                // retry window); counters are applied only on
                // success so retries do not inflate them.
                let processor = &mut self.processor;
                let ctx = &mut self.ctx;
                let workhorse = &mut self.workhorse;
                let codec = &mut self.codec;
                let telemetry = &self.telemetry;
                let frame_ref = &frame;
                let outcome = sup.supervisor.run_batch(
                    || {
                        let mut decoded = 0u64;
                        let mut bad = 0u64;
                        for message in &frame_ref.messages {
                            match codec.decode_into(message, workhorse) {
                                Ok(()) => {
                                    decoded += 1;
                                    if let Some(t) = telemetry {
                                        if let Some(ts) = workhorse.source_timestamp() {
                                            t.e2e.record(now.saturating_sub(ts));
                                        }
                                    }
                                    processor.process(workhorse, ctx);
                                }
                                Err(_) => bad += 1,
                            }
                        }
                        (decoded, bad)
                    },
                    |attempt| sup.backoff.delay_for(attempt),
                );
                match outcome {
                    SupervisedOutcome::Completed((decoded, bad)) => {
                        self.counters.packets_in.fetch_add(decoded, Ordering::Relaxed);
                        if bad > 0 {
                            self.counters.seq_violations.fetch_add(bad, Ordering::Relaxed);
                        }
                    }
                    SupervisedOutcome::Rejected => {
                        // Breaker open: drain-and-drop keeps the
                        // queue moving so the upstream gate reopens.
                    }
                    SupervisedOutcome::Quarantined { panic_msg, attempts, .. } => {
                        if let Some(rec) = &self.recorder {
                            rec.record(EventKind::Panic, frame.link_id, attempts as u64);
                            rec.record(EventKind::DeadLetter, frame.link_id, frame.base_seq);
                            if !self.recorder_dumped {
                                self.recorder_dumped = true;
                                eprintln!(
                                    "neptune[{}:{}]: frame quarantined; flight recorder:\n{}",
                                    self.ctx.operator(),
                                    self.ctx.instance(),
                                    rec.render()
                                );
                            }
                        }
                        let mut bytes = Vec::new();
                        let mut original_len = 0usize;
                        for message in &frame.messages {
                            original_len += message.len();
                            if bytes.len() < sup.capture_bytes {
                                let take = (sup.capture_bytes - bytes.len()).min(message.len());
                                bytes.extend_from_slice(&message[..take]);
                            }
                        }
                        sup.dead_letters.push(DeadLetter {
                            operator: self.ctx.operator().to_string(),
                            instance: self.ctx.instance(),
                            link_id: frame.link_id,
                            base_seq: frame.base_seq,
                            messages: frame.messages.len() as u32,
                            panic_msg,
                            attempts,
                            bytes,
                            original_len,
                        });
                    }
                }
                // The per-operator supervisor (shared by all
                // instances) is the source of truth for containment
                // counters; mirror its monotonic totals into the
                // operator counters after every supervised frame.
                let stats = sup.supervisor.stats();
                self.counters.panics.store(stats.panics, Ordering::Relaxed);
                self.counters.retries.store(stats.retries, Ordering::Relaxed);
                self.counters.quarantined.store(stats.quarantined, Ordering::Relaxed);
                self.counters.breaker_trips.store(stats.breaker_trips, Ordering::Relaxed);
                self.counters.breaker_dropped.store(stats.breaker_rejected, Ordering::Relaxed);
            }
        }
        if let Some((t0, id)) = span_start.zip(traced) {
            let (ring, track) = self.spans.as_ref().expect("traced implies ring");
            ring.record(Span {
                trace_id: id,
                start_micros: now,
                dur_micros: t0.elapsed().as_micros() as u64,
                stage: if self.is_sink { STAGE_SINK } else { STAGE_EXECUTION },
                track: *track,
            });
        }
        // Batch storage goes back to the pool once every message in
        // it has been decoded; the recycle is a no-op while other
        // frames still share the buffer.
        self.pool.recycle(frame.messages.into_batch());
    }
}

impl ComputationalTask for ProcessorTask {
    fn initialize(&mut self, _gctx: &TaskContext) {
        self.processor.open(&mut self.ctx);
        // Stateful recovery: overwrite open()'s defaults with the blob
        // captured at the last completed cut, so the instance resumes
        // exactly where the checkpoint left it.
        if let Some(align) = &mut self.alignment {
            if let Some(snap) = align.restored.take() {
                if let Some(state) = self.processor.state() {
                    if let Some(saved) =
                        snap.state_for(self.ctx.operator(), self.ctx.instance() as u32)
                    {
                        let _ = saved.restore_into(state);
                    }
                }
            }
        }
    }

    fn execute(&mut self, _gctx: &TaskContext) -> TaskOutcome {
        self.counters.executions.fetch_add(1, Ordering::Relaxed);
        match self.telemetry.clone() {
            None => self.drain_queue(),
            Some(t) => {
                let started = Instant::now();
                let outcome = self.drain_queue();
                t.execution.record(started.elapsed().as_micros() as u64);
                outcome
            }
        }
    }

    fn terminate(&mut self, _gctx: &TaskContext) {
        self.processor.close(&mut self.ctx);
        // close() may have emitted; push those bytes out.
        let _ = self.ctx.force_flush_all();
    }
}

pub(super) fn deploy(graph: Graph, config: RuntimeConfig) -> Result<JobHandle, SubmitError> {
    let registry = MetricsRegistry::new();
    let telemetry_hub = config.telemetry.enabled.then(|| Arc::new(TelemetryHub::new()));
    // ---- Observability plane (ISSUE 7): causal span ring + flight
    // recorder. Both are `None`-gated so a disabled job pays nothing. ----
    let spans = (config.telemetry.trace_sample_every > 0).then(|| {
        Arc::new(SpanRing::new(
            config.telemetry.trace_capacity,
            config.telemetry.trace_sample_every,
        ))
    });
    let recorder = (config.telemetry.recorder_capacity > 0)
        .then(|| Arc::new(FlightRecorder::new(config.telemetry.recorder_capacity)));
    let stop_flag = Arc::new(AtomicBool::new(false));
    // One batch-buffer pool per job: output buffers check storage out,
    // transports hand it to receiving tasks by refcount, and processed
    // frames recycle it (§III-B3 object reuse, now across threads).
    let pool = Arc::new(BytesPool::default());

    // ---- Failure containment: dead-letter queue + shed config. ----
    // Shedding is independent of supervision: `ShedPolicy::None` (the
    // default) keeps every queue losslessly backpressured per §III-B4.
    let shed = ShedConfig::new(config.containment.shed_policy, config.containment.max_stall);
    let dead_letters = config
        .containment
        .enabled
        .then(|| Arc::new(DeadLetterQueue::new(config.containment.dead_letter_capacity)));

    // ---- Checkpointing (ISSUE 10): snapshot store, coordinator, and the
    // restore source for stateful recovery. Everything hangs off the
    // default-off flag, so a disabled job deploys bit-identically. ----
    let checkpoint = if config.checkpoint.enabled {
        let store: Box<dyn SnapshotStore> = match &config.checkpoint.store {
            SnapshotStoreKind::Memory => {
                Box::new(MemorySnapshotStore::new(config.checkpoint.retain))
            }
            SnapshotStoreKind::File(dir) => {
                Box::new(FileSnapshotStore::new(dir.clone(), config.checkpoint.retain))
            }
        };
        let restored = store
            .latest()
            .map_err(|e| SubmitError::Io(format!("checkpoint restore: {e}")))?
            .map(Arc::new);
        let participants: usize = graph.operators().iter().map(|o| o.parallelism).sum();
        let coordinator = Arc::new(CheckpointCoordinator::new(store, participants));
        Some((coordinator, restored, Arc::new(AtomicU64::new(0))))
    } else {
        None
    };

    // ---- Placement: strategy-driven assignment of instances. ----
    let n_resources = config.resources;
    // Expand the strategy into a placement cycle: round-robin is the
    // uniform cycle; capacity-weighted repeats each resource index in
    // proportion to its weight, interleaved so heavy resources do not
    // receive long runs of consecutive instances.
    let cycle: Vec<usize> = match &config.placement {
        PlacementStrategy::RoundRobin => (0..n_resources).collect(),
        PlacementStrategy::CapacityWeighted(weights) => {
            let max_w = *weights.iter().max().expect("validated nonempty");
            let mut cycle = Vec::new();
            for round in 0..max_w {
                for (ri, &w) in weights.iter().enumerate() {
                    if round < w {
                        cycle.push(ri);
                    }
                }
            }
            cycle
        }
    };
    let mut placement: HashMap<(usize, usize), usize> = HashMap::new();
    let mut placement_table: Vec<(String, usize, usize)> = Vec::new();
    {
        let mut rr = 0usize;
        for (oi, op) in graph.operators().iter().enumerate() {
            for inst in 0..op.parallelism {
                let resource = cycle[rr % cycle.len()];
                placement.insert((oi, inst), resource);
                placement_table.push((op.name.clone(), inst, resource));
                rr += 1;
            }
        }
    }

    // ---- Resources, pools sized for deadlock freedom. ----
    let mut processor_instances_per_resource = vec![0usize; n_resources];
    for (oi, op) in graph.operators().iter().enumerate() {
        if op.kind() == OperatorKind::Processor {
            for inst in 0..op.parallelism {
                processor_instances_per_resource[placement[&(oi, inst)]] += 1;
            }
        }
    }
    let auto_workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let resources: Vec<Resource> = (0..n_resources)
        .map(|ri| {
            let base = config.worker_threads.unwrap_or(auto_workers);
            let workers = base.max(processor_instances_per_resource[ri]).max(1);
            Resource::builder(format!("{}-res{ri}", graph.name())).workers(workers).build()
        })
        .collect();
    if config.ha.enabled {
        for r in &resources {
            r.enable_heartbeat(config.ha.heartbeat_interval);
        }
    }

    // ---- The IO tier: one event-driven pool for every background duty,
    // created before any socket so TCP tasks can land on it. ----
    let io_pool = IoPool::new(graph.name(), config.io_threads.unwrap_or_else(auto_io_threads));

    // ---- The network reactor (readiness-driven TCP, the default). When
    // active, every TCP acceptor/connection/sender runs as an IO-pool task
    // woken by epoll readiness — no per-connection threads. ----
    let net_driver = (config.transport == TransportMode::Tcp && config.net_reactor)
        .then(|| Reactor::new(graph.name()).map_err(|e| SubmitError::Io(e.to_string())))
        .transpose()?
        .map(|r| (NetDriver::new(io_pool.spawner(), r.handle()), r));
    if let Some((_, r)) = &net_driver {
        if let Some(rec) = &recorder {
            r.handle().attach_recorder(rec.clone());
        }
        if let Some(sp) = &spans {
            r.handle().attach_span_ring(sp.clone());
        }
    }

    // ---- Inbound queues (one per processor instance). ----
    let watermark = WatermarkConfig::new(config.watermark_high, config.watermark_low);
    let mut queues_by_instance: HashMap<(usize, usize), Arc<WatermarkQueue<Frame>>> =
        HashMap::new();
    let mut receivers: Vec<TcpReceiver> = Vec::new();
    let mut receiver_addr: HashMap<(usize, usize), std::net::SocketAddr> = HashMap::new();
    let mut receiver_index: HashMap<(usize, usize), usize> = HashMap::new();
    let mut all_queues: Vec<Arc<WatermarkQueue<Frame>>> = Vec::new();

    for (oi, op) in graph.operators().iter().enumerate() {
        if op.kind() != OperatorKind::Processor {
            continue;
        }
        for inst in 0..op.parallelism {
            let my_res = placement[&(oi, inst)];
            // Does any inbound channel cross resources under TCP mode?
            let needs_tcp = config.transport == TransportMode::Tcp
                && graph.in_links(&op.name).iter().any(|&li| {
                    let from = &graph.links()[li].from;
                    let (foi, fop) = graph
                        .operators()
                        .iter()
                        .enumerate()
                        .find(|(_, o)| &o.name == from)
                        .expect("validated");
                    (0..fop.parallelism).any(|si| placement[&(foi, si)] != my_res)
                });
            let queue = if needs_tcp {
                let rx = match &net_driver {
                    Some((driver, _)) => TcpReceiver::bind_reactor_pooled_with_shed(
                        "127.0.0.1:0",
                        watermark,
                        shed,
                        pool.clone(),
                        driver,
                    ),
                    None => TcpReceiver::bind_pooled_with_shed(
                        "127.0.0.1:0",
                        watermark,
                        shed,
                        pool.clone(),
                    ),
                }
                .map_err(|e| SubmitError::Io(e.to_string()))?;
                let q = rx.queue();
                receiver_addr.insert((oi, inst), rx.local_addr());
                receiver_index.insert((oi, inst), receivers.len());
                receivers.push(rx);
                q
            } else {
                Arc::new(WatermarkQueue::with_shed(watermark, shed))
            };
            all_queues.push(queue.clone());
            queues_by_instance.insert((oi, inst), queue);
        }
    }
    if let Some(rec) = &recorder {
        // Gate open/close and shed events, tagged by queue index — the
        // same index the queue gauges export.
        for (i, q) in all_queues.iter().enumerate() {
            q.attach_recorder(rec.clone(), i as u64);
        }
    }

    // ---- Channel endpoints per link x (src_inst, dst_inst). ----
    let op_index: HashMap<&str, usize> =
        graph.operators().iter().enumerate().map(|(i, o)| (o.name.as_str(), i)).collect();
    let mut outgoing: HashMap<(usize, usize), Vec<OutgoingLink>> = HashMap::new();
    let mut all_endpoints: Vec<Arc<ChannelEndpoint>> = Vec::new();
    // Deliver hooks installed after tasks exist: channel -> (oi, inst).
    let mut inproc_links: Vec<(Arc<Link>, (usize, usize))> = Vec::new();

    for (li, link) in graph.links().iter().enumerate() {
        let src_oi = op_index[link.from.as_str()];
        let dst_oi = op_index[link.to.as_str()];
        let src_par = graph.operators()[src_oi].parallelism;
        let dst_par = graph.operators()[dst_oi].parallelism;
        let src_counters = registry.for_operator(&link.from);
        let buffer_bytes = config.effective_buffer_bytes(link.options.buffer_bytes);
        let flush_interval = link.options.flush_interval.unwrap_or(config.flush_interval);
        let compression = link.options.compression.unwrap_or(config.compression);

        for src_inst in 0..src_par {
            let src_res = placement[&(src_oi, src_inst)];
            let mut endpoints = Vec::with_capacity(dst_par);
            for dst_inst in 0..dst_par {
                let dst_res = placement[&(dst_oi, dst_inst)];
                let channel = ChannelId::new(li as u16, src_inst as u16, dst_inst as u16);
                let use_tcp = config.transport == TransportMode::Tcp && src_res != dst_res;
                // One flush policy per channel, shared between the output
                // buffer (which reads the thresholds) and the built link
                // (which exports them, retunably, for telemetry/QoS).
                let policy = FlushPolicy::new(buffer_bytes, Some(flush_interval));
                let builder = LinkBuilder::new(channel.raw()).flush_policy(policy.clone());
                let built = if use_tcp {
                    let addr = receiver_addr[&(dst_oi, dst_inst)];
                    let sender = match &net_driver {
                        Some((driver, _)) => {
                            TcpSender::connect_reactor(addr, config.io_queue_depth, driver)
                        }
                        None => TcpSender::connect(addr, config.io_queue_depth),
                    }
                    .map_err(|e| SubmitError::Io(e.to_string()))?;
                    builder.tcp(sender, compression.to_compressor()).build()
                } else {
                    let q = queues_by_instance[&(dst_oi, dst_inst)].clone();
                    let l = builder.in_process(q).build();
                    inproc_links.push((l.clone(), (dst_oi, dst_inst)));
                    l
                };
                let ep = Arc::new(ChannelEndpoint::new(
                    channel,
                    OutputBuffer::with_policy(policy, Some(pool.clone())),
                    built,
                    src_counters.clone(),
                    // Buffer-wait latency is attributed to the *sending*
                    // operator: its output buffer is where packets wait.
                    telemetry_hub.as_ref().map(|h| h.for_operator(&link.from)),
                ));
                if let Some(sp) = &spans {
                    // Source-fed endpoints *originate* trace ids (1-in-N of
                    // their packets); downstream endpoints only propagate
                    // ids tagged by their processor.
                    let originate = graph.operators()[src_oi].kind() == OperatorKind::Source;
                    ep.set_tracing(sp.clone(), sp.register_track(&link.from), originate);
                }
                all_endpoints.push(ep.clone());
                endpoints.push(ep);
            }
            outgoing.entry((src_oi, src_inst)).or_default().push(OutgoingLink::new(
                link.to.clone(),
                &link.partitioning,
                endpoints,
            ));
        }
    }

    // ---- Deploy processor tasks. ----
    let batch_max = config.effective_batch_max();
    let mut task_handles: HashMap<(usize, usize), neptune_granules::TaskHandle> = HashMap::new();
    let mut handles_by_operator: HashMap<String, Vec<neptune_granules::TaskHandle>> =
        HashMap::new();
    for (oi, op) in graph.operators().iter().enumerate() {
        let Factory::Processor(factory) = &op.factory else {
            continue;
        };
        let counters = registry.for_operator(&op.name);
        // One supervisor per operator: all instances share its circuit
        // breaker, so a persistently poisonous operator trips once for the
        // whole operator, not once per instance.
        let supervisor = dead_letters.as_ref().map(|_| {
            let s = Arc::new(OperatorSupervisor::new(SupervisorPolicy {
                max_retries: config.containment.max_retries,
                breaker_threshold: config.containment.breaker_threshold,
                cooldown: config.containment.breaker_cooldown,
                required_probes: config.containment.breaker_probes,
            }));
            if let Some(rec) = &recorder {
                // Breaker transitions, tagged by operator index.
                s.breaker().attach_recorder(rec.clone(), oi as u64);
            }
            s
        });
        for inst in 0..op.parallelism {
            let links = outgoing.remove(&(oi, inst)).unwrap_or_default();
            let ctx = OperatorContext::for_channels(
                op.name.clone(),
                inst,
                op.parallelism,
                links,
                counters.clone(),
            );
            let supervision =
                supervisor.as_ref().zip(dead_letters.as_ref()).map(|(s, dlq)| Supervision {
                    supervisor: s.clone(),
                    // Decorrelate retry jitter across instances while
                    // keeping it a pure function of the configured seed.
                    backoff: ReconnectPolicy::fast(
                        config.containment.retry_backoff_seed ^ ((oi as u64) << 32 | inst as u64),
                    ),
                    dead_letters: dlq.clone(),
                    capture_bytes: config.containment.dead_letter_capture_bytes,
                });
            let is_sink = ctx.endpoints().is_empty();
            let task = ProcessorTask {
                processor: factory(),
                ctx,
                queue: queues_by_instance[&(oi, inst)].clone(),
                codec: PacketCodec::new(),
                workhorse: StreamPacket::new(),
                staged: Vec::with_capacity(batch_max),
                batch_max,
                counters: counters.clone(),
                expected_seq: HashMap::new(),
                pool: pool.clone(),
                telemetry: telemetry_hub.as_ref().map(|h| h.for_operator(&op.name)),
                supervision,
                spans: spans.as_ref().map(|sp| (sp.clone(), sp.register_track(&op.name))),
                is_sink,
                recorder: recorder.clone(),
                recorder_dumped: false,
                alignment: checkpoint.as_ref().map(|(coord, restored, _)| {
                    // Every inbound channel feeding this instance's queue:
                    // all source instances of every in-link, keyed by the
                    // same raw channel id the frames carry.
                    let inputs: Vec<u64> = graph
                        .in_links(&op.name)
                        .iter()
                        .flat_map(|&li| {
                            let from = &graph.links()[li].from;
                            let src_par = graph.operators()[op_index[from.as_str()]].parallelism;
                            (0..src_par).map(move |si| {
                                ChannelId::new(li as u16, si as u16, inst as u16).raw()
                            })
                        })
                        .collect();
                    Alignment {
                        coordinator: coord.clone(),
                        inputs,
                        finished: HashSet::new(),
                        current: None,
                        aligned: HashSet::new(),
                        held: Vec::new(),
                        completed_through: 0,
                        final_forwarded: false,
                        restored: restored.clone(),
                    }
                }),
            };
            let resource = &resources[placement[&(oi, inst)]];
            // Batched scheduling lets a slot drain bursts on one worker
            // stint; the per-message ablation forces a fresh scheduler
            // crossing (pool handoff) per execution, like the paper's
            // individual-message mode.
            let spec = if config.batched_scheduling {
                ScheduleSpec::data_driven()
            } else {
                ScheduleSpec::data_driven().with_max_consecutive_runs(1)
            };
            let handle =
                resource.deploy(task, spec).map_err(|e| SubmitError::Config(e.to_string()))?;
            task_handles.insert((oi, inst), handle.clone());
            handles_by_operator.entry(op.name.clone()).or_default().push(handle);
        }
    }

    // ---- Wire delivery notifications to task signals. ----
    for (l, dst) in inproc_links {
        let handle = task_handles[&dst].clone();
        l.on_deliver(move || handle.signal());
    }
    for ((oi, inst), ri) in &receiver_index {
        let handle = task_handles[&(*oi, *inst)].clone();
        receivers[*ri].on_deliver(move || handle.signal());
    }

    // Per-endpoint flush tasks, wired *before* pumps so no pump can emit
    // ahead of its endpoint's waker. Spawn parked → install waker → kick
    // once if data already arrived (processor open() may have emitted).
    for ep in &all_endpoints {
        let handle =
            io_pool.spawn_parked(FlushTask { endpoint: ep.clone(), stop: stop_flag.clone() });
        let waker = handle.clone();
        ep.set_flush_waker(move || {
            waker.wake();
        });
        if !ep.is_empty() {
            handle.wake();
        }
    }

    // ---- Source pumps: cooperatively scheduled IO tasks. ----
    let pump_gauge = Arc::new(PumpGauge::new());
    let progress = Arc::new(ProgressSignal::new());
    let mut pump_handles: Vec<IoTaskHandle> = Vec::new();
    for (oi, op) in graph.operators().iter().enumerate() {
        let Factory::Source(factory) = &op.factory else {
            continue;
        };
        let counters = registry.for_operator(&op.name);
        for inst in 0..op.parallelism {
            let links = outgoing.remove(&(oi, inst)).unwrap_or_default();
            let ctx = OperatorContext::for_channels(
                op.name.clone(),
                inst,
                op.parallelism,
                links,
                counters.clone(),
            );
            // Downstream in-process gates this pump must respect, deduped
            // (several endpoints can share one destination queue).
            let mut gates: Vec<Arc<WatermarkQueue<Frame>>> = Vec::new();
            for ep in ctx.endpoints() {
                if let Some(q) = ep.inproc_queue() {
                    if !gates.iter().any(|g| Arc::ptr_eq(g, q)) {
                        gates.push(q.clone());
                    }
                }
            }
            pump_gauge.inc();
            let pump = SourcePump {
                source: factory(),
                ctx,
                stop: stop_flag.clone(),
                gauge: pump_gauge.clone(),
                progress: progress.clone(),
                gates: gates.clone(),
                idle_backoff: super::pumps::MIN_IDLE_BACKOFF,
                opened: false,
                closed: false,
                spans: spans.as_ref().map(|sp| (sp.clone(), sp.register_track(&op.name))),
                stints: 0,
                checkpoint: checkpoint.as_ref().map(|(coord, restored, requested)| SourceBarrier {
                    coordinator: coord.clone(),
                    requested: requested.clone(),
                    emitted: 0,
                    restored: restored.clone(),
                }),
            };
            // Spawn parked, install the gate listeners that reference the
            // handle, then kick the first run — so a gate release can never
            // fall into a window where no listener exists (lost wake).
            let handle = io_pool.spawn_parked(pump);
            for q in &gates {
                let waker = handle.clone();
                q.add_gate_listener(move || {
                    waker.wake();
                });
            }
            handle.wake();
            pump_handles.push(handle);
        }
    }

    // ---- Barrier timer: opens a checkpoint round every interval and
    // wakes every pump so parked sources serve the round promptly. ----
    if let Some((coord, _, requested)) = &checkpoint {
        io_pool.spawn_periodic(
            config.checkpoint.interval,
            BarrierTimerTask {
                coordinator: coord.clone(),
                requested: requested.clone(),
                pumps: pump_handles.clone(),
            },
        );
    }

    // Topological order of processor handles for close-time draining.
    let processor_handles: Vec<(String, Vec<neptune_granules::TaskHandle>)> = graph
        .topological_order()
        .into_iter()
        .filter_map(|name| handles_by_operator.remove(name).map(|hs| (name.to_string(), hs)))
        .collect();

    // ---- Telemetry sampler: periodic timer task (§IV, Fig. 4). ----
    let series = telemetry_hub.as_ref().map(|_| {
        let ring = Arc::new(SampleRing::new(config.telemetry.series_capacity));
        let registry = registry.clone();
        let pool = pool.clone();
        let queues = all_queues.clone();
        let sample = Box::new(move || {
            let mut metrics = registry.snapshot();
            metrics.buffer_pool = pool.stats();
            TelemetrySample {
                metrics,
                queues: queues.iter().map(|q| QueueGauge::observe(q)).collect(),
            }
        });
        io_pool.spawn_periodic(
            config.telemetry.sample_interval,
            SamplerTask { ring: ring.clone(), sample },
        );
        ring
    });

    // ---- Fault tolerance: heartbeat monitor as a periodic task. ----
    let ha = if config.ha.enabled {
        let stats = Arc::new(RecoveryStats::new());
        let detector = Arc::new(FailureDetector::new(
            DetectorConfig::new(config.ha.heartbeat_interval, config.ha.failure_timeout),
            stats.clone(),
        ));
        if let Some(rec) = &recorder {
            // Suspect/dead/alive verdicts land in the flight recorder.
            detector.attach_recorder(rec.clone());
        }
        // Restart-nudge targets: every task handle on each resource. A
        // dead declaration forces those tasks to run again, resuming from
        // the inbound queues — the replay point, since frames not yet
        // consumed are still sitting there.
        let mut handles_by_resource: HashMap<String, Vec<neptune_granules::TaskHandle>> =
            HashMap::new();
        for ((oi, inst), handle) in &task_handles {
            let name = resources[placement[&(*oi, *inst)]].name().to_string();
            handles_by_resource.entry(name).or_default().push(handle.clone());
        }
        let probes: Vec<_> =
            resources.iter().map(|r| (r.name().to_string(), r.heartbeat_probe())).collect();
        let tick = (config.ha.heartbeat_interval / 2).max(Duration::from_micros(500));
        let last = vec![0u64; probes.len()];
        io_pool.spawn_periodic(
            tick,
            MonitorTask {
                detector: detector.clone(),
                probes,
                last,
                handles_by_resource,
                primed: false,
            },
        );
        Some(HaRuntime { stats, detector })
    } else {
        None
    };

    // ---- Live scrape endpoint: /metrics · /traces · /events served by
    // one IO-tier task (ISSUE 7). Bound eagerly so a bad address fails
    // the submit, not the first scrape. ----
    let scrape_addr = match &config.telemetry.scrape_addr {
        None => None,
        Some(addr) => {
            let listener = std::net::TcpListener::bind(addr.as_str())
                .map_err(|e| SubmitError::Io(format!("scrape bind {addr}: {e}")))?;
            listener.set_nonblocking(true).map_err(|e| SubmitError::Io(e.to_string()))?;
            let bound = listener.local_addr().map_err(|e| SubmitError::Io(e.to_string()))?;
            let routes = {
                let graph_name = graph.name().to_string();
                let registry = registry.clone();
                let pool = pool.clone();
                let queues = all_queues.clone();
                let hub = telemetry_hub.clone();
                let series = series.clone();
                let recovery = ha.as_ref().map(|h| h.stats.clone());
                let dlq = dead_letters.clone();
                let spans_m = spans.clone();
                let recorder_m = recorder.clone();
                let endpoints_m = all_endpoints.clone();
                let checkpoints_m = checkpoint.as_ref().map(|(c, _, _)| c.clone());
                let metrics = Box::new(move || {
                    // Rebuild the JobHandle::metrics fold from the shared
                    // state the closure can own. IO-pool/worker gauges are
                    // not cloneable into the closure; every counter that a
                    // dashboard alerts on is.
                    let mut metrics = registry.snapshot();
                    metrics.buffer_pool = pool.stats();
                    for q in &queues {
                        metrics.containment.shed_total += q.shed_total();
                        metrics.containment.shed_bytes += q.shed_bytes();
                    }
                    if let Some(d) = &dlq {
                        metrics.containment.dead_letters = d.len() as u64;
                        metrics.containment.dead_letters_evicted = d.evicted();
                    }
                    if let Some(s) = &series {
                        metrics.thread_model.sampler_dropped = s.dropped();
                    }
                    if let Some(sp) = &spans_m {
                        metrics.thread_model.trace_spans = sp.recorded();
                        metrics.thread_model.trace_dropped = sp.dropped();
                    }
                    if let Some(r) = &recorder_m {
                        metrics.thread_model.recorder_events = r.events();
                        metrics.thread_model.recorder_dropped = r.dropped();
                    }
                    TelemetrySnapshot {
                        graph_name: graph_name.clone(),
                        operators: hub.as_ref().map(|h| h.snapshot()).unwrap_or_default(),
                        metrics,
                        queues: queues.iter().map(|q| QueueGauge::observe(q)).collect(),
                        series: series.as_ref().map(|r| r.series()).unwrap_or_default(),
                        links: endpoints_m.iter().map(|e| e.link().stats_snapshot()).collect(),
                        recovery: recovery.as_ref().map(|s| s.snapshot()),
                        dead_letters: dlq.as_ref().map(|d| d.snapshot()).unwrap_or_default(),
                        checkpoints: checkpoints_m.as_ref().map(|c| c.stats(crate::now_micros())),
                    }
                    .render_prometheus()
                });
                let spans_t = spans.clone();
                let traces = Box::new(move || {
                    spans_t.as_ref().map(|s| s.to_chrome_trace()).unwrap_or_else(|| {
                        "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}".to_string()
                    })
                });
                let recorder_t = recorder.clone();
                let events = Box::new(move || {
                    recorder_t.as_ref().map(|r| r.to_json()).unwrap_or_else(|| {
                        "{\"events\":[],\"recorded\":0,\"dropped\":0}".to_string()
                    })
                });
                ScrapeRoutes { metrics, traces, events }
            };
            match &net_driver {
                Some((_, r)) => {
                    use std::os::fd::AsRawFd;
                    let waker = NetWaker::new();
                    let source = r
                        .handle()
                        .register(listener.as_raw_fd(), waker.clone())
                        .map_err(|e| SubmitError::Io(e.to_string()))?;
                    let handle =
                        io_pool.spawn_parked(ScrapeTask::new(listener, routes, Some(source)));
                    waker.set(handle.clone());
                    handle.wake();
                }
                None => {
                    io_pool.spawn(ScrapeTask::new(listener, routes, None));
                }
            }
            Some(bound)
        }
    };

    Ok(JobHandle {
        graph_name: graph.name().to_string(),
        stop_flag,
        pump_gauge,
        pump_handles,
        progress,
        io_pool: Some(io_pool),
        reactor: net_driver.map(|(_, r)| r),
        resources,
        processor_handles,
        queues: all_queues,
        endpoints: all_endpoints,
        receivers: Mutex::new(receivers),
        pool,
        registry,
        stopped: AtomicBool::new(false),
        placement: placement_table,
        telemetry_hub,
        series,
        ha,
        dead_letters,
        spans,
        recorder,
        scrape_addr,
        checkpoints: checkpoint.map(|(c, _, _)| c),
    })
}
