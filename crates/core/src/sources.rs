//! Built-in stream-source adapters.
//!
//! §III-A2 of the paper: *"Typical implementations of stream sources may
//! read data from message brokers and message queues. A NEPTUNE stream
//! source can ingest streams using a pull-based approach from an IoT
//! gateway as outlined in IoT reference architectures."*
//!
//! * [`QueueSource`] — pulls packets from a shared
//!   [`QueueDataset`](neptune_granules::QueueDataset), the Granules
//!   dataset abstraction; external gateway threads push into the queue
//!   and the source drains it into the graph. This is the
//!   broker/gateway-ingestion shape.
//! * [`IteratorSource`] — adapts any `Iterator<Item = StreamPacket>`
//!   (replays, files, generators).
//! * [`RateLimitedSource`] — wraps another source with a token-bucket
//!   emission cap, for controlled-rate experiments.

use crate::operator::{OperatorContext, SourceStatus, StreamSource};
use crate::packet::StreamPacket;
use neptune_granules::QueueDataset;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Pull-based ingestion from a shared gateway queue.
///
/// The queue is a bounded [`QueueDataset`]; producers that outrun the
/// graph see `Err(packet)` from `push` and can apply their own policy
/// (retry, drop at the edge), while the graph side never loses a packet
/// that made it into the queue.
pub struct QueueSource {
    queue: Arc<QueueDataset<StreamPacket>>,
    /// When true, the source exhausts once the queue is empty *and* the
    /// gateway called [`QueueDataset::close`]; when false an empty queue
    /// just reports [`SourceStatus::Idle`].
    finite: bool,
    drained: u64,
}

impl QueueSource {
    /// Endless ingestion: an empty queue means "idle, poll again".
    pub fn new(queue: Arc<QueueDataset<StreamPacket>>) -> Self {
        QueueSource { queue, finite: false, drained: 0 }
    }

    /// Finite ingestion for replay/testing: exhausts when the queue has
    /// been closed and fully drained.
    pub fn finite(queue: Arc<QueueDataset<StreamPacket>>) -> Self {
        QueueSource { queue, finite: true, drained: 0 }
    }

    /// Packets pulled from the queue so far.
    pub fn drained(&self) -> u64 {
        self.drained
    }
}

impl StreamSource for QueueSource {
    fn next(&mut self, ctx: &mut OperatorContext) -> SourceStatus {
        match self.queue.pop() {
            Some(packet) => {
                self.drained += 1;
                match ctx.emit(&packet) {
                    Ok(()) => SourceStatus::Emitted(1),
                    Err(_) => SourceStatus::Exhausted,
                }
            }
            None => {
                if self.finite && self.queue.is_closed() {
                    // The gateway declared end-of-stream and the tail has
                    // been fully drained.
                    SourceStatus::Exhausted
                } else {
                    SourceStatus::Idle
                }
            }
        }
    }
}

/// Adapt any iterator of packets into a source.
pub struct IteratorSource<I: Iterator<Item = StreamPacket> + Send> {
    iter: I,
    emitted: u64,
}

impl<I: Iterator<Item = StreamPacket> + Send> IteratorSource<I> {
    /// Wrap an iterator.
    pub fn new(iter: I) -> Self {
        IteratorSource { iter, emitted: 0 }
    }

    /// Packets emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }
}

impl<I: Iterator<Item = StreamPacket> + Send> StreamSource for IteratorSource<I> {
    fn next(&mut self, ctx: &mut OperatorContext) -> SourceStatus {
        match self.iter.next() {
            Some(packet) => match ctx.emit(&packet) {
                Ok(()) => {
                    self.emitted += 1;
                    SourceStatus::Emitted(1)
                }
                Err(_) => SourceStatus::Exhausted,
            },
            None => SourceStatus::Exhausted,
        }
    }
}

/// Token-bucket rate limiter around another source.
///
/// Used by controlled-rate experiments (e.g. reproducing a sensor's
/// native sampling rate instead of free-running).
pub struct RateLimitedSource<S: StreamSource> {
    inner: S,
    packets_per_sec: f64,
    tokens: f64,
    last_refill: Instant,
    burst: f64,
}

impl<S: StreamSource> RateLimitedSource<S> {
    /// Cap `inner` at `packets_per_sec`, allowing bursts of up to one
    /// flush-timer's worth (capped at 256 tokens).
    pub fn new(inner: S, packets_per_sec: f64) -> Self {
        assert!(packets_per_sec > 0.0, "rate must be positive");
        RateLimitedSource {
            inner,
            packets_per_sec,
            tokens: 1.0,
            last_refill: Instant::now(),
            burst: (packets_per_sec / 100.0).clamp(1.0, 256.0),
        }
    }

    /// The configured rate.
    pub fn rate(&self) -> f64 {
        self.packets_per_sec
    }
}

impl<S: StreamSource> StreamSource for RateLimitedSource<S> {
    fn open(&mut self, ctx: &mut OperatorContext) {
        self.inner.open(ctx);
        self.last_refill = Instant::now();
    }

    fn next(&mut self, ctx: &mut OperatorContext) -> SourceStatus {
        let now = Instant::now();
        self.tokens = (self.tokens
            + now.duration_since(self.last_refill).as_secs_f64() * self.packets_per_sec)
            .min(self.burst);
        self.last_refill = now;
        if self.tokens < 1.0 {
            // Sleep just long enough for the next token; the pump thread's
            // Idle backoff would oversleep at high rates.
            let wait = (1.0 - self.tokens) / self.packets_per_sec;
            std::thread::sleep(Duration::from_secs_f64(wait.min(0.005)));
            return SourceStatus::Idle;
        }
        match self.inner.next(ctx) {
            SourceStatus::Emitted(n) => {
                self.tokens -= n as f64;
                SourceStatus::Emitted(n)
            }
            other => other,
        }
    }

    fn close(&mut self, ctx: &mut OperatorContext) {
        self.inner.close(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::FieldValue;
    use neptune_granules::DatasetId;

    fn packet(n: u64) -> StreamPacket {
        let mut p = StreamPacket::new();
        p.push_field("n", FieldValue::U64(n));
        p
    }

    #[test]
    fn queue_source_pulls_from_gateway_queue() {
        let queue = Arc::new(QueueDataset::new(DatasetId(1), 64));
        for i in 0..5 {
            queue.push(packet(i)).unwrap();
        }
        let mut src = QueueSource::new(queue.clone());
        let mut ctx = OperatorContext::collector("gw");
        let mut emitted = 0;
        for _ in 0..5 {
            match src.next(&mut ctx) {
                SourceStatus::Emitted(n) => emitted += n,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(emitted, 5);
        assert_eq!(src.drained(), 5);
        // Queue empty now: idle, not exhausted (endless mode).
        assert_eq!(src.next(&mut ctx), SourceStatus::Idle);
        // More data arrives later.
        queue.push(packet(99)).unwrap();
        assert_eq!(src.next(&mut ctx), SourceStatus::Emitted(1));
        let collected = ctx.take_collected();
        assert_eq!(collected.len(), 6);
        assert_eq!(collected[5].1.get("n").unwrap().as_u64(), Some(99));
    }

    #[test]
    fn queue_source_backpressures_producers_via_bounded_queue() {
        let queue: Arc<QueueDataset<StreamPacket>> = Arc::new(QueueDataset::new(DatasetId(2), 2));
        queue.push(packet(0)).unwrap();
        queue.push(packet(1)).unwrap();
        // The gateway sees the bounded queue full — edge flow control.
        assert!(queue.push(packet(2)).is_err());
        let mut src = QueueSource::new(queue.clone());
        let mut ctx = OperatorContext::collector("gw");
        src.next(&mut ctx);
        assert!(queue.push(packet(2)).is_ok(), "drained one slot");
    }

    #[test]
    fn finite_queue_source_exhausts_after_close() {
        let queue: Arc<QueueDataset<StreamPacket>> = Arc::new(QueueDataset::new(DatasetId(3), 8));
        queue.push(packet(1)).unwrap();
        queue.push(packet(2)).unwrap();
        use neptune_granules::Dataset;
        queue.close();
        let mut src = QueueSource::finite(queue);
        let mut ctx = OperatorContext::collector("gw");
        // The tail drains first, then exhaustion.
        assert_eq!(src.next(&mut ctx), SourceStatus::Emitted(1));
        assert_eq!(src.next(&mut ctx), SourceStatus::Emitted(1));
        assert_eq!(src.next(&mut ctx), SourceStatus::Exhausted);
    }

    #[test]
    fn iterator_source_replays_everything() {
        let packets: Vec<StreamPacket> = (0..10).map(packet).collect();
        let mut src = IteratorSource::new(packets.into_iter());
        let mut ctx = OperatorContext::collector("replay");
        let mut emitted = 0;
        loop {
            match src.next(&mut ctx) {
                SourceStatus::Emitted(n) => emitted += n,
                SourceStatus::Exhausted => break,
                SourceStatus::Idle => {}
            }
        }
        assert_eq!(emitted, 10);
        assert_eq!(src.emitted(), 10);
        let got = ctx.take_collected();
        for (i, (_, p)) in got.iter().enumerate() {
            assert_eq!(p.get("n").unwrap().as_u64(), Some(i as u64));
        }
    }

    #[test]
    fn rate_limited_source_caps_emission() {
        let packets: Vec<StreamPacket> = (0..10_000).map(packet).collect();
        let mut src = RateLimitedSource::new(IteratorSource::new(packets.into_iter()), 2_000.0);
        assert_eq!(src.rate(), 2_000.0);
        let mut ctx = OperatorContext::collector("paced");
        let t0 = Instant::now();
        let mut emitted = 0u64;
        while t0.elapsed() < Duration::from_millis(250) {
            if let SourceStatus::Emitted(n) = src.next(&mut ctx) {
                emitted += n as u64;
            }
        }
        let rate = emitted as f64 / t0.elapsed().as_secs_f64();
        assert!((1_000.0..3_200.0).contains(&rate), "measured {rate:.0} pkt/s, expected ~2000");
    }

    #[test]
    fn rate_limited_source_passes_through_exhaustion() {
        let packets: Vec<StreamPacket> = (0..3).map(packet).collect();
        let mut src = RateLimitedSource::new(IteratorSource::new(packets.into_iter()), 1e6);
        let mut ctx = OperatorContext::collector("paced");
        let mut emitted = 0;
        loop {
            match src.next(&mut ctx) {
                SourceStatus::Emitted(n) => emitted += n,
                SourceStatus::Exhausted => break,
                SourceStatus::Idle => {}
            }
        }
        assert_eq!(emitted, 3);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        let packets: Vec<StreamPacket> = vec![];
        let _ = RateLimitedSource::new(IteratorSource::new(packets.into_iter()), 0.0);
    }
}
