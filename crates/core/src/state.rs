//! Operator state: the versioned serialize/restore contract behind
//! aligned checkpoints (ROADMAP item 4).
//!
//! PR 3's ack/replay and PR 9's unified link stack make *in-flight
//! frames* exactly-once, but operator-held aggregates (the paper's
//! 24-hour actuation-delay window, §IV-C) still died with the operator.
//! [`OperatorState`] is the missing half: any source or processor that
//! holds state across packets implements it, and the checkpoint
//! subsystem (`crate::checkpoint`) snapshots that state at barrier
//! alignment and hands it back on recovery.
//!
//! The encoding contract is deliberately plain: a little-endian,
//! field-by-field binary layout behind a `(kind, version)` header the
//! store writes for us. No serde, no schema evolution framework — a
//! version bump plus an explicit `restore` arm is how state formats
//! migrate, which keeps snapshots greppable and the dependency graph
//! untouched.

use std::collections::BTreeMap;

/// Why a state blob could not be restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateError {
    /// The blob was written by a version this build cannot read.
    VersionMismatch {
        /// Version this build writes (and the newest it reads).
        supported: u32,
        /// Version found in the snapshot.
        found: u32,
    },
    /// The blob failed structural validation.
    Corrupt(String),
}

impl std::fmt::Display for StateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateError::VersionMismatch { supported, found } => {
                write!(f, "state version {found} not supported (this build reads {supported})")
            }
            StateError::Corrupt(msg) => write!(f, "corrupt state blob: {msg}"),
        }
    }
}

impl std::error::Error for StateError {}

/// Versioned serialize/restore for an operator's in-memory state.
///
/// Implementations must be *deterministic*: the same logical state must
/// always produce the same bytes, because the stateful chaos harness
/// asserts byte-identical aggregates across cut and uncut runs. Iterate
/// ordered containers, never hash maps, when writing.
pub trait OperatorState {
    /// Stable identifier recorded next to the blob (sanity-checked on
    /// restore so a topology edit cannot silently feed one operator
    /// another's state).
    fn state_kind(&self) -> &'static str;

    /// Version this implementation writes. `restore` must accept it and
    /// may accept older ones.
    fn state_version(&self) -> u32 {
        1
    }

    /// Append the serialized state to `out` (little-endian, no header —
    /// kind and version are stored by the snapshot layer).
    fn snapshot_state(&self, out: &mut Vec<u8>);

    /// Replace this state with the decoded contents of `bytes`, written
    /// by `version` of the same kind.
    fn restore_state(&mut self, version: u32, bytes: &[u8]) -> Result<(), StateError>;
}

/// Little-endian field reader used by `restore_state` implementations:
/// bounds-checked, with [`StateError::Corrupt`] on underrun.
pub struct StateReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> StateReader<'a> {
    /// Read from the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        StateReader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StateError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len()).ok_or_else(|| {
            StateError::Corrupt(format!(
                "need {n} bytes at offset {}, blob holds {}",
                self.pos,
                self.bytes.len()
            ))
        })?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Next `u8`.
    pub fn u8(&mut self) -> Result<u8, StateError> {
        Ok(self.take(1)?[0])
    }

    /// Next little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, StateError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("slice len")))
    }

    /// Next little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, StateError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("slice len")))
    }

    /// Next `f64` (little-endian IEEE-754 bits — bit-exact round trip,
    /// NaN payloads and signed zeros included).
    pub fn f64(&mut self) -> Result<f64, StateError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Next length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], StateError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Error unless every byte was consumed — trailing garbage means the
    /// blob and the decoder disagree about the layout.
    pub fn finish(self) -> Result<(), StateError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(StateError::Corrupt(format!(
                "{} trailing bytes after decode",
                self.bytes.len() - self.pos
            )))
        }
    }
}

/// Append a length-prefixed byte string (the writer-side dual of
/// [`StateReader::bytes`]).
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
}

/// A general-purpose keyed state map for user operators: byte keys to
/// byte values, ordered (so snapshots are deterministic), implementing
/// [`OperatorState`] out of the box.
///
/// Operators whose state does not fit a window aggregator — per-device
/// counters, last-seen values, join buffers — park it here and get
/// checkpoint/restore for free.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct KeyedState {
    entries: BTreeMap<Vec<u8>, Vec<u8>>,
}

impl KeyedState {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert or replace the value under `key`; returns the old value.
    pub fn put(&mut self, key: impl Into<Vec<u8>>, value: impl Into<Vec<u8>>) -> Option<Vec<u8>> {
        self.entries.insert(key.into(), value.into())
    }

    /// The value under `key`, if any.
    pub fn get(&self, key: impl AsRef<[u8]>) -> Option<&[u8]> {
        self.entries.get(key.as_ref()).map(Vec::as_slice)
    }

    /// Remove and return the value under `key`.
    pub fn remove(&mut self, key: impl AsRef<[u8]>) -> Option<Vec<u8>> {
        self.entries.remove(key.as_ref())
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the map holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries in key order (the snapshot order).
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], &[u8])> {
        self.entries.iter().map(|(k, v)| (k.as_slice(), v.as_slice()))
    }

    /// Drop every entry.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

impl OperatorState for KeyedState {
    fn state_kind(&self) -> &'static str {
        "keyed-state"
    }

    fn snapshot_state(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.entries.len() as u64).to_le_bytes());
        for (k, v) in &self.entries {
            put_bytes(out, k);
            put_bytes(out, v);
        }
    }

    fn restore_state(&mut self, version: u32, bytes: &[u8]) -> Result<(), StateError> {
        if version != 1 {
            return Err(StateError::VersionMismatch { supported: 1, found: version });
        }
        let mut r = StateReader::new(bytes);
        let n = r.u64()?;
        let mut entries = BTreeMap::new();
        for _ in 0..n {
            let k = r.bytes()?.to_vec();
            let v = r.bytes()?.to_vec();
            entries.insert(k, v);
        }
        r.finish()?;
        self.entries = entries;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyed_state_round_trips() {
        let mut s = KeyedState::new();
        s.put(b"device-7".to_vec(), 42u64.to_le_bytes().to_vec());
        s.put(b"device-3".to_vec(), b"hello".to_vec());
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(b"device-7"), Some(42u64.to_le_bytes().as_slice()));
        let mut blob = Vec::new();
        s.snapshot_state(&mut blob);
        let mut restored = KeyedState::new();
        restored.put(b"stale".to_vec(), b"gone".to_vec());
        restored.restore_state(1, &blob).unwrap();
        assert_eq!(restored, s, "restore replaces, never merges");
    }

    #[test]
    fn keyed_state_snapshot_is_deterministic() {
        // Same entries inserted in different orders → identical bytes.
        let mut a = KeyedState::new();
        a.put(b"x".to_vec(), b"1".to_vec());
        a.put(b"y".to_vec(), b"2".to_vec());
        let mut b = KeyedState::new();
        b.put(b"y".to_vec(), b"2".to_vec());
        b.put(b"x".to_vec(), b"1".to_vec());
        let (mut ba, mut bb) = (Vec::new(), Vec::new());
        a.snapshot_state(&mut ba);
        b.snapshot_state(&mut bb);
        assert_eq!(ba, bb);
    }

    #[test]
    fn keyed_state_rejects_bad_blobs() {
        let mut s = KeyedState::new();
        assert!(matches!(
            s.restore_state(9, &[]),
            Err(StateError::VersionMismatch { supported: 1, found: 9 })
        ));
        // Truncated count.
        assert!(matches!(s.restore_state(1, &[1, 2, 3]), Err(StateError::Corrupt(_))));
        // Count promises an entry the blob does not hold.
        assert!(matches!(s.restore_state(1, &1u64.to_le_bytes()), Err(StateError::Corrupt(_))));
        // Trailing garbage after a clean decode.
        let mut blob = Vec::new();
        KeyedState::new().snapshot_state(&mut blob);
        blob.push(0xFF);
        assert!(matches!(s.restore_state(1, &blob), Err(StateError::Corrupt(_))));
    }

    #[test]
    fn reader_primitives_round_trip() {
        let mut out = Vec::new();
        out.push(7u8);
        out.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
        out.extend_from_slice(&u64::MAX.to_le_bytes());
        out.extend_from_slice(&(-0.0f64).to_bits().to_le_bytes());
        put_bytes(&mut out, b"tail");
        let mut r = StateReader::new(&out);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits(), "bit-exact floats");
        assert_eq!(r.bytes().unwrap(), b"tail");
        r.finish().unwrap();
    }
}
