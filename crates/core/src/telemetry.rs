//! Job-level telemetry: per-operator latency recorders, queue gauges, the
//! background time-series sampler, and exportable snapshots.
//!
//! The paper evaluates NEPTUNE on throughput, latency, and bandwidth
//! (§IV); this module is the machinery that makes the latency side
//! observable on a live job instead of only in offline benchmark math.
//! Every operator gets an [`OperatorTelemetry`] recorder with five
//! log-bucketed histograms: end-to-end latency (source timestamp →
//! processing, Fig. 2) plus a four-stage breakdown of where that time
//! went —
//!
//! * `buffer_wait` — enqueue → flush inside the sender's `OutputBuffer`
//!   (the §III-B1 buffering/flush-timer trade-off, measured directly),
//! * `transport`  — flush → arrival on the receiving watermark queue,
//! * `schedule_delay` — arrival → the Granules task actually running
//!   (§III-B2 batched scheduling's cost side),
//! * `execution` — one scheduled drain of the inbound queue.
//!
//! Recording is wired in only when [`crate::config::TelemetryConfig`]
//! enables it; a disabled job takes zero extra clock reads on the hot
//! path. Snapshots render as pretty text, JSON (via the repo's own
//! [`crate::json`]), and Prometheus text exposition.

use crate::checkpoint::CheckpointStats;
use crate::dead_letter::DeadLetter;
use crate::json::{object, JsonValue};
use crate::metrics::JobMetrics;
use neptune_ha::RecoverySnapshot;
use neptune_link::LinkStatsSnapshot;
use neptune_net::frame::Frame;
use neptune_net::watermark::WatermarkQueue;
use neptune_telemetry::export;
use neptune_telemetry::{
    Exporter, FieldDef, HistogramSnapshot, OperatorTelemetry, OperatorTelemetrySnapshot,
    PrettyExporter, PrometheusExporter,
};
use std::collections::BTreeMap;
use std::sync::Arc;

/// JSON renderer for schema walks over the repo's own [`JsonValue`].
/// Groups sharing a `json_key` merge into one object; fields with an
/// empty `json_key` are dropped, mirroring the other exporters.
#[derive(Debug, Default)]
struct JsonExporter {
    objects: Vec<(String, BTreeMap<String, JsonValue>)>,
    current: usize,
}

impl JsonExporter {
    fn new() -> Self {
        Self::default()
    }

    /// `(json_key, object)` pairs in first-seen group order.
    fn finish(self) -> Vec<(String, JsonValue)> {
        self.objects.into_iter().map(|(k, m)| (k, JsonValue::Object(m))).collect()
    }

    /// The lone object produced by a single-group walk.
    fn into_single(self) -> JsonValue {
        self.finish()
            .into_iter()
            .next()
            .map(|(_, v)| v)
            .unwrap_or_else(|| JsonValue::Object(BTreeMap::new()))
    }
}

impl Exporter for JsonExporter {
    fn begin_group(&mut self, _pretty_label: &str, json_key: &str, _labels: &[(&str, &str)]) {
        self.current = match self.objects.iter().position(|(k, _)| k == json_key) {
            Some(i) => i,
            None => {
                self.objects.push((json_key.to_string(), BTreeMap::new()));
                self.objects.len() - 1
            }
        };
    }

    fn field(&mut self, def: &FieldDef, value: u64) {
        if !def.json_key.is_empty() {
            self.objects[self.current]
                .1
                .insert(def.json_key.to_string(), JsonValue::Number(value as f64));
        }
    }

    fn end_group(&mut self) {}
}

/// Named view of one inbound watermark queue, replacing the old
/// `(usize, usize, u64)` gauge tuple.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueGauge {
    /// Frames currently buffered.
    pub depth: usize,
    /// Wire bytes currently buffered.
    pub depth_bytes: usize,
    /// High watermark in bytes — the level at which the gate closes and
    /// backpressure engages (§III-B4).
    pub capacity: usize,
    /// Times the backpressure gate has engaged so far.
    pub gate_events: u64,
    /// Items sacrificed by the queue's shed policy (0 under the default
    /// lossless [`neptune_net::watermark::ShedPolicy::None`]).
    pub shed_total: u64,
    /// Bytes sacrificed by the queue's shed policy.
    pub shed_bytes: u64,
}

impl QueueGauge {
    /// Read the current gauges off a live queue.
    pub fn observe(q: &WatermarkQueue<Frame>) -> QueueGauge {
        QueueGauge {
            depth: q.len(),
            depth_bytes: q.level(),
            capacity: q.config().high,
            gate_events: q.gate_events(),
            shed_total: q.shed_total(),
            shed_bytes: q.shed_bytes(),
        }
    }

    /// Fill fraction relative to the high watermark (may exceed 1.0
    /// briefly: the gate closes *after* the push that crosses it).
    pub fn saturation(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.depth_bytes as f64 / self.capacity as f64
        }
    }
}

/// Registry of per-operator latency recorders, shared between the runtime
/// internals (which record) and [`TelemetrySnapshot`] (which reads).
///
/// Mirrors [`crate::metrics::MetricsRegistry`]: one recorder per operator
/// name, all instances of the operator aggregate into it.
#[derive(Debug, Default)]
pub struct TelemetryHub {
    operators: parking_lot::RwLock<BTreeMap<String, Arc<OperatorTelemetry>>>,
}

impl TelemetryHub {
    /// New, empty hub.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorder for `operator`, created on first use.
    pub fn for_operator(&self, operator: &str) -> Arc<OperatorTelemetry> {
        if let Some(t) = self.operators.read().get(operator) {
            return t.clone();
        }
        self.operators
            .write()
            .entry(operator.to_string())
            .or_insert_with(|| Arc::new(OperatorTelemetry::new()))
            .clone()
    }

    /// Snapshot every operator's histograms.
    pub fn snapshot(&self) -> BTreeMap<String, OperatorTelemetrySnapshot> {
        self.operators.read().iter().map(|(k, v)| (k.clone(), v.snapshot())).collect()
    }
}

/// One tick of the background sampler: counters plus queue gauges, cheap
/// enough to take every `sample_interval` without disturbing the job.
#[derive(Debug, Clone)]
pub struct TelemetrySample {
    /// Counter snapshot at this tick.
    pub metrics: JobMetrics,
    /// Queue gauges at this tick, in deployment order.
    pub queues: Vec<QueueGauge>,
}

impl TelemetrySample {
    /// Gate events summed over every queue at this tick.
    pub fn total_gate_events(&self) -> u64 {
        self.queues.iter().map(|q| q.gate_events).sum()
    }

    /// Buffered bytes summed over every queue at this tick.
    pub fn total_queued_bytes(&self) -> usize {
        self.queues.iter().map(|q| q.depth_bytes).sum()
    }
}

/// Full exportable telemetry state of one job at one instant: per-operator
/// latency histograms, live counters and gauges, and the sampler's time
/// series.
#[derive(Debug, Clone)]
pub struct TelemetrySnapshot {
    /// The job's graph name.
    pub graph_name: String,
    /// Per-operator latency histograms (e2e + four stages).
    pub operators: BTreeMap<String, OperatorTelemetrySnapshot>,
    /// Counter snapshot at capture time.
    pub metrics: JobMetrics,
    /// Queue gauges at capture time, in deployment order.
    pub queues: Vec<QueueGauge>,
    /// `(elapsed_micros, sample)` pairs from the background sampler, in
    /// chronological order; elapsed is measured from sampler start.
    pub series: Vec<(u64, TelemetrySample)>,
    /// Per-link stats bundles from the link stack: flush/packet/byte
    /// counters, reliability counters, and the current flush-policy knobs
    /// — in deployment order. Empty on snapshots that predate the links
    /// (tests, external builders).
    pub links: Vec<LinkStatsSnapshot>,
    /// Recovery counters and detection-latency histogram (ISSUE 3);
    /// `None` when fault tolerance is disabled in the runtime config.
    pub recovery: Option<RecoverySnapshot>,
    /// Quarantined poison batches (ISSUE 5), oldest first; empty when
    /// containment is disabled or nothing has been quarantined. Exports
    /// render provenance and panic messages but never the raw bytes.
    pub dead_letters: Vec<DeadLetter>,
    /// Aligned-snapshot coordinator counters and histograms (ISSUE 10);
    /// `None` when checkpointing is disabled in the runtime config.
    pub checkpoints: Option<CheckpointStats>,
}

fn histogram_json(snap: &HistogramSnapshot) -> JsonValue {
    object([
        ("count", JsonValue::Number(snap.count() as f64)),
        ("sum_micros", JsonValue::Number(snap.sum() as f64)),
        ("max_micros", JsonValue::Number(snap.max() as f64)),
        ("p50_micros", JsonValue::Number(snap.p50() as f64)),
        ("p95_micros", JsonValue::Number(snap.p95() as f64)),
        ("p99_micros", JsonValue::Number(snap.p99() as f64)),
        ("mean_micros", JsonValue::Number(snap.mean())),
    ])
}

fn queue_json(q: &QueueGauge) -> JsonValue {
    object([
        ("depth", JsonValue::Number(q.depth as f64)),
        ("depth_bytes", JsonValue::Number(q.depth_bytes as f64)),
        ("capacity", JsonValue::Number(q.capacity as f64)),
        ("gate_events", JsonValue::Number(q.gate_events as f64)),
        ("shed_total", JsonValue::Number(q.shed_total as f64)),
        ("shed_bytes", JsonValue::Number(q.shed_bytes as f64)),
    ])
}

fn dead_letter_json(d: &DeadLetter) -> JsonValue {
    object([
        ("operator", JsonValue::String(d.operator.clone())),
        ("instance", JsonValue::Number(d.instance as f64)),
        ("link_id", JsonValue::Number(d.link_id as f64)),
        ("base_seq", JsonValue::Number(d.base_seq as f64)),
        ("messages", JsonValue::Number(d.messages as f64)),
        ("attempts", JsonValue::Number(d.attempts as f64)),
        ("panic_msg", JsonValue::String(d.panic_msg.clone())),
        ("captured_bytes", JsonValue::Number(d.bytes.len() as f64)),
        ("original_len", JsonValue::Number(d.original_len as f64)),
    ])
}

fn link_json(l: &LinkStatsSnapshot) -> JsonValue {
    object([
        ("link_id", JsonValue::Number(l.link_id as f64)),
        ("flushes", JsonValue::Number(l.flushes as f64)),
        ("packets", JsonValue::Number(l.packets as f64)),
        ("wire_bytes", JsonValue::Number(l.wire_bytes as f64)),
        ("traced", JsonValue::Number(l.traced as f64)),
        ("replayed", JsonValue::Number(l.replayed as f64)),
        ("acks", JsonValue::Number(l.acks as f64)),
        ("dedup_drops", JsonValue::Number(l.dedup_drops as f64)),
        ("flush_batch_bytes", JsonValue::Number(l.flush.batch_bytes as f64)),
        ("flush_max_delay_micros", JsonValue::Number(l.flush.max_delay_micros as f64)),
        ("flush_batch_messages", JsonValue::Number(l.flush.batch_messages as f64)),
    ])
}

fn recovery_json(r: &RecoverySnapshot) -> JsonValue {
    object([
        ("retransmits", JsonValue::Number(r.retransmits as f64)),
        ("retransmitted_bytes", JsonValue::Number(r.retransmitted_bytes as f64)),
        ("reconnects", JsonValue::Number(r.reconnects as f64)),
        ("reconnect_attempts", JsonValue::Number(r.reconnect_attempts as f64)),
        ("link_failures", JsonValue::Number(r.link_failures as f64)),
        ("heartbeats_sent", JsonValue::Number(r.heartbeats_sent as f64)),
        ("acks_received", JsonValue::Number(r.acks_received as f64)),
        ("duplicates_dropped", JsonValue::Number(r.duplicates_dropped as f64)),
        ("replay_evictions", JsonValue::Number(r.replay_evictions as f64)),
        ("suspects", JsonValue::Number(r.suspects as f64)),
        ("deaths", JsonValue::Number(r.deaths as f64)),
        ("recoveries", JsonValue::Number(r.recoveries as f64)),
        ("detection_latency", histogram_json(&r.detection_latency)),
    ])
}

fn checkpoint_json(c: &CheckpointStats) -> JsonValue {
    object([
        ("completed", JsonValue::Number(c.completed as f64)),
        ("abandoned", JsonValue::Number(c.abandoned as f64)),
        ("store_failures", JsonValue::Number(c.store_failures as f64)),
        ("in_flight", JsonValue::Number(c.in_flight as f64)),
        ("last_completed_id", JsonValue::Number(c.last_completed_id.unwrap_or(0) as f64)),
        ("last_age_micros", JsonValue::Number(c.last_age_micros.unwrap_or(0) as f64)),
        ("duration", histogram_json(&c.duration_micros)),
        ("size_bytes", histogram_json(&c.size_bytes)),
    ])
}

fn metrics_json(m: &JobMetrics) -> JsonValue {
    let operators = JsonValue::Object(
        m.operators
            .iter()
            .map(|(name, om)| {
                let mut e = JsonExporter::new();
                om.walk(&mut e, name);
                (name.clone(), e.into_single())
            })
            .collect(),
    );
    // Buffer-pool gauges carry derived ratios elsewhere and stay
    // hand-rolled; everything scalar walks the shared schema.
    let pool = object([
        ("hits", JsonValue::Number(m.buffer_pool.hits as f64)),
        ("misses", JsonValue::Number(m.buffer_pool.misses as f64)),
        ("returns", JsonValue::Number(m.buffer_pool.returns as f64)),
        ("discards", JsonValue::Number(m.buffer_pool.discards as f64)),
        ("bytes_reused", JsonValue::Number(m.buffer_pool.bytes_reused as f64)),
    ]);
    let mut walked = JsonExporter::new();
    m.thread_model.walk(&mut walked);
    m.containment.walk(&mut walked);
    let mut root: BTreeMap<String, JsonValue> =
        [("operators".to_string(), operators), ("buffer_pool".to_string(), pool)].into();
    root.extend(walked.finish());
    JsonValue::Object(root)
}

impl TelemetrySnapshot {
    /// Structured JSON document for programmatic consumers (bench bins
    /// dump this next to their tables).
    pub fn to_json_value(&self) -> JsonValue {
        let operators = JsonValue::Object(
            self.operators
                .iter()
                .map(|(name, op)| {
                    let stages = JsonValue::Object(
                        op.stages()
                            .iter()
                            .map(|(stage, snap)| (stage.to_string(), histogram_json(snap)))
                            .collect(),
                    );
                    (name.clone(), object([("e2e", histogram_json(&op.e2e)), ("stages", stages)]))
                })
                .collect(),
        );
        // The series serializes as per-tick aggregates — enough to plot a
        // Fig. 4 style oscillation without exploding the document.
        let series = JsonValue::Array(
            self.series
                .iter()
                .map(|(t, s)| {
                    object([
                        ("t_micros", JsonValue::Number(*t as f64)),
                        ("queued_bytes", JsonValue::Number(s.total_queued_bytes() as f64)),
                        ("gate_events", JsonValue::Number(s.total_gate_events() as f64)),
                        (
                            "source_packets",
                            JsonValue::Number(s.metrics.total_source_packets() as f64),
                        ),
                        ("bytes_out", JsonValue::Number(s.metrics.total_bytes_out() as f64)),
                    ])
                })
                .collect(),
        );
        let mut root = vec![
            ("graph", JsonValue::String(self.graph_name.clone())),
            ("operators", operators),
            ("metrics", metrics_json(&self.metrics)),
            ("queues", JsonValue::Array(self.queues.iter().map(queue_json).collect())),
            ("series", series),
        ];
        if !self.links.is_empty() {
            root.push(("links", JsonValue::Array(self.links.iter().map(link_json).collect())));
        }
        if let Some(r) = &self.recovery {
            root.push(("recovery", recovery_json(r)));
        }
        if !self.dead_letters.is_empty() {
            root.push((
                "dead_letters",
                JsonValue::Array(self.dead_letters.iter().map(dead_letter_json).collect()),
            ));
        }
        if let Some(c) = &self.checkpoints {
            root.push(("checkpoints", checkpoint_json(c)));
        }
        object(root)
    }

    /// Compact JSON text.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_json()
    }

    /// Human-readable multi-line report.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("telemetry: job '{}'\n", self.graph_name));
        for (name, op) in &self.operators {
            out.push_str(&format!("operator {name}\n"));
            out.push_str(&format!("  {}\n", export::pretty_line("e2e", &op.e2e)));
            for (stage, snap) in op.stages() {
                out.push_str(&format!("  {}\n", export::pretty_line(stage, snap)));
            }
        }
        for (i, q) in self.queues.iter().enumerate() {
            out.push_str(&format!(
                "queue {i}: depth={} bytes={}/{} ({:.0}%) gate_events={} shed={}/{}B\n",
                q.depth,
                q.depth_bytes,
                q.capacity,
                q.saturation() * 100.0,
                q.gate_events,
                q.shed_total,
                q.shed_bytes
            ));
        }
        for l in &self.links {
            out.push_str(&format!(
                "link {:#x}: flushes={} packets={} wire_bytes={} traced={} replayed={} \
                 acks={} dedup_drops={} flush={}B/{}µs/{}msg\n",
                l.link_id,
                l.flushes,
                l.packets,
                l.wire_bytes,
                l.traced,
                l.replayed,
                l.acks,
                l.dedup_drops,
                l.flush.batch_bytes,
                l.flush.max_delay_micros,
                l.flush.batch_messages
            ));
        }
        let pool = &self.metrics.buffer_pool;
        out.push_str(&format!(
            "pool: hits={} misses={} hit_rate={:.1}% bytes_reused={}\n",
            pool.hits,
            pool.misses,
            pool.hit_rate() * 100.0,
            pool.bytes_reused
        ));
        let mut walked = PrettyExporter::new();
        self.metrics.thread_model.walk(&mut walked);
        self.metrics.containment.walk(&mut walked);
        out.push_str(&walked.finish());
        for (i, d) in self.dead_letters.iter().enumerate() {
            out.push_str(&format!(
                "dead letter {i}: operator={} instance={} link={} seq={} msgs={} \
                 attempts={} bytes={}/{} panic=\"{}\"\n",
                d.operator,
                d.instance,
                d.link_id,
                d.base_seq,
                d.messages,
                d.attempts,
                d.bytes.len(),
                d.original_len,
                d.panic_msg
            ));
        }
        out.push_str(&format!("series: {} samples\n", self.series.len()));
        if let Some(r) = &self.recovery {
            out.push_str(&r.render_pretty());
            out.push('\n');
        }
        if let Some(c) = &self.checkpoints {
            out.push_str(&format!(
                "checkpoints: completed={} abandoned={} store_failures={} in_flight={} \
                 last_id={} age={}µs\n",
                c.completed,
                c.abandoned,
                c.store_failures,
                c.in_flight,
                c.last_completed_id.map(|id| id.to_string()).unwrap_or_else(|| "-".into()),
                c.last_age_micros.unwrap_or(0),
            ));
            out.push_str(&format!("  {}\n", export::pretty_line("duration", &c.duration_micros)));
            out.push_str(&format!("  {}\n", export::pretty_line("size_bytes", &c.size_bytes)));
        }
        out
    }

    /// Prometheus text-exposition document. Latency histograms export as
    /// `summary` metrics with precomputed quantiles; counters and gauges
    /// map directly. `# TYPE` headers are written once per metric, as the
    /// format requires, even when many operators share it.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        if !self.operators.is_empty() {
            out.push_str("# TYPE neptune_e2e_latency_micros summary\n");
            for (name, op) in &self.operators {
                export::summary_samples(
                    &mut out,
                    "neptune_e2e_latency_micros",
                    &[("operator", name)],
                    &op.e2e,
                );
            }
            out.push_str("# TYPE neptune_e2e_latency_micros_max gauge\n");
            for (name, op) in &self.operators {
                export::sample_line(
                    &mut out,
                    "neptune_e2e_latency_micros_max",
                    &[("operator", name)],
                    op.e2e.max(),
                );
            }
            out.push_str("# TYPE neptune_stage_latency_micros summary\n");
            for (name, op) in &self.operators {
                for (stage, snap) in op.stages() {
                    export::summary_samples(
                        &mut out,
                        "neptune_stage_latency_micros",
                        &[("operator", name), ("stage", stage)],
                        snap,
                    );
                }
            }
        }
        if !self.queues.is_empty() {
            out.push_str("# TYPE neptune_queue_depth_frames gauge\n");
            for (i, q) in self.queues.iter().enumerate() {
                let idx = i.to_string();
                export::sample_line(
                    &mut out,
                    "neptune_queue_depth_frames",
                    &[("queue", &idx)],
                    q.depth as u64,
                );
            }
            out.push_str("# TYPE neptune_queue_depth_bytes gauge\n");
            for (i, q) in self.queues.iter().enumerate() {
                let idx = i.to_string();
                export::sample_line(
                    &mut out,
                    "neptune_queue_depth_bytes",
                    &[("queue", &idx)],
                    q.depth_bytes as u64,
                );
            }
            out.push_str("# TYPE neptune_gate_events_total counter\n");
            for (i, q) in self.queues.iter().enumerate() {
                let idx = i.to_string();
                export::sample_line(
                    &mut out,
                    "neptune_gate_events_total",
                    &[("queue", &idx)],
                    q.gate_events,
                );
            }
            out.push_str("# TYPE neptune_queue_shed_total counter\n");
            for (i, q) in self.queues.iter().enumerate() {
                let idx = i.to_string();
                export::sample_line(
                    &mut out,
                    "neptune_queue_shed_total",
                    &[("queue", &idx)],
                    q.shed_total,
                );
            }
            out.push_str("# TYPE neptune_queue_shed_bytes_total counter\n");
            for (i, q) in self.queues.iter().enumerate() {
                let idx = i.to_string();
                export::sample_line(
                    &mut out,
                    "neptune_queue_shed_bytes_total",
                    &[("queue", &idx)],
                    q.shed_bytes,
                );
            }
        }
        if !self.links.is_empty() {
            type LinkMetric = (&'static str, fn(&LinkStatsSnapshot) -> u64);
            let link_counters: [LinkMetric; 6] = [
                ("neptune_link_flushes_total", |l| l.flushes),
                ("neptune_link_packets_total", |l| l.packets),
                ("neptune_link_wire_bytes_total", |l| l.wire_bytes),
                ("neptune_link_traced_total", |l| l.traced),
                ("neptune_link_replayed_total", |l| l.replayed),
                ("neptune_link_dedup_drops_total", |l| l.dedup_drops),
            ];
            for (metric, get) in link_counters {
                out.push_str(&format!("# TYPE {metric} counter\n"));
                for l in &self.links {
                    let id = format!("{:#x}", l.link_id);
                    export::sample_line(&mut out, metric, &[("link", &id)], get(l));
                }
            }
            let link_gauges: [LinkMetric; 3] = [
                ("neptune_link_flush_batch_bytes", |l| l.flush.batch_bytes as u64),
                ("neptune_link_flush_max_delay_micros", |l| l.flush.max_delay_micros),
                ("neptune_link_flush_batch_messages", |l| l.flush.batch_messages as u64),
            ];
            for (metric, get) in link_gauges {
                out.push_str(&format!("# TYPE {metric} gauge\n"));
                for l in &self.links {
                    let id = format!("{:#x}", l.link_id);
                    export::sample_line(&mut out, metric, &[("link", &id)], get(l));
                }
            }
        }
        let mut walked = PrometheusExporter::new();
        for (name, om) in &self.metrics.operators {
            om.walk(&mut walked, name);
        }
        self.metrics.thread_model.walk(&mut walked);
        self.metrics.containment.walk(&mut walked);
        out.push_str(&walked.finish());
        let pool = &self.metrics.buffer_pool;
        export::prometheus_counter(&mut out, "neptune_pool_hits_total", &[], pool.hits);
        export::prometheus_counter(&mut out, "neptune_pool_misses_total", &[], pool.misses);
        export::prometheus_counter(
            &mut out,
            "neptune_pool_bytes_reused_total",
            &[],
            pool.bytes_reused,
        );
        if let Some(r) = &self.recovery {
            let recovery_counters: [(&str, u64); 12] = [
                ("neptune_recovery_retransmits_total", r.retransmits),
                ("neptune_recovery_retransmitted_bytes_total", r.retransmitted_bytes),
                ("neptune_recovery_reconnects_total", r.reconnects),
                ("neptune_recovery_reconnect_attempts_total", r.reconnect_attempts),
                ("neptune_recovery_link_failures_total", r.link_failures),
                ("neptune_recovery_heartbeats_sent_total", r.heartbeats_sent),
                ("neptune_recovery_acks_received_total", r.acks_received),
                ("neptune_recovery_duplicates_dropped_total", r.duplicates_dropped),
                ("neptune_recovery_replay_evictions_total", r.replay_evictions),
                ("neptune_recovery_suspects_total", r.suspects),
                ("neptune_recovery_deaths_total", r.deaths),
                ("neptune_recovery_recoveries_total", r.recoveries),
            ];
            for (metric, value) in recovery_counters {
                export::prometheus_counter(&mut out, metric, &[], value);
            }
            out.push_str("# TYPE neptune_detection_latency_micros summary\n");
            export::summary_samples(
                &mut out,
                "neptune_detection_latency_micros",
                &[],
                &r.detection_latency,
            );
        }
        if let Some(c) = &self.checkpoints {
            export::prometheus_counter(
                &mut out,
                "neptune_checkpoint_completed_total",
                &[],
                c.completed,
            );
            export::prometheus_counter(
                &mut out,
                "neptune_checkpoint_abandoned_total",
                &[],
                c.abandoned,
            );
            export::prometheus_counter(
                &mut out,
                "neptune_checkpoint_store_failures_total",
                &[],
                c.store_failures,
            );
            out.push_str("# TYPE neptune_checkpoint_in_flight gauge\n");
            export::sample_line(&mut out, "neptune_checkpoint_in_flight", &[], c.in_flight);
            out.push_str("# TYPE neptune_checkpoint_last_completed_id gauge\n");
            export::sample_line(
                &mut out,
                "neptune_checkpoint_last_completed_id",
                &[],
                c.last_completed_id.unwrap_or(0),
            );
            out.push_str("# TYPE neptune_checkpoint_last_age_micros gauge\n");
            export::sample_line(
                &mut out,
                "neptune_checkpoint_last_age_micros",
                &[],
                c.last_age_micros.unwrap_or(0),
            );
            out.push_str("# TYPE neptune_checkpoint_duration_micros summary\n");
            export::summary_samples(
                &mut out,
                "neptune_checkpoint_duration_micros",
                &[],
                &c.duration_micros,
            );
            out.push_str("# TYPE neptune_checkpoint_size_bytes summary\n");
            export::summary_samples(&mut out, "neptune_checkpoint_size_bytes", &[], &c.size_bytes);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn sample_snapshot() -> TelemetrySnapshot {
        let hub = TelemetryHub::new();
        let relay = hub.for_operator("relay");
        for v in [150u64, 900, 42_000] {
            relay.e2e.record(v);
            relay.buffer_wait.record(v / 2);
            relay.transport.record(v / 8);
            relay.schedule_delay.record(v / 16);
            relay.execution.record(v / 4);
        }
        let registry = MetricsRegistry::new();
        registry.for_operator("relay").packets_in.store(3, std::sync::atomic::Ordering::Relaxed);
        let metrics = registry.snapshot();
        let queues = vec![QueueGauge {
            depth: 2,
            depth_bytes: 512,
            capacity: 4096,
            gate_events: 7,
            shed_total: 0,
            shed_bytes: 0,
        }];
        let sample = TelemetrySample { metrics: metrics.clone(), queues: queues.clone() };
        TelemetrySnapshot {
            graph_name: "demo".into(),
            operators: hub.snapshot(),
            metrics,
            queues,
            series: vec![(0, sample.clone()), (100_000, sample)],
            links: Vec::new(),
            recovery: None,
            dead_letters: Vec::new(),
            checkpoints: None,
        }
    }

    fn with_links(mut snap: TelemetrySnapshot) -> TelemetrySnapshot {
        snap.links.push(LinkStatsSnapshot {
            link_id: 0x10000,
            flushes: 12,
            packets: 48,
            wire_bytes: 4096,
            traced: 3,
            replayed: 2,
            acks: 5,
            dedup_drops: 1,
            flush: neptune_net::flush::FlushPolicySnapshot {
                batch_bytes: 32 << 10,
                max_delay_micros: 2_000,
                batch_messages: 0,
            },
        });
        snap
    }

    fn with_recovery(mut snap: TelemetrySnapshot) -> TelemetrySnapshot {
        let stats = neptune_ha::RecoveryStats::new();
        stats.retransmits.store(4, std::sync::atomic::Ordering::Relaxed);
        stats.reconnects.store(2, std::sync::atomic::Ordering::Relaxed);
        stats.deaths.store(1, std::sync::atomic::Ordering::Relaxed);
        stats.detection_latency.record(12_000);
        snap.recovery = Some(stats.snapshot());
        snap
    }

    #[test]
    fn hub_shares_recorders_per_name() {
        let hub = TelemetryHub::new();
        let a = hub.for_operator("op");
        let b = hub.for_operator("op");
        assert!(Arc::ptr_eq(&a, &b));
        a.e2e.record(10);
        assert_eq!(hub.snapshot()["op"].e2e.count(), 1);
    }

    #[test]
    fn queue_gauge_saturation() {
        let g = QueueGauge { depth: 1, depth_bytes: 2048, capacity: 4096, ..Default::default() };
        assert!((g.saturation() - 0.5).abs() < 1e-9);
        assert_eq!(QueueGauge::default().saturation(), 0.0);
    }

    #[test]
    fn json_round_trips_through_own_parser() {
        let snap = sample_snapshot();
        let doc = crate::json::parse(&snap.to_json()).expect("self-produced JSON parses");
        assert_eq!(doc.get("graph").unwrap().as_str(), Some("demo"));
        let relay = doc.get("operators").unwrap().get("relay").unwrap();
        assert_eq!(relay.get("e2e").unwrap().get("count").unwrap().as_u64(), Some(3));
        let stages = relay.get("stages").unwrap().as_object().unwrap();
        assert_eq!(stages.len(), 4);
        assert!(stages.contains_key("buffer_wait"));
        assert_eq!(doc.get("series").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(
            doc.get("queues").unwrap().as_array().unwrap()[0].get("gate_events").unwrap().as_u64(),
            Some(7)
        );
    }

    #[test]
    fn prometheus_types_appear_once_per_metric() {
        let snap = sample_snapshot();
        let text = snap.render_prometheus();
        assert_eq!(text.matches("# TYPE neptune_e2e_latency_micros summary").count(), 1);
        assert_eq!(text.matches("# TYPE neptune_stage_latency_micros summary").count(), 1);
        assert!(text.contains(
            "neptune_stage_latency_micros{operator=\"relay\",stage=\"buffer_wait\",quantile=\"0.5\"}"
        ));
        assert!(text.contains("neptune_gate_events_total{queue=\"0\"} 7\n"));
        assert!(text.contains("neptune_packets_in_total{operator=\"relay\"} 3\n"));
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn recovery_section_renders_in_all_formats() {
        let plain = sample_snapshot();
        assert!(!plain.to_json().contains("\"recovery\""), "no section when HA is off");
        assert!(!plain.render_prometheus().contains("neptune_recovery_"));

        let snap = with_recovery(sample_snapshot());
        let doc = crate::json::parse(&snap.to_json()).unwrap();
        let rec = doc.get("recovery").expect("recovery object present");
        assert_eq!(rec.get("retransmits").unwrap().as_u64(), Some(4));
        assert_eq!(rec.get("deaths").unwrap().as_u64(), Some(1));
        assert_eq!(rec.get("detection_latency").unwrap().get("count").unwrap().as_u64(), Some(1));
        let text = snap.render_prometheus();
        assert!(text.contains("neptune_recovery_retransmits_total 4\n"));
        assert!(text.contains("neptune_recovery_reconnects_total 2\n"));
        assert_eq!(text.matches("# TYPE neptune_detection_latency_micros summary").count(), 1);
        let pretty = snap.render_pretty();
        assert!(pretty.contains("retransmits=4"));
        assert!(pretty.contains("deaths=1"));
    }

    #[test]
    fn containment_section_renders_in_all_formats() {
        let mut snap = sample_snapshot();
        snap.metrics.containment = crate::metrics::ContainmentStats {
            worker_panics: 1,
            panics: 9,
            retries: 6,
            quarantined: 3,
            breaker_trips: 1,
            breaker_dropped: 4,
            dead_letters: 2,
            dead_letters_evicted: 1,
            shed_total: 11,
            shed_bytes: 2048,
        };
        snap.dead_letters.push(crate::dead_letter::DeadLetter {
            operator: "relay".into(),
            instance: 0,
            link_id: 3,
            base_seq: 40,
            messages: 8,
            panic_msg: "poison value".into(),
            attempts: 3,
            bytes: vec![0xEE; 16],
            original_len: 64,
        });

        let doc = crate::json::parse(&snap.to_json()).unwrap();
        let c = doc.get("metrics").unwrap().get("containment").expect("containment object");
        assert_eq!(c.get("worker_panics").unwrap().as_u64(), Some(1));
        assert_eq!(c.get("quarantined").unwrap().as_u64(), Some(3));
        assert_eq!(c.get("shed_total").unwrap().as_u64(), Some(11));
        let dl = doc.get("dead_letters").unwrap().as_array().unwrap();
        assert_eq!(dl[0].get("panic_msg").unwrap().as_str(), Some("poison value"));
        assert_eq!(dl[0].get("captured_bytes").unwrap().as_u64(), Some(16));
        assert_eq!(dl[0].get("original_len").unwrap().as_u64(), Some(64));

        let text = snap.render_prometheus();
        assert!(text.contains("neptune_worker_panics_total 1\n"));
        assert!(text.contains("neptune_containment_quarantined_total 3\n"));
        assert!(text.contains("neptune_containment_breaker_trips_total 1\n"));
        assert!(text.contains("neptune_shed_total 11\n"));
        assert!(text.contains("neptune_dead_letters 2\n"));
        assert!(text.contains("neptune_queue_shed_total{queue=\"0\"} 0\n"));
        assert!(text.contains("neptune_operator_panics_total{operator=\"relay\"}"));

        let pretty = snap.render_pretty();
        assert!(pretty.contains("containment: worker_panics=1 panics=9"));
        assert!(pretty.contains("dead letter 0: operator=relay"));
        assert!(pretty.contains("panic=\"poison value\""));

        // No root dead-letter array in JSON when nothing is quarantined
        // (the containment counter object still carries the gauge).
        let plain = crate::json::parse(&sample_snapshot().to_json()).unwrap();
        assert!(plain.get("dead_letters").is_none());
    }

    #[test]
    fn link_section_renders_in_all_formats() {
        let plain = sample_snapshot();
        assert!(!plain.to_json().contains("\"links\""), "no section without links");
        assert!(!plain.render_prometheus().contains("neptune_link_"));

        let snap = with_links(sample_snapshot());
        let doc = crate::json::parse(&snap.to_json()).unwrap();
        let links = doc.get("links").expect("links array present").as_array().unwrap();
        assert_eq!(links[0].get("flushes").unwrap().as_u64(), Some(12));
        assert_eq!(links[0].get("replayed").unwrap().as_u64(), Some(2));
        assert_eq!(links[0].get("dedup_drops").unwrap().as_u64(), Some(1));
        assert_eq!(links[0].get("flush_batch_bytes").unwrap().as_u64(), Some(32 << 10));
        assert_eq!(links[0].get("flush_max_delay_micros").unwrap().as_u64(), Some(2_000));

        let text = snap.render_prometheus();
        assert!(text.contains("neptune_link_flushes_total{link=\"0x10000\"} 12\n"));
        assert!(text.contains("neptune_link_wire_bytes_total{link=\"0x10000\"} 4096\n"));
        assert!(text.contains("neptune_link_replayed_total{link=\"0x10000\"} 2\n"));
        assert!(text.contains("neptune_link_flush_batch_bytes{link=\"0x10000\"} 32768\n"));
        assert_eq!(text.matches("# TYPE neptune_link_flushes_total counter").count(), 1);

        let pretty = snap.render_pretty();
        assert!(pretty.contains("link 0x10000: flushes=12 packets=48"));
        assert!(pretty.contains("flush=32768B/2000µs/0msg"));
    }

    #[test]
    fn checkpoint_section_renders_in_all_formats() {
        let plain = sample_snapshot();
        assert!(!plain.to_json().contains("\"checkpoints\""), "no section when checkpointing off");
        assert!(!plain.render_prometheus().contains("neptune_checkpoint_"));
        assert!(!plain.render_pretty().contains("checkpoints:"));

        let mut snap = sample_snapshot();
        let duration = {
            let h = neptune_telemetry::LatencyHistogram::new();
            h.record(250);
            h.record(900);
            h.snapshot()
        };
        let size = {
            let h = neptune_telemetry::LatencyHistogram::new();
            h.record(4096);
            h.record(8192);
            h.snapshot()
        };
        snap.checkpoints = Some(CheckpointStats {
            completed: 5,
            abandoned: 1,
            store_failures: 0,
            in_flight: 1,
            last_completed_id: Some(5),
            last_age_micros: Some(42_000),
            duration_micros: duration,
            size_bytes: size,
        });

        let doc = crate::json::parse(&snap.to_json()).unwrap();
        let c = doc.get("checkpoints").expect("checkpoints object present");
        assert_eq!(c.get("completed").unwrap().as_u64(), Some(5));
        assert_eq!(c.get("abandoned").unwrap().as_u64(), Some(1));
        assert_eq!(c.get("last_completed_id").unwrap().as_u64(), Some(5));
        assert_eq!(c.get("duration").unwrap().get("count").unwrap().as_u64(), Some(2));
        assert_eq!(c.get("size_bytes").unwrap().get("count").unwrap().as_u64(), Some(2));

        let text = snap.render_prometheus();
        assert!(text.contains("neptune_checkpoint_completed_total 5\n"));
        assert!(text.contains("neptune_checkpoint_abandoned_total 1\n"));
        assert!(text.contains("neptune_checkpoint_store_failures_total 0\n"));
        assert!(text.contains("neptune_checkpoint_in_flight 1\n"));
        assert!(text.contains("neptune_checkpoint_last_completed_id 5\n"));
        assert!(text.contains("neptune_checkpoint_last_age_micros 42000\n"));
        assert_eq!(text.matches("# TYPE neptune_checkpoint_duration_micros summary").count(), 1);
        assert_eq!(text.matches("# TYPE neptune_checkpoint_size_bytes summary").count(), 1);

        let pretty = snap.render_pretty();
        assert!(pretty.contains("checkpoints: completed=5 abandoned=1"));
        assert!(pretty.contains("last_id=5 age=42000µs"));
    }

    #[test]
    fn pretty_report_lists_operators_and_queues() {
        let text = sample_snapshot().render_pretty();
        assert!(text.contains("job 'demo'"));
        assert!(text.contains("operator relay"));
        assert!(text.contains("e2e"));
        assert!(text.contains("schedule_delay"));
        assert!(text.contains("queue 0:"));
        assert!(text.contains("series: 2 samples"));
    }
}
