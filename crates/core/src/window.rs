//! Time-window aggregation helpers.
//!
//! The paper's flagship application monitors actuation delays *"over a
//! 24-hour time window"* (§IV-C), and its motivating example for flush
//! timers is an operator that *"calculates a descriptive statistic for a
//! sliding window over incoming stream packets and emits a new stream
//! packet only if it detects a significant change"* (§III-B1). These
//! helpers give stream processors those two shapes without re-deriving the
//! bookkeeping:
//!
//! * [`TumblingWindow`] — non-overlapping fixed-duration windows keyed by
//!   event time; closing a window yields its aggregate.
//! * [`SlidingWindow`] — a moving window over the last `width` of event
//!   time, queryable at any moment.
//!
//! Both are event-time driven (timestamps carried by packets), so results
//! are deterministic and replayable — wall clocks never enter the logic.
//!
//! Both implement [`OperatorState`], so a stateful processor that exposes
//! its window through [`crate::operator::StreamProcessor::state`] gets
//! aligned-checkpoint snapshot/restore for free: the serialized form is
//! the exact field set (bit-exact floats included), which is what lets
//! the chaos harness demand byte-identical aggregates after recovery.

use crate::state::{OperatorState, StateError, StateReader};
use std::collections::VecDeque;

/// Aggregate of one closed window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowAggregate {
    /// Window start (inclusive), microseconds.
    pub start_us: u64,
    /// Window end (exclusive), microseconds.
    pub end_us: u64,
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Minimum observation (`NaN` when empty).
    pub min: f64,
    /// Maximum observation (`NaN` when empty).
    pub max: f64,
}

impl WindowAggregate {
    /// Mean of the window's observations (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Non-overlapping fixed-width event-time windows.
///
/// Observations must arrive with non-decreasing timestamps per instance
/// (NEPTUNE's per-channel ordering gives exactly that); a closed window is
/// emitted as soon as an observation belongs to a later window.
#[derive(Debug)]
pub struct TumblingWindow {
    width_us: u64,
    current_start: Option<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl TumblingWindow {
    /// Windows of `width_us` microseconds.
    pub fn new(width_us: u64) -> Self {
        assert!(width_us > 0, "window width must be positive");
        TumblingWindow {
            width_us,
            current_start: None,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The configured width.
    pub fn width_us(&self) -> u64 {
        self.width_us
    }

    fn window_start(&self, ts: u64) -> u64 {
        ts - ts % self.width_us
    }

    fn take_aggregate(&mut self, start: u64) -> WindowAggregate {
        let agg = WindowAggregate {
            start_us: start,
            end_us: start + self.width_us,
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { f64::NAN } else { self.min },
            max: if self.count == 0 { f64::NAN } else { self.max },
        };
        self.count = 0;
        self.sum = 0.0;
        self.min = f64::INFINITY;
        self.max = f64::NEG_INFINITY;
        agg
    }

    /// Observe a value at event time `ts_us`. Returns the previous
    /// window's aggregate when `ts_us` crosses into a new window.
    ///
    /// Panics on event-time regression across windows (out-of-order input
    /// would silently mis-assign observations).
    pub fn observe(&mut self, ts_us: u64, value: f64) -> Option<WindowAggregate> {
        let start = self.window_start(ts_us);
        let result = match self.current_start {
            None => {
                self.current_start = Some(start);
                None
            }
            Some(current) if start == current => None,
            Some(current) => {
                assert!(
                    start > current,
                    "event time regressed across windows: {ts_us} into window {current}"
                );
                let agg = self.take_aggregate(current);
                self.current_start = Some(start);
                Some(agg)
            }
        };
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        result
    }

    /// Close the currently open window (end of stream).
    pub fn flush(&mut self) -> Option<WindowAggregate> {
        let start = self.current_start.take()?;
        Some(self.take_aggregate(start))
    }
}

impl OperatorState for TumblingWindow {
    fn state_kind(&self) -> &'static str {
        "tumbling-window"
    }

    fn snapshot_state(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.width_us.to_le_bytes());
        match self.current_start {
            Some(s) => {
                out.push(1);
                out.extend_from_slice(&s.to_le_bytes());
            }
            None => {
                out.push(0);
                out.extend_from_slice(&0u64.to_le_bytes());
            }
        }
        out.extend_from_slice(&self.count.to_le_bytes());
        out.extend_from_slice(&self.sum.to_bits().to_le_bytes());
        out.extend_from_slice(&self.min.to_bits().to_le_bytes());
        out.extend_from_slice(&self.max.to_bits().to_le_bytes());
    }

    fn restore_state(&mut self, version: u32, bytes: &[u8]) -> Result<(), StateError> {
        if version != 1 {
            return Err(StateError::VersionMismatch { supported: 1, found: version });
        }
        let mut r = StateReader::new(bytes);
        let width_us = r.u64()?;
        if width_us == 0 {
            return Err(StateError::Corrupt("zero window width".into()));
        }
        let has_start = r.u8()?;
        let start = r.u64()?;
        let count = r.u64()?;
        let sum = r.f64()?;
        let min = r.f64()?;
        let max = r.f64()?;
        r.finish()?;
        self.width_us = width_us;
        self.current_start = (has_start == 1).then_some(start);
        self.count = count;
        self.sum = sum;
        self.min = min;
        self.max = max;
        Ok(())
    }
}

/// A sliding event-time window over the last `width_us` of observations.
#[derive(Debug)]
pub struct SlidingWindow {
    width_us: u64,
    entries: VecDeque<(u64, f64)>,
    sum: f64,
}

impl SlidingWindow {
    /// Window covering the trailing `width_us` microseconds.
    pub fn new(width_us: u64) -> Self {
        assert!(width_us > 0, "window width must be positive");
        SlidingWindow { width_us, entries: VecDeque::new(), sum: 0.0 }
    }

    /// Observe a value at event time `ts_us` (non-decreasing), evicting
    /// everything older than `ts_us - width_us`.
    pub fn observe(&mut self, ts_us: u64, value: f64) {
        if let Some(&(last, _)) = self.entries.back() {
            assert!(ts_us >= last, "event time regressed: {ts_us} after {last}");
        }
        self.entries.push_back((ts_us, value));
        self.sum += value;
        // An entry at time t is inside the window while ts - t < width.
        while let Some(&(t, v)) = self.entries.front() {
            if t + self.width_us <= ts_us {
                self.entries.pop_front();
                self.sum -= v;
            } else {
                break;
            }
        }
    }

    /// Observations currently inside the window.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the window holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sum over the window.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean over the window (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.entries.is_empty() {
            f64::NAN
        } else {
            self.sum / self.entries.len() as f64
        }
    }

    /// Minimum over the window (`NaN` when empty). O(n).
    pub fn min(&self) -> f64 {
        self.entries.iter().map(|&(_, v)| v).fold(f64::NAN, f64::min)
    }

    /// Maximum over the window (`NaN` when empty). O(n).
    pub fn max(&self) -> f64 {
        self.entries.iter().map(|&(_, v)| v).fold(f64::NAN, f64::max)
    }
}

impl OperatorState for SlidingWindow {
    fn state_kind(&self) -> &'static str {
        "sliding-window"
    }

    fn snapshot_state(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.width_us.to_le_bytes());
        // The running sum is serialized rather than recomputed on restore:
        // it carries the exact rounding history of incremental adds and
        // evictions, and byte-identical recovery means preserving it.
        out.extend_from_slice(&self.sum.to_bits().to_le_bytes());
        out.extend_from_slice(&(self.entries.len() as u64).to_le_bytes());
        for &(t, v) in &self.entries {
            out.extend_from_slice(&t.to_le_bytes());
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }

    fn restore_state(&mut self, version: u32, bytes: &[u8]) -> Result<(), StateError> {
        if version != 1 {
            return Err(StateError::VersionMismatch { supported: 1, found: version });
        }
        let mut r = StateReader::new(bytes);
        let width_us = r.u64()?;
        if width_us == 0 {
            return Err(StateError::Corrupt("zero window width".into()));
        }
        let sum = r.f64()?;
        let n = r.u64()?;
        let mut entries = VecDeque::with_capacity(n as usize);
        let mut last = None;
        for _ in 0..n {
            let t = r.u64()?;
            let v = r.f64()?;
            if let Some(prev) = last {
                if t < prev {
                    return Err(StateError::Corrupt(format!(
                        "entry timestamps regress: {t} after {prev}"
                    )));
                }
            }
            last = Some(t);
            entries.push_back((t, v));
        }
        r.finish()?;
        self.width_us = width_us;
        self.entries = entries;
        self.sum = sum;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tumbling_assigns_and_closes_windows() {
        let mut w = TumblingWindow::new(1_000);
        assert_eq!(w.width_us(), 1_000);
        assert!(w.observe(100, 1.0).is_none());
        assert!(w.observe(900, 3.0).is_none());
        // Crossing into [1000, 2000) closes [0, 1000).
        let agg = w.observe(1_100, 10.0).expect("closed window");
        assert_eq!(agg.start_us, 0);
        assert_eq!(agg.end_us, 1_000);
        assert_eq!(agg.count, 2);
        assert_eq!(agg.sum, 4.0);
        assert_eq!(agg.mean(), 2.0);
        assert_eq!(agg.min, 1.0);
        assert_eq!(agg.max, 3.0);
        // The new window holds the crossing observation.
        let agg2 = w.flush().expect("open window");
        assert_eq!(agg2.start_us, 1_000);
        assert_eq!(agg2.count, 1);
        assert_eq!(agg2.sum, 10.0);
    }

    #[test]
    fn tumbling_skips_empty_windows() {
        let mut w = TumblingWindow::new(100);
        w.observe(50, 1.0);
        // Jump three windows ahead: the closed aggregate is the old
        // window; the skipped ones never materialize.
        let agg = w.observe(450, 2.0).unwrap();
        assert_eq!(agg.start_us, 0);
        assert_eq!(agg.count, 1);
        let agg2 = w.flush().unwrap();
        assert_eq!(agg2.start_us, 400);
    }

    #[test]
    #[should_panic(expected = "event time regressed")]
    fn tumbling_rejects_regression() {
        let mut w = TumblingWindow::new(100);
        w.observe(500, 1.0);
        w.observe(100, 2.0);
    }

    #[test]
    fn tumbling_flush_on_empty_is_none() {
        let mut w = TumblingWindow::new(100);
        assert!(w.flush().is_none());
        w.observe(10, 1.0);
        assert!(w.flush().is_some());
        assert!(w.flush().is_none());
    }

    #[test]
    fn sliding_window_evicts_by_event_time() {
        let mut w = SlidingWindow::new(1_000);
        w.observe(0, 1.0);
        w.observe(500, 2.0);
        w.observe(999, 3.0);
        assert_eq!(w.len(), 3);
        assert_eq!(w.sum(), 6.0);
        assert_eq!(w.mean(), 2.0);
        // At t=1500 the horizon is 500: the t=0 and t=500 entries leave.
        w.observe(1_500, 4.0);
        assert_eq!(w.len(), 2);
        assert_eq!(w.sum(), 7.0);
        assert_eq!(w.min(), 3.0);
        assert_eq!(w.max(), 4.0);
    }

    #[test]
    fn sliding_window_sum_stays_consistent() {
        let mut w = SlidingWindow::new(10);
        for t in 0..1_000u64 {
            w.observe(t, (t % 7) as f64);
        }
        // Recompute from the retained entries.
        let expected: f64 = w.entries.iter().map(|&(_, v)| v).sum();
        assert!((w.sum() - expected).abs() < 1e-9);
        assert!(w.len() <= 10);
    }

    #[test]
    fn sliding_empty_statistics_are_nan() {
        let w = SlidingWindow::new(100);
        assert!(w.is_empty());
        assert!(w.mean().is_nan());
        assert!(w.min().is_nan());
        assert!(w.max().is_nan());
    }

    #[test]
    fn tumbling_snapshot_restores_mid_window() {
        let mut w = TumblingWindow::new(1_000);
        w.observe(100, 1.5);
        w.observe(900, -2.5);
        let mut blob = Vec::new();
        w.snapshot_state(&mut blob);
        assert_eq!(w.state_kind(), "tumbling-window");
        assert_eq!(w.state_version(), 1);
        // Restore into a window built with a different width: the blob
        // carries the full configuration.
        let mut restored = TumblingWindow::new(7);
        restored.restore_state(1, &blob).unwrap();
        assert_eq!(restored.width_us(), 1_000);
        // Both continue identically.
        let a = w.observe(1_100, 10.0).unwrap();
        let b = restored.observe(1_100, 10.0).unwrap();
        assert_eq!(a, b);
        assert_eq!(w.flush(), restored.flush());
    }

    #[test]
    fn sliding_snapshot_restores_entries_and_exact_sum() {
        let mut w = SlidingWindow::new(500);
        for t in 0..400u64 {
            w.observe(t * 3, 0.1 * (t % 13) as f64);
        }
        let mut blob = Vec::new();
        w.snapshot_state(&mut blob);
        let mut restored = SlidingWindow::new(1);
        restored.restore_state(1, &blob).unwrap();
        assert_eq!(restored.len(), w.len());
        assert_eq!(
            restored.sum().to_bits(),
            w.sum().to_bits(),
            "the incremental sum's rounding history must survive"
        );
        w.observe(2_000, 9.0);
        restored.observe(2_000, 9.0);
        assert_eq!(w.sum().to_bits(), restored.sum().to_bits());
        assert_eq!(w.len(), restored.len());
    }

    #[test]
    fn window_restore_rejects_bad_blobs() {
        let mut w = TumblingWindow::new(100);
        assert!(matches!(
            w.restore_state(2, &[]),
            Err(StateError::VersionMismatch { supported: 1, found: 2 })
        ));
        assert!(matches!(w.restore_state(1, &[0u8; 3]), Err(StateError::Corrupt(_))));
        let mut s = SlidingWindow::new(100);
        assert!(matches!(s.restore_state(1, &[0u8; 5]), Err(StateError::Corrupt(_))));
        // A sliding blob whose entries regress in time is rejected.
        let mut bad = Vec::new();
        bad.extend_from_slice(&100u64.to_le_bytes()); // width
        bad.extend_from_slice(&0.0f64.to_bits().to_le_bytes()); // sum
        bad.extend_from_slice(&2u64.to_le_bytes()); // two entries
        bad.extend_from_slice(&50u64.to_le_bytes());
        bad.extend_from_slice(&1.0f64.to_bits().to_le_bytes());
        bad.extend_from_slice(&10u64.to_le_bytes()); // regresses
        bad.extend_from_slice(&2.0f64.to_bits().to_le_bytes());
        assert!(matches!(s.restore_state(1, &bad), Err(StateError::Corrupt(_))));
    }

    #[test]
    fn twenty_four_hour_window_of_actuation_delays() {
        // The paper's use case at scale: 24 h tumbling window over delays.
        const HOUR_US: u64 = 3_600_000_000;
        let mut w = TumblingWindow::new(24 * HOUR_US);
        let mut closed = Vec::new();
        // Three days of hourly delay observations around 20 ms.
        for hour in 0..72u64 {
            let ts = hour * HOUR_US;
            if let Some(agg) = w.observe(ts, 20_000.0 + (hour % 5) as f64) {
                closed.push(agg);
            }
        }
        if let Some(agg) = w.flush() {
            closed.push(agg);
        }
        assert_eq!(closed.len(), 3, "three daily windows");
        for day in &closed {
            assert_eq!(day.count, 24);
            assert!((day.mean() - 20_002.0).abs() < 2.0);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Non-decreasing event times with values, plus per-observation batch
    /// boundaries (a `true` ends the current arrival batch).
    fn observations() -> impl Strategy<Value = Vec<(u64, f64, bool)>> {
        proptest::collection::vec((0u64..5_000, -1_000i32..1_000, any::<bool>()), 0..200).prop_map(
            |raw| {
                let mut ts = 0u64;
                raw.into_iter()
                    .map(|(dt, v, cut)| {
                        ts += dt;
                        (ts, v as f64 / 8.0, cut)
                    })
                    .collect()
            },
        )
    }

    /// Bit-exact comparison: aggregates must match to the last float bit,
    /// because the chaos harness compares serialized window output.
    fn aggs_identical(a: &[WindowAggregate], b: &[WindowAggregate]) -> bool {
        a.len() == b.len()
            && a.iter().zip(b).all(|(x, y)| {
                x.start_us == y.start_us
                    && x.end_us == y.end_us
                    && x.count == y.count
                    && x.sum.to_bits() == y.sum.to_bits()
                    && x.min.to_bits() == y.min.to_bits()
                    && x.max.to_bits() == y.max.to_bits()
            })
    }

    proptest! {
        /// Event-time determinism under arrival batching: the same packet
        /// sequence produces bit-identical aggregates no matter how it is
        /// split into batches, even when the window is snapshotted and
        /// restored into a fresh instance at every batch boundary (the
        /// checkpoint/recover path).
        #[test]
        fn tumbling_batching_and_restore_deterministic(
            obs in observations(),
            width in 1u64..10_000,
        ) {
            let mut straight = TumblingWindow::new(width);
            let mut straight_out = Vec::new();
            for &(ts, v, _) in &obs {
                straight_out.extend(straight.observe(ts, v));
            }
            straight_out.extend(straight.flush());

            let mut batched = TumblingWindow::new(width);
            let mut batched_out = Vec::new();
            for &(ts, v, cut) in &obs {
                batched_out.extend(batched.observe(ts, v));
                if cut {
                    let mut blob = Vec::new();
                    batched.snapshot_state(&mut blob);
                    let mut fresh = TumblingWindow::new(width);
                    fresh.restore_state(1, &blob).unwrap();
                    batched = fresh;
                }
            }
            batched_out.extend(batched.flush());
            prop_assert!(aggs_identical(&straight_out, &batched_out));
        }

        /// Same property for the sliding window: restore at arbitrary cut
        /// points never perturbs the running statistics, bit for bit.
        #[test]
        fn sliding_batching_and_restore_deterministic(
            obs in observations(),
            width in 1u64..10_000,
        ) {
            let mut straight = SlidingWindow::new(width);
            let mut batched = SlidingWindow::new(width);
            for &(ts, v, cut) in &obs {
                straight.observe(ts, v);
                batched.observe(ts, v);
                if cut {
                    let mut blob = Vec::new();
                    batched.snapshot_state(&mut blob);
                    let mut fresh = SlidingWindow::new(width);
                    fresh.restore_state(1, &blob).unwrap();
                    batched = fresh;
                }
                prop_assert_eq!(straight.len(), batched.len());
                prop_assert_eq!(straight.sum().to_bits(), batched.sum().to_bits());
            }
        }

        /// Snapshot → restore → snapshot is the identity on the bytes, for
        /// both window types, from any reachable state.
        #[test]
        fn snapshot_restore_roundtrip_equivalence(
            obs in observations(),
            width in 1u64..10_000,
        ) {
            let mut t = TumblingWindow::new(width);
            let mut s = SlidingWindow::new(width);
            for &(ts, v, _) in &obs {
                t.observe(ts, v);
                s.observe(ts, v);
            }
            let mut blob_t = Vec::new();
            t.snapshot_state(&mut blob_t);
            let mut rt = TumblingWindow::new(width.max(2) - 1);
            rt.restore_state(1, &blob_t).unwrap();
            let mut again = Vec::new();
            rt.snapshot_state(&mut again);
            prop_assert_eq!(&blob_t, &again);

            let mut blob_s = Vec::new();
            s.snapshot_state(&mut blob_s);
            let mut rs = SlidingWindow::new(width + 1);
            rs.restore_state(1, &blob_s).unwrap();
            let mut again = Vec::new();
            rs.snapshot_state(&mut again);
            prop_assert_eq!(&blob_s, &again);
        }
    }
}
