//! IoT small-packet workloads (Fig. 2 and Fig. 7 of the paper).
//!
//! The relay experiments sweep the message size *"from 50 bytes to 10 KB
//! ... We have focused more on relatively small sized messages, which are
//! in the range of 50 to 400 bytes, since majority of the message sizes
//! found in IoT and sensing environment datasets are within that range."*

use neptune_core::{
    now_micros, FieldValue, OperatorContext, SourceStatus, StreamPacket, StreamSource,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The message sizes swept by the paper's relay experiments (bytes).
pub const PAPER_MESSAGE_SIZES: [usize; 5] = [50, 200, 400, 1024, 10 * 1024];

/// Deterministic generator of fixed-size IoT packets.
///
/// Each packet carries a sequence number, an emission timestamp (for
/// end-to-end latency measurement at the receiving stage), and a payload
/// blob padding the packet to the requested size.
#[derive(Debug)]
pub struct IotPacketGenerator {
    payload_size: usize,
    seq: u64,
    rng: StdRng,
    low_entropy: bool,
    /// Reused payload buffer (object reuse on the generation side).
    payload: Vec<u8>,
}

impl IotPacketGenerator {
    /// Generator of packets whose payload blob is `payload_size` bytes.
    /// `low_entropy` selects slowly-varying bytes (sensor-like) instead of
    /// uniform random bytes.
    pub fn new(payload_size: usize, seed: u64, low_entropy: bool) -> Self {
        IotPacketGenerator {
            payload_size,
            seq: 0,
            rng: StdRng::seed_from_u64(seed),
            low_entropy,
            payload: vec![0u8; payload_size],
        }
    }

    /// The configured payload size.
    pub fn payload_size(&self) -> usize {
        self.payload_size
    }

    /// Packets generated so far.
    pub fn generated(&self) -> u64 {
        self.seq
    }

    /// Fill `packet` (cleared first) with the next reading.
    pub fn fill_next(&mut self, packet: &mut StreamPacket) {
        packet.clear();
        if self.low_entropy {
            // Sensor-like payload: a slow ramp with small jitter, so
            // consecutive packets (and bytes within one packet) correlate.
            let base = (self.seq / 16) as u8;
            for (i, b) in self.payload.iter_mut().enumerate() {
                let jitter: u8 = self.rng.random_range(0..4);
                *b = base.wrapping_add((i % 7) as u8).wrapping_add(jitter);
            }
        } else {
            self.rng.fill(&mut self.payload[..]);
        }
        packet
            .push_field("seq", FieldValue::U64(self.seq))
            .push_field("ts", FieldValue::Timestamp(now_micros()))
            .push_field("payload", FieldValue::Bytes(self.payload.clone()));
        self.seq += 1;
    }

    /// Generate the next reading into a fresh packet.
    pub fn next_packet(&mut self) -> StreamPacket {
        let mut p = StreamPacket::with_capacity(3);
        self.fill_next(&mut p);
        p
    }
}

/// A [`StreamSource`] emitting `count` fixed-size packets as fast as
/// downstream backpressure allows, then exhausting. The workhorse packet
/// is reused across emissions.
pub struct FixedSizeSource {
    generator: IotPacketGenerator,
    remaining: u64,
    workhorse: StreamPacket,
}

impl FixedSizeSource {
    /// Source emitting `count` packets of `payload_size` payload bytes.
    pub fn new(payload_size: usize, count: u64, seed: u64) -> Self {
        FixedSizeSource {
            generator: IotPacketGenerator::new(payload_size, seed, false),
            remaining: count,
            workhorse: StreamPacket::with_capacity(3),
        }
    }

    /// Same, but with sensor-like low-entropy payloads.
    pub fn low_entropy(payload_size: usize, count: u64, seed: u64) -> Self {
        FixedSizeSource {
            generator: IotPacketGenerator::new(payload_size, seed, true),
            remaining: count,
            workhorse: StreamPacket::with_capacity(3),
        }
    }
}

impl StreamSource for FixedSizeSource {
    fn next(&mut self, ctx: &mut OperatorContext) -> SourceStatus {
        if self.remaining == 0 {
            return SourceStatus::Exhausted;
        }
        self.generator.fill_next(&mut self.workhorse);
        match ctx.emit(&self.workhorse) {
            Ok(()) => {
                self.remaining -= 1;
                SourceStatus::Emitted(1)
            }
            Err(_) => SourceStatus::Exhausted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neptune_compress::shannon_entropy;

    #[test]
    fn packets_have_expected_layout() {
        let mut g = IotPacketGenerator::new(100, 7, false);
        let p = g.next_packet();
        assert_eq!(p.len(), 3);
        assert_eq!(p.get("seq").unwrap().as_u64(), Some(0));
        assert!(p.get("ts").unwrap().as_timestamp().unwrap() > 0);
        assert_eq!(p.get("payload").unwrap().as_bytes().unwrap().len(), 100);
        let p2 = g.next_packet();
        assert_eq!(p2.get("seq").unwrap().as_u64(), Some(1));
        assert_eq!(g.generated(), 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = IotPacketGenerator::new(64, 42, false);
        let mut b = IotPacketGenerator::new(64, 42, false);
        for _ in 0..10 {
            let (pa, pb) = (a.next_packet(), b.next_packet());
            assert_eq!(
                pa.get("payload").unwrap().as_bytes(),
                pb.get("payload").unwrap().as_bytes()
            );
        }
    }

    #[test]
    fn low_entropy_payloads_are_compressible() {
        let mut lo = IotPacketGenerator::new(4096, 1, true);
        let mut hi = IotPacketGenerator::new(4096, 1, false);
        let ep = lo.next_packet();
        let rp = hi.next_packet();
        let e_lo = shannon_entropy(ep.get("payload").unwrap().as_bytes().unwrap());
        let e_hi = shannon_entropy(rp.get("payload").unwrap().as_bytes().unwrap());
        assert!(e_lo < 6.0, "sensor-like entropy too high: {e_lo}");
        assert!(e_hi > 7.5, "random entropy too low: {e_hi}");
    }

    #[test]
    fn source_emits_exact_count() {
        let mut src = FixedSizeSource::new(50, 25, 1);
        let mut ctx = OperatorContext::collector("src");
        let mut emitted = 0;
        loop {
            match src.next(&mut ctx) {
                SourceStatus::Emitted(n) => emitted += n,
                SourceStatus::Exhausted => break,
                SourceStatus::Idle => {}
            }
        }
        assert_eq!(emitted, 25);
        let collected = ctx.take_collected();
        assert_eq!(collected.len(), 25);
        // Sequence numbers are contiguous.
        for (i, (_, p)) in collected.iter().enumerate() {
            assert_eq!(p.get("seq").unwrap().as_u64(), Some(i as u64));
        }
    }

    #[test]
    fn paper_sizes_are_covered() {
        assert_eq!(PAPER_MESSAGE_SIZES[0], 50);
        assert_eq!(*PAPER_MESSAGE_SIZES.last().unwrap(), 10 * 1024);
    }
}
