//! # neptune-data
//!
//! Workload generators for the NEPTUNE reproduction.
//!
//! The paper evaluates with three data shapes, all reproduced here:
//!
//! * **IoT small-packet streams** ([`iot`]) — §I-A: *"The packet sizes in
//!   IoT settings tend to be very small (~100 bytes)"*; Fig. 2/7 sweep
//!   message sizes from 50 B to 10 KB with emphasis on the 50–400 B range.
//! * **Manufacturing-equipment sensor streams** ([`manufacturing`]) — the
//!   DEBS 2012 Grand Challenge dataset (§III-B5, Fig. 8/9): 66 data fields
//!   per reading, of which the monitoring job uses three chemical-additive
//!   sensors, their three valves, and the timestamp. Readings change
//!   slowly, giving the low-entropy payloads the compression study
//!   exploits. The real dataset is not redistributable, so this module
//!   synthesizes a stream with the same structure and dynamics
//!   (substitution documented in DESIGN.md).
//! * **Random binary streams** ([`random`]) — the paper's high-entropy
//!   control: *"we created a synthetic data stream with random binary data
//!   with stream packets of the same size as the first dataset"*.

pub mod iot;
pub mod manufacturing;
pub mod random;

pub use iot::{FixedSizeSource, IotPacketGenerator, PAPER_MESSAGE_SIZES};
pub use manufacturing::{ManufacturingReading, ManufacturingSimulator, ManufacturingSource};
pub use random::{RandomPayloadGenerator, RandomSource};
