//! Synthetic manufacturing-equipment sensor stream — the DEBS 2012 Grand
//! Challenge workload of §III-B5 and §IV-C (Fig. 8/9).
//!
//! The paper: *"The system ingests a continuous stream of readings captured
//! by sensors. For this particular use case, we used 6 different data
//! fields and the timestamp out of 66 different data fields available in a
//! single reading. Three of these sensor readings correspond to the states
//! of three chemical additive sensors whereas the other three readings
//! capture the states of the corresponding valves. When the state of a
//! sensor changes, the valves actuate resulting in a change of its state.
//! The objective of the job is to monitor the delay between the sensor
//! state change and actuation of the corresponding valve."*
//!
//! The simulator produces readings with exactly that structure: 66 fields
//! (59 auxiliary analog channels plus 3 additive-sensor booleans, 3 valve
//! booleans, and a timestamp), where each valve follows its sensor after a
//! configurable actuation delay. Sensor states toggle rarely, so
//! consecutive readings are nearly identical — the low-entropy property the
//! compression study relies on.

use neptune_core::{FieldValue, OperatorContext, SourceStatus, StreamPacket, StreamSource};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Number of data fields in a DEBS 2012 reading.
pub const TOTAL_FIELDS: usize = 66;
/// Number of chemical additive sensor / valve pairs monitored by the job.
pub const ADDITIVE_PAIRS: usize = 3;
/// Auxiliary analog channels filling the remaining fields
/// (66 = 1 timestamp + 3 sensors + 3 valves + 59 analog channels).
pub const ANALOG_CHANNELS: usize = TOTAL_FIELDS - 1 - 2 * ADDITIVE_PAIRS;

/// One decoded reading (used by tests and the monitoring examples).
#[derive(Debug, Clone, PartialEq)]
pub struct ManufacturingReading {
    /// Reading timestamp, microseconds.
    pub timestamp_us: u64,
    /// Chemical additive sensor states.
    pub sensors: [bool; ADDITIVE_PAIRS],
    /// Valve states (follow the sensors after the actuation delay).
    pub valves: [bool; ADDITIVE_PAIRS],
}

impl ManufacturingReading {
    /// Parse the monitored fields back out of a packet produced by
    /// [`ManufacturingSimulator::fill_next`].
    pub fn from_packet(p: &StreamPacket) -> Option<Self> {
        let timestamp_us = p.get("ts")?.as_timestamp()?;
        let mut sensors = [false; ADDITIVE_PAIRS];
        let mut valves = [false; ADDITIVE_PAIRS];
        for i in 0..ADDITIVE_PAIRS {
            sensors[i] = p.get(&format!("additive_sensor_{i}"))?.as_bool()?;
            valves[i] = p.get(&format!("valve_{i}"))?.as_bool()?;
        }
        Some(ManufacturingReading { timestamp_us, sensors, valves })
    }
}

/// Generates the synthetic reading stream.
#[derive(Debug)]
pub struct ManufacturingSimulator {
    rng: StdRng,
    /// Virtual clock, microseconds.
    clock_us: u64,
    /// Microseconds between readings.
    interval_us: u64,
    /// Probability a given sensor toggles per reading.
    toggle_probability: f64,
    /// Virtual actuation delay: the valve mirrors the sensor this many
    /// microseconds later.
    actuation_delay_us: u64,
    sensors: [bool; ADDITIVE_PAIRS],
    valves: [bool; ADDITIVE_PAIRS],
    /// Pending actuations: (due time, pair index, new state).
    pending: Vec<(u64, usize, bool)>,
    /// Slowly drifting analog channel values.
    analog: [f64; ANALOG_CHANNELS],
    readings: u64,
}

impl ManufacturingSimulator {
    /// Simulator with the default dynamics: 1 ms between readings, a
    /// toggle roughly every 500 readings per sensor, 20 ms actuation
    /// delay.
    pub fn new(seed: u64) -> Self {
        Self::with_dynamics(seed, 1_000, 0.002, 20_000)
    }

    /// Fully parameterized constructor.
    pub fn with_dynamics(
        seed: u64,
        interval_us: u64,
        toggle_probability: f64,
        actuation_delay_us: u64,
    ) -> Self {
        assert!(interval_us > 0, "reading interval must be positive");
        assert!((0.0..=1.0).contains(&toggle_probability));
        let mut rng = StdRng::seed_from_u64(seed);
        let mut analog = [0.0; ANALOG_CHANNELS];
        for a in analog.iter_mut() {
            *a = rng.random_range(0.0..100.0);
        }
        ManufacturingSimulator {
            rng,
            clock_us: 1_600_000_000_000_000, // a fixed epoch for determinism
            interval_us,
            toggle_probability,
            actuation_delay_us,
            sensors: [false; ADDITIVE_PAIRS],
            valves: [false; ADDITIVE_PAIRS],
            pending: Vec::new(),
            analog,
            readings: 0,
        }
    }

    /// Readings produced so far.
    pub fn readings(&self) -> u64 {
        self.readings
    }

    /// The configured actuation delay in microseconds (ground truth the
    /// monitoring job should recover).
    pub fn actuation_delay_us(&self) -> u64 {
        self.actuation_delay_us
    }

    /// Advance the simulation one step and fill `packet` with the full
    /// 66-field reading.
    pub fn fill_next(&mut self, packet: &mut StreamPacket) {
        self.clock_us += self.interval_us;
        // Fire due actuations.
        let now = self.clock_us;
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].0 <= now {
                let (_, pair, state) = self.pending.swap_remove(i);
                self.valves[pair] = state;
            } else {
                i += 1;
            }
        }
        // Maybe toggle sensors; schedule the valve actuation.
        for pair in 0..ADDITIVE_PAIRS {
            if self.rng.random_range(0.0..1.0) < self.toggle_probability {
                self.sensors[pair] = !self.sensors[pair];
                self.pending.push((now + self.actuation_delay_us, pair, self.sensors[pair]));
            }
        }
        // Drift the analog channels a little.
        for a in self.analog.iter_mut() {
            *a += self.rng.random_range(-0.05..0.05);
        }

        packet.clear();
        packet.push_field("ts", FieldValue::Timestamp(self.clock_us));
        for pair in 0..ADDITIVE_PAIRS {
            packet.push_field(
                format!("additive_sensor_{pair}"),
                FieldValue::Bool(self.sensors[pair]),
            );
            packet.push_field(format!("valve_{pair}"), FieldValue::Bool(self.valves[pair]));
        }
        for (ci, a) in self.analog.iter().enumerate() {
            // Quantize to whole units: real PLC channels report integer
            // register values, which is what makes consecutive readings
            // byte-identical (the low-entropy property of the DEBS data).
            packet.push_field(format!("ch_{ci:02}"), FieldValue::F64(a.round()));
        }
        self.readings += 1;
        debug_assert_eq!(packet.len(), TOTAL_FIELDS);
    }

    /// Produce the next reading as a fresh packet.
    pub fn next_packet(&mut self) -> StreamPacket {
        let mut p = StreamPacket::with_capacity(TOTAL_FIELDS);
        self.fill_next(&mut p);
        p
    }
}

/// [`StreamSource`] wrapper emitting `count` readings.
pub struct ManufacturingSource {
    sim: ManufacturingSimulator,
    remaining: u64,
    workhorse: StreamPacket,
}

impl ManufacturingSource {
    /// Source emitting `count` readings from a seeded simulator.
    pub fn new(seed: u64, count: u64) -> Self {
        ManufacturingSource {
            sim: ManufacturingSimulator::new(seed),
            remaining: count,
            workhorse: StreamPacket::with_capacity(TOTAL_FIELDS),
        }
    }

    /// Source with custom dynamics.
    pub fn with_simulator(sim: ManufacturingSimulator, count: u64) -> Self {
        ManufacturingSource {
            sim,
            remaining: count,
            workhorse: StreamPacket::with_capacity(TOTAL_FIELDS),
        }
    }
}

impl StreamSource for ManufacturingSource {
    fn next(&mut self, ctx: &mut OperatorContext) -> SourceStatus {
        if self.remaining == 0 {
            return SourceStatus::Exhausted;
        }
        self.sim.fill_next(&mut self.workhorse);
        match ctx.emit(&self.workhorse) {
            Ok(()) => {
                self.remaining -= 1;
                SourceStatus::Emitted(1)
            }
            Err(_) => SourceStatus::Exhausted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neptune_compress::{compress, shannon_entropy};
    use neptune_core::PacketCodec;

    #[test]
    fn readings_have_66_fields() {
        let mut sim = ManufacturingSimulator::new(1);
        let p = sim.next_packet();
        assert_eq!(p.len(), TOTAL_FIELDS);
        assert!(p.get("ts").is_some());
        assert!(p.get("additive_sensor_0").is_some());
        assert!(p.get("valve_2").is_some());
        assert!(p.get("ch_00").is_some());
        assert!(p.get("ch_58").is_some());
    }

    #[test]
    fn reading_roundtrips_through_struct() {
        let mut sim = ManufacturingSimulator::new(2);
        let p = sim.next_packet();
        let r = ManufacturingReading::from_packet(&p).unwrap();
        assert_eq!(r.timestamp_us, p.get("ts").unwrap().as_timestamp().unwrap());
    }

    #[test]
    fn valves_follow_sensors_with_delay() {
        // High toggle probability to get plenty of events quickly.
        let mut sim = ManufacturingSimulator::with_dynamics(3, 1_000, 0.02, 10_000);
        let mut last_sensor_change: [Option<u64>; ADDITIVE_PAIRS] = [None; ADDITIVE_PAIRS];
        let mut prev: Option<ManufacturingReading> = None;
        let mut delays = Vec::new();
        for _ in 0..20_000 {
            let p = sim.next_packet();
            let r = ManufacturingReading::from_packet(&p).unwrap();
            if let Some(prev) = &prev {
                for pair in 0..ADDITIVE_PAIRS {
                    if r.sensors[pair] != prev.sensors[pair] {
                        last_sensor_change[pair] = Some(r.timestamp_us);
                    }
                    if r.valves[pair] != prev.valves[pair] {
                        if let Some(t0) = last_sensor_change[pair] {
                            delays.push(r.timestamp_us - t0);
                        }
                    }
                }
            }
            prev = Some(r);
        }
        assert!(delays.len() > 20, "too few actuations observed: {}", delays.len());
        let mean = delays.iter().sum::<u64>() as f64 / delays.len() as f64;
        // The observed delay equals the configured delay up to one reading
        // interval of quantization.
        assert!(
            (mean - 10_000.0).abs() < 1_500.0,
            "mean actuation delay {mean}us, expected ~10000us"
        );
    }

    #[test]
    fn stream_is_low_entropy_when_batched() {
        // Serialize a batch of consecutive readings like the output buffer
        // would; the paper's premise is that this batch compresses well.
        let mut sim = ManufacturingSimulator::new(4);
        let mut codec = PacketCodec::new();
        let mut batch = Vec::new();
        for _ in 0..64 {
            let p = sim.next_packet();
            codec.encode_into(&p, &mut batch).unwrap();
        }
        let entropy = shannon_entropy(&batch);
        assert!(entropy < 4.5, "batched sensor entropy too high: {entropy}");
        let compressed = compress(&batch);
        assert!(
            compressed.len() < batch.len() / 2,
            "sensor batch should compress >2x: {} -> {}",
            batch.len(),
            compressed.len()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = ManufacturingSimulator::new(9);
        let mut b = ManufacturingSimulator::new(9);
        for _ in 0..100 {
            assert_eq!(a.next_packet(), b.next_packet());
        }
    }

    #[test]
    fn source_emits_count_readings() {
        let mut src = ManufacturingSource::new(5, 40);
        let mut ctx = OperatorContext::collector("mfg");
        let mut emitted = 0;
        loop {
            match src.next(&mut ctx) {
                SourceStatus::Emitted(n) => emitted += n,
                SourceStatus::Exhausted => break,
                SourceStatus::Idle => {}
            }
        }
        assert_eq!(emitted, 40);
        // Timestamps strictly increase.
        let collected = ctx.take_collected();
        let mut prev = 0;
        for (_, p) in &collected {
            let ts = p.get("ts").unwrap().as_timestamp().unwrap();
            assert!(ts > prev);
            prev = ts;
        }
    }
}
