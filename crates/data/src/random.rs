//! High-entropy random binary streams — the compression study's control
//! workload (§III-B5): *"To simulate a data stream with higher entropy, we
//! created a synthetic data stream with random binary data with stream
//! packets of the same size as the first dataset."*

use neptune_core::{
    now_micros, FieldValue, OperatorContext, SourceStatus, StreamPacket, StreamSource,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Generator of uniform-random payload packets.
#[derive(Debug)]
pub struct RandomPayloadGenerator {
    rng: StdRng,
    payload_size: usize,
    seq: u64,
    payload: Vec<u8>,
}

impl RandomPayloadGenerator {
    /// Generator of `payload_size`-byte random payloads.
    pub fn new(payload_size: usize, seed: u64) -> Self {
        RandomPayloadGenerator {
            rng: StdRng::seed_from_u64(seed),
            payload_size,
            seq: 0,
            payload: vec![0u8; payload_size],
        }
    }

    /// Match the serialized size of another stream's packets by measuring
    /// one of them: the paper sized its random stream to the sensor
    /// stream's packets. `target_serialized` is that reference size;
    /// overheads (3 fields, names, tags) are subtracted.
    pub fn sized_to_match(target_serialized: usize, seed: u64) -> Self {
        // Field overhead of the seq/ts/payload layout: measured once.
        const LAYOUT_OVERHEAD: usize = 2 + (1 + 3 + 1 + 8) + (1 + 2 + 1 + 8) + (1 + 7 + 1 + 4);
        let payload = target_serialized.saturating_sub(LAYOUT_OVERHEAD).max(1);
        Self::new(payload, seed)
    }

    /// Fill `packet` (cleared) with the next random reading.
    pub fn fill_next(&mut self, packet: &mut StreamPacket) {
        packet.clear();
        self.rng.fill(&mut self.payload[..]);
        packet
            .push_field("seq", FieldValue::U64(self.seq))
            .push_field("ts", FieldValue::Timestamp(now_micros()))
            .push_field("payload", FieldValue::Bytes(self.payload.clone()));
        self.seq += 1;
    }

    /// Next reading as a fresh packet.
    pub fn next_packet(&mut self) -> StreamPacket {
        let mut p = StreamPacket::with_capacity(3);
        self.fill_next(&mut p);
        p
    }

    /// The configured payload size in bytes.
    pub fn payload_size(&self) -> usize {
        self.payload_size
    }
}

/// [`StreamSource`] emitting `count` random packets.
pub struct RandomSource {
    generator: RandomPayloadGenerator,
    remaining: u64,
    workhorse: StreamPacket,
}

impl RandomSource {
    /// Source emitting `count` packets of `payload_size` random bytes.
    pub fn new(payload_size: usize, count: u64, seed: u64) -> Self {
        RandomSource {
            generator: RandomPayloadGenerator::new(payload_size, seed),
            remaining: count,
            workhorse: StreamPacket::with_capacity(3),
        }
    }
}

impl StreamSource for RandomSource {
    fn next(&mut self, ctx: &mut OperatorContext) -> SourceStatus {
        if self.remaining == 0 {
            return SourceStatus::Exhausted;
        }
        self.generator.fill_next(&mut self.workhorse);
        match ctx.emit(&self.workhorse) {
            Ok(()) => {
                self.remaining -= 1;
                SourceStatus::Emitted(1)
            }
            Err(_) => SourceStatus::Exhausted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neptune_compress::shannon_entropy;
    use neptune_core::PacketCodec;

    #[test]
    fn payloads_are_high_entropy() {
        let mut g = RandomPayloadGenerator::new(8192, 11);
        let p = g.next_packet();
        let e = shannon_entropy(p.get("payload").unwrap().as_bytes().unwrap());
        assert!(e > 7.8, "entropy {e}");
    }

    #[test]
    fn batched_random_stream_does_not_compress() {
        let mut g = RandomPayloadGenerator::new(256, 12);
        let mut codec = PacketCodec::new();
        let mut batch = Vec::new();
        for _ in 0..64 {
            codec.encode_into(&g.next_packet(), &mut batch).unwrap();
        }
        // Only the per-packet field-name scaffolding (~10% of the bytes)
        // is compressible; the payloads themselves must not shrink.
        let c = neptune_compress::compress(&batch);
        assert!(
            c.len() >= batch.len() * 85 / 100,
            "random batch compressed: {} -> {}",
            batch.len(),
            c.len()
        );
    }

    #[test]
    fn sized_to_match_tracks_reference() {
        // Serialize a reference packet, build a matched random stream, and
        // compare serialized sizes.
        let mut reference = RandomPayloadGenerator::new(300, 1);
        let mut codec = PacketCodec::new();
        let ref_size = codec.encode(&reference.next_packet()).unwrap().len();
        let mut matched = RandomPayloadGenerator::sized_to_match(ref_size, 2);
        let got = codec.encode(&matched.next_packet()).unwrap().len();
        let diff = (got as i64 - ref_size as i64).abs();
        assert!(diff <= 2, "sizes diverge: reference {ref_size}, matched {got}");
    }

    #[test]
    fn source_drains() {
        let mut src = RandomSource::new(64, 10, 3);
        let mut ctx = OperatorContext::collector("rand");
        let mut n = 0;
        while let SourceStatus::Emitted(k) = src.next(&mut ctx) {
            n += k;
        }
        assert_eq!(n, 10);
    }

    #[test]
    fn deterministic_given_seed() {
        // Payload bytes are seed-deterministic; the timestamp field is
        // wall-clock and intentionally excluded from the comparison.
        let mut a = RandomPayloadGenerator::new(32, 5);
        let mut b = RandomPayloadGenerator::new(32, 5);
        let (pa, pb) = (a.next_packet(), b.next_packet());
        assert_eq!(pa.get("payload").unwrap().as_bytes(), pb.get("payload").unwrap().as_bytes());
        assert_eq!(pa.get("seq").unwrap().as_u64(), pb.get("seq").unwrap().as_u64());
    }
}
