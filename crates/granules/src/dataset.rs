//! Datasets — unified access to low-level data (§II of the NEPTUNE paper):
//! *"A computational task accesses data through a dataset. The dataset
//! unifies the access of different types of resources and encapsulates the
//! access to low level data such as files, streams or databases."*
//!
//! Two concrete datasets are provided: [`InMemoryDataset`] (a record store,
//! standing in for Granules' file/database datasets) and [`QueueDataset`]
//! (a bounded stream buffer with availability notifications — the shape
//! NEPTUNE's stream dataset layer builds on).

use crossbeam::queue::ArrayQueue;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Identifier of a dataset within a resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DatasetId(pub u64);

/// Common dataset behaviour: lifecycle plus a data-availability probe used
/// by data-driven scheduling.
pub trait Dataset: Send + Sync {
    /// Dataset identifier.
    fn id(&self) -> DatasetId;
    /// True when a consumer would find data to process.
    fn has_data(&self) -> bool;
    /// Number of available items (best effort for concurrent structures).
    fn len(&self) -> usize;
    /// True when no data is available.
    fn is_empty(&self) -> bool {
        !self.has_data()
    }
    /// Called by the framework when the dataset is closed; releases
    /// underlying handles.
    fn close(&self);
}

/// A keyed in-memory record store — the simplest Granules dataset,
/// standing in for file/database access in tests and examples.
pub struct InMemoryDataset {
    id: DatasetId,
    records: RwLock<HashMap<String, Vec<u8>>>,
    closed: AtomicU64,
}

impl InMemoryDataset {
    /// New empty store.
    pub fn new(id: DatasetId) -> Self {
        InMemoryDataset { id, records: RwLock::new(HashMap::new()), closed: AtomicU64::new(0) }
    }

    /// Insert or replace a record.
    pub fn put(&self, key: impl Into<String>, value: Vec<u8>) {
        self.records.write().insert(key.into(), value);
    }

    /// Fetch a record by key.
    pub fn get(&self, key: &str) -> Option<Vec<u8>> {
        self.records.read().get(key).cloned()
    }

    /// Remove a record, returning it.
    pub fn remove(&self, key: &str) -> Option<Vec<u8>> {
        self.records.write().remove(key)
    }

    /// Whether `close` has been called.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire) != 0
    }
}

impl Dataset for InMemoryDataset {
    fn id(&self) -> DatasetId {
        self.id
    }
    fn has_data(&self) -> bool {
        !self.records.read().is_empty()
    }
    fn len(&self) -> usize {
        self.records.read().len()
    }
    fn close(&self) {
        self.closed.store(1, Ordering::Release);
        self.records.write().clear();
    }
}

/// A bounded multi-producer multi-consumer byte-item queue with a
/// notification hook: each successful push invokes the registered callback,
/// which the resource wires to the consuming task's data-driven signal.
pub struct QueueDataset<T: Send> {
    id: DatasetId,
    queue: Arc<ArrayQueue<T>>,
    notify: RwLock<Option<Arc<dyn Fn() + Send + Sync>>>,
    pushed: AtomicU64,
    popped: AtomicU64,
    rejected: AtomicU64,
    closed: AtomicU64,
}

impl<T: Send> QueueDataset<T> {
    /// Bounded queue with `capacity` slots.
    pub fn new(id: DatasetId, capacity: usize) -> Self {
        QueueDataset {
            id,
            queue: Arc::new(ArrayQueue::new(capacity)),
            notify: RwLock::new(None),
            pushed: AtomicU64::new(0),
            popped: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            closed: AtomicU64::new(0),
        }
    }

    /// Whether [`Dataset::close`] has been called — consumers use this to
    /// distinguish "empty for now" from "finished" (end-of-stream).
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire) != 0
    }

    /// Register the availability callback (replaces any previous one).
    pub fn on_data<F: Fn() + Send + Sync + 'static>(&self, f: F) {
        *self.notify.write() = Some(Arc::new(f));
    }

    /// Try to push an item. On success the availability callback fires.
    /// Returns the item back on a full **or closed** queue (the former is
    /// the flow-control point, the latter end-of-stream).
    pub fn push(&self, item: T) -> Result<(), T> {
        if self.is_closed() {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(item);
        }
        match self.queue.push(item) {
            Ok(()) => {
                self.pushed.fetch_add(1, Ordering::Relaxed);
                let cb = self.notify.read().clone();
                if let Some(cb) = cb {
                    cb();
                }
                Ok(())
            }
            Err(item) => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                Err(item)
            }
        }
    }

    /// Pop one item if available.
    pub fn pop(&self) -> Option<T> {
        let item = self.queue.pop();
        if item.is_some() {
            self.popped.fetch_add(1, Ordering::Relaxed);
        }
        item
    }

    /// Items successfully pushed over the dataset's lifetime.
    pub fn total_pushed(&self) -> u64 {
        self.pushed.load(Ordering::Relaxed)
    }

    /// Items popped over the dataset's lifetime.
    pub fn total_popped(&self) -> u64 {
        self.popped.load(Ordering::Relaxed)
    }

    /// Pushes rejected because the queue was full.
    pub fn total_rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Capacity of the bounded queue.
    pub fn capacity(&self) -> usize {
        self.queue.capacity()
    }
}

impl<T: Send> Dataset for QueueDataset<T> {
    fn id(&self) -> DatasetId {
        self.id
    }
    fn has_data(&self) -> bool {
        !self.queue.is_empty()
    }
    fn len(&self) -> usize {
        self.queue.len()
    }
    fn close(&self) {
        // Close marks end-of-stream: no further pushes are accepted, the
        // notify hook is released, and *consumers keep draining* whatever
        // was already queued — a stream's tail must not be discarded.
        self.closed.store(1, Ordering::Release);
        *self.notify.write() = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_memory_put_get_remove() {
        let ds = InMemoryDataset::new(DatasetId(1));
        assert!(!ds.has_data());
        ds.put("k", vec![1, 2, 3]);
        assert!(ds.has_data());
        assert_eq!(ds.len(), 1);
        assert_eq!(ds.get("k"), Some(vec![1, 2, 3]));
        assert_eq!(ds.remove("k"), Some(vec![1, 2, 3]));
        assert!(ds.is_empty());
    }

    #[test]
    fn in_memory_close_clears() {
        let ds = InMemoryDataset::new(DatasetId(2));
        ds.put("a", vec![9]);
        ds.close();
        assert!(ds.is_closed());
        assert!(!ds.has_data());
        assert_eq!(ds.get("a"), None);
    }

    #[test]
    fn queue_push_pop_counts() {
        let q: QueueDataset<u32> = QueueDataset::new(DatasetId(3), 4);
        assert_eq!(q.capacity(), 4);
        for i in 0..4 {
            assert!(q.push(i).is_ok());
        }
        // Full: push must hand the item back.
        assert_eq!(q.push(99), Err(99));
        assert_eq!(q.total_rejected(), 1);
        assert_eq!(q.pop(), Some(0));
        assert!(q.push(99).is_ok());
        assert_eq!(q.total_pushed(), 5);
        assert_eq!(q.total_popped(), 1);
        assert_eq!(q.len(), 4);
    }

    #[test]
    fn queue_notifies_on_push() {
        let q: QueueDataset<u8> = QueueDataset::new(DatasetId(4), 8);
        let fired = Arc::new(AtomicU64::new(0));
        let f = fired.clone();
        q.on_data(move || {
            f.fetch_add(1, Ordering::Relaxed);
        });
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(fired.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn queue_full_push_does_not_notify() {
        let q: QueueDataset<u8> = QueueDataset::new(DatasetId(5), 1);
        let fired = Arc::new(AtomicU64::new(0));
        let f = fired.clone();
        q.on_data(move || {
            f.fetch_add(1, Ordering::Relaxed);
        });
        q.push(1).unwrap();
        assert!(q.push(2).is_err());
        assert_eq!(fired.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn queue_close_is_end_of_stream() {
        let q: QueueDataset<u8> = QueueDataset::new(DatasetId(6), 8);
        assert!(!q.is_closed());
        q.push(1).unwrap();
        q.close();
        assert!(q.is_closed());
        // The tail remains drainable; new pushes are rejected.
        assert_eq!(q.push(2), Err(2));
        assert_eq!(q.pop(), Some(1));
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn queue_is_mpmc_safe() {
        let q = Arc::new(QueueDataset::<u64>::new(DatasetId(7), 1024));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = q.clone();
                std::thread::spawn(move || {
                    for i in 0..250u64 {
                        let mut item = p * 1000 + i;
                        loop {
                            match q.push(item) {
                                Ok(()) => break,
                                Err(back) => item = back,
                            }
                        }
                    }
                })
            })
            .collect();
        let consumer = {
            let q = q.clone();
            std::thread::spawn(move || {
                let mut got = 0u64;
                while got < 1000 {
                    if q.pop().is_some() {
                        got += 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
                got
            })
        };
        for p in producers {
            p.join().unwrap();
        }
        assert_eq!(consumer.join().unwrap(), 1000);
        assert_eq!(q.total_pushed(), 1000);
        assert_eq!(q.total_popped(), 1000);
    }
}
