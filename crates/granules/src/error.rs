//! Error type shared across the Granules runtime.

use crate::task::TaskId;

/// Errors surfaced by the Granules runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GranulesError {
    /// The resource has been shut down; no further deployments or signals.
    ResourceShutDown,
    /// No task with this id is deployed on the resource.
    UnknownTask(TaskId),
    /// The task exists but has already terminated.
    TaskTerminated(TaskId),
    /// A schedule specification was internally inconsistent.
    InvalidSchedule(String),
    /// A dataset operation failed.
    Dataset(String),
}

impl std::fmt::Display for GranulesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GranulesError::ResourceShutDown => write!(f, "resource has been shut down"),
            GranulesError::UnknownTask(id) => write!(f, "unknown task {id:?}"),
            GranulesError::TaskTerminated(id) => write!(f, "task {id:?} already terminated"),
            GranulesError::InvalidSchedule(msg) => write!(f, "invalid schedule: {msg}"),
            GranulesError::Dataset(msg) => write!(f, "dataset error: {msg}"),
        }
    }
}

impl std::error::Error for GranulesError {}
