//! The IO-thread tier of the two-tier execution plane.
//!
//! NEPTUNE §III-B6: instead of Storm's thread-per-activity model, the
//! runtime keeps exactly two pools — worker threads for computational tasks
//! ([`crate::WorkerPool`]) and a small set of IO threads for everything
//! event-shaped: source pumps, flush deadlines, heartbeat monitors,
//! samplers. An [`IoTask`] is a cooperatively-scheduled state machine: its
//! `run` method does a bounded stint of work and then reports whether it has
//! more ([`IoStatus::Ready`]), wants to sleep until an external wake
//! ([`IoStatus::Park`]) or a deadline ([`IoStatus::ParkUntil`]), or is done
//! ([`IoStatus::Complete`]). Parked tasks cost *nothing* — no thread, no
//! poll — until an event ([`IoTaskHandle::wake`]) or the pool's
//! [`TimerWheel`] re-queues them, which is what lets one node host hundreds
//! of idle sources on a handful of threads.
//!
//! Wake/park races are resolved by a per-task atomic state machine
//! (PARKED / QUEUED / RUNNING / NOTIFIED / DONE): a wake that arrives while
//! the task is mid-run flags NOTIFIED and the pool re-queues the task
//! instead of parking it, so no event is ever lost between "checked for
//! work" and "parked".

use crate::wheel::{TimerScheduler, TimerWheel};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

/// What an [`IoTask`] wants after a run stint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoStatus {
    /// More work immediately available: re-queue at the back (fairness).
    Ready,
    /// Nothing to do until an external [`IoTaskHandle::wake`].
    Park,
    /// Nothing to do until the given deadline (or an earlier wake).
    ParkUntil(Instant),
    /// Finished; the task is dropped.
    Complete,
}

/// Execution context handed to each [`IoTask::run`] stint.
pub struct IoContext {
    shutting_down: bool,
}

impl IoContext {
    /// True when the pool is draining: the task should flush/close and
    /// return [`IoStatus::Complete`] — any other status retires it anyway.
    pub fn shutting_down(&self) -> bool {
        self.shutting_down
    }
}

/// A cooperatively-scheduled unit of IO work.
pub trait IoTask: Send + 'static {
    /// Perform a bounded stint of work. Must not block indefinitely; long
    /// waits are expressed by parking, not by sleeping on the thread.
    fn run(&mut self, ctx: &IoContext) -> IoStatus;

    /// Called once at pool shutdown if the task never returned
    /// [`IoStatus::Complete`] — last chance to release resources.
    fn on_shutdown(&mut self) {}
}

const ST_PARKED: u8 = 0;
const ST_QUEUED: u8 = 1;
const ST_RUNNING: u8 = 2;
/// Running, and a wake arrived mid-run: re-queue instead of parking.
const ST_NOTIFIED: u8 = 3;
const ST_DONE: u8 = 4;

struct IoSlot {
    state: AtomicU8,
    task: Mutex<Option<Box<dyn IoTask>>>,
}

impl IoSlot {
    fn retire(&self, finished: bool) {
        if let Some(mut t) = self.task.lock().take() {
            if !finished {
                t.on_shutdown();
            }
        }
        self.state.store(ST_DONE, Ordering::Release);
    }
}

/// Handle for waking (or observing) a spawned [`IoTask`]. Cloneable and
/// cheap; safe to call from timer callbacks, queue gate listeners, or any
/// other thread.
#[derive(Clone)]
pub struct IoTaskHandle {
    slot: Arc<IoSlot>,
    pool: Weak<IoPoolInner>,
}

impl IoTaskHandle {
    /// Wake the task: a parked task is re-queued; a running task is flagged
    /// to re-run; an already-queued task absorbs the wake. Returns `false`
    /// only if the task has completed (or the pool is gone).
    pub fn wake(&self) -> bool {
        loop {
            match self.slot.state.load(Ordering::Acquire) {
                ST_PARKED => {
                    if self
                        .slot
                        .state
                        .compare_exchange(ST_PARKED, ST_QUEUED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        let Some(pool) = self.pool.upgrade() else {
                            self.slot.state.store(ST_DONE, Ordering::Release);
                            return false;
                        };
                        pool.wakes.fetch_add(1, Ordering::Relaxed);
                        pool.enqueue(self.slot.clone());
                        return true;
                    }
                }
                ST_RUNNING => {
                    if self
                        .slot
                        .state
                        .compare_exchange(
                            ST_RUNNING,
                            ST_NOTIFIED,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
                    {
                        if let Some(pool) = self.pool.upgrade() {
                            pool.wakes.fetch_add(1, Ordering::Relaxed);
                        }
                        return true;
                    }
                }
                ST_QUEUED | ST_NOTIFIED => return true,
                _ => return false, // ST_DONE
            }
        }
    }

    /// True once the task has completed (or been retired at shutdown).
    pub fn is_complete(&self) -> bool {
        self.slot.state.load(Ordering::Acquire) == ST_DONE
    }
}

/// Point-in-time gauges for the IO tier, exported through telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoPoolStats {
    /// Fixed number of IO threads.
    pub io_threads: usize,
    /// Tasks spawned and not yet completed/retired.
    pub live_tasks: usize,
    /// Tasks currently waiting in the ready queue.
    pub queued_tasks: usize,
    /// Cumulative park transitions (task went idle).
    pub parks: u64,
    /// Cumulative wake events delivered (timer or external).
    pub wakes: u64,
    /// Cumulative run stints executed.
    pub polls: u64,
    /// Live registrations on the pool's timer wheel.
    pub timer_depth: usize,
    /// Cumulative timer callbacks fired.
    pub timer_fires: u64,
}

struct IoPoolInner {
    queue: Mutex<VecDeque<Arc<IoSlot>>>,
    cv: Condvar,
    shutdown: AtomicBool,
    live: AtomicUsize,
    parks: AtomicU64,
    wakes: AtomicU64,
    polls: AtomicU64,
    threads: usize,
    /// Weak registry of every spawned slot so shutdown can wake/retire
    /// parked tasks it would otherwise never see again.
    slots: Mutex<Vec<Weak<IoSlot>>>,
}

impl IoPoolInner {
    fn enqueue(&self, slot: Arc<IoSlot>) {
        self.queue.lock().push_back(slot);
        self.cv.notify_one();
    }
}

/// Create a slot for `task`, register it with the pool, and (for
/// `ST_QUEUED`) hand it to the ready queue. Shared by [`IoPool`]'s
/// spawn methods and the late-bound [`IoSpawner`].
fn spawn_on(inner: &Arc<IoPoolInner>, task: Box<dyn IoTask>, state: u8) -> IoTaskHandle {
    let slot = Arc::new(IoSlot { state: AtomicU8::new(state), task: Mutex::new(Some(task)) });
    inner.live.fetch_add(1, Ordering::Relaxed);
    {
        let mut slots = inner.slots.lock();
        if slots.len() > 64 && slots.len() > inner.live.load(Ordering::Relaxed) * 2 {
            slots.retain(|w| w.upgrade().is_some());
        }
        slots.push(Arc::downgrade(&slot));
    }
    let handle = IoTaskHandle { slot: slot.clone(), pool: Arc::downgrade(inner) };
    if state == ST_QUEUED {
        inner.enqueue(slot);
    }
    handle
}

/// Cloneable spawner detached from the [`IoPool`]'s lifetime: lets code
/// that never sees the pool (e.g. a TCP acceptor task spawning one task
/// per accepted connection) add tasks dynamically. Spawning fails once
/// the pool has shut down.
#[derive(Clone)]
pub struct IoSpawner {
    inner: Weak<IoPoolInner>,
}

impl IoSpawner {
    /// Spawn a task in the ready queue. `None` once the pool is gone or
    /// draining.
    pub fn spawn(&self, task: impl IoTask) -> Option<IoTaskHandle> {
        self.spawn_boxed(Box::new(task), ST_QUEUED)
    }

    /// Spawn a task parked; it runs only once woken. `None` once the pool
    /// is gone or draining.
    pub fn spawn_parked(&self, task: impl IoTask) -> Option<IoTaskHandle> {
        self.spawn_boxed(Box::new(task), ST_PARKED)
    }

    fn spawn_boxed(&self, task: Box<dyn IoTask>, state: u8) -> Option<IoTaskHandle> {
        let inner = self.inner.upgrade()?;
        if inner.shutdown.load(Ordering::Acquire) {
            return None;
        }
        Some(spawn_on(&inner, task, state))
    }
}

/// Fixed-size event-driven IO thread pool with an owned [`TimerWheel`].
pub struct IoPool {
    inner: Arc<IoPoolInner>,
    timer: Option<TimerWheel>,
    joins: Vec<std::thread::JoinHandle<()>>,
}

impl IoPool {
    /// Spawn `threads` IO threads (named `{name}-io-{i}`) plus the shared
    /// timer wheel thread.
    pub fn new(name: &str, threads: usize) -> IoPool {
        let threads = threads.max(1);
        let inner = Arc::new(IoPoolInner {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            live: AtomicUsize::new(0),
            parks: AtomicU64::new(0),
            wakes: AtomicU64::new(0),
            polls: AtomicU64::new(0),
            threads,
            slots: Mutex::new(Vec::new()),
        });
        let timer = TimerWheel::start();
        let scheduler = timer.scheduler();
        let joins = (0..threads)
            .map(|i| {
                let pool = inner.clone();
                let sched = scheduler.clone();
                std::thread::Builder::new()
                    .name(format!("{name}-io-{i}"))
                    .spawn(move || io_loop(pool, sched))
                    .expect("spawn io thread")
            })
            .collect();
        IoPool { inner, timer: Some(timer), joins }
    }

    /// Number of IO threads.
    pub fn threads(&self) -> usize {
        self.inner.threads
    }

    /// Scheduling handle onto the pool's timer wheel.
    pub fn scheduler(&self) -> TimerScheduler {
        self.timer.as_ref().expect("pool live").scheduler()
    }

    /// Spawn a task in the ready queue (first run as soon as a thread frees).
    pub fn spawn(&self, task: impl IoTask) -> IoTaskHandle {
        self.spawn_with_state(task, ST_QUEUED)
    }

    /// Spawn a task parked; it runs only once woken.
    pub fn spawn_parked(&self, task: impl IoTask) -> IoTaskHandle {
        self.spawn_with_state(task, ST_PARKED)
    }

    /// Spawn a task that runs immediately and is then woken every `period`
    /// by the timer wheel (the task should end each stint with
    /// [`IoStatus::Park`]).
    pub fn spawn_periodic(&self, period: Duration, task: impl IoTask) -> IoTaskHandle {
        let handle = self.spawn_with_state(task, ST_QUEUED);
        let wake = handle.clone();
        self.scheduler().register(period, move || {
            wake.wake();
        });
        handle
    }

    fn spawn_with_state(&self, task: impl IoTask, state: u8) -> IoTaskHandle {
        spawn_on(&self.inner, Box::new(task), state)
    }

    /// A cloneable spawner for adding tasks without a pool reference —
    /// the hook dynamic task sources (e.g. TCP acceptors) use.
    pub fn spawner(&self) -> IoSpawner {
        IoSpawner { inner: Arc::downgrade(&self.inner) }
    }

    /// Snapshot of the tier's gauges.
    pub fn stats(&self) -> IoPoolStats {
        let (timer_depth, timer_fires) = match &self.timer {
            Some(t) => (t.active(), t.fires()),
            None => (0, 0),
        };
        IoPoolStats {
            io_threads: self.inner.threads,
            live_tasks: self.inner.live.load(Ordering::Relaxed),
            queued_tasks: self.inner.queue.lock().len(),
            parks: self.inner.parks.load(Ordering::Relaxed),
            wakes: self.inner.wakes.load(Ordering::Relaxed),
            polls: self.inner.polls.load(Ordering::Relaxed),
            timer_depth,
            timer_fires,
        }
    }

    /// Drain and stop the tier: the timer wheel is stopped first (no more
    /// timer wakes), every parked task is woken so it gets one final
    /// `run`/`on_shutdown` stint, the ready queue is drained to empty, and
    /// all IO threads are joined. Idempotent.
    pub fn shutdown(&mut self) {
        // Take strong refs *before* stopping the wheel: a periodic task's
        // slot may be kept alive only by its timer closure, which the
        // wheel shutdown drops — upgrading afterwards would miss it and
        // leak its live count.
        let slots: Vec<Arc<IoSlot>> =
            self.inner.slots.lock().iter().filter_map(|w| w.upgrade()).collect();
        if let Some(timer) = self.timer.take() {
            timer.shutdown();
        }
        self.inner.shutdown.store(true, Ordering::Release);
        for slot in &slots {
            let handle = IoTaskHandle { slot: slot.clone(), pool: Arc::downgrade(&self.inner) };
            handle.wake();
        }
        self.inner.cv.notify_all();
        for t in self.joins.drain(..) {
            let _ = t.join();
        }
        // Anything still queued (e.g. woken after the threads decided to
        // exit) is retired synchronously so the queue ends empty.
        let leftovers: Vec<Arc<IoSlot>> = self.inner.queue.lock().drain(..).collect();
        for slot in leftovers {
            slot.retire(false);
            self.inner.live.fetch_sub(1, Ordering::Relaxed);
        }
        // Final sweep: any task the threads never got to (all joined by
        // now, so this cannot race a run stint) is retired here.
        for slot in slots {
            if slot.state.load(Ordering::Acquire) != ST_DONE {
                slot.retire(false);
                self.inner.live.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }
}

impl Drop for IoPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn io_loop(inner: Arc<IoPoolInner>, scheduler: TimerScheduler) {
    loop {
        let slot = {
            let mut q = inner.queue.lock();
            loop {
                if let Some(s) = q.pop_front() {
                    break s;
                }
                if inner.shutdown.load(Ordering::Acquire) {
                    return;
                }
                inner.cv.wait(&mut q);
            }
        };
        let shutting = inner.shutdown.load(Ordering::Acquire);
        slot.state.store(ST_RUNNING, Ordering::Release);
        let status = {
            let mut task = slot.task.lock();
            match task.as_mut() {
                Some(t) => t.run(&IoContext { shutting_down: shutting }),
                None => IoStatus::Complete,
            }
        };
        inner.polls.fetch_add(1, Ordering::Relaxed);
        if shutting {
            // Drain mode: one final stint, then retire regardless of status.
            slot.retire(matches!(status, IoStatus::Complete));
            inner.live.fetch_sub(1, Ordering::Relaxed);
            continue;
        }
        match status {
            IoStatus::Ready => {
                slot.state.store(ST_QUEUED, Ordering::Release);
                inner.enqueue(slot);
            }
            IoStatus::Complete => {
                slot.retire(true);
                inner.live.fetch_sub(1, Ordering::Relaxed);
            }
            IoStatus::Park | IoStatus::ParkUntil(_) => {
                match slot.state.compare_exchange(
                    ST_RUNNING,
                    ST_PARKED,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => {
                        inner.parks.fetch_add(1, Ordering::Relaxed);
                        if let IoStatus::ParkUntil(deadline) = status {
                            let handle =
                                IoTaskHandle { slot: slot.clone(), pool: Arc::downgrade(&inner) };
                            scheduler.schedule_once(deadline, move || {
                                handle.wake();
                            });
                        }
                    }
                    Err(_) => {
                        // A wake landed mid-run (NOTIFIED): re-queue so the
                        // event is not lost.
                        slot.state.store(ST_QUEUED, Ordering::Release);
                        inner.enqueue(slot);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::wait_until;

    struct CountTask {
        runs: Arc<AtomicU64>,
        status: IoStatus,
    }

    impl IoTask for CountTask {
        fn run(&mut self, _ctx: &IoContext) -> IoStatus {
            self.runs.fetch_add(1, Ordering::Relaxed);
            self.status
        }
    }

    #[test]
    fn parked_task_runs_only_when_woken() {
        let mut pool = IoPool::new("t", 2);
        let runs = Arc::new(AtomicU64::new(0));
        let h = pool.spawn_parked(CountTask { runs: runs.clone(), status: IoStatus::Park });
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(runs.load(Ordering::Relaxed), 0, "parked task ran unwoken");
        assert!(h.wake());
        assert!(wait_until(Instant::now() + Duration::from_secs(2), || {
            runs.load(Ordering::Relaxed) == 1
        }));
        let stats = pool.stats();
        assert_eq!(stats.live_tasks, 1);
        assert!(stats.wakes >= 1);
        assert!(stats.parks >= 1);
        pool.shutdown();
        assert!(h.is_complete());
        assert_eq!(pool.stats().queued_tasks, 0, "queue must drain at shutdown");
    }

    #[test]
    fn park_until_rewakes_via_timer() {
        let mut pool = IoPool::new("t", 1);
        let runs = Arc::new(AtomicU64::new(0));
        struct Backoff(Arc<AtomicU64>);
        impl IoTask for Backoff {
            fn run(&mut self, _ctx: &IoContext) -> IoStatus {
                if self.0.fetch_add(1, Ordering::Relaxed) >= 4 {
                    IoStatus::Complete
                } else {
                    IoStatus::ParkUntil(Instant::now() + Duration::from_millis(2))
                }
            }
        }
        let h = pool.spawn(Backoff(runs.clone()));
        assert!(wait_until(Instant::now() + Duration::from_secs(5), || h.is_complete()));
        assert_eq!(runs.load(Ordering::Relaxed), 5);
        assert_eq!(pool.stats().live_tasks, 0);
        pool.shutdown();
    }

    #[test]
    fn wake_during_run_requeues_instead_of_parking() {
        let mut pool = IoPool::new("t", 1);
        let runs = Arc::new(AtomicU64::new(0));
        struct SlowPark {
            runs: Arc<AtomicU64>,
            gate: Arc<AtomicBool>,
        }
        impl IoTask for SlowPark {
            fn run(&mut self, _ctx: &IoContext) -> IoStatus {
                self.runs.fetch_add(1, Ordering::Relaxed);
                // Hold the run long enough for the waker to land mid-run.
                while !self.gate.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
                IoStatus::Park
            }
        }
        let gate = Arc::new(AtomicBool::new(false));
        let h = pool.spawn(SlowPark { runs: runs.clone(), gate: gate.clone() });
        assert!(wait_until(Instant::now() + Duration::from_secs(2), || {
            runs.load(Ordering::Relaxed) == 1
        }));
        // Task is mid-run; this wake must not be lost.
        assert!(h.wake());
        gate.store(true, Ordering::Release);
        assert!(
            wait_until(Instant::now() + Duration::from_secs(2), || runs.load(Ordering::Relaxed)
                >= 2),
            "mid-run wake was dropped"
        );
        pool.shutdown();
    }

    #[test]
    fn ready_tasks_share_threads_fairly() {
        let mut pool = IoPool::new("t", 2);
        let a = Arc::new(AtomicU64::new(0));
        let b = Arc::new(AtomicU64::new(0));
        struct Busy(Arc<AtomicU64>);
        impl IoTask for Busy {
            fn run(&mut self, ctx: &IoContext) -> IoStatus {
                if ctx.shutting_down() {
                    return IoStatus::Complete;
                }
                if self.0.fetch_add(1, Ordering::Relaxed) >= 200 {
                    IoStatus::Complete
                } else {
                    IoStatus::Ready
                }
            }
        }
        let ha = pool.spawn(Busy(a.clone()));
        let hb = pool.spawn(Busy(b.clone()));
        assert!(wait_until(Instant::now() + Duration::from_secs(5), || {
            ha.is_complete() && hb.is_complete()
        }));
        assert!(a.load(Ordering::Relaxed) >= 200);
        assert!(b.load(Ordering::Relaxed) >= 200);
        pool.shutdown();
    }

    #[test]
    fn spawn_periodic_fires_repeatedly_until_shutdown() {
        let mut pool = IoPool::new("t", 1);
        let runs = Arc::new(AtomicU64::new(0));
        let _h = pool.spawn_periodic(
            Duration::from_millis(3),
            CountTask { runs: runs.clone(), status: IoStatus::Park },
        );
        assert!(wait_until(Instant::now() + Duration::from_secs(5), || {
            runs.load(Ordering::Relaxed) >= 5
        }));
        pool.shutdown();
        let after = runs.load(Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(runs.load(Ordering::Relaxed), after, "task ran after shutdown");
    }

    #[test]
    fn spawner_spawns_dynamically_and_refuses_after_shutdown() {
        let mut pool = IoPool::new("t", 1);
        let spawner = pool.spawner();
        let runs = Arc::new(AtomicU64::new(0));
        let h = spawner
            .spawn(CountTask { runs: runs.clone(), status: IoStatus::Complete })
            .expect("pool is live");
        assert!(wait_until(Instant::now() + Duration::from_secs(2), || h.is_complete()));
        assert_eq!(runs.load(Ordering::Relaxed), 1);
        pool.shutdown();
        assert!(
            spawner.spawn(CountTask { runs, status: IoStatus::Park }).is_none(),
            "spawner must refuse once the pool has drained"
        );
    }

    #[test]
    fn shutdown_retires_parked_tasks_with_on_shutdown_hook() {
        let mut pool = IoPool::new("t", 2);
        struct Hooked(Arc<AtomicU64>);
        impl IoTask for Hooked {
            fn run(&mut self, _ctx: &IoContext) -> IoStatus {
                IoStatus::Park
            }
            fn on_shutdown(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let hooked = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..8).map(|_| pool.spawn_parked(Hooked(hooked.clone()))).collect();
        pool.shutdown();
        assert!(handles.iter().all(|h| h.is_complete()));
        assert_eq!(hooked.load(Ordering::Relaxed), 8, "on_shutdown must reach parked tasks");
        assert_eq!(pool.stats().live_tasks, 0);
        assert_eq!(pool.stats().queued_tasks, 0);
    }
}
