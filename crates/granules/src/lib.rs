//! # neptune-granules
//!
//! A from-scratch reproduction of the **Granules** cloud runtime (Pallickara
//! et al., IEEE CLUSTER 2009) — the substrate NEPTUNE is built on (§II of
//! the NEPTUNE paper).
//!
//! Granules concepts reproduced here:
//!
//! * **Computational task** — the most fine-grained unit of execution,
//!   encapsulating domain logic over a fine-grained unit of data
//!   ([`ComputationalTask`]).
//! * **Resource** — a container launched on a physical machine that hosts
//!   computational tasks and manages their lifecycles ([`Resource`]).
//! * **Dataset** — unified access to low-level data (files, streams,
//!   key-value records) with data-availability notifications
//!   ([`dataset::Dataset`]).
//! * **Scheduling strategy** — data-driven, periodic, count-based, or a
//!   combination, changeable during execution ([`ScheduleSpec`]).
//!
//! The execution engine is a fixed worker **thread pool** (built from
//! scratch on crossbeam channels) plus a timer thread for periodic
//! strategies. Task executions are *coalesced*: when data signals arrive
//! faster than a task drains them, the task stays resident on a worker and
//! re-executes without being re-enqueued — this is the mechanism NEPTUNE's
//! batched scheduling (§III-B2) leans on to cut context switches.
//!
//! ```
//! use neptune_granules::{Resource, ComputationalTask, TaskContext, TaskOutcome, ScheduleSpec};
//! use std::sync::atomic::{AtomicU64, Ordering};
//! use std::sync::Arc;
//!
//! struct Counter(Arc<AtomicU64>);
//! impl ComputationalTask for Counter {
//!     fn execute(&mut self, _ctx: &TaskContext) -> TaskOutcome {
//!         self.0.fetch_add(1, Ordering::Relaxed);
//!         TaskOutcome::Continue
//!     }
//! }
//!
//! let resource = Resource::builder("res-0").workers(2).build();
//! let hits = Arc::new(AtomicU64::new(0));
//! let task = resource.deploy(Counter(hits.clone()), ScheduleSpec::data_driven()).unwrap();
//! task.signal();
//! resource.drain();
//! assert_eq!(hits.load(Ordering::Relaxed), 1);
//! resource.shutdown();
//! ```

pub mod dataset;
pub mod error;
pub mod io;
pub mod reactor;
pub mod resource;
pub mod scheduler;
pub mod supervisor;
pub mod task;
pub mod test_support;
pub mod threadpool;
pub mod wheel;

pub use dataset::{Dataset, DatasetId, InMemoryDataset, QueueDataset};
pub use error::GranulesError;
pub use io::{IoContext, IoPool, IoPoolStats, IoSpawner, IoStatus, IoTask, IoTaskHandle};
pub use reactor::{
    NetSource, NetWaker, Reactor, ReactorHandle, ReactorStats, READY_CLOSED, READY_READABLE,
    READY_WRITABLE,
};
pub use resource::{HeartbeatProbe, Resource, ResourceBuilder, TaskHandle};
pub use scheduler::{ScheduleSpec, TimerService};
pub use supervisor::{
    BreakerState, CircuitBreaker, OperatorSupervisor, SupervisedOutcome, SupervisorPolicy,
    SupervisorStats,
};
pub use task::{ComputationalTask, TaskContext, TaskId, TaskOutcome, TaskState};
pub use threadpool::WorkerPool;
pub use wheel::{TimerScheduler, TimerWheel};
