//! Readiness-driven network reactor for the IO tier.
//!
//! PR 4's two-tier thread model (§IV-C) stopped at the socket boundary:
//! every TCP link still burned blocking OS threads for its reader, writer,
//! and acceptor, so thread count was O(connections). The reactor closes
//! that gap: one dedicated thread (`{name}-reactor`) blocks in
//! `epoll_wait(2)` and turns socket readiness into ordinary
//! [`IoTaskHandle`] wakes, so a socket becomes just another wake reason
//! for a parked [`crate::IoTask`] — exactly like a timer deadline or a
//! queue gate release. Thread count stays O(io_threads) at thousands of
//! connections.
//!
//! Interests are **one-shot**: after a readiness event fires for a
//! registration, the kernel disarms it until the owning task re-arms via
//! [`NetSource::arm`]. That makes backpressure-by-read-disarm (§III-B4)
//! the *default* behaviour — a task that does not re-arm its read interest
//! (because its inbound `WatermarkQueue` is gated) stops draining the
//! socket, the kernel receive buffer fills, the TCP window closes, and the
//! sender stalls hop by hop.
//!
//! Registration is two-phase to break the task/source ownership cycle
//! (the task owns its [`NetSource`], the reactor needs the task's wake
//! handle): register with a [`NetWaker`], build the task around the
//! returned source, spawn it parked, then [`NetWaker::set`] the handle
//! and deliver one initial wake. Because a fresh registration is
//! disarmed, no event can fire before the waker is in place.
//!
//! The epoll/eventfd calls are raw `extern "C"` bindings (Linux only,
//! like the `/proc` thread accounting elsewhere in the repo) so the crate
//! takes no new dependencies.

use crate::io::IoTaskHandle;
use neptune_telemetry::{wall_micros, EventKind, FlightRecorder, Span, SpanRing, STAGE_REACTOR};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::os::fd::RawFd;
use std::sync::atomic::{AtomicBool, AtomicI32, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Readiness bit: the fd has data to read (or a pending accept).
pub const READY_READABLE: u32 = 1;
/// Readiness bit: the fd can accept writes without blocking.
pub const READY_WRITABLE: u32 = 2;
/// Readiness bit: error or hangup — the owner should drain and close.
pub const READY_CLOSED: u32 = 4;

#[allow(non_camel_case_types)]
mod ffi {
    use std::os::raw::{c_int, c_uint, c_void};

    // `epoll_event` is packed on x86_64 (`__EPOLL_PACKED`), naturally
    // aligned elsewhere.
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    pub struct epoll_event {
        pub events: u32,
        pub data: u64,
    }
    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct epoll_event {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLLONESHOT: u32 = 1 << 30;
    pub const EFD_NONBLOCK: c_int = 0o4000;
    pub const EFD_CLOEXEC: c_int = 0o2000000;

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut epoll_event,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        pub fn close(fd: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    }
}

/// Token 0 is reserved for the reactor's own eventfd wake channel.
const WAKE_TOKEN: u64 = 0;

/// Counters and gauges for the reactor, merged into the job's
/// `ThreadModelStats` by `neptune-core`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReactorStats {
    /// Registrations currently known to the reactor (sockets + listeners).
    pub registered: usize,
    /// Cumulative readiness events dispatched to tasks.
    pub events_dispatched: u64,
    /// Cumulative interest re-arms (each `WouldBlock` ends in one).
    pub rearms: u64,
}

/// Late-bound wake target for a registration: lets the owning task be
/// spawned *after* its fd is registered (the task owns its [`NetSource`],
/// so the handle does not exist yet at registration time).
#[derive(Clone, Default)]
pub struct NetWaker {
    handle: Arc<Mutex<Option<IoTaskHandle>>>,
}

impl NetWaker {
    /// An empty waker; fill it with [`Self::set`] once the task is spawned.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install the task handle readiness events should wake.
    pub fn set(&self, handle: IoTaskHandle) {
        *self.handle.lock() = Some(handle);
    }

    fn wake(&self) -> bool {
        match self.handle.lock().as_ref() {
            Some(h) => h.wake(),
            None => false,
        }
    }
}

struct Registration {
    ready: Arc<AtomicU32>,
    waker: NetWaker,
}

struct ReactorInner {
    epfd: AtomicI32,
    wakefd: AtomicI32,
    shutdown: AtomicBool,
    registrations: Mutex<HashMap<u64, Registration>>,
    next_token: AtomicU64,
    registered: AtomicUsize,
    events_dispatched: AtomicU64,
    rearms: AtomicU64,
    /// Optional flight recorder: dispatch-pressure signals (full event
    /// batches, wakes delivered to retired tasks) land here.
    recorder: Mutex<Option<Arc<FlightRecorder>>>,
    /// Optional span ring plus the pre-registered "reactor" track id:
    /// sampled dispatch batches are recorded as [`STAGE_REACTOR`] spans.
    spans: Mutex<Option<(Arc<SpanRing>, u16)>>,
}

impl ReactorInner {
    /// Run `epoll_ctl`; callers hold the registration lock so the fds
    /// cannot be closed out from under the call by a concurrent shutdown.
    fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let epfd = self.epfd.load(Ordering::Acquire);
        if epfd < 0 {
            return Err(io::Error::other("reactor is shut down"));
        }
        let mut ev = ffi::epoll_event { events, data: token };
        let rc = unsafe { ffi::epoll_ctl(epfd, op, fd, &mut ev) };
        if rc < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(())
        }
    }
}

/// Cloneable, shareable handle for registering file descriptors with a
/// running [`Reactor`].
#[derive(Clone)]
pub struct ReactorHandle {
    inner: Arc<ReactorInner>,
}

impl ReactorHandle {
    /// Register `fd` with the reactor; readiness events wake whatever
    /// handle `waker` holds at the time they fire.
    ///
    /// The registration starts **disarmed**: no events are delivered until
    /// the first [`NetSource::arm`], so the caller has time to spawn the
    /// owning task and [`NetWaker::set`] its handle. The caller keeps
    /// ownership of the fd and must keep it open for the life of the
    /// returned source.
    pub fn register(&self, fd: RawFd, waker: NetWaker) -> io::Result<NetSource> {
        let mut map = self.inner.registrations.lock();
        if self.inner.shutdown.load(Ordering::Acquire) {
            return Err(io::Error::other("reactor is shut down"));
        }
        let token = self.inner.next_token.fetch_add(1, Ordering::Relaxed);
        let ready = Arc::new(AtomicU32::new(0));
        // One-shot with no interest bits: dormant until armed.
        self.inner.ctl(ffi::EPOLL_CTL_ADD, fd, ffi::EPOLLONESHOT, token)?;
        map.insert(token, Registration { ready: ready.clone(), waker });
        self.inner.registered.fetch_add(1, Ordering::Relaxed);
        drop(map);
        Ok(NetSource { inner: self.inner.clone(), token, fd, ready, registered: true })
    }

    /// Snapshot of the reactor's counters.
    pub fn stats(&self) -> ReactorStats {
        ReactorStats {
            registered: self.inner.registered.load(Ordering::Relaxed),
            events_dispatched: self.inner.events_dispatched.load(Ordering::Relaxed),
            rearms: self.inner.rearms.load(Ordering::Relaxed),
        }
    }

    /// Attach a flight recorder: dispatch pressure (a poll that filled
    /// the whole event buffer, or a wake delivered to a retired task) is
    /// timelined as [`EventKind::ReactorStall`].
    pub fn attach_recorder(&self, recorder: Arc<FlightRecorder>) {
        *self.inner.recorder.lock() = Some(recorder);
    }

    /// Attach a span ring: deterministically sampled dispatch batches are
    /// recorded as [`STAGE_REACTOR`] spans on a dedicated "reactor" track.
    /// With no ring attached the dispatch loop takes no extra clock reads.
    pub fn attach_span_ring(&self, spans: Arc<SpanRing>) {
        let track = spans.register_track("reactor");
        *self.inner.spans.lock() = Some((spans, track));
    }
}

/// One registered file descriptor: the owning task's view of its
/// readiness state and its lever for re-arming interest.
///
/// Readiness is delivered into an atomic bit set; [`Self::take_readiness`]
/// drains it. Tasks should treat readiness as a *hint* and simply attempt
/// their syscall — a spurious wake costs one `WouldBlock`.
pub struct NetSource {
    inner: Arc<ReactorInner>,
    token: u64,
    fd: RawFd,
    ready: Arc<AtomicU32>,
    registered: bool,
}

impl NetSource {
    /// Consume and clear the accumulated readiness bits
    /// ([`READY_READABLE`] / [`READY_WRITABLE`] / [`READY_CLOSED`]).
    pub fn take_readiness(&self) -> u32 {
        self.ready.swap(0, Ordering::AcqRel)
    }

    /// Arm a one-shot interest: the next matching readiness event wakes
    /// the owning task and disarms the registration again. Arming with
    /// both flags false parks the fd entirely (the backpressure lever).
    /// Returns `false` if the reactor is gone.
    pub fn arm(&self, readable: bool, writable: bool) -> bool {
        let map = self.inner.registrations.lock();
        if self.inner.shutdown.load(Ordering::Acquire) || !map.contains_key(&self.token) {
            return false;
        }
        let mut events = ffi::EPOLLONESHOT;
        if readable {
            events |= ffi::EPOLLIN | ffi::EPOLLRDHUP;
        }
        if writable {
            events |= ffi::EPOLLOUT;
        }
        let ok = self.inner.ctl(ffi::EPOLL_CTL_MOD, self.fd, events, self.token).is_ok();
        if ok {
            self.inner.rearms.fetch_add(1, Ordering::Relaxed);
        }
        ok
    }

    /// Remove the registration. Idempotent; also runs on drop.
    pub fn deregister(&mut self) {
        if !self.registered {
            return;
        }
        self.registered = false;
        let mut map = self.inner.registrations.lock();
        if map.remove(&self.token).is_some() {
            self.inner.registered.fetch_sub(1, Ordering::Relaxed);
            // Best effort: the epfd may already be closed at shutdown.
            let _ = self.inner.ctl(ffi::EPOLL_CTL_DEL, self.fd, 0, self.token);
        }
    }
}

impl Drop for NetSource {
    fn drop(&mut self) {
        self.deregister();
    }
}

/// The reactor: owns the epoll instance and its dispatch thread.
pub struct Reactor {
    inner: Arc<ReactorInner>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Reactor {
    /// Create the epoll instance and start the `{name}-reactor` thread.
    pub fn new(name: &str) -> io::Result<Reactor> {
        let epfd = unsafe { ffi::epoll_create1(ffi::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        let wakefd = unsafe { ffi::eventfd(0, ffi::EFD_NONBLOCK | ffi::EFD_CLOEXEC) };
        if wakefd < 0 {
            let err = io::Error::last_os_error();
            unsafe { ffi::close(epfd) };
            return Err(err);
        }
        let inner = Arc::new(ReactorInner {
            epfd: AtomicI32::new(epfd),
            wakefd: AtomicI32::new(wakefd),
            shutdown: AtomicBool::new(false),
            registrations: Mutex::new(HashMap::new()),
            next_token: AtomicU64::new(1),
            registered: AtomicUsize::new(0),
            events_dispatched: AtomicU64::new(0),
            rearms: AtomicU64::new(0),
            recorder: Mutex::new(None),
            spans: Mutex::new(None),
        });
        // The wake channel is level-triggered and permanently armed.
        let mut ev = ffi::epoll_event { events: ffi::EPOLLIN, data: WAKE_TOKEN };
        if unsafe { ffi::epoll_ctl(epfd, ffi::EPOLL_CTL_ADD, wakefd, &mut ev) } < 0 {
            let err = io::Error::last_os_error();
            unsafe {
                ffi::close(wakefd);
                ffi::close(epfd);
            }
            return Err(err);
        }
        let loop_inner = inner.clone();
        let thread = std::thread::Builder::new()
            .name(format!("{name}-reactor"))
            .spawn(move || reactor_loop(loop_inner))
            .inspect_err(|_| unsafe {
                ffi::close(wakefd);
                ffi::close(epfd);
            })?;
        Ok(Reactor { inner, thread: Some(thread) })
    }

    /// Cloneable registration handle.
    pub fn handle(&self) -> ReactorHandle {
        ReactorHandle { inner: self.inner.clone() }
    }

    /// Snapshot of the reactor's counters.
    pub fn stats(&self) -> ReactorStats {
        self.handle().stats()
    }

    /// Stop the dispatch thread and close the epoll instance. Remaining
    /// registrations are dropped (their owners keep their fds). Idempotent.
    pub fn shutdown(&mut self) {
        if self.inner.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        let one: u64 = 1;
        let wakefd = self.inner.wakefd.load(Ordering::Acquire);
        unsafe {
            ffi::write(wakefd, (&one as *const u64).cast(), 8);
        }
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        // Close under the registration lock: every user-facing syscall
        // path holds it, so none can race the close.
        let mut map = self.inner.registrations.lock();
        map.clear();
        self.inner.registered.store(0, Ordering::Relaxed);
        let epfd = self.inner.epfd.swap(-1, Ordering::AcqRel);
        let wfd = self.inner.wakefd.swap(-1, Ordering::AcqRel);
        unsafe {
            if epfd >= 0 {
                ffi::close(epfd);
            }
            if wfd >= 0 {
                ffi::close(wfd);
            }
        }
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn reactor_loop(inner: Arc<ReactorInner>) {
    let epfd = inner.epfd.load(Ordering::Acquire);
    let mut events = [ffi::epoll_event { events: 0, data: 0 }; 256];
    let mut batch_no = 0u64;
    loop {
        let n = unsafe { ffi::epoll_wait(epfd, events.as_mut_ptr(), events.len() as i32, -1) };
        if n < 0 {
            if io::Error::last_os_error().kind() == io::ErrorKind::Interrupted {
                continue;
            }
            return;
        }
        batch_no = batch_no.wrapping_add(1);
        // Sampled dispatch spans: one per traced poll batch, timing how
        // long readiness fan-out took. The clock is only read when a span
        // ring is attached AND this batch is sampled.
        let batch_span = inner
            .spans
            .lock()
            .as_ref()
            .filter(|(ring, _)| ring.sampled(batch_no))
            .map(|(ring, track)| (ring.clone(), *track, wall_micros()));
        if n as usize == events.len() {
            // The poll filled the whole event buffer: the kernel likely
            // has more pending — dispatch is falling behind.
            if let Some(r) = inner.recorder.lock().as_ref() {
                r.record(EventKind::ReactorStall, n as u64, 0);
            }
        }
        for ev in &events[..n as usize] {
            let token = ev.data;
            let bits = ev.events;
            if token == WAKE_TOKEN {
                let wakefd = inner.wakefd.load(Ordering::Acquire);
                let mut buf = [0u8; 8];
                while unsafe { ffi::read(wakefd, buf.as_mut_ptr().cast(), 8) } == 8 {}
                if inner.shutdown.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
            let target = {
                let map = inner.registrations.lock();
                map.get(&token).map(|r| (r.ready.clone(), r.waker.clone()))
            };
            let Some((ready, waker)) = target else { continue };
            let mut mask = 0;
            if bits & ffi::EPOLLIN != 0 {
                mask |= READY_READABLE;
            }
            if bits & ffi::EPOLLOUT != 0 {
                mask |= READY_WRITABLE;
            }
            if bits & (ffi::EPOLLERR | ffi::EPOLLHUP | ffi::EPOLLRDHUP) != 0 {
                // Hangups surface as readable too, so read loops observe
                // the EOF instead of waiting for an interest that will
                // never fire again.
                mask |= READY_CLOSED | READY_READABLE;
            }
            if mask != 0 {
                ready.fetch_or(mask, Ordering::AcqRel);
                inner.events_dispatched.fetch_add(1, Ordering::Relaxed);
                if !waker.wake() {
                    // Readiness fired for a task that is gone (or whose
                    // waker was never installed): the event is lost.
                    if let Some(r) = inner.recorder.lock().as_ref() {
                        r.record(EventKind::ReactorStall, n as u64, token);
                    }
                }
            }
        }
        if let Some((ring, track, started)) = batch_span {
            ring.record(Span {
                trace_id: batch_no,
                start_micros: started,
                dur_micros: wall_micros().saturating_sub(started),
                stage: STAGE_REACTOR,
                track,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{IoContext, IoPool, IoStatus, IoTask};
    use crate::test_support::wait_for;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::sync::atomic::{AtomicBool, AtomicU64};
    use std::time::Duration;

    /// Reads whatever is available each time it is woken, counting bytes.
    struct ByteCounter {
        stream: TcpStream,
        source: NetSource,
        seen: Arc<AtomicU64>,
        eof: Arc<AtomicBool>,
    }

    impl IoTask for ByteCounter {
        fn run(&mut self, ctx: &IoContext) -> IoStatus {
            if ctx.shutting_down() {
                return IoStatus::Complete;
            }
            self.source.take_readiness();
            let mut buf = [0u8; 4096];
            loop {
                match self.stream.read(&mut buf) {
                    Ok(0) => {
                        self.eof.store(true, Ordering::Release);
                        return IoStatus::Complete;
                    }
                    Ok(n) => {
                        self.seen.fetch_add(n as u64, Ordering::Relaxed);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        self.source.arm(true, false);
                        return IoStatus::Park;
                    }
                    Err(_) => return IoStatus::Complete,
                }
            }
        }
    }

    fn reader_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        (client, server)
    }

    #[test]
    fn readiness_wakes_a_parked_reader_through_the_io_pool() {
        let mut pool = IoPool::new("rx", 1);
        let mut reactor = Reactor::new("rx").unwrap();
        let (mut client, server) = reader_pair();

        let seen = Arc::new(AtomicU64::new(0));
        let eof = Arc::new(AtomicBool::new(false));
        let waker = NetWaker::new();
        let source = reactor.handle().register(server.as_raw_fd(), waker.clone()).unwrap();
        let h = pool.spawn_parked(ByteCounter {
            stream: server,
            source,
            seen: seen.clone(),
            eof: eof.clone(),
        });
        waker.set(h.clone());
        h.wake(); // first stint drains nothing and arms the read interest

        client.write_all(&[7u8; 1000]).unwrap();
        client.flush().unwrap();
        assert!(
            wait_for(Duration::from_secs(5), || seen.load(Ordering::Relaxed) >= 1000),
            "readiness never woke the parked reader (saw {} bytes)",
            seen.load(Ordering::Relaxed)
        );

        // Peer hangup surfaces as readable; the reader observes EOF.
        drop(client);
        assert!(wait_for(Duration::from_secs(5), || eof.load(Ordering::Acquire)));
        assert!(wait_for(Duration::from_secs(5), || h.is_complete()));
        assert!(reactor.stats().events_dispatched >= 1);
        pool.shutdown();
        reactor.shutdown();
    }

    struct NullTask;
    impl IoTask for NullTask {
        fn run(&mut self, _ctx: &IoContext) -> IoStatus {
            IoStatus::Park
        }
    }

    #[test]
    fn stats_track_registrations_and_rearms() {
        let pool = IoPool::new("rs", 1);
        let mut reactor = Reactor::new("rs").unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let waker = NetWaker::new();
        let mut src = reactor.handle().register(listener.as_raw_fd(), waker.clone()).unwrap();
        waker.set(pool.spawn_parked(NullTask));
        assert_eq!(reactor.stats().registered, 1);
        assert!(src.arm(true, false));
        assert!(reactor.stats().rearms >= 1);
        src.deregister();
        assert_eq!(reactor.stats().registered, 0);
        reactor.shutdown();
        // Post-shutdown arming is a clean no-op.
        assert!(!src.arm(true, false));
    }

    #[test]
    fn shutdown_is_idempotent_and_joins_the_thread() {
        let mut reactor = Reactor::new("ri").unwrap();
        reactor.shutdown();
        reactor.shutdown();
        assert_eq!(reactor.stats().registered, 0);
        // Registration after shutdown is refused cleanly.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        assert!(reactor.handle().register(listener.as_raw_fd(), NetWaker::new()).is_err());
    }

    #[test]
    fn accept_readiness_fires_for_listeners() {
        let mut pool = IoPool::new("ra", 1);
        let mut reactor = Reactor::new("ra").unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();

        struct AcceptProbe {
            listener: TcpListener,
            source: NetSource,
            accepted: Arc<AtomicU64>,
        }
        impl IoTask for AcceptProbe {
            fn run(&mut self, ctx: &IoContext) -> IoStatus {
                if ctx.shutting_down() {
                    return IoStatus::Complete;
                }
                self.source.take_readiness();
                loop {
                    match self.listener.accept() {
                        Ok(_) => {
                            self.accepted.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            self.source.arm(true, false);
                            return IoStatus::Park;
                        }
                        Err(_) => return IoStatus::Complete,
                    }
                }
            }
        }

        let accepted = Arc::new(AtomicU64::new(0));
        let waker = NetWaker::new();
        let source = reactor.handle().register(listener.as_raw_fd(), waker.clone()).unwrap();
        let h = pool.spawn_parked(AcceptProbe { listener, source, accepted: accepted.clone() });
        waker.set(h.clone());
        h.wake();

        let _c1 = TcpStream::connect(addr).unwrap();
        let _c2 = TcpStream::connect(addr).unwrap();
        assert!(
            wait_for(Duration::from_secs(5), || accepted.load(Ordering::Relaxed) >= 2),
            "accept readiness never fired (accepted {})",
            accepted.load(Ordering::Relaxed)
        );
        pool.shutdown();
        reactor.shutdown();
    }
}
