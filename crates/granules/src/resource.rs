//! Resources — Granules' per-machine containers for computational tasks.
//!
//! §II of the NEPTUNE paper: *"Granules launches one or more resources at a
//! single physical machine which act as containers for individual
//! computation tasks. The framework is responsible for managing the life
//! cycles of computational tasks in addition to launching and terminating
//! computational tasks running on these resources."*
//!
//! ## Execution coalescing
//!
//! Each deployed task owns a *slot* with an atomic pending-signal counter
//! and a scheduled flag. Signals arriving while the task is executing do
//! not enqueue more pool jobs: the resident execution loops and consumes
//! them. One pool job therefore drains an arbitrarily long burst — this is
//! the scheduling substrate for NEPTUNE's batched processing (§III-B2,
//! Table I: 22× fewer context switches than per-message scheduling).

use crate::error::GranulesError;
use crate::scheduler::{ScheduleSpec, TimerService};
use crate::task::{
    ComputationalTask, TaskContext, TaskId, TaskIdAllocator, TaskOutcome, TaskState,
};
use crate::threadpool::WorkerPool;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};

struct SlotInner {
    task: Box<dyn ComputationalTask>,
    initialized: bool,
}

struct TaskSlot {
    id: TaskId,
    inner: Mutex<SlotInner>,
    spec: RwLock<ScheduleSpec>,
    /// Data signals not yet consumed by an execution.
    pending: AtomicU64,
    /// Set while an execution loop owns this slot.
    scheduled: AtomicBool,
    /// Set by the periodic timer (forces an execution even with no data).
    forced: AtomicBool,
    /// Terminated tasks never execute again.
    terminated: AtomicBool,
    executions: AtomicU64,
    /// Timer registration for periodic schedules.
    timer_id: Mutex<Option<u64>>,
}

impl TaskSlot {
    fn state(&self) -> TaskState {
        if self.terminated.load(Ordering::Acquire) {
            TaskState::Terminated
        } else if self.scheduled.load(Ordering::Acquire) {
            TaskState::Scheduled
        } else {
            TaskState::Idle
        }
    }
}

struct ResourceInner {
    name: String,
    pool: WorkerPool,
    timer: TimerService,
    slots: RwLock<HashMap<TaskId, Arc<TaskSlot>>>,
    ids: TaskIdAllocator,
    shutdown: AtomicBool,
    /// Signals observed by the resource (for diagnostics).
    total_signals: AtomicU64,
    /// Liveness beacon ticks (see [`Resource::enable_heartbeat`]).
    heartbeats: AtomicU64,
    /// Chaos hook: a suspended beacon stops ticking, making the resource
    /// look dead to a failure detector without tearing down its pool.
    heartbeat_suspended: AtomicBool,
    /// Timer registration of the beacon, for idempotent enabling.
    heartbeat_timer: Mutex<Option<u64>>,
}

impl ResourceInner {
    /// Try to transition the slot to scheduled and submit its run loop.
    fn try_schedule(self: &Arc<Self>, slot: &Arc<TaskSlot>) {
        if self.shutdown.load(Ordering::Acquire) || slot.terminated.load(Ordering::Acquire) {
            return;
        }
        let count = slot.spec.read().count;
        let runnable =
            slot.forced.load(Ordering::Acquire) || slot.pending.load(Ordering::Acquire) >= count;
        if !runnable {
            return;
        }
        if slot.scheduled.compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire).is_ok()
        {
            self.submit_run(slot.clone());
        }
    }

    fn submit_run(self: &Arc<Self>, slot: Arc<TaskSlot>) {
        let weak: Weak<ResourceInner> = Arc::downgrade(self);
        self.pool.submit(move || {
            if let Some(res) = weak.upgrade() {
                res.run_slot(&slot);
            }
        });
    }

    /// The resident execution loop for one slot; owns the `scheduled` flag.
    fn run_slot(self: &Arc<Self>, slot: &Arc<TaskSlot>) {
        let mut runs = 0u64;
        let max_runs = slot.spec.read().max_consecutive_runs;
        loop {
            if slot.terminated.load(Ordering::Acquire) || self.shutdown.load(Ordering::Acquire) {
                slot.scheduled.store(false, Ordering::Release);
                return;
            }
            let forced = slot.forced.swap(false, Ordering::AcqRel);
            let count = slot.spec.read().count;
            let available = slot.pending.load(Ordering::Acquire);
            if !forced && available < count {
                // Nothing runnable: release the slot, then re-check for
                // signals that raced in between the check and the release.
                slot.scheduled.store(false, Ordering::Release);
                self.try_schedule(slot);
                return;
            }
            let coalesced = slot.pending.swap(0, Ordering::AcqRel);
            let exec_index = slot.executions.fetch_add(1, Ordering::Relaxed);
            let ctx = TaskContext::new(slot.id, coalesced, exec_index);
            let outcome = {
                let mut inner = slot.inner.lock();
                if !inner.initialized {
                    inner.task.initialize(&ctx);
                    inner.initialized = true;
                }
                inner.task.execute(&ctx)
            };
            match outcome {
                TaskOutcome::Finished => {
                    self.terminate_slot(slot, &ctx);
                    slot.scheduled.store(false, Ordering::Release);
                    return;
                }
                TaskOutcome::Reschedule => {
                    // The task left work behind: force another execution
                    // even though its signals were consumed above.
                    slot.forced.store(true, Ordering::Release);
                }
                TaskOutcome::Continue => {}
            }
            runs += 1;
            if runs >= max_runs {
                // Yield the worker; resubmit if still runnable.
                slot.scheduled.store(false, Ordering::Release);
                self.try_schedule(slot);
                return;
            }
        }
    }

    fn terminate_slot(self: &Arc<Self>, slot: &Arc<TaskSlot>, ctx: &TaskContext) {
        if slot.terminated.swap(true, Ordering::AcqRel) {
            return;
        }
        if let Some(timer_id) = slot.timer_id.lock().take() {
            self.timer.cancel(timer_id);
        }
        let mut inner = slot.inner.lock();
        if inner.initialized {
            inner.task.terminate(ctx);
        }
    }
}

/// Builder for a [`Resource`].
pub struct ResourceBuilder {
    name: String,
    workers: Option<usize>,
}

impl ResourceBuilder {
    /// Explicit worker-pool size (default: sized for the host core count).
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = Some(n);
        self
    }

    /// Launch the resource: spawns the worker pool and timer thread.
    pub fn build(self) -> Resource {
        let pool = match self.workers {
            Some(n) => WorkerPool::new(&format!("{}-worker", self.name), n),
            None => WorkerPool::sized_for_host(&format!("{}-worker", self.name)),
        };
        Resource {
            inner: Arc::new(ResourceInner {
                name: self.name,
                pool,
                timer: TimerService::start(),
                slots: RwLock::new(HashMap::new()),
                ids: TaskIdAllocator::default(),
                shutdown: AtomicBool::new(false),
                total_signals: AtomicU64::new(0),
                heartbeats: AtomicU64::new(0),
                heartbeat_suspended: AtomicBool::new(false),
                heartbeat_timer: Mutex::new(None),
            }),
        }
    }
}

/// A Granules resource: a container hosting computational tasks on one
/// machine (or one simulated machine).
pub struct Resource {
    inner: Arc<ResourceInner>,
}

impl Resource {
    /// Start building a resource with the given name.
    pub fn builder(name: impl Into<String>) -> ResourceBuilder {
        ResourceBuilder { name: name.into(), workers: None }
    }

    /// The resource's name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Number of worker threads serving this resource.
    pub fn worker_count(&self) -> usize {
        self.inner.pool.size()
    }

    /// Panics that unwound out of tasks and were absorbed by the worker
    /// pool (the containment layer below operator supervision).
    pub fn worker_panics(&self) -> u64 {
        self.inner.pool.panicked()
    }

    /// Deploy a computational task under the given scheduling strategy.
    pub fn deploy<T: ComputationalTask + 'static>(
        &self,
        task: T,
        spec: ScheduleSpec,
    ) -> Result<TaskHandle, GranulesError> {
        if self.inner.shutdown.load(Ordering::Acquire) {
            return Err(GranulesError::ResourceShutDown);
        }
        spec.validate().map_err(GranulesError::InvalidSchedule)?;
        let id = self.inner.ids.allocate();
        let slot = Arc::new(TaskSlot {
            id,
            inner: Mutex::new(SlotInner { task: Box::new(task), initialized: false }),
            spec: RwLock::new(spec),
            pending: AtomicU64::new(0),
            scheduled: AtomicBool::new(false),
            forced: AtomicBool::new(false),
            terminated: AtomicBool::new(false),
            executions: AtomicU64::new(0),
            timer_id: Mutex::new(None),
        });
        if let Some(period) = spec.period {
            let weak_res = Arc::downgrade(&self.inner);
            let weak_slot = Arc::downgrade(&slot);
            let timer_id = self.inner.timer.register(period, move || {
                if let (Some(res), Some(slot)) = (weak_res.upgrade(), weak_slot.upgrade()) {
                    slot.forced.store(true, Ordering::Release);
                    res.try_schedule(&slot);
                }
            });
            *slot.timer_id.lock() = Some(timer_id);
        }
        self.inner.slots.write().insert(id, slot.clone());
        Ok(TaskHandle { id, slot, resource: Arc::downgrade(&self.inner) })
    }

    /// Number of deployed (non-removed) tasks.
    pub fn task_count(&self) -> usize {
        self.inner.slots.read().len()
    }

    /// Total data signals this resource has observed.
    pub fn total_signals(&self) -> u64 {
        self.inner.total_signals.load(Ordering::Relaxed)
    }

    /// Start the liveness beacon: a timer callback increments the
    /// heartbeat counter every `period` while the resource is up. An
    /// external failure detector watches the counter advance; a resource
    /// whose timer thread died — or whose beacon was chaos-suspended —
    /// goes silent and walks the detector's suspect→dead ladder.
    /// Idempotent: re-enabling keeps the first registration.
    pub fn enable_heartbeat(&self, period: std::time::Duration) {
        let mut timer = self.inner.heartbeat_timer.lock();
        if timer.is_some() {
            return;
        }
        let weak = Arc::downgrade(&self.inner);
        let id = self.inner.timer.register(period, move || {
            if let Some(res) = weak.upgrade() {
                if !res.heartbeat_suspended.load(Ordering::Acquire)
                    && !res.shutdown.load(Ordering::Acquire)
                {
                    res.heartbeats.fetch_add(1, Ordering::Release);
                }
            }
        });
        *timer = Some(id);
    }

    /// Beacon ticks so far (0 until
    /// [`enable_heartbeat`](Self::enable_heartbeat) fires).
    pub fn heartbeat_count(&self) -> u64 {
        self.inner.heartbeats.load(Ordering::Acquire)
    }

    /// Chaos hook: freeze (or thaw) the beacon, making the resource look
    /// dead to a failure detector while its tasks keep running.
    pub fn set_heartbeat_suspended(&self, suspended: bool) {
        self.inner.heartbeat_suspended.store(suspended, Ordering::Release);
    }

    /// A cloneable, weakly-held probe onto this resource's beacon — what
    /// an external failure detector polls from its own thread without
    /// keeping the resource alive.
    pub fn heartbeat_probe(&self) -> HeartbeatProbe {
        HeartbeatProbe { inner: Arc::downgrade(&self.inner) }
    }

    /// Block until no task is scheduled and no undelivered signal could
    /// still trigger one. Used by tests and graceful-stop paths.
    pub fn drain(&self) {
        loop {
            let busy = {
                let slots = self.inner.slots.read();
                slots.values().any(|s| {
                    !s.terminated.load(Ordering::Acquire)
                        && (s.scheduled.load(Ordering::Acquire)
                            || s.forced.load(Ordering::Acquire)
                            || s.pending.load(Ordering::Acquire) >= s.spec.read().count)
                })
            };
            if !busy && self.inner.pool.is_idle() {
                return;
            }
            std::thread::yield_now();
        }
    }

    /// Terminate every task and stop the pool and timer threads.
    pub fn shutdown(self) {
        self.inner.shutdown.store(true, Ordering::Release);
        if let Some(id) = self.inner.heartbeat_timer.lock().take() {
            self.inner.timer.cancel(id);
        }
        let slots: Vec<Arc<TaskSlot>> = self.inner.slots.write().drain().map(|(_, s)| s).collect();
        for slot in &slots {
            // Wait for any in-flight execution to notice the shutdown flag.
            while slot.scheduled.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
            let ctx = TaskContext::new(slot.id, 0, slot.executions.load(Ordering::Relaxed));
            self.inner.terminate_slot(slot, &ctx);
        }
        self.inner.pool.wait_idle();
    }
}

/// Weak view of a resource's liveness beacon (see
/// [`Resource::heartbeat_probe`]).
#[derive(Clone)]
pub struct HeartbeatProbe {
    inner: Weak<ResourceInner>,
}

impl HeartbeatProbe {
    /// Beacon ticks so far; `None` once the resource has been dropped.
    pub fn count(&self) -> Option<u64> {
        self.inner.upgrade().map(|r| r.heartbeats.load(Ordering::Acquire))
    }
}

/// Handle to a deployed task: signalling, schedule updates, lifecycle.
#[derive(Clone)]
pub struct TaskHandle {
    id: TaskId,
    slot: Arc<TaskSlot>,
    resource: Weak<ResourceInner>,
}

impl TaskHandle {
    /// The task's id.
    pub fn task_id(&self) -> TaskId {
        self.id
    }

    /// Deliver one data-availability signal (a dataset notification).
    pub fn signal(&self) {
        self.signal_many(1);
    }

    /// Deliver `n` signals at once (a batch arrival).
    pub fn signal_many(&self, n: u64) {
        if n == 0 || self.slot.terminated.load(Ordering::Acquire) {
            return;
        }
        let Some(res) = self.resource.upgrade() else {
            return;
        };
        if !self.slot.spec.read().data_driven {
            // Signals are counted but only the timer schedules this task.
            self.slot.pending.fetch_add(n, Ordering::AcqRel);
            res.total_signals.fetch_add(n, Ordering::Relaxed);
            return;
        }
        self.slot.pending.fetch_add(n, Ordering::AcqRel);
        res.total_signals.fetch_add(n, Ordering::Relaxed);
        res.try_schedule(&self.slot);
    }

    /// Force an immediate execution regardless of pending count (used by
    /// flush timers).
    pub fn force(&self) {
        let Some(res) = self.resource.upgrade() else {
            return;
        };
        self.slot.forced.store(true, Ordering::Release);
        res.try_schedule(&self.slot);
    }

    /// Current lifecycle state.
    pub fn state(&self) -> TaskState {
        self.slot.state()
    }

    /// Number of completed scheduled executions.
    pub fn executions(&self) -> u64 {
        self.slot.executions.load(Ordering::Relaxed)
    }

    /// Signals delivered but not yet consumed by an execution.
    pub fn pending_signals(&self) -> u64 {
        self.slot.pending.load(Ordering::Relaxed)
    }

    /// Replace the scheduling strategy at runtime (§II: *"a scheduling
    /// strategy that can be changed during execution"*). The periodic
    /// component cannot be added or removed after deployment, only the
    /// data-driven/count parts change.
    pub fn update_schedule(&self, spec: ScheduleSpec) -> Result<(), GranulesError> {
        spec.validate().map_err(GranulesError::InvalidSchedule)?;
        let old = *self.slot.spec.read();
        if old.period != spec.period {
            return Err(GranulesError::InvalidSchedule(
                "periodic component cannot change after deployment".to_string(),
            ));
        }
        *self.slot.spec.write() = spec;
        if let Some(res) = self.resource.upgrade() {
            res.try_schedule(&self.slot);
        }
        Ok(())
    }

    /// Terminate the task explicitly.
    pub fn terminate(&self) {
        let Some(res) = self.resource.upgrade() else {
            return;
        };
        // Wait for an in-flight execution to finish before invoking the
        // task's terminate hook.
        while self.slot.scheduled.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
        let ctx = TaskContext::new(self.id, 0, self.slot.executions.load(Ordering::Relaxed));
        res.terminate_slot(&self.slot, &ctx);
        res.slots.write().remove(&self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::time::Duration;

    struct Recorder {
        executions: Arc<AtomicU64>,
        signals: Arc<AtomicU64>,
        init: Arc<AtomicU64>,
        term: Arc<AtomicU64>,
        finish_after: Option<u64>,
    }

    impl Recorder {
        fn new() -> (Self, Arc<AtomicU64>, Arc<AtomicU64>) {
            let e = Arc::new(AtomicU64::new(0));
            let s = Arc::new(AtomicU64::new(0));
            (
                Recorder {
                    executions: e.clone(),
                    signals: s.clone(),
                    init: Arc::new(AtomicU64::new(0)),
                    term: Arc::new(AtomicU64::new(0)),
                    finish_after: None,
                },
                e,
                s,
            )
        }
    }

    impl ComputationalTask for Recorder {
        fn initialize(&mut self, _ctx: &TaskContext) {
            self.init.fetch_add(1, Ordering::Relaxed);
        }
        fn execute(&mut self, ctx: &TaskContext) -> TaskOutcome {
            let n = self.executions.fetch_add(1, Ordering::Relaxed) + 1;
            self.signals.fetch_add(ctx.coalesced_signals(), Ordering::Relaxed);
            match self.finish_after {
                Some(limit) if n >= limit => TaskOutcome::Finished,
                _ => TaskOutcome::Continue,
            }
        }
        fn terminate(&mut self, _ctx: &TaskContext) {
            self.term.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn data_driven_task_runs_per_signal() {
        let res = Resource::builder("r").workers(2).build();
        let (rec, execs, signals) = Recorder::new();
        let h = res.deploy(rec, ScheduleSpec::data_driven()).unwrap();
        for _ in 0..10 {
            h.signal();
        }
        res.drain();
        assert_eq!(signals.load(Ordering::Relaxed), 10, "no signal may be lost");
        assert!(execs.load(Ordering::Relaxed) <= 10);
        assert!(execs.load(Ordering::Relaxed) >= 1);
        res.shutdown();
    }

    #[test]
    fn signals_are_coalesced_under_burst() {
        let res = Resource::builder("r").workers(1).build();
        let (rec, execs, signals) = Recorder::new();
        let h = res.deploy(rec, ScheduleSpec::data_driven()).unwrap();
        h.signal_many(1000);
        res.drain();
        assert_eq!(signals.load(Ordering::Relaxed), 1000);
        // A single burst of 1000 must not cost 1000 executions.
        assert!(
            execs.load(Ordering::Relaxed) < 20,
            "expected coalescing, got {} executions",
            execs.load(Ordering::Relaxed)
        );
        res.shutdown();
    }

    #[test]
    fn count_based_waits_for_threshold() {
        let res = Resource::builder("r").workers(2).build();
        let (rec, execs, signals) = Recorder::new();
        let h = res.deploy(rec, ScheduleSpec::count_based(5)).unwrap();
        for _ in 0..4 {
            h.signal();
        }
        res.drain();
        assert_eq!(execs.load(Ordering::Relaxed), 0, "below threshold must not run");
        h.signal();
        res.drain();
        assert_eq!(execs.load(Ordering::Relaxed), 1);
        assert_eq!(signals.load(Ordering::Relaxed), 5);
        res.shutdown();
    }

    #[test]
    fn periodic_task_fires_without_data() {
        let res = Resource::builder("r").workers(2).build();
        let (rec, execs, _) = Recorder::new();
        let _h = res.deploy(rec, ScheduleSpec::periodic(Duration::from_millis(5))).unwrap();
        assert!(crate::test_support::wait_for(Duration::from_secs(5), || {
            execs.load(Ordering::Relaxed) >= 3
        }));
        res.shutdown();
    }

    #[test]
    fn combined_schedule_flushes_below_threshold_on_timer() {
        let res = Resource::builder("r").workers(2).build();
        let (rec, _execs, signals) = Recorder::new();
        let h = res.deploy(rec, ScheduleSpec::combined(1000, Duration::from_millis(10))).unwrap();
        h.signal_many(3); // far below the count threshold
                          // The periodic fire must consume the stragglers.
        assert!(crate::test_support::wait_for(Duration::from_secs(5), || {
            signals.load(Ordering::Relaxed) == 3
        }));
        res.drain();
        assert_eq!(signals.load(Ordering::Relaxed), 3);
        res.shutdown();
    }

    #[test]
    fn finished_outcome_terminates_task() {
        let res = Resource::builder("r").workers(2).build();
        let (mut rec, execs, _) = Recorder::new();
        rec.finish_after = Some(3);
        let term = rec.term.clone();
        let h = res.deploy(rec, ScheduleSpec::data_driven()).unwrap();
        for _ in 0..10 {
            h.signal();
            std::thread::sleep(Duration::from_millis(1));
        }
        res.drain();
        assert_eq!(execs.load(Ordering::Relaxed), 3);
        assert_eq!(term.load(Ordering::Relaxed), 1);
        assert_eq!(h.state(), TaskState::Terminated);
        // Signals after termination are ignored.
        h.signal();
        res.drain();
        assert_eq!(execs.load(Ordering::Relaxed), 3);
        res.shutdown();
    }

    #[test]
    fn explicit_terminate_runs_hook_once() {
        let res = Resource::builder("r").workers(2).build();
        let (rec, _execs, _) = Recorder::new();
        let term = rec.term.clone();
        let init = rec.init.clone();
        let h = res.deploy(rec, ScheduleSpec::data_driven()).unwrap();
        h.signal();
        res.drain();
        h.terminate();
        h.terminate(); // idempotent
        assert_eq!(term.load(Ordering::Relaxed), 1);
        assert_eq!(init.load(Ordering::Relaxed), 1);
        assert_eq!(res.task_count(), 0);
        res.shutdown();
    }

    #[test]
    fn deploy_after_shutdown_fails() {
        let res = Resource::builder("r").workers(1).build();
        let inner = res.inner.clone();
        res.shutdown();
        let res2 = Resource { inner };
        let (rec, _, _) = Recorder::new();
        assert!(matches!(
            res2.deploy(rec, ScheduleSpec::data_driven()),
            Err(GranulesError::ResourceShutDown)
        ));
        std::mem::forget(res2); // inner already shut down
    }

    #[test]
    fn update_schedule_changes_count() {
        let res = Resource::builder("r").workers(2).build();
        let (rec, execs, signals) = Recorder::new();
        let h = res.deploy(rec, ScheduleSpec::count_based(100)).unwrap();
        h.signal_many(10);
        res.drain();
        assert_eq!(execs.load(Ordering::Relaxed), 0);
        // Lower the threshold at runtime: pending signals become runnable.
        h.update_schedule(ScheduleSpec::count_based(5)).unwrap();
        res.drain();
        assert_eq!(signals.load(Ordering::Relaxed), 10);
        res.shutdown();
    }

    #[test]
    fn update_schedule_cannot_change_period() {
        let res = Resource::builder("r").workers(1).build();
        let (rec, _, _) = Recorder::new();
        let h = res.deploy(rec, ScheduleSpec::data_driven()).unwrap();
        let err = h.update_schedule(ScheduleSpec::periodic(Duration::from_millis(5)));
        assert!(matches!(err, Err(GranulesError::InvalidSchedule(_))));
        res.shutdown();
    }

    #[test]
    fn many_tasks_share_pool_without_loss() {
        let res = Resource::builder("r").workers(4).build();
        let mut handles = Vec::new();
        let mut counters = Vec::new();
        for _ in 0..20 {
            let (rec, _execs, signals) = Recorder::new();
            counters.push(signals);
            handles.push(res.deploy(rec, ScheduleSpec::data_driven()).unwrap());
        }
        let threads: Vec<_> = handles
            .iter()
            .map(|h| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        h.signal();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        res.drain();
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 500, "task {i} lost signals");
        }
        assert_eq!(res.total_signals(), 20 * 500);
        res.shutdown();
    }

    #[test]
    fn heartbeat_beacon_ticks_and_suspends() {
        let res = Resource::builder("hb").workers(1).build();
        assert_eq!(res.heartbeat_count(), 0, "beacon must be opt-in");
        res.enable_heartbeat(Duration::from_millis(2));
        res.enable_heartbeat(Duration::from_millis(2)); // idempotent
        assert!(
            crate::test_support::wait_for(Duration::from_secs(5), || res.heartbeat_count() >= 3),
            "beacon never ticked"
        );
        res.set_heartbeat_suspended(true);
        std::thread::sleep(Duration::from_millis(10));
        let frozen = res.heartbeat_count();
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(res.heartbeat_count(), frozen, "suspended beacon must go silent");
        res.set_heartbeat_suspended(false);
        assert!(
            crate::test_support::wait_for(Duration::from_secs(5), || res.heartbeat_count()
                > frozen),
            "thawed beacon never resumed"
        );
        res.shutdown();
    }

    #[test]
    fn fairness_bound_resubmits_long_bursts() {
        // One worker, two tasks, heavy burst to the first: the second task
        // must still get processed (the 64-run bound forces requeueing).
        let res = Resource::builder("r").workers(1).build();
        let (rec1, _e1, s1) = Recorder::new();
        let (rec2, _e2, s2) = Recorder::new();
        let h1 = res.deploy(rec1, ScheduleSpec::data_driven()).unwrap();
        let h2 = res.deploy(rec2, ScheduleSpec::data_driven()).unwrap();
        for _ in 0..10_000 {
            h1.signal();
        }
        h2.signal();
        res.drain();
        assert_eq!(s1.load(Ordering::Relaxed), 10_000);
        assert_eq!(s2.load(Ordering::Relaxed), 1);
        res.shutdown();
    }
}
