//! Scheduling strategies and the timer service.
//!
//! §II of the NEPTUNE paper: *"Computational tasks are scheduled to run
//! based on a scheduling strategy that can be changed during execution. The
//! scheduling strategy could be data driven, periodic, count based or a
//! combination of these. For instance, a computational task can be scheduled
//! to run every 500 milliseconds or when data is available in a particular
//! dataset."*

use crate::wheel::TimerWheel;
use std::time::Duration;

/// When a deployed task should be scheduled for execution.
///
/// The three paper strategies compose:
/// * `data_driven` — execute when a dataset signals availability;
/// * `count` — (modifies data-driven) only execute once at least `count`
///   signals have accumulated, letting a task batch its input;
/// * `period` — additionally execute every `period`, with or without data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleSpec {
    /// Execute when data arrives.
    pub data_driven: bool,
    /// Minimum number of accumulated signals before a data-driven
    /// execution fires (1 = every signal).
    pub count: u64,
    /// Also execute on this fixed period, independent of data.
    pub period: Option<Duration>,
    /// How many consecutive executions a task may run on one worker stint
    /// before the slot is re-queued on the pool. The default (64) lets a
    /// burst be drained with a single thread handoff — NEPTUNE's batched
    /// scheduling. Setting 1 forces a scheduler crossing per execution,
    /// which is the per-message ablation of Table I.
    pub max_consecutive_runs: u64,
}

impl ScheduleSpec {
    /// Execute on every data signal — NEPTUNE's stream processors:
    /// *"Stream processors are scheduled only if data is available in any of
    /// the input streams using the data driven scheduling scheme provided by
    /// Granules."*
    pub fn data_driven() -> Self {
        ScheduleSpec { data_driven: true, count: 1, period: None, max_consecutive_runs: 64 }
    }

    /// Execute once at least `count` data signals have accumulated.
    pub fn count_based(count: u64) -> Self {
        assert!(count >= 1, "count-based schedule needs count >= 1");
        ScheduleSpec { data_driven: true, count, period: None, max_consecutive_runs: 64 }
    }

    /// Execute every `period` regardless of data (e.g. "every 500 ms").
    pub fn periodic(period: Duration) -> Self {
        ScheduleSpec {
            data_driven: false,
            count: 1,
            period: Some(period),
            max_consecutive_runs: 64,
        }
    }

    /// Combination: data-driven with a count threshold *and* a periodic
    /// fire ensuring bounded staleness.
    pub fn combined(count: u64, period: Duration) -> Self {
        assert!(count >= 1, "count-based schedule needs count >= 1");
        ScheduleSpec { data_driven: true, count, period: Some(period), max_consecutive_runs: 64 }
    }

    /// Override the per-stint execution budget (see field docs).
    pub fn with_max_consecutive_runs(mut self, runs: u64) -> Self {
        assert!(runs >= 1, "max_consecutive_runs must be >= 1");
        self.max_consecutive_runs = runs;
        self
    }

    /// Validate internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if !self.data_driven && self.period.is_none() {
            return Err(
                "schedule is neither data-driven nor periodic; task would never run".to_string()
            );
        }
        if self.count == 0 {
            return Err("count threshold must be >= 1".to_string());
        }
        if let Some(p) = self.period {
            if p.is_zero() {
                return Err("period must be non-zero".to_string());
            }
        }
        if self.max_consecutive_runs == 0 {
            return Err("max_consecutive_runs must be >= 1".to_string());
        }
        Ok(())
    }
}

impl Default for ScheduleSpec {
    fn default() -> Self {
        Self::data_driven()
    }
}

/// Periodic-schedule service for a resource: a thin facade over the
/// hierarchical [`TimerWheel`] (see [`crate::wheel`]), kept for API
/// stability — one wheel thread per resource (not per task) keeps the
/// thread count flat no matter how many periodic operators a job deploys.
pub struct TimerService {
    wheel: TimerWheel,
}

impl TimerService {
    /// Start the timer-wheel thread.
    pub fn start() -> Self {
        TimerService { wheel: TimerWheel::start() }
    }

    /// Register a periodic callback; returns a registration id for
    /// [`cancel`](Self::cancel).
    pub fn register<F: Fn() + Send + Sync + 'static>(&self, period: Duration, f: F) -> u64 {
        self.wheel.register(period, f)
    }

    /// Cancel a periodic registration. Idempotent; at most one already
    /// in-flight fire may still land after this returns.
    pub fn cancel(&self, id: u64) {
        self.wheel.cancel(id);
    }

    /// Number of live registrations.
    pub fn active(&self) -> usize {
        self.wheel.active()
    }

    /// Stop the timer thread (also happens on drop).
    pub fn shutdown(self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn spec_constructors_validate() {
        assert!(ScheduleSpec::data_driven().validate().is_ok());
        assert!(ScheduleSpec::count_based(10).validate().is_ok());
        assert!(ScheduleSpec::periodic(Duration::from_millis(500)).validate().is_ok());
        assert!(ScheduleSpec::combined(4, Duration::from_millis(5)).validate().is_ok());
    }

    #[test]
    fn invalid_specs_rejected() {
        let never =
            ScheduleSpec { data_driven: false, count: 1, period: None, max_consecutive_runs: 64 };
        assert!(never.validate().is_err());
        let zero_count =
            ScheduleSpec { data_driven: true, count: 0, period: None, max_consecutive_runs: 64 };
        assert!(zero_count.validate().is_err());
        let zero_period = ScheduleSpec {
            data_driven: false,
            count: 1,
            period: Some(Duration::ZERO),
            max_consecutive_runs: 64,
        };
        assert!(zero_period.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "count >= 1")]
    fn count_based_zero_panics() {
        ScheduleSpec::count_based(0);
    }

    #[test]
    fn timer_fires_periodically() {
        let timer = TimerService::start();
        let fired = Arc::new(AtomicU64::new(0));
        let f = fired.clone();
        timer.register(Duration::from_millis(5), move || {
            f.fetch_add(1, Ordering::Relaxed);
        });
        std::thread::sleep(Duration::from_millis(60));
        let n = fired.load(Ordering::Relaxed);
        assert!(n >= 3, "expected several fires, got {n}");
        timer.shutdown();
    }

    #[test]
    fn timer_cancel_stops_fires() {
        let timer = TimerService::start();
        let fired = Arc::new(AtomicU64::new(0));
        let f = fired.clone();
        let id = timer.register(Duration::from_millis(5), move || {
            f.fetch_add(1, Ordering::Relaxed);
        });
        std::thread::sleep(Duration::from_millis(25));
        timer.cancel(id);
        assert_eq!(timer.active(), 0);
        let snapshot = fired.load(Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(30));
        let after = fired.load(Ordering::Relaxed);
        // At most one in-flight fire may land after cancel.
        assert!(after <= snapshot + 1, "cancel did not stop timer: {snapshot} -> {after}");
        timer.shutdown();
    }

    #[test]
    fn multiple_registrations_independent() {
        let timer = TimerService::start();
        let fast = Arc::new(AtomicU64::new(0));
        let slow = Arc::new(AtomicU64::new(0));
        let f = fast.clone();
        let s = slow.clone();
        timer.register(Duration::from_millis(4), move || {
            f.fetch_add(1, Ordering::Relaxed);
        });
        timer.register(Duration::from_millis(20), move || {
            s.fetch_add(1, Ordering::Relaxed);
        });
        std::thread::sleep(Duration::from_millis(70));
        let nf = fast.load(Ordering::Relaxed);
        let ns = slow.load(Ordering::Relaxed);
        assert!(nf > ns, "fast ({nf}) should outpace slow ({ns})");
        assert!(ns >= 1);
        timer.shutdown();
    }

    #[test]
    fn shutdown_via_drop_does_not_hang() {
        let timer = TimerService::start();
        timer.register(Duration::from_secs(3600), || {});
        drop(timer); // must not block for an hour
    }
}
