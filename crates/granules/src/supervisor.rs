//! Operator supervision: panic containment, bounded retry, and per-operator
//! circuit breaking.
//!
//! NEPTUNE's watermark backpressure (§III-B4) assumes operators either make
//! progress or block — a *panicking* operator does neither. Without
//! supervision a panic unwinds out of the scheduled execution: the worker
//! thread survives (the pool catches it), but the batch is silently lost
//! and, worse, a *persistently* failing operator stops draining its inbound
//! queue, so the gate upstream never reopens and the whole graph stalls.
//!
//! The supervision ladder, from gentlest to harshest:
//!
//! 1. **Catch + retry** — a panicking batch execution is caught and retried
//!    up to a configurable cap, with a caller-supplied backoff schedule
//!    between attempts (the runtime feeds `neptune-ha`'s deterministic
//!    jittered [`ReconnectPolicy`] here).
//! 2. **Quarantine** — a batch that keeps panicking is declared poison and
//!    surrendered to the caller (who dead-letters it); the operator moves
//!    on to the next batch.
//! 3. **Circuit breaker** — after N *consecutive* quarantines the
//!    per-operator breaker trips ([`BreakerState::Open`]): executions are
//!    rejected outright so the caller can drain-and-drop, keeping the
//!    inbound queue moving and the upstream gate open. After a cooldown
//!    the breaker admits probe batches ([`BreakerState::HalfOpen`]); enough
//!    consecutive probe successes close it again.
//!
//! [`ReconnectPolicy`]: https://docs.rs/neptune-ha

use neptune_telemetry::{EventKind, FlightRecorder};
use parking_lot::Mutex;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Circuit-breaker states, in the classic Open→HalfOpen→Closed machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation: executions are admitted.
    Closed,
    /// Tripped: executions are rejected (drain-and-drop) until the
    /// cooldown elapses.
    Open,
    /// Cooldown elapsed: probe executions are admitted; consecutive
    /// successes close the breaker, a failure re-opens it.
    HalfOpen,
}

impl BreakerState {
    /// Stable lowercase name for telemetry exports.
    pub fn as_str(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

struct BreakerInner {
    state: BreakerState,
    /// Consecutive quarantined batches while Closed (resets on success).
    consecutive_failures: u32,
    /// When the breaker last tripped; drives the cooldown.
    opened_at: Option<Instant>,
    /// Consecutive successful probes while HalfOpen.
    probe_successes: u32,
}

/// Per-operator circuit breaker.
///
/// `on_failure` is called once per *quarantined batch* (not per panic —
/// retries are the layer below), so `threshold` counts batches the operator
/// could not process even with retries.
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: Duration,
    required_probes: u32,
    inner: Mutex<BreakerInner>,
    trips: AtomicU64,
    rejected: AtomicU64,
    /// Optional flight recorder timelining state transitions; the `u64`
    /// is the subject id events are recorded under.
    recorder: Mutex<Option<(Arc<FlightRecorder>, u64)>>,
}

impl CircuitBreaker {
    /// Breaker that trips after `threshold` consecutive failures, cools
    /// down for `cooldown`, and needs `required_probes` consecutive
    /// half-open successes to close again.
    pub fn new(threshold: u32, cooldown: Duration, required_probes: u32) -> Self {
        assert!(threshold > 0, "breaker threshold must be at least 1");
        CircuitBreaker {
            threshold,
            cooldown,
            required_probes: required_probes.max(1),
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: None,
                probe_successes: 0,
            }),
            trips: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            recorder: Mutex::new(None),
        }
    }

    /// Attach a flight recorder: every state transition is timelined as
    /// [`EventKind::BreakerOpen`] (detail = consecutive failures),
    /// [`EventKind::BreakerHalfOpen`] or [`EventKind::BreakerClosed`],
    /// with `subject` identifying this breaker.
    pub fn attach_recorder(&self, recorder: Arc<FlightRecorder>, subject: u64) {
        *self.recorder.lock() = Some((recorder, subject));
    }

    #[inline]
    fn record_event(&self, kind: EventKind, detail: u64) {
        if let Some((r, subject)) = self.recorder.lock().as_ref() {
            r.record(kind, *subject, detail);
        }
    }

    /// Current state (transitions Open→HalfOpen lazily on inspection).
    pub fn state(&self) -> BreakerState {
        let mut inner = self.inner.lock();
        self.maybe_half_open(&mut inner);
        inner.state
    }

    /// How many times the breaker has tripped Closed/HalfOpen→Open.
    pub fn trips(&self) -> u64 {
        self.trips.load(Ordering::Relaxed)
    }

    /// Executions rejected while the breaker was open.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    fn maybe_half_open(&self, inner: &mut BreakerInner) {
        if inner.state == BreakerState::Open {
            if let Some(at) = inner.opened_at {
                if at.elapsed() >= self.cooldown {
                    inner.state = BreakerState::HalfOpen;
                    inner.probe_successes = 0;
                    self.record_event(EventKind::BreakerHalfOpen, 0);
                }
            }
        }
    }

    /// Should the next execution be admitted? `false` means the caller
    /// must drain-and-drop instead of running the operator.
    pub fn allow(&self) -> bool {
        let mut inner = self.inner.lock();
        self.maybe_half_open(&mut inner);
        match inner.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Record a successfully processed batch.
    pub fn on_success(&self) {
        let mut inner = self.inner.lock();
        match inner.state {
            BreakerState::Closed => inner.consecutive_failures = 0,
            BreakerState::HalfOpen => {
                inner.probe_successes += 1;
                if inner.probe_successes >= self.required_probes {
                    inner.state = BreakerState::Closed;
                    inner.consecutive_failures = 0;
                    inner.opened_at = None;
                    self.record_event(EventKind::BreakerClosed, 0);
                }
            }
            // A straggler success while Open (raced with the trip): ignore.
            BreakerState::Open => {}
        }
    }

    /// Record a quarantined batch. Returns `true` when this failure
    /// tripped the breaker open.
    pub fn on_failure(&self) -> bool {
        let mut inner = self.inner.lock();
        self.maybe_half_open(&mut inner);
        match inner.state {
            BreakerState::Closed => {
                inner.consecutive_failures += 1;
                if inner.consecutive_failures >= self.threshold {
                    self.trip(&mut inner);
                    return true;
                }
                false
            }
            // A failed probe re-opens immediately: the operator is still sick.
            BreakerState::HalfOpen => {
                self.trip(&mut inner);
                true
            }
            BreakerState::Open => false,
        }
    }

    fn trip(&self, inner: &mut BreakerInner) {
        inner.state = BreakerState::Open;
        inner.opened_at = Some(Instant::now());
        inner.probe_successes = 0;
        self.trips.fetch_add(1, Ordering::Relaxed);
        self.record_event(EventKind::BreakerOpen, inner.consecutive_failures as u64);
    }
}

/// Supervision policy for one operator.
#[derive(Debug, Clone, Copy)]
pub struct SupervisorPolicy {
    /// How many times a panicking batch is re-run before quarantine.
    pub max_retries: u32,
    /// Consecutive quarantined batches that trip the breaker.
    pub breaker_threshold: u32,
    /// How long the breaker stays open before admitting probes.
    pub cooldown: Duration,
    /// Consecutive half-open probe successes required to close.
    pub required_probes: u32,
}

impl Default for SupervisorPolicy {
    fn default() -> Self {
        SupervisorPolicy {
            max_retries: 2,
            breaker_threshold: 3,
            cooldown: Duration::from_millis(500),
            required_probes: 2,
        }
    }
}

/// What the supervisor decided about one batch execution.
#[derive(Debug)]
pub enum SupervisedOutcome<R> {
    /// The batch completed (possibly after retries).
    Completed(R),
    /// The batch kept panicking through every retry: quarantine it.
    Quarantined {
        /// Panic payload of the final attempt, stringified.
        panic_msg: String,
        /// Total attempts made (1 + retries).
        attempts: u32,
        /// True when this quarantine tripped the breaker open.
        tripped: bool,
    },
    /// The breaker is open: the batch was not run. Drain-and-drop.
    Rejected,
}

/// Monotonic counters describing everything a supervisor has contained.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SupervisorStats {
    /// Individual panicking attempts caught (includes retries).
    pub panics: u64,
    /// Re-executions after a caught panic.
    pub retries: u64,
    /// Batches surrendered as poison after exhausting retries.
    pub quarantined: u64,
    /// Batches rejected (drained-and-dropped) while the breaker was open.
    pub breaker_rejected: u64,
    /// Closed/HalfOpen→Open transitions.
    pub breaker_trips: u64,
}

/// Panic-containing execution wrapper around one operator.
///
/// The backoff schedule is injected per call so this crate stays free of a
/// dependency on `neptune-ha` (which sits above it); the runtime passes
/// `ReconnectPolicy::delay_for`.
pub struct OperatorSupervisor {
    policy: SupervisorPolicy,
    breaker: CircuitBreaker,
    panics: AtomicU64,
    retries: AtomicU64,
    quarantined: AtomicU64,
}

/// Render a panic payload (`Box<dyn Any>`) as a human-readable message.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl OperatorSupervisor {
    /// Supervisor with the given policy.
    pub fn new(policy: SupervisorPolicy) -> Self {
        OperatorSupervisor {
            breaker: CircuitBreaker::new(
                policy.breaker_threshold,
                policy.cooldown,
                policy.required_probes,
            ),
            policy,
            panics: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
        }
    }

    /// The operator's breaker (for state inspection).
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// Counter snapshot for metrics/telemetry.
    pub fn stats(&self) -> SupervisorStats {
        SupervisorStats {
            panics: self.panics.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            breaker_rejected: self.breaker.rejected(),
            breaker_trips: self.breaker.trips(),
        }
    }

    /// Run one batch under supervision.
    ///
    /// `body` is the batch execution (it may panic); `backoff` maps the
    /// retry attempt number (1-based) to the pause before that retry.
    /// The pause runs on the calling worker thread — schedules should be
    /// short (milliseconds), which is what `ReconnectPolicy::fast` yields.
    pub fn run_batch<R>(
        &self,
        mut body: impl FnMut() -> R,
        backoff: impl Fn(u32) -> Duration,
    ) -> SupervisedOutcome<R> {
        if !self.breaker.allow() {
            return SupervisedOutcome::Rejected;
        }
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            match catch_unwind(AssertUnwindSafe(&mut body)) {
                Ok(r) => {
                    self.breaker.on_success();
                    return SupervisedOutcome::Completed(r);
                }
                Err(payload) => {
                    self.panics.fetch_add(1, Ordering::Relaxed);
                    if attempts <= self.policy.max_retries {
                        self.retries.fetch_add(1, Ordering::Relaxed);
                        let pause = backoff(attempts);
                        if !pause.is_zero() {
                            std::thread::sleep(pause);
                        }
                        continue;
                    }
                    self.quarantined.fetch_add(1, Ordering::Relaxed);
                    let tripped = self.breaker.on_failure();
                    return SupervisedOutcome::Quarantined {
                        panic_msg: panic_message(payload.as_ref()),
                        attempts,
                        tripped,
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use std::sync::Arc;

    fn no_backoff(_attempt: u32) -> Duration {
        Duration::ZERO
    }

    #[test]
    fn breaker_trips_after_threshold_consecutive_failures() {
        let b = CircuitBreaker::new(3, Duration::from_secs(60), 1);
        assert!(!b.on_failure());
        assert!(!b.on_failure());
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.on_failure(), "third consecutive failure must trip");
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn success_resets_consecutive_failure_count() {
        let b = CircuitBreaker::new(2, Duration::from_secs(60), 1);
        assert!(!b.on_failure());
        b.on_success();
        assert!(!b.on_failure(), "streak reset: one failure after success must not trip");
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn open_breaker_rejects_until_cooldown_then_probes() {
        let b = CircuitBreaker::new(1, Duration::from_millis(20), 1);
        assert!(b.on_failure());
        assert!(!b.allow(), "open breaker must reject");
        assert_eq!(b.rejected(), 1);
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.allow(), "half-open admits a probe");
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn failed_probe_reopens() {
        let b = CircuitBreaker::new(1, Duration::from_millis(10), 2);
        assert!(b.on_failure());
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.on_failure(), "failed probe trips again");
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 2);
    }

    #[test]
    fn needs_required_probes_to_close() {
        let b = CircuitBreaker::new(1, Duration::from_millis(10), 2);
        b.on_failure();
        std::thread::sleep(Duration::from_millis(15));
        assert!(b.allow());
        b.on_success();
        assert_eq!(b.state(), BreakerState::HalfOpen, "one probe is not enough");
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn supervisor_retries_then_succeeds() {
        let sup = OperatorSupervisor::new(SupervisorPolicy {
            max_retries: 2,
            ..SupervisorPolicy::default()
        });
        let calls = Arc::new(AtomicU32::new(0));
        let c = calls.clone();
        let outcome = sup.run_batch(
            move || {
                let n = c.fetch_add(1, Ordering::Relaxed);
                if n < 2 {
                    panic!("transient fault {n}");
                }
                n
            },
            no_backoff,
        );
        match outcome {
            SupervisedOutcome::Completed(n) => assert_eq!(n, 2),
            other => panic!("expected completion, got {other:?}"),
        }
        let stats = sup.stats();
        assert_eq!(stats.panics, 2);
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.quarantined, 0);
        assert_eq!(sup.breaker().state(), BreakerState::Closed);
    }

    #[test]
    fn supervisor_quarantines_after_retry_cap_with_panic_message() {
        let sup = OperatorSupervisor::new(SupervisorPolicy {
            max_retries: 1,
            breaker_threshold: 100,
            ..SupervisorPolicy::default()
        });
        let outcome = sup.run_batch(|| -> () { panic!("poison packet 0xdead") }, no_backoff);
        match outcome {
            SupervisedOutcome::Quarantined { panic_msg, attempts, tripped } => {
                assert!(panic_msg.contains("poison packet 0xdead"));
                assert_eq!(attempts, 2);
                assert!(!tripped);
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
        let stats = sup.stats();
        assert_eq!(stats.panics, 2);
        assert_eq!(stats.retries, 1);
        assert_eq!(stats.quarantined, 1);
    }

    #[test]
    fn persistent_failure_trips_breaker_and_rejects() {
        let sup = OperatorSupervisor::new(SupervisorPolicy {
            max_retries: 0,
            breaker_threshold: 2,
            cooldown: Duration::from_secs(60),
            required_probes: 1,
        });
        for i in 0..2 {
            match sup.run_batch(|| -> () { panic!("wedged") }, no_backoff) {
                SupervisedOutcome::Quarantined { tripped, .. } => {
                    assert_eq!(tripped, i == 1, "second quarantine trips");
                }
                other => panic!("expected quarantine, got {other:?}"),
            }
        }
        match sup.run_batch(|| 7, no_backoff) {
            SupervisedOutcome::Rejected => {}
            other => panic!("open breaker must reject, got {other:?}"),
        }
        let stats = sup.stats();
        assert_eq!(stats.breaker_trips, 1);
        assert_eq!(stats.breaker_rejected, 1);
    }

    #[test]
    fn backoff_schedule_is_consulted_per_retry() {
        let sup = OperatorSupervisor::new(SupervisorPolicy {
            max_retries: 3,
            breaker_threshold: 100,
            ..SupervisorPolicy::default()
        });
        let consulted = Arc::new(Mutex::new(Vec::new()));
        let c = consulted.clone();
        let _ = sup.run_batch(
            || -> () { panic!("always") },
            move |attempt| {
                c.lock().push(attempt);
                Duration::ZERO
            },
        );
        assert_eq!(*consulted.lock(), vec![1, 2, 3]);
    }

    #[test]
    fn panic_message_renders_str_string_and_other() {
        assert_eq!(panic_message(&"abc"), "abc");
        assert_eq!(panic_message(&"xyz".to_string()), "xyz");
        assert_eq!(panic_message(&42u32), "non-string panic payload");
    }
}
