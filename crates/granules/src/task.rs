//! Computational tasks — the most fine-grained unit of execution in
//! Granules (§II of the NEPTUNE paper).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Identifier of a deployed computational task, unique within a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u64);

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task-{}", self.0)
    }
}

/// Lifecycle state of a deployed task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// Deployed, waiting for its first signal.
    Idle,
    /// Currently executing (or queued on a worker).
    Scheduled,
    /// `terminate` has run; the task will never execute again.
    Terminated,
}

/// What a task's `execute` wants the runtime to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskOutcome {
    /// Stay deployed and wait for the next signal.
    Continue,
    /// Work remains beyond the coalesced signals (e.g. the task chose not
    /// to drain its input fully): schedule another execution even though
    /// the pending-signal counter was already consumed.
    Reschedule,
    /// Terminate this task: run `terminate`, release the slot.
    Finished,
}

/// Execution context handed to a task on every scheduled execution.
///
/// Carries the number of data signals coalesced into this execution —
/// NEPTUNE's batched scheduling reads it to size the batch — plus the
/// task's own id and a monotonically increasing execution counter.
pub struct TaskContext {
    task_id: TaskId,
    /// Signals coalesced into this execution (>= 1 for data-driven runs,
    /// 0 for purely periodic fires with no pending data).
    coalesced_signals: u64,
    /// How many times this task has executed before this run.
    execution_index: u64,
}

impl TaskContext {
    pub(crate) fn new(task_id: TaskId, coalesced_signals: u64, execution_index: u64) -> Self {
        TaskContext { task_id, coalesced_signals, execution_index }
    }

    /// Id of the executing task.
    pub fn task_id(&self) -> TaskId {
        self.task_id
    }

    /// Number of data signals folded into this execution.
    pub fn coalesced_signals(&self) -> u64 {
        self.coalesced_signals
    }

    /// Zero-based index of this execution.
    pub fn execution_index(&self) -> u64 {
        self.execution_index
    }
}

/// Domain-specific processing logic hosted by a [`crate::Resource`].
///
/// `execute` runs on a worker-pool thread; the runtime guarantees that a
/// given task instance never executes concurrently with itself, so `&mut
/// self` is safe without internal locking.
pub trait ComputationalTask: Send {
    /// Called once, before the first execution.
    fn initialize(&mut self, _ctx: &TaskContext) {}

    /// One scheduled execution. Signals may have been coalesced; consult
    /// [`TaskContext::coalesced_signals`].
    fn execute(&mut self, ctx: &TaskContext) -> TaskOutcome;

    /// Called once when the task terminates (voluntarily or via the
    /// resource shutting down).
    fn terminate(&mut self, _ctx: &TaskContext) {}
}

/// Global task-id allocator.
#[derive(Debug, Default)]
pub(crate) struct TaskIdAllocator {
    next: AtomicU64,
}

impl TaskIdAllocator {
    pub(crate) fn allocate(&self) -> TaskId {
        TaskId(self.next.fetch_add(1, Ordering::Relaxed))
    }
}

/// Blanket impl so closures can be deployed as tasks in tests and examples.
impl<F> ComputationalTask for F
where
    F: FnMut(&TaskContext) -> TaskOutcome + Send,
{
    fn execute(&mut self, ctx: &TaskContext) -> TaskOutcome {
        self(ctx)
    }
}

/// Shared, cloneable handle to a counter of executions — handy for tests.
#[derive(Debug, Clone, Default)]
pub struct ExecutionProbe {
    executions: Arc<AtomicU64>,
    signals_seen: Arc<AtomicU64>,
}

impl ExecutionProbe {
    /// New probe with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one execution that coalesced `signals` signals.
    pub fn record(&self, signals: u64) {
        self.executions.fetch_add(1, Ordering::Relaxed);
        self.signals_seen.fetch_add(signals, Ordering::Relaxed);
    }

    /// Number of executions recorded.
    pub fn executions(&self) -> u64 {
        self.executions.load(Ordering::Relaxed)
    }

    /// Total signals observed across executions.
    pub fn signals_seen(&self) -> u64 {
        self.signals_seen.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_ids_are_unique_and_monotonic() {
        let alloc = TaskIdAllocator::default();
        let a = alloc.allocate();
        let b = alloc.allocate();
        let c = alloc.allocate();
        assert!(a < b && b < c);
    }

    #[test]
    fn context_accessors() {
        let ctx = TaskContext::new(TaskId(7), 3, 12);
        assert_eq!(ctx.task_id(), TaskId(7));
        assert_eq!(ctx.coalesced_signals(), 3);
        assert_eq!(ctx.execution_index(), 12);
    }

    #[test]
    fn closures_are_tasks() {
        let mut count = 0u32;
        let mut task = |_ctx: &TaskContext| {
            count += 1;
            TaskOutcome::Continue
        };
        let ctx = TaskContext::new(TaskId(0), 1, 0);
        assert_eq!(ComputationalTask::execute(&mut task, &ctx), TaskOutcome::Continue);
        assert_eq!(count, 1);
    }

    #[test]
    fn probe_accumulates() {
        let p = ExecutionProbe::new();
        p.record(5);
        p.record(2);
        assert_eq!(p.executions(), 2);
        assert_eq!(p.signals_seen(), 7);
    }
}
