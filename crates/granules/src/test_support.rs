//! Deadline-polling helpers for tests.
//!
//! Synchronizing a test with a background thread via a bare
//! `thread::sleep(fixed)` is a race with the scheduler: too short and the
//! test flakes under load, too long and the suite crawls. These helpers
//! poll a predicate up to a deadline instead — the test proceeds the moment
//! the condition holds and only fails after the (generous) deadline, so the
//! timeout can be sized for the worst CI machine without slowing the common
//! case.

use std::time::{Duration, Instant};

/// Poll `pred` until it returns true or `deadline` passes. Returns the
/// final verdict of `pred`, so `assert!(wait_until(..))` reads naturally.
pub fn wait_until(deadline: Instant, mut pred: impl FnMut() -> bool) -> bool {
    loop {
        if pred() {
            return true;
        }
        if Instant::now() >= deadline {
            return pred();
        }
        std::thread::sleep(Duration::from_micros(200));
    }
}

/// [`wait_until`] with a relative timeout.
pub fn wait_for(timeout: Duration, pred: impl FnMut() -> bool) -> bool {
    wait_until(Instant::now() + timeout, pred)
}
