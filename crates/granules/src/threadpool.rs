//! A fixed-size worker thread pool built from scratch on crossbeam
//! channels.
//!
//! NEPTUNE's two-tier thread model (§III-B of the paper) uses two of these:
//! one pool for worker threads running stream-processor logic and one for
//! IO threads draining outbound buffers. Keeping the pool small and fixed is
//! deliberate — the paper attributes Storm's CPU overhead to its
//! per-message four-thread pipeline, while "thread pool sizes are determined
//! automatically depending on the number of cores".

use crossbeam::channel::{self, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

enum Message {
    Run(Job),
    Shutdown,
}

/// Shared pool statistics.
#[derive(Debug, Default)]
struct PoolStats {
    submitted: AtomicU64,
    completed: AtomicU64,
    panicked: AtomicU64,
    /// Jobs currently executing on some worker.
    in_flight: AtomicUsize,
    /// Threads currently parked in [`WorkerPool::wait_idle`]. Workers only
    /// touch the idle mutex/condvar when this is nonzero, so the hot path
    /// pays one uncontended atomic load per job.
    idle_waiters: AtomicUsize,
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
}

impl PoolStats {
    fn is_idle(&self) -> bool {
        // SeqCst on both sides of the waiter/worker handshake: a worker
        // that misses a waiter registration is, in the SeqCst total order,
        // *after* the waiter's registration — so the waiter's own idle
        // check here must observe that worker's counter updates and skip
        // the park. Either the worker notifies or the waiter never sleeps.
        self.in_flight.load(Ordering::SeqCst) == 0
            && self.completed.load(Ordering::SeqCst) == self.submitted.load(Ordering::SeqCst)
    }
}

/// Fixed-size worker pool. Jobs are `FnOnce() + Send` closures executed on
/// one of `size` dedicated OS threads.
pub struct WorkerPool {
    tx: Sender<Message>,
    workers: Vec<JoinHandle<()>>,
    stats: Arc<PoolStats>,
    size: usize,
}

impl WorkerPool {
    /// Spawn a pool with `size` worker threads, named `"{name}-{i}"`.
    ///
    /// Panics if `size == 0`.
    pub fn new(name: &str, size: usize) -> Self {
        assert!(size > 0, "worker pool needs at least one thread");
        let (tx, rx) = channel::unbounded::<Message>();
        let stats = Arc::new(PoolStats::default());
        let workers = (0..size)
            .map(|i| {
                let rx: Receiver<Message> = rx.clone();
                let stats = stats.clone();
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || worker_loop(rx, stats))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool { tx, workers, stats, size }
    }

    /// Pool sized to the machine: `available_parallelism`, min 2 — the
    /// paper's "determined automatically depending on the number of cores".
    pub fn sized_for_host(name: &str) -> Self {
        let n = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).max(2);
        Self::new(name, n)
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Submit a job. Returns `false` if the pool is already shut down.
    pub fn submit<F: FnOnce() + Send + 'static>(&self, job: F) -> bool {
        self.stats.submitted.fetch_add(1, Ordering::Relaxed);
        self.tx.send(Message::Run(Box::new(job))).is_ok()
    }

    /// Jobs submitted so far.
    pub fn submitted(&self) -> u64 {
        self.stats.submitted.load(Ordering::Relaxed)
    }

    /// Jobs completed (including panicked ones).
    pub fn completed(&self) -> u64 {
        self.stats.completed.load(Ordering::Relaxed)
    }

    /// Jobs whose closure panicked. The worker survives: a panicking stream
    /// processor must not take down unrelated operators sharing the pool.
    pub fn panicked(&self) -> u64 {
        self.stats.panicked.load(Ordering::Relaxed)
    }

    /// True when no jobs are queued or executing.
    pub fn is_idle(&self) -> bool {
        self.stats.is_idle()
    }

    /// Block until the pool is idle. The caller parks on a condvar and is
    /// woken by whichever worker completes the last outstanding job — no
    /// spinning, so a drain that takes seconds costs no CPU.
    pub fn wait_idle(&self) {
        if self.stats.is_idle() {
            return;
        }
        self.stats.idle_waiters.fetch_add(1, Ordering::SeqCst);
        {
            let mut guard = self.stats.idle_lock.lock();
            while !self.stats.is_idle() {
                self.stats.idle_cv.wait(&mut guard);
            }
        }
        self.stats.idle_waiters.fetch_sub(1, Ordering::SeqCst);
    }

    /// Stop all workers after the queued jobs finish.
    pub fn shutdown(mut self) {
        for _ in 0..self.workers.len() {
            let _ = self.tx.send(Message::Shutdown);
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Best effort: tell workers to stop; detach if join isn't possible.
        for _ in 0..self.workers.len() {
            let _ = self.tx.send(Message::Shutdown);
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(rx: Receiver<Message>, stats: Arc<PoolStats>) {
    while let Ok(msg) = rx.recv() {
        match msg {
            Message::Run(job) => {
                stats.in_flight.fetch_add(1, Ordering::SeqCst);
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                if result.is_err() {
                    stats.panicked.fetch_add(1, Ordering::Relaxed);
                }
                stats.completed.fetch_add(1, Ordering::SeqCst);
                stats.in_flight.fetch_sub(1, Ordering::SeqCst);
                // Wake idle-waiters only when some exist: the lock acquire
                // (empty critical section) pairs with the waiter holding the
                // lock across its condition check, closing the check/park
                // window; the SeqCst counter ops above close the
                // register/check window.
                if stats.idle_waiters.load(Ordering::SeqCst) > 0 {
                    drop(stats.idle_lock.lock());
                    stats.idle_cv.notify_all();
                }
            }
            Message::Shutdown => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn executes_submitted_jobs() {
        let pool = WorkerPool::new("t", 4);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..100 {
            let c = counter.clone();
            assert!(pool.submit(move || {
                c.fetch_add(1, Ordering::Relaxed);
            }));
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(pool.submitted(), 100);
        assert_eq!(pool.completed(), 100);
        pool.shutdown();
    }

    #[test]
    fn jobs_run_on_named_pool_threads() {
        let pool = WorkerPool::new("relay", 2);
        let (tx, rx) = channel::bounded(1);
        pool.submit(move || {
            let name = std::thread::current().name().unwrap_or("").to_string();
            tx.send(name).unwrap();
        });
        let name = rx.recv().unwrap();
        assert!(name.starts_with("relay-"), "got {name}");
        pool.shutdown();
    }

    #[test]
    fn panicking_job_does_not_kill_workers() {
        let pool = WorkerPool::new("p", 1);
        pool.submit(|| panic!("boom"));
        let counter = Arc::new(AtomicU64::new(0));
        let c = counter.clone();
        pool.submit(move || {
            c.fetch_add(1, Ordering::Relaxed);
        });
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
        assert_eq!(pool.panicked(), 1);
        pool.shutdown();
    }

    #[test]
    fn wait_idle_observes_slow_jobs() {
        let pool = WorkerPool::new("slow", 2);
        let done = Arc::new(AtomicU64::new(0));
        for _ in 0..4 {
            let d = done.clone();
            pool.submit(move || {
                std::thread::sleep(std::time::Duration::from_millis(10));
                d.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(done.load(Ordering::Relaxed), 4);
        pool.shutdown();
    }

    #[test]
    fn wait_idle_wakes_every_parked_waiter() {
        // Several threads park on the condvar at once; the single worker
        // finishing the last job must wake all of them.
        let pool = Arc::new(WorkerPool::new("park", 1));
        let done = Arc::new(AtomicU64::new(0));
        let d = done.clone();
        pool.submit(move || {
            std::thread::sleep(std::time::Duration::from_millis(50));
            d.fetch_add(1, Ordering::Relaxed);
        });
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let p = pool.clone();
                let d = done.clone();
                std::thread::spawn(move || {
                    p.wait_idle();
                    assert_eq!(d.load(Ordering::Relaxed), 1, "woke before the job finished");
                })
            })
            .collect();
        for w in waiters {
            w.join().unwrap();
        }
    }

    #[test]
    fn sized_for_host_is_at_least_two() {
        let pool = WorkerPool::sized_for_host("auto");
        assert!(pool.size() >= 2);
        pool.shutdown();
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_size_rejected() {
        WorkerPool::new("z", 0);
    }

    #[test]
    fn drop_without_shutdown_joins_cleanly() {
        let counter = Arc::new(AtomicU64::new(0));
        {
            let pool = WorkerPool::new("d", 2);
            for _ in 0..10 {
                let c = counter.clone();
                pool.submit(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
            // No explicit shutdown: Drop must finish queued work and join.
        }
        assert_eq!(counter.load(Ordering::Relaxed), 10);
    }
}
